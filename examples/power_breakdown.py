"""Per-component power analysis and the effect of each paper feature.

Reproduces the paper's reasoning chain on one page: where mc-ref's power
goes (Fig 3), what instruction broadcasting does to it (Table II), and
what power gating adds at the leakage floor (Fig 8) — then runs the two
ablations (no data broadcast, no instruction broadcast) to show each
mechanism's contribution to core synchronisation.

Run:  python examples/power_breakdown.py
"""

from repro.experiments.common import ARCHES, fmt_power
from repro.power.calibration import calibrated_set, reference_results


def main() -> None:
    cal = calibrated_set()

    print("=== dynamic power by component (8 MOps/s, 1.2 V) ===")
    components = ("cores", "im", "dm", "dxbar", "ixbar", "clock")
    print(f"{'arch':<11}" + "".join(f"{c:>9}" for c in components)
          + f"{'total':>9}")
    for arch in ARCHES:
        model = cal.power_model(arch)
        frequency = 8e6 / cal.ops_per_cycle(arch)
        breakdown = model.dynamic_power(frequency, 1.2, post_layout=False)
        cells = breakdown.as_dict()
        print(f"{arch:<11}"
              + "".join(f"{1e3 * cells[c]:>9.3f}" for c in components)
              + f"{1e3 * breakdown.total:>9.3f}  mW")

    print("\n=== leakage at the minimum supply (0.5 V) ===")
    for arch in ARCHES:
        model = cal.power_model(arch)
        leak = model.leakage_power(cal.technology.v_min)
        gated = cal.results[arch].stats.im_banks_gated
        print(f"{arch:<11} im={fmt_power(leak['im']):>9} "
              f"dm={fmt_power(leak['dm']):>9} "
              f"logic={fmt_power(leak['logic']):>9} "
              f"({gated} IM banks power-gated)")

    print("\n=== what keeps the cores synchronised? (ablations) ===")
    print(f"{'configuration':<42}{'cycles':>9}{'IM accesses':>13}"
          f"{'sync %':>8}")
    rows = [
        ("full proposed design (ulpmc-bank)",
         reference_results(huffman_private=True)),
        ("huffman LUTs shared (DM conflicts)",
         reference_results(huffman_private=False)),
        ("no data broadcast (cores desynchronise)",
         reference_results(huffman_private=False, data_broadcast=False)),
        ("no instruction broadcast (one access/fetch)",
         reference_results(huffman_private=False, instr_broadcast=False)),
    ]
    for label, (__, results) in rows:
        stats = results["ulpmc-bank"].stats
        print(f"{label:<42}{stats.total_cycles:>9}"
              f"{stats.im_bank_accesses:>13}"
              f"{100 * stats.sync_fraction:>8.1f}")
    print("\nthe paper's chain: DM organisation + data broadcast keep the "
          "cores in lockstep, which is what lets instruction broadcast "
          "collapse 8 fetches into 1 IM access (86% IM power reduction)")


if __name__ == "__main__":
    main()
