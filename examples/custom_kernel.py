"""Writing your own TamaRISC kernel: a multi-lead FIR notch filter.

Shows the bare-metal toolchain the library exposes: assemble a program,
lay out shared coefficients and private sample buffers, run it on all
three platforms, and compare the timing statistics — i.e. how a user
would evaluate *their* biosignal kernel on these architectures.

The kernel is a 9-tap moving FIR applied per lead (one core per lead),
with the coefficient taps in the shared section (read-broadcast on every
tap when the cores are synchronised, like the paper's CS vector).

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro.memory.layout import PRIVATE_BASE
from repro.platform import Benchmark, build_platform
from repro.tamarisc import assemble
from repro.tamarisc.program import DataImage

N_TAPS = 9
N_SAMPLES = 200
COEFFS = [1, 2, 4, 8, 10, 8, 4, 2, 1]  # integer low-pass, sum 40

SOURCE = f"""
; 9-tap FIR, Q0 integer taps; y[n] = sum(c[k] * x[n-k]) >> 5
.equ COEFFS,  0                 ; shared section
.equ XBASE,   {PRIVATE_BASE}
.equ YBASE,   {PRIVATE_BASE + N_SAMPLES}
.equ NOUT,    {N_SAMPLES - N_TAPS + 1}
.equ NTAPS,   {N_TAPS}

start:
    li   r1, XBASE              ; sliding window start
    li   r2, YBASE
    li   r3, NOUT
outer:
    mov  r4, r1                 ; tap pointer
    li   r5, COEFFS
    mov  r6, #NTAPS
    mov  r7, #0                 ; accumulator
tap:
    mov  r8, [r4++]             ; sample (private)
    mul  r8, r8, [r5++]         ; * coefficient (shared, broadcast)
    add  r7, r7, r8
    sub  r6, r6, #1
    bne  tap
    srl  r7, r7, #5             ; / 32
    mov  [r2++], r7             ; store output (private)
    add  r1, r1, #1             ; slide window
    sub  r3, r3, #1
    bne  outer
    hlt
"""


def golden_fir(x):
    y = np.convolve(x, COEFFS, mode="valid") >> 5
    return [int(v) & 0xFFFF for v in y]


def main() -> None:
    program = assemble(SOURCE, entry="start")
    print(f"assembled {len(program)} instructions "
          f"({program.size_bytes} bytes)\n")

    rng = np.random.default_rng(42)
    leads = rng.integers(0, 512, size=(8, N_SAMPLES))
    data = DataImage()
    data.set_shared_block(0, COEFFS)
    for core in range(8):
        data.set_private_block(core, PRIVATE_BASE,
                               [int(v) for v in leads[core]])
    bench = Benchmark("fir-notch", program, data)

    print(f"{'arch':<11}{'cycles':>8}{'IM accesses':>13}{'DM accesses':>13}"
          f"{'sync %':>8}")
    for arch in ("mc-ref", "ulpmc-int", "ulpmc-bank"):
        system = build_platform(arch)
        stats = system.run(bench).stats
        # Verify every lead against numpy.
        for core in range(8):
            expected = golden_fir(leads[core])
            measured = system.read_logical_block(
                core, PRIVATE_BASE + N_SAMPLES, len(expected))
            assert measured == expected, f"{arch} core {core} diverged"
        print(f"{arch:<11}{stats.total_cycles:>8}"
              f"{stats.im_bank_accesses:>13}{stats.dm_bank_accesses:>13}"
              f"{100 * stats.sync_fraction:>8.1f}")
    print("\nall outputs verified against numpy; a fully data-independent "
          "kernel stays in perfect lockstep, so even ulpmc-bank fetches "
          "once per instruction for all 8 cores")


if __name__ == "__main__":
    main()
