"""End-to-end wearable ECG pipeline: sensor node to receiver.

The paper's motivating scenario: an 8-lead wearable node compresses ECG
on-body (compressed sensing + Huffman, one core per lead) and transmits
the bitstream; the receiver decodes and reconstructs the signal.

This example runs the *on-node* half on the cycle-accurate ulpmc-bank
platform, then plays the *receiver* role in Python: Huffman-decode each
lead's bitstream out of the simulated data memory, dequantise the
measurements and reconstruct the waveform with OMP, reporting the PRD
quality metric and effective data-rate reduction per lead.

Run:  python examples/ecg_compression_pipeline.py
"""

import numpy as np

from repro.biosignal import HuffmanDecoder, omp_reconstruct, \
    percent_rms_difference
from repro.kernels import BenchmarkSpec, build_benchmark, verify_result
from repro.platform import build_platform

SAMPLE_RATE_HZ = 250


def main() -> None:
    built = build_benchmark(BenchmarkSpec(huffman_private=True, seed=7))
    memmap = built.memmap

    print("simulating the sensor node (ulpmc-bank, 8 cores)...")
    system = build_platform("ulpmc-bank")
    result = system.run(built.benchmark)
    verify_result(built, result)
    cycles = result.stats.total_cycles
    block_seconds = memmap.n_samples / SAMPLE_RATE_HZ
    duty_mhz = cycles / block_seconds / 1e6
    print(f"  {cycles} cycles per {block_seconds:.3f} s block "
          f"-> {duty_mhz:.2f} MHz keeps real time\n")

    decoder = HuffmanDecoder(built.code)
    print(f"{'lead':>4} {'coded bits':>10} {'ratio':>6} {'PRD %':>6}")
    for lead in range(built.spec.n_leads):
        # Receiver side: read the transmitted words out of the node's
        # private memory, exactly as a radio DMA would.
        total_bits = system.read_logical(lead, memmap.out_base)
        words = system.read_logical_block(
            lead, memmap.out_base + 1, (total_bits + 15) // 16)
        measurements = decoder.decode_measurements(total_bits, words)

        original = np.array(built.golden[lead].samples, dtype=float)
        reconstructed = omp_reconstruct(
            np.array(measurements, dtype=float), built.matrix, sparsity=64)
        prd = percent_rms_difference(original, reconstructed)
        raw_bits = 16 * memmap.n_samples
        print(f"{lead:>4} {total_bits:>10} {raw_bits / total_bits:>6.1f} "
              f"{prd:>6.1f}")

    print("\n(ratio = 16-bit raw samples vs transmitted bits; the paper's "
          "CS stage alone is 2x, Huffman adds the rest)")


if __name__ == "__main__":
    main()
