"""Quickstart: run the paper's benchmark on the proposed architecture.

Builds the CS + Huffman reference benchmark (8 ECG leads, one per core),
executes it cycle-accurately on ulpmc-bank, verifies the outputs against
the golden Python models, and prints the headline statistics.

Run:  python examples/quickstart.py
"""

from repro.kernels import BenchmarkSpec, build_benchmark, verify_result
from repro.platform import build_platform


def main() -> None:
    # The paper's geometry: 512 samples/block at 250 Hz, 50% compression.
    built = build_benchmark(BenchmarkSpec(huffman_private=True))
    print(f"program:        {built.program_bytes} bytes "
          f"({len(built.benchmark.program)} instructions)")
    print(f"read-only data: {built.memmap.read_only_bytes} bytes "
          "(CS vector + Huffman LUTs)")
    print(f"working data:   {built.memmap.working_bytes} bytes per core")
    print()

    for arch in ("mc-ref", "ulpmc-int", "ulpmc-bank"):
        system = build_platform(arch)
        result = system.run(built.benchmark)
        verify_result(built, result)  # bit-exact against the golden model
        print(f"--- {arch} ---")
        print(result.stats.summary())
        print()

    lead0 = built.golden[0]
    bits_in = 16 * len(lead0.samples)
    print(f"lead 0: {bits_in} sample bits -> {lead0.total_bits} coded "
          f"bits ({bits_in / lead0.total_bits:.1f}x end-to-end)")


if __name__ == "__main__":
    main()
