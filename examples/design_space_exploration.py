"""Design-space exploration for a wearable monitoring product.

Given a monitoring scenario (how many leads, what block rate), which
architecture and synthesis point minimise power?  This walks the same
trade-off space as the paper's Section IV: clock constraints (Figs 5-6),
workload scaling under DVFS (Fig 7) and the leakage floor (Fig 8).

Run:  python examples/design_space_exploration.py
"""

from repro.experiments.common import ARCHES, fmt_power
from repro.power.calibration import calibrated_set
from repro.power.synthesis import DESIGN_POINTS_NS, SynthesisModel

#: Monitoring scenarios: name -> required useful throughput (Ops/s).
#: The full benchmark (8 leads @ 250 Hz, 512-sample blocks) needs about
#: 260 kOps/s of sustained compute; lighter products duty-cycle harder.
SCENARIOS = {
    "holter (1 lead, store-only)": 35e3,
    "home monitor (3 leads)": 100e3,
    "clinical patch (8 leads)": 260e3,
    "8 leads + on-node analytics": 5e6,
    "burst mode (fastest block turnaround)": 500e6,
}


def main() -> None:
    cal = calibrated_set()

    # Sustained compute of the reference application, from the simulator.
    ops_per_block = cal.ops_per_block
    blocks_per_second = 250.0 / cal.built.spec.n_samples
    print(f"reference app: {ops_per_block} ops per 512-sample block "
          f"x {blocks_per_second:.3f} blocks/s "
          f"= {ops_per_block * blocks_per_second / 1e3:.0f} kOps/s "
          "sustained for 8 leads\n")

    print("=== architecture choice at each scenario (12 ns designs) ===")
    header = f"{'scenario':<38}" + "".join(f"{arch:>12}" for arch in ARCHES)
    print(header + "   best")
    for name, workload in SCENARIOS.items():
        powers = {}
        for arch in ARCHES:
            try:
                powers[arch] = cal.workload_power(arch, workload)
            except Exception:
                powers[arch] = float("inf")
            # ulpmc-bank retires fewer ops/cycle; very high workloads can
            # exceed a design's peak, which is part of the trade-off.
        row = f"{name:<38}"
        for arch in ARCHES:
            row += f"{fmt_power(powers[arch]):>12}" \
                if powers[arch] != float("inf") else f"{'peak!':>12}"
        best = min(powers, key=powers.get)
        print(row + f"   {best}")

    print("\n=== synthesis constraint choice (ulpmc-bank workloads) ===")
    leak = cal.power_model("ulpmc-int").total_leakage(cal.technology.v_nom)
    synth = SynthesisModel(cal.technology, leakage_nominal_w=leak)
    periods = DESIGN_POINTS_NS["proposed"]
    print(f"{'workload':>14}" + "".join(f"{p:>10} ns" for p in periods))
    for workload in (100e3, 5e6, 50e6, 500e6):
        row = f"{workload:>12.3g}  "
        for period in periods:
            if workload > synth.max_workload("proposed", period):
                row += f"{'peak!':>12}"
            else:
                row += f"{fmt_power(synth.power('proposed', period, workload)):>12}"
        print(row)
    saving = synth.saving_vs_speed_optimised("proposed")
    print(f"\nthe 12 ns point saves {100 * saving:.1f}% against the "
          "speed-optimised design at threshold voltage (paper: 24.1%) "
          "while still reaching 662 MOps/s at nominal voltage")


if __name__ == "__main__":
    main()
