"""Developing a biosignal kernel in TamaC (the paper's custom C compiler).

The paper's toolchain includes "a custom C compiler ... for easier
benchmark development" (Section IV-A).  This example writes a simple QRS
(heart-beat) detector in TamaC — squared-difference energy with an
adaptive threshold — compiles it, and runs the same image on all eight
cores of the proposed platform, each core scanning its own ECG lead.

Run:  python examples/tamac_compiler.py
"""

import numpy as np

from repro.biosignal.ecg import generate_leads
from repro.memory.layout import PRIVATE_BASE
from repro.platform import Benchmark, build_platform
from repro.tamarisc.program import DataImage
from repro.tamarisc.tamac import compile_program

N_SAMPLES = 500

# Globals land right after the compiler's own allocations; we reserve the
# sample buffer explicitly as a TamaC array so the compiler knows it.
SOURCE = f"""
var samples[{N_SAMPLES}];
var n_beats;
var threshold;

func energy(i) {{
    var d;
    d = samples[i] - samples[i - 1];
    return d * d;
}}

func main() {{
    var i;
    var e;
    var refractory;

    // Calibrate: threshold = half of the peak slope energy.
    threshold = 0;
    i = 1;
    while (i < {N_SAMPLES}) {{
        e = energy(i) >> 4;
        if (e > threshold) {{ threshold = e; }}
        i = i + 1;
    }}
    threshold = threshold >> 1;

    // Detect: rising energy above threshold, 50-sample refractory.
    n_beats = 0;
    refractory = 0;
    i = 1;
    while (i < {N_SAMPLES}) {{
        e = energy(i) >> 4;
        if (refractory > 0) {{ refractory = refractory - 1; }}
        else {{
            if (e > threshold) {{
                n_beats = n_beats + 1;
                refractory = 50;
            }}
        }}
        i = i + 1;
    }}
    return;
}}
"""


def main() -> None:
    compiled = compile_program(SOURCE)
    print(f"compiled {len(compiled.program)} instructions "
          f"({compiled.program.size_bytes} bytes), "
          f"{compiled.words_used} data words")
    print("--- generated assembly (head) ---")
    print("\n".join(compiled.asm.splitlines()[:12]))
    print("...\n")

    leads = generate_leads(n_leads=8, n_samples=N_SAMPLES, seed=11)
    data = DataImage()
    samples_base = compiled.address_of("samples")
    for core in range(8):
        data.set_private_block(core, samples_base,
                               [int(v) for v in leads[core]])

    system = build_platform("ulpmc-bank")
    stats = system.run(Benchmark("qrs-tamac", compiled.program,
                                 data)).stats
    print(f"{'core':>4} {'beats':>6}   (2 s of ECG at ~72 bpm -> expect "
          "2-4 beats)")
    beats_addr = compiled.address_of("n_beats")
    for core in range(8):
        beats = system.read_logical(core, beats_addr)
        print(f"{core:>4} {beats:>6}")
    print(f"\n{stats.total_cycles} cycles; IM accesses "
          f"{stats.im_bank_accesses} for {stats.im_fetches} fetches "
          f"({100 * (1 - stats.im_bank_accesses / stats.im_fetches):.0f}% "
          "saved by instruction broadcast even for compiled code)")


if __name__ == "__main__":
    main()
