"""Synthetic ECG generator."""

import numpy as np
import pytest

from repro.biosignal.ecg import ADC_FULL_SCALE, ECGGenerator, generate_leads


class TestShapeAndRange:
    def test_shape(self):
        leads = generate_leads(n_leads=8, n_samples=512)
        assert leads.shape == (8, 512)
        assert leads.dtype == np.int16

    def test_adc_range(self):
        leads = generate_leads(n_samples=2048, seed=5)
        assert leads.min() >= -ADC_FULL_SCALE - 1
        assert leads.max() <= ADC_FULL_SCALE

    def test_contains_visible_beats(self):
        """R peaks should dominate: peak amplitude well above the noise."""
        leads = ECGGenerator(seed=1, noise_counts=5.0).generate(1024)
        for lead in leads:
            assert np.abs(lead.astype(int)).max() > 150

    def test_beat_rate_plausible(self):
        """~72 bpm at 250 Hz over 8 s -> roughly 7-12 prominent peaks."""
        lead = ECGGenerator(n_leads=1, seed=3,
                            noise_counts=2.0).generate(2000)[0].astype(int)
        threshold = 0.6 * np.abs(lead).max()
        above = np.abs(lead) > threshold
        peaks = np.sum(np.diff(above.astype(int)) == 1)
        assert 5 <= peaks <= 16


class TestDeterminism:
    def test_same_seed_same_signal(self):
        a = generate_leads(seed=42)
        b = generate_leads(seed=42)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(generate_leads(seed=1),
                                  generate_leads(seed=2))

    def test_leads_differ_from_each_other(self):
        leads = generate_leads(n_leads=8, seed=7)
        for i in range(7):
            assert not np.array_equal(leads[i], leads[i + 1])


class TestValidation:
    def test_zero_leads_rejected(self):
        with pytest.raises(ValueError):
            ECGGenerator(n_leads=0)

    def test_implausible_heart_rate_rejected(self):
        with pytest.raises(ValueError):
            ECGGenerator(heart_rate_bpm=400)

    def test_zero_samples_rejected(self):
        with pytest.raises(ValueError):
            ECGGenerator().generate(0)
