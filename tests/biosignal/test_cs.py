"""Compressed sensing: packed matrix, golden compression, reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.biosignal.compressed_sensing import (
    SensingMatrix,
    cs_compress,
    measurements_to_signed,
    omp_reconstruct,
    percent_rms_difference,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def matrix():
    return SensingMatrix.generate(seed=11)


class TestMatrix:
    def test_paper_footprint(self, matrix):
        """The packed LUT is exactly the paper's 12288-byte CS vector."""
        assert matrix.lut_words == 6144
        assert matrix.lut_bytes == 12288

    def test_entries_per_column_distinct_rows(self, matrix):
        for column in range(matrix.n_input):
            entries = matrix.lut[column * 12:(column + 1) * 12]
            rows = [entry >> 1 for entry in entries]
            assert len(set(rows)) == 12
            assert all(0 <= row < 256 for row in rows)

    def test_dense_equivalent(self, matrix):
        dense = matrix.to_dense()
        assert dense.shape == (256, 512)
        assert np.all(np.sum(dense != 0, axis=0) == 12)
        assert set(np.unique(dense)) <= {-1.0, 0.0, 1.0}

    def test_deterministic(self):
        a = SensingMatrix.generate(seed=3)
        b = SensingMatrix.generate(seed=3)
        assert a.lut == b.lut

    def test_too_many_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            SensingMatrix.generate(n_output=8, entries_per_column=9)


class TestGoldenCompression:
    def test_matches_dense_matrix_mod_2_16(self, matrix):
        rng = np.random.default_rng(0)
        x = rng.integers(-2048, 2048, size=512)
        y = cs_compress(matrix, x)
        expected = (matrix.to_dense().astype(np.int64) @ x) % (1 << 16)
        assert y == [int(v) for v in expected]

    @given(st.lists(st.integers(min_value=-2048, max_value=2047),
                    min_size=16, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_linearity_small(self, x):
        small = SensingMatrix.generate(n_input=16, n_output=8,
                                       entries_per_column=3, seed=1)
        y1 = cs_compress(small, x)
        y2 = cs_compress(small, [2 * v for v in x])
        expected = [(2 * v) & 0xFFFF for v in y1]
        assert y2 == expected

    def test_wrong_length_rejected(self, matrix):
        with pytest.raises(ValueError):
            cs_compress(matrix, [0] * 100)

    def test_measurements_to_signed(self):
        assert list(measurements_to_signed([0, 1, 0x8000, 0xFFFF])) \
            == [0, 1, -32768, -1]


class TestReconstruction:
    def test_omp_recovers_dct_sparse_signal(self, matrix):
        """A signal that is truly sparse in DCT must reconstruct almost
        exactly from 50% measurements."""
        from scipy.fft import idct
        coefficients = np.zeros(512)
        coefficients[[3, 17, 40]] = [900.0, -500.0, 250.0]
        x = idct(coefficients, norm="ortho")
        y = matrix.to_dense() @ x
        x_hat = omp_reconstruct(y, matrix, sparsity=10)
        assert percent_rms_difference(x, x_hat) < 1.0

    def test_end_to_end_prd_on_ecg(self, matrix):
        from repro.biosignal.ecg import generate_leads
        x = generate_leads(n_leads=1, n_samples=512, seed=9)[0]
        y = measurements_to_signed(cs_compress(matrix, [int(v) for v in x]))
        x_hat = omp_reconstruct(y.astype(float), matrix, sparsity=64)
        prd = percent_rms_difference(x, x_hat)
        assert prd < 40.0, f"PRD {prd:.1f}% is implausibly bad"

    def test_prd_zero_for_identical(self):
        x = np.arange(1.0, 10.0)
        assert percent_rms_difference(x, x) == 0.0

    def test_prd_rejects_zero_signal(self):
        with pytest.raises(ValueError):
            percent_rms_difference(np.zeros(4), np.ones(4))
