"""Measurement quantiser: the bit-exact kernel mirror."""

from hypothesis import given
from hypothesis import strategies as st

import pytest

from repro.biosignal.quantize import (
    NUM_SYMBOLS,
    STEP,
    dequantize_symbol,
    quantize_measurement,
)

words = st.integers(min_value=0, max_value=0xFFFF)
signed = st.integers(min_value=-0x8000, max_value=0x7FFF)


class TestQuantise:
    def test_zero_maps_to_centre_symbol(self):
        assert quantize_measurement(0) == NUM_SYMBOLS // 2

    @given(words)
    def test_symbol_range(self, y):
        assert 0 <= quantize_measurement(y) < NUM_SYMBOLS

    @given(signed)
    def test_monotone_in_signed_value(self, y):
        if y < 0x7FFF - STEP:
            assert quantize_measurement(y) \
                <= quantize_measurement(y + STEP)

    @given(st.integers(min_value=-4096, max_value=4095))
    def test_in_range_values_match_arithmetic_shift(self, y):
        """Inside ±4096 the XOR-rebias trick equals floor division."""
        assert quantize_measurement(y) == (y >> 4) + 256

    def test_saturation(self):
        assert quantize_measurement(-0x8000) == 0
        assert quantize_measurement(0x7FFF) == NUM_SYMBOLS - 1
        assert quantize_measurement(-5000) == 0
        assert quantize_measurement(5000) == NUM_SYMBOLS - 1


class TestDequantise:
    @given(st.integers(min_value=0, max_value=NUM_SYMBOLS - 1))
    def test_round_trip_error_bounded(self, symbol):
        reconstructed = dequantize_symbol(symbol)
        assert quantize_measurement(reconstructed & 0xFFFF) == symbol

    @given(st.integers(min_value=-4096 + STEP, max_value=4095 - STEP))
    def test_quantisation_error_at_most_half_step(self, y):
        reconstructed = dequantize_symbol(quantize_measurement(y))
        assert abs(reconstructed - y) <= STEP // 2

    def test_out_of_range_symbol_rejected(self):
        with pytest.raises(ValueError):
            dequantize_symbol(NUM_SYMBOLS)
        with pytest.raises(ValueError):
            dequantize_symbol(-1)
