"""Huffman coding: package-merge, canonical codes, bit-exact streams."""

import heapq
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.biosignal.huffman import (
    HuffmanCode,
    HuffmanDecoder,
    HuffmanEncoder,
    MAX_CODE_LENGTH,
    canonical_codes,
    package_merge,
)
from repro.biosignal.quantize import NUM_SYMBOLS
from repro.errors import ConfigurationError

frequency_lists = st.lists(st.integers(min_value=1, max_value=10_000),
                           min_size=2, max_size=64)


def optimal_unlimited_cost(frequencies):
    """Classic Huffman cost via a heap (no length limit)."""
    heap = list(frequencies)
    heapq.heapify(heap)
    cost = 0
    while len(heap) > 1:
        a, b = heapq.heappop(heap), heapq.heappop(heap)
        cost += a + b
        heapq.heappush(heap, a + b)
    return cost


class TestPackageMerge:
    @given(frequency_lists)
    @settings(max_examples=60, deadline=None)
    def test_kraft_inequality(self, freqs):
        lengths = package_merge(freqs, max_length=15)
        assert sum(2.0 ** -l for l in lengths) <= 1.0 + 1e-12
        assert all(1 <= l <= 15 for l in lengths)

    @given(frequency_lists)
    @settings(max_examples=40, deadline=None)
    def test_matches_unlimited_huffman_when_limit_is_loose(self, freqs):
        """With a generous limit, package-merge is cost-optimal."""
        lengths = package_merge(freqs, max_length=32)
        cost = sum(f * l for f, l in zip(freqs, lengths))
        assert cost == optimal_unlimited_cost(freqs)

    @given(frequency_lists)
    @settings(max_examples=40, deadline=None)
    def test_more_frequent_never_longer(self, freqs):
        lengths = package_merge(freqs, max_length=15)
        pairs = sorted(zip(freqs, lengths))
        for (f1, l1), (f2, l2) in zip(pairs, pairs[1:]):
            if f1 < f2:
                assert l1 >= l2

    def test_length_limit_enforced(self):
        # Exponential frequencies would produce a degenerate deep tree.
        freqs = [2 ** i for i in range(20)]
        lengths = package_merge(freqs, max_length=8)
        assert max(lengths) <= 8

    def test_impossible_limit_rejected(self):
        with pytest.raises(ConfigurationError):
            package_merge([1] * 10, max_length=3)

    def test_single_symbol(self):
        assert package_merge([5]) == [1]

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            package_merge([1, 0, 2])


class TestCanonicalCodes:
    @given(frequency_lists)
    @settings(max_examples=40, deadline=None)
    def test_prefix_free(self, freqs):
        lengths = package_merge(freqs, max_length=15)
        codes = canonical_codes(lengths)
        bit_strings = [format(code, f"0{length}b")
                       for code, length in zip(codes, lengths)]
        assert len(set(bit_strings)) == len(bit_strings)
        for a in bit_strings:
            for b in bit_strings:
                if a is not b:
                    assert not b.startswith(a) or a == b


class TestHuffmanCode:
    def test_paper_lut_footprint(self):
        code = HuffmanCode.from_training_symbols([256] * 100)
        assert len(code.lengths) == NUM_SYMBOLS
        assert code.lut_bytes == 1024  # per LUT, two LUTs total
        assert len(code.code_lut_words()) == NUM_SYMBOLS
        assert all(0 <= w <= 0xFFFF for w in code.code_lut_words())

    def test_every_symbol_gets_a_code(self):
        """Add-one smoothing: unseen symbols must still encode."""
        code = HuffmanCode.from_training_symbols([0, 0, 0])
        assert all(l >= 1 for l in code.lengths)
        assert max(code.lengths) <= MAX_CODE_LENGTH

    def test_frequent_symbol_gets_short_code(self):
        symbols = [256] * 10_000 + [10, 300]
        code = HuffmanCode.from_training_symbols(symbols)
        assert code.lengths[256] == min(code.lengths)

    def test_kraft_violation_rejected(self):
        with pytest.raises(ConfigurationError):
            HuffmanCode(lengths=(1, 1, 1), codes=(0, 1, 1))

    def test_expected_length(self):
        code = HuffmanCode.from_frequencies([8, 4, 2, 2])
        assert abs(code.expected_length([8, 4, 2, 2]) - 1.75) < 1e-12


symbol_lists = st.lists(st.integers(min_value=0,
                                    max_value=NUM_SYMBOLS - 1),
                        min_size=0, max_size=300)


class TestRoundTrip:
    @pytest.fixture(scope="class")
    def codec(self):
        import numpy as np
        rng = np.random.default_rng(5)
        training = rng.normal(256, 30, size=5000).astype(int) % NUM_SYMBOLS
        code = HuffmanCode.from_training_symbols(training.tolist())
        return HuffmanEncoder(code), HuffmanDecoder(code)

    @given(symbol_lists)
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_round_trip(self, codec, symbols):
        encoder, decoder = codec
        bits, words = encoder.encode_symbols(symbols)
        assert decoder.decode_bits(bits, words) == symbols

    @given(symbol_lists)
    @settings(max_examples=40, deadline=None)
    def test_bit_count_matches_lengths(self, codec, symbols):
        encoder, __ = codec
        bits, words = encoder.encode_symbols(symbols)
        assert bits == sum(encoder.code.lengths[s] for s in symbols)
        assert len(words) == (bits + 15) // 16

    def test_final_word_left_aligned(self, codec):
        encoder, __ = codec
        symbol = 256
        length = encoder.code.lengths[symbol]
        code = encoder.code.codes[symbol]
        bits, words = encoder.encode_symbols([symbol])
        assert bits == length
        assert words[0] == (code << (16 - length)) & 0xFFFF

    def test_measurement_encoding(self, codec):
        encoder, decoder = codec
        measurements = [0, 16, 0xFFF0, 100, 0x8000]
        bits, words = encoder.encode_measurements(measurements)
        decoded = decoder.decode_measurements(bits, words)
        assert len(decoded) == len(measurements)

    def test_truncated_stream_rejected(self, codec):
        encoder, decoder = codec
        bits, words = encoder.encode_symbols([1, 2, 3])
        with pytest.raises(ConfigurationError):
            decoder.decode_bits(bits - 1, words)
