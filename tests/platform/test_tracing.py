"""Execution tracing: non-invasive observation of synchronisation."""

import pytest

from repro.kernels import BenchmarkSpec, build_benchmark, verify_result
from repro.platform import build_platform
from repro.platform.tracing import render_trace, sync_profile, trace_run


@pytest.fixture(scope="module")
def built():
    return build_benchmark(BenchmarkSpec(n_samples=64, n_measurements=32,
                                         huffman_private=True))


class TestTraceRun:
    def test_trace_is_non_invasive(self, built):
        """A traced run retires the same cycles as an untraced one and
        the results still verify bit-exactly."""
        from repro.platform.multicore import SimulationResult

        plain_cycles = build_platform("ulpmc-bank").run(
            built.benchmark).stats.total_cycles

        traced_system = build_platform("ulpmc-bank")
        trace = trace_run(traced_system, built.benchmark, start=0,
                          length=50)
        assert len(trace) == 50
        verify_result(built, SimulationResult(
            benchmark=built.benchmark, stats=None, system=traced_system))
        # Cycle-identical: re-running the traced machine untraced gives
        # the same count as the never-traced machine.
        assert traced_system.run(built.benchmark).stats.total_cycles \
            == plain_cycles

    def test_window_selection(self, built):
        system = build_platform("mc-ref")
        trace = trace_run(system, built.benchmark, start=100, length=10)
        assert [record.cycle for record in trace.cycles] \
            == list(range(100, 110))

    def test_lockstep_visible_in_cs_phase(self, built):
        """During CS the cores fetch the same PC (1 distinct group)."""
        system = build_platform("ulpmc-bank")
        trace = trace_run(system, built.benchmark, start=500, length=100)
        profile = sync_profile(trace)
        assert max(profile) == 1

    def test_desync_visible_in_huffman_phase(self, built):
        """Near the end of the run the data-dependent Huffman flow has
        spread the PCs over several groups."""
        system = build_platform("ulpmc-bank")
        full = trace_run(system, built.benchmark, start=0, length=10**9)
        profile = sync_profile(full)
        assert max(profile[-2000:]) > 1

    def test_stall_marks(self, built):
        system = build_platform("ulpmc-bank")
        full = trace_run(system, built.benchmark, start=0, length=10**9)
        stalls = sum(1 for record in full.cycles
                     for entry in record.cores
                     if entry is not None and entry[1])
        assert stalls > 0


class TestFastForwardTracing:
    """Regression: the pre-probe-bus tracer monkey-patched the exact
    commit path, so any cycle batch-committed by the fast-forward engine
    silently vanished from the trace."""

    def test_fast_forward_cycles_are_recorded(self, built):
        system = build_platform("ulpmc-int", fast_forward=True)
        trace = trace_run(system, built.benchmark, start=0, length=200)
        assert len(trace) == 200
        # The window spans engine-committed stretches: at least one
        # recorded cycle must actually have run inside one.
        spans = []
        bus = system.probe_bus()
        bus.subscribe("ff.exit",
                      lambda cycle, fast: spans.append((cycle - fast, fast)))
        system.run(built.benchmark)
        bus.clear()
        assert any(start < 200 and start + length > 0
                   for start, length in spans if length)

    @pytest.mark.parametrize("arch", ["mc-ref", "ulpmc-int", "ulpmc-bank"])
    def test_trace_identical_across_modes(self, arch, built):
        slow = trace_run(build_platform(arch), built.benchmark,
                         start=0, length=10**9)
        fast = trace_run(build_platform(arch, fast_forward=True),
                         built.benchmark, start=0, length=10**9)
        assert slow.cycles == fast.cycles


class TestRendering:
    def test_render(self, built):
        system = build_platform("ulpmc-int")
        trace = trace_run(system, built.benchmark, start=0, length=5)
        text = render_trace(trace)
        lines = text.splitlines()
        assert lines[0].startswith("cycle")
        assert len(lines) == 6
        assert "core7" in lines[0]

    def test_render_empty_trace(self, built):
        """Regression: a window past the end of the run used to crash
        ``render_trace`` with an IndexError on ``cycles[0]``."""
        from repro.platform.tracing import Trace

        system = build_platform("mc-ref")
        trace = trace_run(system, built.benchmark, start=10**8, length=10)
        assert len(trace) == 0
        text = render_trace(trace)
        assert "empty trace" in text
        assert render_trace(Trace(arch="")).startswith("(empty trace")


class TestSyncProfile:
    def test_all_halted_cycles_are_skipped(self):
        """Regression: a record whose entries are all ``None`` used to
        contribute a 0 to the profile, deflating min/mean statistics."""
        from repro.platform.tracing import Trace, TraceCycle

        trace = Trace(arch="mc-ref", cycles=[
            TraceCycle(cycle=0, cores=((0x10, False), (0x10, False))),
            TraceCycle(cycle=1, cores=(None, None)),
            TraceCycle(cycle=2, cores=((0x12, False), (0x14, True))),
        ])
        assert sync_profile(trace) == [1, 2]

    def test_profile_matches_trace_length_when_cores_active(self, built):
        system = build_platform("ulpmc-bank")
        trace = trace_run(system, built.benchmark, start=0, length=10**9)
        # Every recorded cycle has at least one active core, so nothing
        # is skipped.
        assert len(sync_profile(trace)) == len(trace)
