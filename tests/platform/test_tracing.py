"""Execution tracing: non-invasive observation of synchronisation."""

import pytest

from repro.kernels import BenchmarkSpec, build_benchmark, verify_result
from repro.platform import build_platform
from repro.platform.tracing import render_trace, sync_profile, trace_run


@pytest.fixture(scope="module")
def built():
    return build_benchmark(BenchmarkSpec(n_samples=64, n_measurements=32,
                                         huffman_private=True))


class TestTraceRun:
    def test_trace_is_non_invasive(self, built):
        """A traced run retires the same cycles as an untraced one and
        the results still verify bit-exactly."""
        from repro.platform.multicore import SimulationResult

        plain_cycles = build_platform("ulpmc-bank").run(
            built.benchmark).stats.total_cycles

        traced_system = build_platform("ulpmc-bank")
        trace = trace_run(traced_system, built.benchmark, start=0,
                          length=50)
        assert len(trace) == 50
        verify_result(built, SimulationResult(
            benchmark=built.benchmark, stats=None, system=traced_system))
        # Cycle-identical: re-running the traced machine untraced gives
        # the same count as the never-traced machine.
        assert traced_system.run(built.benchmark).stats.total_cycles \
            == plain_cycles

    def test_window_selection(self, built):
        system = build_platform("mc-ref")
        trace = trace_run(system, built.benchmark, start=100, length=10)
        assert [record.cycle for record in trace.cycles] \
            == list(range(100, 110))

    def test_lockstep_visible_in_cs_phase(self, built):
        """During CS the cores fetch the same PC (1 distinct group)."""
        system = build_platform("ulpmc-bank")
        trace = trace_run(system, built.benchmark, start=500, length=100)
        profile = sync_profile(trace)
        assert max(profile) == 1

    def test_desync_visible_in_huffman_phase(self, built):
        """Near the end of the run the data-dependent Huffman flow has
        spread the PCs over several groups."""
        system = build_platform("ulpmc-bank")
        full = trace_run(system, built.benchmark, start=0, length=10**9)
        profile = sync_profile(full)
        assert max(profile[-2000:]) > 1

    def test_stall_marks(self, built):
        system = build_platform("ulpmc-bank")
        full = trace_run(system, built.benchmark, start=0, length=10**9)
        stalls = sum(1 for record in full.cycles
                     for entry in record.cores
                     if entry is not None and entry[1])
        assert stalls > 0


class TestRendering:
    def test_render(self, built):
        system = build_platform("ulpmc-int")
        trace = trace_run(system, built.benchmark, start=0, length=5)
        text = render_trace(trace)
        lines = text.splitlines()
        assert lines[0].startswith("cycle")
        assert len(lines) == 6
        assert "core7" in lines[0]
