"""Platform configuration validation."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.layout import IMOrganization
from repro.platform.config import (
    ARCH_NAMES,
    ArchConfig,
    MC_REF,
    ULPMC_BANK,
    ULPMC_INT,
    build_config,
)


class TestFactory:
    def test_paper_architectures(self):
        assert ARCH_NAMES == ("mc-ref", "ulpmc-int", "ulpmc-bank")
        assert build_config("mc-ref") is MC_REF
        assert build_config("ulpmc-int") is ULPMC_INT
        assert build_config("ulpmc-bank") is ULPMC_BANK

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            build_config("ulpmc-foo")

    def test_overrides(self):
        config = build_config("ulpmc-int", data_broadcast=False)
        assert not config.data_broadcast
        assert ULPMC_INT.data_broadcast  # original untouched


class TestPaperGeometry:
    def test_memory_sizes(self):
        assert MC_REF.im_bytes == 96 * 1024
        assert MC_REF.dm_bytes == 64 * 1024

    def test_ixbar_presence(self):
        assert not MC_REF.has_ixbar
        assert ULPMC_INT.has_ixbar and ULPMC_BANK.has_ixbar

    def test_gating_only_on_bank_org(self):
        assert not MC_REF.im_power_gating
        assert not ULPMC_INT.im_power_gating
        assert ULPMC_BANK.im_power_gating


class TestValidation:
    def test_private_im_needs_bank_per_core(self):
        with pytest.raises(ConfigurationError):
            ArchConfig(name="bad", im_org=IMOrganization.PRIVATE,
                       im_banks=4)

    def test_mcref_cannot_gate(self):
        with pytest.raises(ConfigurationError, match="program copy"):
            ArchConfig(name="bad", im_org=IMOrganization.PRIVATE,
                       im_power_gating=True)

    def test_interleaved_cannot_gate(self):
        with pytest.raises(ConfigurationError, match="interleav"):
            ArchConfig(name="bad", im_org=IMOrganization.INTERLEAVED,
                       im_power_gating=True)

    def test_layouts_derived(self):
        assert MC_REF.im_layout().organization == IMOrganization.PRIVATE
        assert ULPMC_BANK.im_layout().organization == IMOrganization.BANKED
        assert MC_REF.dm_layout().banks == 16
