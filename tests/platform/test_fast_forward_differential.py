"""Differential verification of the fast-forward execution mode.

The fast path (:mod:`repro.platform.fast_forward`) promises *bit
identity* with the cycle-stepped reference loop: same architectural
state, same :class:`SimulationStats` field-by-field, on every platform
configuration.  These tests enforce that promise on

* the ECG CS+Huffman workload (small geometry in both Huffman placement
  variants, plus the full paper geometry),
* a >=20-seed constrained-random program corpus covering the whole ISA,
* a crafted conflict-heavy workload that forces the engine to fall back
  mid-run and interleave fast and exact stretches.
"""

import dataclasses
import random

import pytest

from repro.kernels import BenchmarkSpec, build_benchmark, verify_result
from repro.platform import ARCH_NAMES, Benchmark, build_platform
from repro.power.calibration import reference_results
from repro.tamarisc.encoding import encode
from repro.tamarisc.isa import DstMode, Instruction, Op, SrcMode
from repro.tamarisc.program import DataImage, Program
from repro.tamarisc.regression import SANDBOX_WORDS, generate_random_program
from repro.memory.layout import PRIVATE_BASE

RANDOM_SEEDS = range(20)


def assert_identical(slow, fast):
    """Fast-forward result must equal the reference bit-for-bit."""
    for field in dataclasses.fields(slow.stats):
        assert getattr(slow.stats, field.name) \
            == getattr(fast.stats, field.name), \
            f"stats field {field.name!r} diverged"
    for pid, (ref, ffw) in enumerate(zip(slow.system.cores,
                                         fast.system.cores)):
        assert ref.regs == ffw.regs, f"core {pid} registers"
        assert ref.pc == ffw.pc, f"core {pid} PC"
        assert ref.flags.as_tuple() == ffw.flags.as_tuple(), \
            f"core {pid} flags"
        assert ref.halted == ffw.halted, f"core {pid} halt state"
        assert ref.retired == ffw.retired, f"core {pid} retired"
    for bank, (ref, ffw) in enumerate(zip(slow.system.dmem.banks,
                                          fast.system.dmem.banks)):
        assert ref.storage == ffw.storage, f"DM bank {bank} image"


def run_both(arch: str, benchmark: Benchmark, slow_result=None):
    """Run ``benchmark`` in both modes; returns (slow, fast, engine)."""
    if slow_result is None:
        slow_result = build_platform(arch, fast_forward=False) \
            .run(benchmark)
    fast_system = build_platform(arch, fast_forward=True)
    fast_result = fast_system.run(benchmark)
    return slow_result, fast_result, fast_system._ff_engine


class TestECGWorkload:
    """The paper benchmark, in both Huffman placements and geometries."""

    @pytest.mark.parametrize("arch", ARCH_NAMES)
    def test_small_geometry(self, arch, small_built, small_results):
        slow, fast, engine = run_both(arch, small_built.benchmark,
                                      slow_result=small_results[arch])
        verify_result(small_built, fast)
        assert engine.fast_cycles > 0
        assert_identical(slow, fast)

    @pytest.mark.parametrize("arch", ARCH_NAMES)
    def test_small_geometry_private_huffman(self, arch,
                                            small_built_private):
        slow, fast, engine = run_both(arch,
                                      small_built_private.benchmark)
        verify_result(small_built_private, fast)
        assert engine.fast_cycles > 0
        assert_identical(slow, fast)

    @pytest.mark.parametrize("arch", ARCH_NAMES)
    def test_full_geometry(self, arch):
        """Full 8-lead paper geometry against the calibration reference.

        ``reference_results`` is the lru-cached slow-mode run that every
        power/energy experiment consumes, so this asserts the experiment
        pipeline itself is mode-independent.
        """
        built, slow_by_arch = reference_results()
        slow, fast, engine = run_both(arch, built.benchmark,
                                      slow_result=slow_by_arch[arch])
        verify_result(built, fast)
        assert engine.fast_cycles > 0
        assert_identical(slow, fast)


class TestRandomCorpus:
    """>=20 seeded full-ISA random programs on all three configurations."""

    @staticmethod
    def _benchmark(seed: int) -> Benchmark:
        program = generate_random_program(seed, length=40,
                                          full_coverage=True)
        rng = random.Random(seed)
        sandbox = [rng.randrange(0x10000) for __ in range(SANDBOX_WORDS)]
        data = DataImage()
        for pid in range(8):
            data.set_private_block(pid, PRIVATE_BASE, sandbox)
        return Benchmark(f"random-{seed}", program, data)

    @pytest.mark.parametrize("arch", ARCH_NAMES)
    @pytest.mark.parametrize("seed", RANDOM_SEEDS)
    def test_random_program(self, arch, seed):
        slow, fast, engine = run_both(arch, self._benchmark(seed))
        assert engine.fast_cycles > 0
        assert_identical(slow, fast)


class TestFallback:
    """Conflict-heavy workloads must interleave fast and exact stretches."""

    @staticmethod
    def _conflict_benchmark() -> Benchmark:
        """All cores hammer one shared bank, then work privately.

        The shared-bank writes conflict every cycle (writes never
        merge), desynchronising the cores; the private stretch afterward
        is conflict-free again, so the engine must fall back and later
        resume.
        """
        instrs = [
            Instruction(op=Op.MOV, dreg=8, s1mode=SrcMode.IMM,
                        s1val=0x100),
            Instruction(op=Op.MOV, dreg=9, s1mode=SrcMode.IMM,
                        s1val=PRIVATE_BASE >> 4),
            Instruction(op=Op.SLL, dreg=9, s1mode=SrcMode.REG, s1val=9,
                        s2mode=SrcMode.IMM, s2val=4),
        ]
        for step in range(12):
            # Non-mergeable: every core writes the same shared address.
            instrs.append(Instruction(op=Op.MOV, dmode=DstMode.IND,
                                      dreg=8, s1mode=SrcMode.IMM,
                                      s1val=step))
            instrs.append(Instruction(op=Op.ADD, dreg=0,
                                      s1mode=SrcMode.REG, s1val=0,
                                      s2mode=SrcMode.IMM, s2val=1))
        for __ in range(32):
            # Conflict-free: private-window walk plus pure ALU work.
            instrs.append(Instruction(op=Op.MOV, dmode=DstMode.IND_POSTINC,
                                      dreg=9, s1mode=SrcMode.REG, s1val=0))
            instrs.append(Instruction(op=Op.ADD, dreg=0,
                                      s1mode=SrcMode.REG, s1val=0,
                                      s2mode=SrcMode.IMM, s2val=3))
        instrs.append(Instruction(op=Op.HLT))
        program = Program(words=[encode(i) for i in instrs])
        return Benchmark("conflict-heavy", program, DataImage())

    @pytest.mark.parametrize("arch", ARCH_NAMES)
    def test_mixed_mode(self, arch):
        slow, fast, engine = run_both(arch, self._conflict_benchmark())
        assert engine.fallbacks > 0, "workload must trigger fallbacks"
        assert engine.fast_cycles > 0, "workload must regain the fast path"
        assert slow.stats.dm_conflict_events > 0
        assert slow.stats.dm_stalled_requests > 0
        assert_identical(slow, fast)

    def test_fast_forward_never_consults_arbiters_when_conflict_free(
            self, small_built_private):
        """Conflict-free runs must leave round-robin pointers untouched."""
        system = build_platform("mc-ref", fast_forward=True)
        result = system.run(small_built_private.benchmark)
        assert result.stats.im_conflict_events == 0
        assert all(arb.grants == 0 for arb in system.ixbar.arbiters)
