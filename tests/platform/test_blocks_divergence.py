"""Lockstep divergence and loop-trace behaviour of the block layer.

The translation-block fast path only fires while every running core
sits at the same PC; the loop-trace layer additionally speculates that
the cores *stay* in lockstep through whole loop iterations.  These
tests force every way out of that speculation — taken/not-taken
divergence at a data-dependent branch, per-core splits that make the
trace's agreement check bail, and uniform loops that commit through
both the specialised (uniform) and the generic per-core trace variant —
and require bit identity with the exact cycle loop throughout, plus
evidence that each scenario actually exercised the intended machinery.
"""

import dataclasses

import pytest

import repro.platform.fast_forward as ff_engine
from repro.memory.layout import PRIVATE_BASE
from repro.platform import Benchmark, build_platform
from repro.tamarisc.encoding import encode
from repro.tamarisc.isa import BranchMode, Cond, DstMode, Instruction, Op, \
    SrcMode
from repro.tamarisc.program import DataImage, Program

ITERS = 24
COUNTER = 12
POINTER = 8
SCRATCH = 9
BASE = PRIVATE_BASE + 16


def _program(body):
    """Counted loop around ``body``: counter in r12, pointer in r8."""
    words = []

    def emit(instr):
        words.append(encode(instr))

    emit(Instruction(op=Op.MOV, dreg=COUNTER, s1mode=SrcMode.IMM,
                     s1val=ITERS))
    emit(Instruction(op=Op.MOV, dreg=POINTER, s1mode=SrcMode.IMM,
                     s1val=BASE >> 4))
    emit(Instruction(op=Op.SLL, dreg=POINTER, s1mode=SrcMode.REG,
                     s1val=POINTER, s2mode=SrcMode.IMM, s2val=4))
    emit(Instruction(op=Op.OR, dreg=POINTER, s1mode=SrcMode.REG,
                     s1val=POINTER, s2mode=SrcMode.IMM, s2val=BASE & 0xF))
    emit(Instruction(op=Op.ADD, dreg=SCRATCH, s1mode=SrcMode.REG,
                     s1val=POINTER, s2mode=SrcMode.IMM, s2val=8))
    top = len(words)
    for instr in body:
        emit(instr)
    emit(Instruction(op=Op.SUB, dreg=COUNTER, s1mode=SrcMode.REG,
                     s1val=COUNTER, s2mode=SrcMode.IMM, s2val=1))
    emit(Instruction(op=Op.BR, cond=Cond.NE, bmode=BranchMode.DIR,
                     target=top))
    emit(Instruction(op=Op.HLT))
    return Program(words=words)


def _benchmark(name, body, per_core_words):
    """``per_core_words(pid)`` seeds each core's private sandbox."""
    data = DataImage()
    for pid in range(8):
        data.set_private_block(pid, PRIVATE_BASE, per_core_words(pid))
    return Benchmark(name, _program(body), data)


def _split_body(source):
    """Diamond: flags from ``source``, NE skips one marker instruction.

    Cores where the AND result is non-zero keep ``r5 == 7``; the others
    execute the skipped slot and end with ``r5 == 3``.
    """
    return [
        Instruction(op=Op.MOV, dreg=5, s1mode=SrcMode.IMM, s1val=7),
        source,
        Instruction(op=Op.BR, cond=Cond.NE, bmode=BranchMode.REL,
                    target=2),
        Instruction(op=Op.MOV, dreg=5, s1mode=SrcMode.IMM, s1val=3),
        # store through the scratch pointer so the marker never clobbers
        # the word the split condition reads
        Instruction(op=Op.ADD, dmode=DstMode.IND, dreg=SCRATCH,
                    s1mode=SrcMode.REG, s1val=5, s2mode=SrcMode.IMM,
                    s2val=0),
    ]


#: Flag sources for the diamond: per-core private data vs the uniform
#: loop counter.
PER_CORE_SPLIT = Instruction(op=Op.AND, dreg=7, s1mode=SrcMode.IND,
                             s1val=POINTER, s2mode=SrcMode.IMM, s2val=1)
UNIFORM_SPLIT = Instruction(op=Op.AND, dreg=7, s1mode=SrcMode.REG,
                            s1val=COUNTER, s2mode=SrcMode.IMM, s2val=1)


def assert_identical(slow_sys, slow, fast_sys, fast):
    for field in dataclasses.fields(slow.stats):
        assert getattr(slow.stats, field.name) \
            == getattr(fast.stats, field.name), \
            f"stats field {field.name!r} diverged"
    for pid, (ref, ffw) in enumerate(zip(slow_sys.cores, fast_sys.cores)):
        assert ref.regs == ffw.regs, f"core {pid} registers"
        assert ref.pc == ffw.pc, f"core {pid} PC"
        assert ref.flags.as_tuple() == ffw.flags.as_tuple(), \
            f"core {pid} flags"
        assert ref.halted == ffw.halted, f"core {pid} halt state"
    for bank, (ref, ffw) in enumerate(zip(slow_sys.dmem.banks,
                                          fast_sys.dmem.banks)):
        assert ref.storage == ffw.storage, f"DM bank {bank} image"


def run_modes(benchmark, arch="mc-ref"):
    """(exact system+result, blocks system+result, engine)."""
    slow_sys = build_platform(arch, fast_forward=False)
    slow = slow_sys.run(benchmark)
    fast_sys = build_platform(arch, fast_forward=True,
                              translation_blocks=True)
    fast = fast_sys.run(benchmark)
    return slow_sys, slow, fast_sys, fast, fast_sys._ff_engine


@pytest.fixture
def trace_thresholds(monkeypatch):
    monkeypatch.setattr(ff_engine, "TRACE_ENTRY_THRESHOLD", 4)
    monkeypatch.setattr(ff_engine, "TRACE_MIN_EDGE", 2)


class TestBranchDivergence:
    """Blocks must hand over cleanly when lockstep breaks."""

    @pytest.mark.parametrize("arch", ["mc-ref", "ulpmc-bank"])
    def test_taken_vs_not_taken_fallback(self, arch):
        benchmark = _benchmark(
            "diverge", _split_body(PER_CORE_SPLIT),
            lambda pid: [pid % 2] * 32)
        slow_sys, slow, fast_sys, fast, engine = run_modes(benchmark,
                                                           arch)
        assert engine.block_entries > 0  # lockstep prefix used blocks
        assert_identical(slow_sys, slow, fast_sys, fast)
        # the scenario is not vacuous: the two populations really took
        # different arms ...
        assert {core.regs[5] for core in fast_sys.cores} == {7, 3}

    def test_no_cross_core_state_leakage(self):
        benchmark = _benchmark(
            "leak", _split_body(PER_CORE_SPLIT),
            lambda pid: [pid % 2] * 32)
        __, __, fast_sys, __, __ = run_modes(benchmark)
        # ... and each core's sandbox word reflects only its own arm:
        # odd-seeded cores (AND != 0) store 7, even-seeded cores 3.
        for pid, core in enumerate(fast_sys.cores):
            expected = 7 if pid % 2 else 3
            assert core.regs[5] == expected, f"core {pid}"


class TestLoopTraces:
    """Loop-trace discovery, commit, bail and dispatch variants."""

    def test_single_arm_trace_commits(self, trace_thresholds):
        # OR with the counter is always non-zero: NE is always taken,
        # so profiling sees a single hot edge and builds a 1-arm trace.
        body = _split_body(Instruction(op=Op.OR, dreg=7,
                                       s1mode=SrcMode.REG, s1val=COUNTER,
                                       s2mode=SrcMode.IMM, s2val=1))
        benchmark = _benchmark("one-arm", body, lambda pid: [0] * 32)
        slow_sys, slow, fast_sys, fast, engine = run_modes(benchmark)
        assert len(engine._trace_recs) >= 1
        assert engine.trace_cycles > 0
        assert_identical(slow_sys, slow, fast_sys, fast)

    def test_two_arm_diamond_commits(self, trace_thresholds):
        # Counter parity alternates the arms every iteration; both
        # edges are hot and whole iterations commit through the trace.
        benchmark = _benchmark("diamond", _split_body(UNIFORM_SPLIT),
                               lambda pid: [0] * 32)
        slow_sys, slow, fast_sys, fast, engine = run_modes(benchmark)
        assert len(engine._trace_recs) == 1
        assert engine.trace_cycles > 0
        assert_identical(slow_sys, slow, fast_sys, fast)

    def test_agreement_bail_after_divergence(self, trace_thresholds):
        # Per-core data drives the split, but the parities agree for
        # the first 16 iterations: the trace is built from that
        # lockstep profile and commits whole iterations.  The last 8
        # iterations diverge by core parity, so the trace's agreement
        # check must refuse the mixed iteration (a decline that leaves
        # state untouched) and hand back to the per-cycle machinery.
        def words(pid):
            image = [0] * 48
            for w in range(1, ITERS + 1):
                image[16 + w] = (pid % 2) if w <= 8 else (1 + 2 * pid)
            return image

        body = [
            # address = pointer + loop counter: walks the per-core
            # array backwards, one word per iteration
            Instruction(op=Op.ADD, dreg=10, s1mode=SrcMode.REG,
                        s1val=POINTER, s2mode=SrcMode.REG,
                        s2val=COUNTER),
            Instruction(op=Op.ADD, dreg=0, s1mode=SrcMode.IND,
                        s1val=10, s2mode=SrcMode.IMM, s2val=0),
        ] + _split_body(Instruction(op=Op.AND, dreg=7,
                                    s1mode=SrcMode.REG, s1val=0,
                                    s2mode=SrcMode.IMM, s2val=1))
        benchmark = _benchmark("decline", body, words)
        slow_sys, slow, fast_sys, fast, engine = run_modes(benchmark)
        assert engine.trace_entries > 0
        assert engine.trace_cycles > 0  # the agreeing prefix committed
        declines = sum(rec[5] for rec in engine._trace_recs.values())
        assert declines > 0
        assert_identical(slow_sys, slow, fast_sys, fast)
        # both arms really ran after the parity split
        assert {core.regs[5] for core in fast_sys.cores} == {7, 3}

    def test_per_core_data_uniform_control(self, trace_thresholds):
        # Uniform control flow over per-core private data: the trace
        # layer may specialise the uniform computation but the per-core
        # loads/stores must stay per-bank.  Every core accumulates its
        # own sandbox word, so any cross-core mix-up changes the result.
        body = [
            Instruction(op=Op.ADD, dreg=0, s1mode=SrcMode.IND,
                        s1val=POINTER, s2mode=SrcMode.IMM, s2val=1),
            Instruction(op=Op.ADD, dmode=DstMode.IND, dreg=POINTER,
                        s1mode=SrcMode.REG, s1val=0, s2mode=SrcMode.IMM,
                        s2val=0),
        ] + _split_body(UNIFORM_SPLIT)
        benchmark = _benchmark("uniform-data", body,
                               lambda pid: [100 * pid] * 32)
        slow_sys, slow, fast_sys, fast, engine = run_modes(benchmark)
        assert engine.trace_cycles > 0
        assert_identical(slow_sys, slow, fast_sys, fast)
        # each core saw only its own data: base + one increment per
        # committed iteration, all distinct across cores
        finals = [core.regs[0] for core in fast_sys.cores]
        assert len(set(finals)) == len(finals)
