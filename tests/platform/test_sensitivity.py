"""Configuration sensitivity: banking granularity vs conflicts.

DESIGN.md §8: the paper fixes 16 DM banks; these tests check the model
behaves sensibly when that choice varies — more banks spread the
data-dependent Huffman traffic and reduce conflicts, fewer concentrate
it.  (The kernel stays bit-exact in every configuration.)
"""

import pytest

from repro.kernels import BenchmarkSpec, build_benchmark, verify_result
from repro.platform import build_platform


@pytest.fixture(scope="module")
def built():
    # Shared Huffman LUTs: the conflict-generating configuration.
    return build_benchmark(BenchmarkSpec(n_samples=64, n_measurements=32))


def run_with_banks(built, dm_banks):
    system = build_platform("ulpmc-int", dm_banks=dm_banks,
                            dm_bank_words=32768 // dm_banks)
    result = system.run(built.benchmark)
    verify_result(built, result)
    return result.stats


class TestBankCountSensitivity:
    def test_results_identical_across_bankings(self, built):
        """Functional behaviour is independent of banking (verified
        inside run_with_banks for 8/16/32 banks)."""
        for banks in (8, 16, 32):
            stats = run_with_banks(built, banks)
            assert stats.total_retired > 0

    def test_more_banks_fewer_conflicts(self, built):
        conflicts = {banks: run_with_banks(built, banks).dm_conflict_events
                     for banks in (8, 16, 32)}
        assert conflicts[8] >= conflicts[16] >= conflicts[32]
        assert conflicts[8] > conflicts[32]

    def test_cycles_do_not_improve_with_fewer_banks(self, built):
        cycles = {banks: run_with_banks(built, banks).total_cycles
                  for banks in (8, 16, 32)}
        assert cycles[8] >= cycles[16] >= cycles[32]


class TestSharedSplitSensitivity:
    """The compile-time shared/private split (paper Section III-D)."""

    def test_wider_shared_section_still_correct(self, built):
        system = build_platform("ulpmc-int", dm_shared_words_per_bank=1024)
        verify_result(built, system.run(built.benchmark))

    def test_too_small_shared_section_rejected(self, built):
        from repro.errors import SimulationError
        system = build_platform("ulpmc-int", dm_shared_words_per_bank=32)
        with pytest.raises(SimulationError):
            system.run(built.benchmark)
