"""Multi-core platform: functional correctness and timing behaviour."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.memory.layout import PRIVATE_BASE
from repro.platform import Benchmark, build_platform
from repro.tamarisc import InstructionSetSimulator, assemble
from repro.tamarisc.program import DataImage

ARCHES = ("mc-ref", "ulpmc-int", "ulpmc-bank")


def simple_benchmark():
    """Each core sums 8 shared and 8 private words into private memory."""
    source = f"""
    .equ PRIV, {PRIVATE_BASE}
    start:
        mov  r1, #0
        mov  r2, #8
        mov  r3, #0
    sh:
        add  r3, r3, [r1++]
        sub  r2, r2, #1
        bne  sh
        li   r1, PRIV
        mov  r2, #8
        mov  r4, #0
    pv:
        add  r4, r4, [r1++]
        sub  r2, r2, #1
        bne  pv
        li   r5, PRIV+64
        mov  [r5++], r3
        mov  [r5], r4
        hlt
    """
    data = DataImage()
    data.set_shared_block(0, range(10, 18))
    for core in range(8):
        data.set_private_block(core, PRIVATE_BASE,
                               [core * 100 + i for i in range(8)])
    return Benchmark("simple", assemble(source, entry="start"), data)


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("arch", ARCHES)
    def test_results_correct_on_every_architecture(self, arch):
        bench = simple_benchmark()
        system = build_platform(arch)
        system.run(bench)
        shared_sum = sum(range(10, 18))
        for core in range(8):
            assert system.read_logical(core, PRIVATE_BASE + 64) \
                == shared_sum
            assert system.read_logical(core, PRIVATE_BASE + 65) \
                == sum(core * 100 + i for i in range(8))

    def test_architectures_agree_with_iss(self):
        """Single-core golden: the multicore result equals the ISS run on
        a flat memory (core 0's view)."""
        bench = simple_benchmark()
        iss_data = dict(bench.data.shared)
        iss_data.update(bench.data.private[0])
        iss = InstructionSetSimulator(bench.program, data=iss_data)
        iss.run()
        system = build_platform("ulpmc-bank")
        system.run(bench)
        assert system.read_logical(0, PRIVATE_BASE + 64) \
            == iss.read(PRIVATE_BASE + 64)
        assert system.read_logical(0, PRIVATE_BASE + 65) \
            == iss.read(PRIVATE_BASE + 65)


class TestTiming:
    def test_lockstep_run_has_no_stalls(self):
        bench = simple_benchmark()
        result = build_platform("mc-ref").run(bench)
        assert result.stats.total_stall_cycles == 0
        assert result.stats.sync_cycles == result.stats.total_cycles

    def test_instruction_broadcast_collapses_im_accesses(self):
        bench = simple_benchmark()
        ref = build_platform("mc-ref").run(bench).stats
        shared = build_platform("ulpmc-int").run(bench).stats
        assert ref.im_bank_accesses == ref.im_fetches
        assert shared.im_bank_accesses * 8 == shared.im_fetches
        assert shared.total_cycles == ref.total_cycles

    def test_broadcast_off_serialises_shared_reads(self):
        bench = simple_benchmark()
        on = build_platform("ulpmc-int").run(bench).stats
        off = build_platform("ulpmc-int",
                             data_broadcast=False).run(bench).stats
        assert off.total_cycles > on.total_cycles
        assert off.dm_bank_accesses > on.dm_bank_accesses

    def test_power_gating_state(self):
        bench = simple_benchmark()
        result = build_platform("ulpmc-bank").run(bench)
        assert result.stats.im_banks_gated == 7
        assert result.stats.im_banks_used == 1
        result = build_platform("ulpmc-int").run(bench)
        assert result.stats.im_banks_gated == 0


class TestStatsConsistency:
    @pytest.mark.parametrize("arch", ARCHES)
    def test_conservation_laws(self, arch, small_built):
        stats = build_platform(arch).run(small_built.benchmark).stats
        # Every core's retired instructions were fetched exactly once.
        assert stats.im_fetches == stats.total_retired
        # Broadcast merging never invents accesses.
        assert stats.im_bank_accesses \
            == stats.im_fetches - stats.im_broadcast_savings
        assert stats.dm_bank_accesses \
            == stats.dm_deliveries - stats.dm_broadcast_savings
        # Cycles = retired + stalls for each core (single-issue cores).
        for core_stats in stats.cores:
            assert core_stats.retired + core_stats.stall_cycles \
                <= stats.total_cycles
        # MMU translations equal data-port commits.
        assert stats.dm_private_accesses + stats.dm_shared_accesses \
            == stats.dm_deliveries

    def test_summary_renders(self, small_results):
        text = small_results["ulpmc-bank"].stats.summary()
        assert "ulpmc-bank" in text
        assert "IM banks used/gated : 1/7" in text


class TestGuards:
    def test_empty_program_rejected(self):
        bench = Benchmark("empty", assemble(""), DataImage())
        with pytest.raises(ConfigurationError):
            build_platform("mc-ref").load(bench)

    def test_runaway_detected(self):
        bench = Benchmark("spin", assemble("loop: bra loop"), DataImage())
        with pytest.raises(SimulationError, match="did not finish"):
            build_platform("mc-ref").run(bench, max_cycles=1000)

    def test_run_without_benchmark_rejected(self):
        with pytest.raises(ConfigurationError, match="no benchmark"):
            build_platform("mc-ref").run()

    def test_program_beyond_private_bank_rejected(self):
        program = assemble("\n".join(["nop"] * 5000))
        bench = Benchmark("big", program, DataImage())
        with pytest.raises(ConfigurationError, match="exceeds"):
            build_platform("mc-ref").load(bench)
