"""Streaming / duty-cycled multi-block operation."""

import pytest

from repro.errors import ConfigurationError
from repro.kernels.benchmark import BenchmarkSpec, build_block_series
from repro.platform.streaming import SAMPLE_RATE_HZ, run_stream


@pytest.fixture(scope="module")
def series():
    return build_block_series(
        BenchmarkSpec(n_samples=64, n_measurements=32,
                      huffman_private=True), n_blocks=3)


class TestBlockSeries:
    def test_blocks_share_tables_and_program(self, series):
        first, second = series[0], series[1]
        assert first.matrix is second.matrix
        assert first.code is second.code
        assert first.benchmark.program is second.benchmark.program

    def test_blocks_carry_different_samples(self, series):
        assert series[0].golden[0].samples != series[1].golden[0].samples

    def test_consecutive_slices_of_one_recording(self, series):
        """Blocks are windows of one continuous recording, not
        re-generated signals."""
        from repro.biosignal.ecg import ECGGenerator
        spec = series[0].spec
        recording = ECGGenerator(n_leads=spec.n_leads,
                                 seed=spec.seed).generate(
            spec.n_samples * len(series))
        for index, built in enumerate(series):
            window = recording[0, index * spec.n_samples:
                               (index + 1) * spec.n_samples]
            assert built.golden[0].samples == [int(v) for v in window]

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            build_block_series(BenchmarkSpec(), n_blocks=0)
        with pytest.raises(ValueError):
            build_block_series(BenchmarkSpec(), n_samples=64)


class TestStreaming:
    @pytest.mark.parametrize("arch", ["mc-ref", "ulpmc-bank"])
    def test_every_block_verified(self, arch, series):
        report = run_stream(arch, series, clock_hz=1e6)
        assert len(report.blocks) == 3
        assert report.total_retired > 0

    def test_per_block_stats_are_independent(self, series):
        """The stats window resets at each block load."""
        report = run_stream("ulpmc-bank", series, clock_hz=1e6)
        cycles = report.cycles_per_block
        assert max(cycles) < 2 * min(cycles)
        for block in report.blocks:
            assert block.stats.im_banks_gated == 7

    def test_real_time_accounting(self, series):
        spec = series[0].spec
        period = spec.n_samples / SAMPLE_RATE_HZ
        report = run_stream("ulpmc-bank", series, clock_hz=1e6)
        assert report.block_period_s == pytest.approx(period)
        assert report.real_time
        assert 0 < report.utilisation < 1
        # At exactly the minimum real-time clock, utilisation hits 1.
        tight = run_stream("ulpmc-bank", series,
                           clock_hz=report.min_real_time_clock_hz)
        assert tight.utilisation == pytest.approx(1.0)

    def test_too_slow_clock_misses_deadlines(self, series):
        report = run_stream("ulpmc-bank", series, clock_hz=1e4)
        assert not report.real_time

    def test_mean_stats(self, series):
        report = run_stream("ulpmc-int", series, clock_hz=1e6)
        means = report.mean_stats()
        assert means["cycles"] > 0
        assert 0 < means["sync_fraction"] <= 1

    def test_guards(self, series):
        with pytest.raises(ConfigurationError):
            run_stream("mc-ref", [], clock_hz=1e6)
        with pytest.raises(ConfigurationError):
            run_stream("mc-ref", series, clock_hz=0)


class TestDeadlineReporting:
    def test_budget_and_per_block_utilisation(self, series):
        report = run_stream("ulpmc-bank", series, clock_hz=1e6)
        assert report.deadline_budget_cycles == pytest.approx(
            1e6 * report.block_period_s)
        for index, cycles in enumerate(report.cycles_per_block):
            assert report.block_utilisation(index) == pytest.approx(
                cycles / report.deadline_budget_cycles)

    def test_fast_clock_misses_nothing(self, series):
        report = run_stream("ulpmc-bank", series, clock_hz=1e6)
        assert report.missed_blocks == []
        assert report.deadline_misses == 0
        assert report.real_time

    def test_slow_clock_misses_every_block(self, series):
        report = run_stream("ulpmc-bank", series, clock_hz=1e4)
        assert report.missed_blocks == [0, 1, 2]
        assert report.deadline_misses == len(series)
        assert not report.real_time

    def test_threshold_clock_separates_blocks(self, series):
        """A clock between the cheapest and the costliest block misses
        exactly the blocks over budget."""
        report = run_stream("ulpmc-bank", series, clock_hz=1e6)
        cycles = report.cycles_per_block
        if min(cycles) == max(cycles):
            pytest.skip("blocks happen to cost identical cycles")
        threshold_hz = (min(cycles) + 0.5) / report.block_period_s
        tight = run_stream("ulpmc-bank", series, clock_hz=threshold_hz)
        expected = [index for index, c in enumerate(cycles)
                    if c > min(cycles)]
        assert tight.missed_blocks == expected

    def test_deadline_report_text(self, series):
        slow = run_stream("ulpmc-bank", series, clock_hz=1e4)
        text = slow.deadline_report()
        lines = text.splitlines()
        assert lines[0].startswith("ulpmc-bank @")
        assert len(lines) == len(series) + 2
        assert all("MISS" in line for line in lines[1:-1])
        assert lines[-1].endswith(f"{len(series)}/{len(series)}")
        ok = run_stream("ulpmc-bank", series, clock_hz=1e6)
        assert "MISS" not in ok.deadline_report()
