"""Perfetto export: trace-event schema and slice-total exactness.

The acceptance criterion for the observability layer: a traced ECG run
on every platform produces Chrome trace-event JSON that a Perfetto-style
loader accepts, and the per-core ``run``/``stall`` slice durations sum
to exactly the per-core ``retired``/``stall_cycles`` counts of
``SimulationStats`` — in both execution modes.
"""

import json

import pytest

from repro.kernels import BenchmarkSpec, build_benchmark
from repro.obs import TraceRecorder
from repro.platform import ARCH_NAMES, build_platform

ARCH_MODE = [(arch, fast_forward) for arch in ARCH_NAMES
             for fast_forward in (False, True)]


@pytest.fixture(scope="module")
def built():
    return build_benchmark(BenchmarkSpec(n_samples=64, n_measurements=32,
                                         huffman_private=True))


@pytest.fixture(scope="module")
def traced(built):
    """(recorder, stats) per (arch, fast_forward), traced once."""
    out = {}
    for arch, fast_forward in ARCH_MODE:
        system = build_platform(arch, fast_forward=fast_forward)
        recorder = TraceRecorder.attach(system)
        stats = system.run(built.benchmark).stats
        recorder.finish()
        out[arch, fast_forward] = (recorder, stats)
    return out


def _validate_trace_events(document):
    """Structural checks a Chrome-trace/Perfetto loader performs."""
    assert isinstance(document, dict)
    events = document["traceEvents"]
    assert isinstance(events, list) and events
    track_names = set()
    for event in events:
        assert event["ph"] in ("M", "X")
        assert isinstance(event["pid"], int)
        if event["ph"] == "M":
            assert event["name"] in ("process_name", "thread_name",
                                     "thread_sort_index")
            assert isinstance(event["args"], dict)
            if event["name"] != "process_name":
                assert isinstance(event["tid"], int)
                track_names.add((event["pid"], event.get("tid")))
        else:
            # Complete events: non-negative integer microsecond timeline.
            assert isinstance(event["tid"], int)
            assert isinstance(event["ts"], int) and event["ts"] >= 0
            assert isinstance(event["dur"], int) and event["dur"] >= 1
            assert isinstance(event["name"], str) and event["name"]
    return events


class TestSchema:
    @pytest.mark.parametrize("arch,fast_forward", ARCH_MODE)
    def test_document_is_loadable(self, arch, fast_forward, traced):
        recorder, _ = traced[arch, fast_forward]
        # Round-trip through JSON text: what ui.perfetto.dev ingests.
        document = json.loads(json.dumps(recorder.to_perfetto()))
        events = _validate_trace_events(document)
        # One named thread track per core.
        core_tracks = {event["tid"] for event in events
                       if event["ph"] == "M"
                       and event["name"] == "thread_name"
                       and event["pid"] == 1}
        assert core_tracks == set(range(recorder.n_cores))
        assert document["otherData"]["arch"] == arch

    @pytest.mark.parametrize("arch,fast_forward", ARCH_MODE)
    def test_core_slices_do_not_overlap(self, arch, fast_forward, traced):
        recorder, _ = traced[arch, fast_forward]
        document = recorder.to_perfetto()
        per_core = {}
        for event in document["traceEvents"]:
            if event["ph"] == "X" and event["pid"] == 1:
                per_core.setdefault(event["tid"], []).append(
                    (event["ts"], event["dur"]))
        for spans in per_core.values():
            spans.sort()
            for (ts_a, dur_a), (ts_b, _) in zip(spans, spans[1:]):
                assert ts_a + dur_a <= ts_b

    def test_im_bank_gate_tracks(self, built):
        system = build_platform("ulpmc-bank")
        recorder = TraceRecorder.attach(system)
        system.run(built.benchmark)
        document = recorder.to_perfetto()
        gate_states = {event["tid"]: event["name"]
                       for event in document["traceEvents"]
                       if event["ph"] == "X" and event["pid"] == 3}
        assert set(gate_states) == set(range(system.config.im_banks))
        assert gate_states and "gated" in gate_states.values()
        gated = {bank for bank, state in gate_states.items()
                 if state == "gated"}
        assert gated == set(system.imem.gated_banks)

    def test_ff_span_track_present_only_in_fast_mode(self, traced):
        slow, _ = traced["ulpmc-int", False]
        fast, _ = traced["ulpmc-int", True]
        assert not slow.ff_spans
        assert fast.ff_spans
        document = fast.to_perfetto()
        spans = [event for event in document["traceEvents"]
                 if event["ph"] == "X" and event["pid"] == 2]
        assert len(spans) == len(fast.ff_spans)
        assert sum(event["dur"] for event in spans) \
            == sum(length for _, length in fast.ff_spans)


class TestExactness:
    @pytest.mark.parametrize("arch,fast_forward", ARCH_MODE)
    def test_slice_totals_equal_stats(self, arch, fast_forward, traced):
        recorder, stats = traced[arch, fast_forward]
        totals = recorder.slice_totals()
        for pid, core in enumerate(stats.cores):
            assert totals[pid].get("run", 0) == core.retired, \
                f"core {pid} run-slice total != retired"
            assert totals[pid].get("stall", 0) == core.stall_cycles, \
                f"core {pid} stall-slice total != stall_cycles"

    @pytest.mark.parametrize("arch", ARCH_NAMES)
    def test_modes_produce_identical_slices(self, arch, traced):
        slow, slow_stats = traced[arch, False]
        fast, fast_stats = traced[arch, True]
        assert slow_stats == fast_stats
        assert sorted(slow.slices) == sorted(fast.slices)

    @pytest.mark.parametrize("arch,fast_forward", ARCH_MODE)
    def test_end_cycle_is_total_cycles(self, arch, fast_forward, traced):
        recorder, stats = traced[arch, fast_forward]
        assert recorder.end_cycle == stats.total_cycles

    @pytest.mark.parametrize("arch,fast_forward", ARCH_MODE)
    def test_halted_slices_close_the_timeline(self, arch, fast_forward,
                                              traced):
        recorder, stats = traced[arch, fast_forward]
        document = recorder.to_perfetto()
        per_core = {core: 0 for core in range(recorder.n_cores)}
        for event in document["traceEvents"]:
            if event["ph"] == "X" and event["pid"] == 1:
                per_core[event["tid"]] += event["dur"]
        # run + stall + halted spans cover every cycle on every track.
        assert all(total == stats.total_cycles
                   for total in per_core.values())


class TestSave:
    def test_save_writes_loadable_json(self, built, tmp_path):
        system = build_platform("mc-ref")
        recorder = TraceRecorder.attach(system)
        system.run(built.benchmark)
        path = recorder.save(tmp_path / "nested" / "trace.json")
        document = json.loads(path.read_text(encoding="utf-8"))
        _validate_trace_events(document)
