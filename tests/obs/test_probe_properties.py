"""Property tests for the batched probe-delivery path.

Three invariants, each over hypothesis-generated inputs rather than the
fixed workloads the rest of the suite runs:

* **Delivery-mode identity** — a :class:`ProbeMetrics` collector fed
  through batched ring drains produces a bit-identical registry to one
  fed per-event, for *any* monotonic event schedule, including
  schedules with flushes at adversarial points (mid-cycle, mid-burst).
* **Ring reconstruction** — ``EventRing.as_array`` / ``compact`` invert
  every mark protocol the run loops write (per-cycle exact marks,
  positive-stride fast-forward segments, negative-stride RLE lockstep
  segments), against a straightforward pure-Python model.
* **Sampling** — ``set_sampling(event, N)`` delivers exactly the
  occurrences at indices ``0, N, 2N, ...`` while counting every
  occurrence, and disables the raw-ring fast path.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import EventRing, PC_BITS, ProbeBus, ProbeMetrics

#: Events with a batch schema, i.e. the ones with two delivery paths.
BATCHED_EVENTS = ("core.retire", "core.stall", "ixbar.conflict",
                  "dxbar.conflict", "im.broadcast", "dm.broadcast",
                  "mmu.translate")

# One schedule step: advance the clock 0-3 cycles, emit one event with
# small argument values, optionally flush the bus afterwards.
_STEP = st.tuples(st.integers(0, 3), st.sampled_from(BATCHED_EVENTS),
                  st.integers(0, 7), st.integers(0, 1023), st.booleans(),
                  st.booleans())
_SCHEDULES = st.lists(_STEP, max_size=120)


def _emit(bus, event, cycle, unit, value, flag) -> None:
    if event in ("core.retire", "core.stall"):
        bus.emit(event, cycle, unit, value)
    elif event in ("ixbar.conflict", "dxbar.conflict"):
        bus.emit(event, cycle, unit, [0, 1])
    elif event in ("im.broadcast", "dm.broadcast"):
        bus.emit(event, cycle, unit, 2 + value % 7)
    else:
        bus.emit(event, cycle, unit, value, unit, value % 64, flag)


@settings(max_examples=60, deadline=None)
@given(_SCHEDULES)
def test_batched_equals_unbatched(schedule):
    """Same schedule, both delivery modes, bit-identical registries."""
    batched_bus, unbatched_bus = ProbeBus(), ProbeBus()
    batched = ProbeMetrics.attach(batched_bus, batched=True)
    unbatched = ProbeMetrics.attach(unbatched_bus, batched=False)
    cycle = 0
    for advance, event, unit, value, flag, flush in schedule:
        cycle += advance
        _emit(batched_bus, event, cycle, unit, value, flag)
        _emit(unbatched_bus, event, cycle, unit, value, flag)
        if flush:
            batched_bus.flush()  # no-op on the unbatched bus
    assert batched.finish().snapshot() == unbatched.finish().snapshot()


@st.composite
def _ring_with_model(draw):
    """An EventRing written like the run loops write it, plus the
    packed occurrence list it must reconstruct."""
    ring = EventRing("core.retire")
    expected = []
    cycle = 0
    for __ in range(draw(st.integers(0, 6))):
        cycle += draw(st.integers(1, 5))
        kind = draw(st.sampled_from(("exact", "stride", "rle")))
        n_cycles = draw(st.integers(1, 3))
        if kind == "exact":
            # Cycle-stepped loop: one stride-0 mark per cycle, any
            # number of events (including none) per cycle.
            for __ in range(n_cycles):
                ring.marks += [cycle, len(ring.data), 0]
                for pc in draw(st.lists(st.integers(0, 1023),
                                        max_size=4)):
                    ring.data.append(pc)
                    expected.append((cycle << PC_BITS) | pc)
                cycle += 1
        elif kind == "stride":
            # Fast-forward segment: k events per consecutive cycle.
            k = draw(st.integers(1, 4))
            ring.marks += [cycle, len(ring.data), k]
            for __ in range(n_cycles):
                for pc in draw(st.lists(st.integers(0, 1023),
                                        min_size=k, max_size=k)):
                    ring.data.append(pc)
                    expected.append((cycle << PC_BITS) | pc)
                cycle += 1
        else:
            # Lockstep RLE segment: one shared pc per cycle, each
            # standing for r identical occurrences.
            r = draw(st.integers(1, 4))
            ring.marks += [cycle, len(ring.data), -r]
            ring.rle = True
            for __ in range(n_cycles):
                pc = draw(st.integers(0, 1023))
                ring.data.append(pc)
                expected += [(cycle << PC_BITS) | pc] * r
                cycle += 1
    return ring, expected


@settings(max_examples=80, deadline=None)
@given(_ring_with_model())
def test_ring_reconstruction(ring_and_model):
    """as_array/compact/len invert every writer protocol."""
    ring, expected = ring_and_model
    assert ring.as_array().tolist() == expected
    packed, count = ring.compact()
    assert count == len(expected)
    # compact() may skip RLE expansion but must cover every distinct
    # (cycle, pc) pair — the contract the sync-group dedup relies on.
    assert set(packed.tolist()) == set(expected)
    assert len(ring) == len(expected)


@settings(max_examples=80, deadline=None)
@given(st.integers(1, 20), st.integers(0, 100))
def test_sampling_drops_exactly_expected_events(every, total):
    """Delivery keeps indices 0, N, 2N, ...; the count stays exact."""
    bus = ProbeBus()
    delivered = []
    bus.subscribe("core.retire", lambda *args: delivered.append(args))
    bus.set_sampling("core.retire", every)
    for index in range(total):
        bus.emit("core.retire", index, 0, index)
    assert delivered == [(index, 0, index)
                        for index in range(0, total, every)]
    assert len(delivered) == (math.ceil(total / every) if total else 0)
    if every > 1:
        assert bus.occurrences("core.retire") == total
        assert bus.sampling("core.retire") == every
    else:
        # every=1 removes the policy entirely.
        assert bus.sampling("core.retire") == 1


def test_sampling_disables_raw_ring_grant():
    """A sampled event must route through emit(), not the raw ring."""
    bus = ProbeBus()
    bus.subscribe_batch("core.retire", lambda ring: None)
    assert bus.batch("core.retire") is not None
    bus.set_sampling("core.retire", 4)
    assert bus.batch("core.retire") is None
    bus.set_sampling("core.retire", 1)
    assert bus.batch("core.retire") is not None


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 10), st.integers(0, 60))
def test_sampled_batched_counters_follow_delivery(every, total):
    """Ring-fed counters see the decimated stream; the bus keeps the
    exact total on the side."""
    bus = ProbeBus()
    metrics = ProbeMetrics.attach(bus, batched=True)
    bus.set_sampling("core.retire", every)
    for index in range(total):
        bus.emit("core.retire", index, 0, 7)
    metrics.finish()
    assert metrics.retired.value == math.ceil(total / every)
    assert bus.occurrences("core.retire") == total
