"""Probe bus: subscription mechanics and event-stream exactness.

The load-bearing property is *mode independence*: a subscriber must see
the same aggregate event stream whether the platform runs cycle-stepped
or through the fast-forward engine, and the stream must reconcile with
the simulator's own ``SimulationStats`` accounting.
"""

import pytest

from repro.errors import ConfigurationError
from repro.kernels import BenchmarkSpec, build_benchmark
from repro.obs.probes import EVENTS, ProbeBus
from repro.platform import build_platform


@pytest.fixture(scope="module")
def built():
    return build_benchmark(BenchmarkSpec(n_samples=64, n_measurements=32,
                                         huffman_private=True))


class TestBusMechanics:
    def test_unknown_event_rejected(self):
        bus = ProbeBus()
        with pytest.raises(ConfigurationError):
            bus.subscribe("core.retier", lambda *a: None)

    def test_active_tracks_subscriptions(self):
        bus = ProbeBus()
        assert not bus.active
        handler = bus.subscribe("core.retire", lambda *a: None)
        assert bus.active
        assert bus.wants("core.retire")
        assert not bus.wants("core.stall")
        bus.unsubscribe("core.retire", handler)
        assert not bus.active

    def test_emit_order_and_args(self):
        bus = ProbeBus()
        seen = []
        bus.subscribe("im.broadcast", lambda *a: seen.append(("first", a)))
        bus.subscribe("im.broadcast", lambda *a: seen.append(("second", a)))
        bus.emit("im.broadcast", 7, 3, 8)
        assert seen == [("first", (7, 3, 8)), ("second", (7, 3, 8))]

    def test_subscribed_context_detaches(self):
        bus = ProbeBus()
        with bus.subscribed({"ff.enter": lambda *a: None}):
            assert bus.wants("ff.enter")
        assert not bus.active

    def test_clear(self):
        bus = ProbeBus()
        bus.subscribe("core.stall", lambda *a: None)
        bus.clear()
        assert not bus.active

    def test_event_catalogue_is_frozen(self):
        assert "core.retire" in EVENTS
        with pytest.raises(AttributeError):
            EVENTS.add("nope")


def _count_events(arch, built, fast_forward):
    system = build_platform(arch, fast_forward=fast_forward)
    bus = system.probe_bus()
    counts = {event: 0 for event in EVENTS}
    cycles = {"retire_max": -1}

    def counter(event):
        def handler(*args):
            counts[event] += 1
            if event == "core.retire":
                cycles["retire_max"] = max(cycles["retire_max"], args[0])
        return handler

    for event in EVENTS - {"block.done"}:
        bus.subscribe(event, counter(event))
    stats = system.run(built.benchmark).stats
    bus.clear()
    return counts, cycles, stats


class TestEventStream:
    @pytest.mark.parametrize("arch", ["mc-ref", "ulpmc-int", "ulpmc-bank"])
    def test_counts_reconcile_with_stats(self, arch, built):
        counts, cycles, stats = _count_events(arch, built, False)
        assert counts["core.retire"] == stats.total_retired
        assert counts["core.stall"] == stats.total_stall_cycles
        assert counts["ixbar.conflict"] == stats.im_conflict_events
        assert counts["dxbar.conflict"] == stats.dm_conflict_events
        assert counts["im.broadcast"] == stats.im_broadcasts
        assert counts["dm.broadcast"] == stats.dm_broadcasts
        assert counts["mmu.translate"] == \
            stats.dm_private_accesses + stats.dm_shared_accesses
        # 0-based cycle numbering: the last retire happens in the final
        # cycle of the run.
        assert cycles["retire_max"] == stats.total_cycles - 1

    @pytest.mark.parametrize("arch", ["mc-ref", "ulpmc-int", "ulpmc-bank"])
    def test_fast_forward_stream_is_identical(self, arch, built):
        slow_counts, _, slow_stats = _count_events(arch, built, False)
        fast_counts, _, fast_stats = _count_events(arch, built, True)
        assert slow_stats == fast_stats
        for event in EVENTS - {"ff.enter", "ff.exit", "ff.block",
                               "block.done"}:
            assert fast_counts[event] == slow_counts[event], event

    def test_ff_span_events(self, built):
        counts, _, _ = _count_events("ulpmc-int", built, True)
        assert counts["ff.enter"] == counts["ff.exit"] > 0

    def test_ff_exit_cycles_match_engine(self, built):
        system = build_platform("ulpmc-int", fast_forward=True)
        bus = system.probe_bus()
        committed = []
        bus.subscribe("ff.exit",
                      lambda cycle, fast: committed.append(fast))
        system.run(built.benchmark)
        assert sum(committed) == system._ff_engine.fast_cycles

    def test_attached_idle_bus_changes_nothing(self, built):
        plain = build_platform("ulpmc-bank").run(built.benchmark).stats
        system = build_platform("ulpmc-bank")
        system.probe_bus()  # attached, no subscribers
        assert system.run(built.benchmark).stats == plain

    def test_subscribed_run_changes_nothing(self, built):
        plain = build_platform("ulpmc-bank").run(built.benchmark).stats
        system = build_platform("ulpmc-bank")
        bus = system.probe_bus()
        for event in EVENTS:
            bus.subscribe(event, lambda *a: None)
        assert system.run(built.benchmark).stats == plain

    def test_hooks_unwired_after_run(self, built):
        system = build_platform("ulpmc-int")
        bus = system.probe_bus()
        for event in EVENTS:
            bus.subscribe(event, lambda *a: None)
        system.run(built.benchmark)
        assert system.ixbar.probe_conflict is None
        assert system.dxbar.probe_broadcast is None
        assert all(mmu.probe is None for mmu in system.mmus)


class TestBlockDone:
    def test_streaming_emits_block_done(self, built):
        from repro.kernels.benchmark import build_block_series
        from repro.platform.streaming import run_stream

        series = build_block_series(built.spec, n_blocks=2)
        system = build_platform("mc-ref")
        done = []
        system.probe_bus().subscribe(
            "block.done", lambda index, stats: done.append((index,
                                                            stats.total_cycles)))
        report = run_stream("mc-ref", series, clock_hz=1e6, system=system)
        assert [index for index, _ in done] == [0, 1]
        assert [cycles for _, cycles in done] == report.cycles_per_block
