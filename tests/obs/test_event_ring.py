"""Property tests for the :class:`EventRing` packed reconstruction.

The ring trades per-event allocation for a deferred reconstruction:
hot loops append one bare ``pc`` per occurrence plus a handful of
``(cycle, start_offset, stride)`` marks, and the drain rebuilds the
packed ``(cycle << PC_BITS) | pc`` stream vectorised.  Three mark
flavours coexist in one ring (per-cycle ``stride == 0``, grouped
``stride == k``, run-length ``stride == -r``), so the properties run
over random interleavings of all three against a pure-Python reference
expansion:

* **Reconstruction** — ``as_array`` equals the reference occurrence
  stream, and ``occurrence_count``/``__len__`` equal its length.
* **Compact consistency** — ``compact`` is idempotent, reports the
  exact occurrence count, covers the same distinct packed values as
  the full expansion, and leaves the ring intact.
* **Clear hygiene** — after a partial drain ``clear`` empties the ring
  in place (the hot loops' bound ``data.append`` stays valid) and a
  fresh batch reconstructs without residue.
* **Flush-split equivalence** — delivering one run's events through a
  real :class:`ProbeBus` in arbitrarily many flushes yields the same
  concatenated stream as one flush at the end; the run loops' periodic
  ring-bounding flushes land at arbitrary segment boundaries, so the
  split point must never matter.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.probes import (PC_BITS, PC_MASK, EventRing, ProbeBus,
                              pack_cycle_pc, unpack_cycle_pc)

_PCS = st.integers(min_value=0, max_value=PC_MASK)


@st.composite
def _plans(draw, min_segments=1, max_segments=8):
    """A random mark-segment plan: list of segment descriptors."""
    segments = []
    for _ in range(draw(st.integers(min_segments, max_segments))):
        kind = draw(st.sampled_from(["per-cycle", "grouped", "rle"]))
        if kind == "per-cycle":
            segments.append((kind, 0, draw(st.lists(_PCS, max_size=6))))
        elif kind == "grouped":
            k = draw(st.integers(1, 4))
            m = draw(st.integers(1, 4))
            segments.append(
                (kind, k, draw(st.lists(_PCS, min_size=k * m,
                                        max_size=k * m))))
        else:
            r = draw(st.integers(1, 4))
            m = draw(st.integers(1, 4))
            segments.append(
                (kind, r, draw(st.lists(_PCS, min_size=m, max_size=m))))
    return segments


def _write_segment(ring, cycle, segment):
    """Append one plan segment as the run loops would; return the
    reference occurrence stream and the next free cycle."""
    kind, param, pcs = segment
    marks, reference = ring.marks, []
    if kind == "per-cycle":
        marks.extend((cycle, len(ring.data), 0))
        reference = [pack_cycle_pc(cycle, pc) for pc in pcs]
        covered = 1
    elif kind == "grouped":
        marks.extend((cycle, len(ring.data), param))
        reference = [pack_cycle_pc(cycle + i // param, pc)
                     for i, pc in enumerate(pcs)]
        covered = len(pcs) // param
    else:
        marks.extend((cycle, len(ring.data), -param))
        ring.rle = True
        for i, pc in enumerate(pcs):
            reference.extend([pack_cycle_pc(cycle + i, pc)] * param)
        covered = len(pcs)
    ring.data.extend(pcs)
    return reference, cycle + covered


def _build(ring, plan, cycle=0):
    reference = []
    for segment in plan:
        chunk, cycle = _write_segment(ring, cycle, segment)
        reference.extend(chunk)
    return reference, cycle


@settings(max_examples=80, deadline=None)
@given(plan=_plans())
def test_reconstruction_matches_reference(plan):
    ring = EventRing("core.retire")
    reference, _ = _build(ring, plan)
    assert ring.as_array().tolist() == reference
    assert ring.occurrence_count() == len(reference)
    assert len(ring) == len(reference)


@settings(max_examples=80, deadline=None)
@given(plan=_plans())
def test_compact_idempotent_and_exact(plan):
    ring = EventRing("core.retire")
    reference, _ = _build(ring, plan)
    packed_a, count_a = ring.compact()
    packed_b, count_b = ring.compact()
    assert packed_a.tolist() == packed_b.tolist()
    assert count_a == count_b == len(reference)
    # Compact never expands RLE runs but must cover the same distinct
    # (cycle, pc) pairs as the full expansion — that is what lets the
    # per-cycle dedup reductions use it interchangeably.
    assert set(packed_a.tolist()) == set(reference)
    assert len(packed_a) == len(ring.data)
    # ...and it must not consume the batch.
    assert ring.as_array().tolist() == reference


@settings(max_examples=60, deadline=None)
@given(first=_plans(), second=_plans())
def test_clear_after_partial_drain(first, second):
    ring = EventRing("core.retire")
    append = ring.data.append          # the hot loops' bound method
    _build(ring, first)
    ring.as_array()                    # partial drain: batch consumed...
    ring.clear()                       # ...then cleared in place
    assert not ring.data and not ring.marks and not ring.rle
    assert ring.occurrence_count() == 0
    assert ring.as_array().size == 0
    reference, _ = _build(ring, second)
    append(7)                          # bound append survives clear()
    ring.marks.extend((10 ** 6, len(ring.data) - 1, 0))
    reference.append(pack_cycle_pc(10 ** 6, 7))
    assert ring.as_array().tolist() == reference


@settings(max_examples=60, deadline=None)
@given(plan=_plans(min_segments=2),
       cuts=st.sets(st.integers(min_value=1, max_value=7)))
def test_flush_split_equivalence(plan, cuts):
    """Splitting one event stream across N bus flushes is invisible.

    The multicore loop flushes every 16384 cycles and the fast-forward
    engine flushes around long stretches, so batch boundaries fall
    wherever the run happens to put them — collectors must see the
    same concatenated stream regardless.
    """
    def deliver(split_points):
        bus = ProbeBus()
        collected, flushes = [], [0]
        bus.subscribe_batch(
            "core.retire",
            lambda ring: collected.extend(ring.as_array().tolist()))
        bus.subscribe_flush(lambda: flushes.__setitem__(0, flushes[0] + 1))
        ring = bus.batch("core.retire")
        assert ring is not None
        reference, cycle = [], 0
        for index, segment in enumerate(plan):
            chunk, cycle = _write_segment(ring, cycle, segment)
            reference.extend(chunk)
            if index in split_points:
                bus.flush()
        bus.flush()
        bus.flush()                    # empty ring: no hook, no drain
        return collected, reference, flushes[0]

    split, reference, n_flushes = deliver({c for c in cuts
                                           if c < len(plan) - 1})
    single, reference_single, _ = deliver(set())
    assert reference == reference_single
    assert split == single == reference
    assert n_flushes <= len(plan)      # the trailing no-op never fires


@settings(max_examples=100, deadline=None)
@given(cycle=st.integers(min_value=0, max_value=(1 << 37) - 1),
       pc=st.integers(min_value=0, max_value=PC_MASK))
def test_pack_unpack_roundtrip(cycle, pc):
    packed = pack_cycle_pc(cycle, pc)
    assert unpack_cycle_pc(packed) == (cycle, pc)
    assert pack_cycle_pc(cycle, PC_MASK) >> PC_BITS == cycle
