"""Windowed-telemetry determinism and reconciliation properties.

The aggregator's whole value rests on two contracts (see the module
docstring of :mod:`repro.obs.telemetry`):

* **Bit identity** — the per-window summary stream is identical across
  the exact, fast-forward and translation-block execution modes and
  across batched / per-event probe delivery.  Six run configurations
  per platform, one digest.
* **Partition, not resample** — summing the windows reproduces the
  whole-run totals exactly: the metrics-registry counters, the
  :class:`~repro.platform.stats.SimulationStats` fields and the
  per-core retire/stall counts.

Plus the fleet-merge algebra, the streaming offsets/deadline
accounting, and the small pure helpers.
"""

import pytest

from repro.errors import ConfigurationError
from repro.kernels import BenchmarkSpec, build_benchmark
from repro.obs import ProbeMetrics, WindowedAggregator, summaries_digest
from repro.obs.telemetry import COUNTER_FIELDS, WindowSummary, \
    merge_window_lists, percentile
from repro.platform import build_platform

WINDOW = 1024

#: label -> build_platform kwargs; the three execution paths that must
#: agree bit-for-bit.
MODES = {
    "exact": dict(fast_forward=False),
    "fast-forward": dict(fast_forward=True, translation_blocks=False),
    "blocks": dict(fast_forward=True, translation_blocks=True),
}


@pytest.fixture(scope="module")
def built():
    return build_benchmark(BenchmarkSpec(n_samples=64, n_measurements=32,
                                         huffman_private=True))


def _run(built, arch, batched=True, window=WINDOW, **platform_kw):
    system = build_platform(arch, **platform_kw)
    aggregator = WindowedAggregator.attach(
        system.probe_bus(), window_cycles=window, batched=batched)
    result = system.run(built.benchmark)
    aggregator.detach()
    return aggregator, result


class TestBitIdentity:
    @pytest.mark.parametrize("arch", ["mc-ref", "ulpmc-int", "ulpmc-bank"])
    def test_windows_identical_across_modes_and_delivery(self, built, arch):
        digests = {}
        for label, platform_kw in MODES.items():
            for batched in (True, False):
                aggregator, _ = _run(built, arch, batched=batched,
                                     **platform_kw)
                assert len(aggregator.windows) > 1, \
                    "identity would be vacuous with <2 windows"
                digests[(label, batched)] = aggregator.digest()
        assert len(set(digests.values())) == 1, digests

    def test_boundaries_exact_and_final_flagged(self, built):
        aggregator, result = _run(built, "ulpmc-bank", fast_forward=True,
                                  translation_blocks=True)
        windows = aggregator.windows
        for window in windows[:-1]:
            assert not window.final
            assert window.end_cycle % WINDOW == 0
            assert window.cycles == WINDOW
        assert windows[-1].final
        assert windows[-1].end_cycle == result.stats.total_cycles
        assert [w.index for w in windows] == list(range(len(windows)))


class TestPartition:
    @pytest.fixture(scope="class", params=["exact", "blocks"])
    def run(self, built, request):
        # The metrics collector and the aggregator ride the same bus:
        # both batch-drain the same rings, so agreement is end-to-end.
        system = build_platform("ulpmc-bank", **MODES[request.param])
        bus = system.probe_bus()
        collector = ProbeMetrics.attach(bus)
        aggregator = WindowedAggregator.attach(bus, window_cycles=WINDOW)
        result = system.run(built.benchmark)
        collector.finish()
        aggregator.detach()
        return aggregator, collector, result

    def test_totals_match_metrics_registry(self, run):
        aggregator, collector, _ = run
        totals = aggregator.totals()
        snapshot = collector.registry.snapshot()
        assert totals["retired"] == snapshot["probe.retired"]
        assert totals["stalls"] == snapshot["probe.stall_cycles"]
        assert totals["ixbar_conflicts"] == snapshot["probe.ixbar_conflicts"]
        assert totals["dxbar_conflicts"] == snapshot["probe.dxbar_conflicts"]
        assert totals["im_broadcasts"] == snapshot["probe.im_broadcasts"]
        assert totals["dm_broadcasts"] == snapshot["probe.dm_broadcasts"]
        assert totals["mmu_private"] == snapshot["probe.mmu_private"]
        assert totals["mmu_shared"] == snapshot["probe.mmu_shared"]

    def test_totals_match_simulation_stats(self, run):
        aggregator, _, result = run
        stats = result.stats
        totals = aggregator.totals()
        assert totals["cycles"] == stats.total_cycles
        assert totals["retired"] == stats.total_retired
        assert totals["stalls"] == stats.total_stall_cycles
        assert totals["sync_cycles"] == stats.sync_cycles
        assert totals["ixbar_conflicts"] == stats.im_conflict_events
        assert totals["dxbar_conflicts"] == stats.dm_conflict_events
        assert totals["im_broadcasts"] == stats.im_broadcasts
        assert totals["dm_broadcasts"] == stats.dm_broadcasts
        assert totals["im_broadcast_savings"] == stats.im_broadcast_savings
        assert totals["dm_broadcast_savings"] == stats.dm_broadcast_savings
        assert totals["mmu_private"] == stats.dm_private_accesses
        assert totals["mmu_shared"] == stats.dm_shared_accesses

    def test_per_core_window_sums_match_stats(self, run):
        aggregator, _, result = run
        windows = aggregator.windows
        n = len(result.stats.cores)
        for pid in range(n):
            assert sum(w.core_retired[pid] for w in windows) \
                == result.stats.cores[pid].retired
            assert sum(w.core_stalls[pid] for w in windows) \
                == result.stats.cores[pid].stall_cycles


class TestMerge:
    def test_merge_doubles_counters_and_concatenates_cores(self, built):
        first, _ = _run(built, "ulpmc-int", fast_forward=True)
        second, _ = _run(built, "ulpmc-int", fast_forward=True)
        merged = first.merge(second)
        assert len(merged) == len(first.windows)
        for fleet, shard in zip(merged, first.windows):
            for name in COUNTER_FIELDS:
                assert getattr(fleet, name) == 2 * getattr(shard, name)
            assert fleet.core_retired \
                == shard.core_retired + shard.core_retired
            assert fleet.cycles == shard.cycles

    def test_merge_accepts_plain_window_lists(self, built):
        aggregator, _ = _run(built, "mc-ref", fast_forward=True)
        merged = aggregator.merge(list(aggregator.windows))
        assert summaries_digest(merged) != aggregator.digest()  # doubled
        assert merged[0].retired == 2 * aggregator.windows[0].retired

    def test_combine_rejects_mixed_indices(self, built):
        aggregator, _ = _run(built, "mc-ref", fast_forward=True)
        with pytest.raises(ConfigurationError):
            WindowSummary.combine(aggregator.windows[:2])
        with pytest.raises(ConfigurationError):
            WindowSummary.combine([])


class TestMergeAlgebra:
    """Shapes the farm relies on when folding shard window streams."""

    @pytest.fixture(scope="class")
    def windows(self, built):
        aggregator, _ = _run(built, "ulpmc-int", fast_forward=True)
        return list(aggregator.windows)

    def test_single_shard_is_a_no_op(self, windows):
        merged = merge_window_lists(windows)
        assert summaries_digest(merged) == summaries_digest(windows)

    def test_empty_shard_is_a_no_op(self, windows):
        merged = merge_window_lists(windows, [])
        assert summaries_digest(merged) == summaries_digest(windows)
        assert merge_window_lists() == []

    def test_unequal_shard_window_counts(self, windows):
        assert len(windows) > 2, "need a truncatable stream"
        short = windows[:2]
        merged = merge_window_lists(windows, short)
        assert len(merged) == len(windows)
        for fleet, shard in zip(merged[:2], windows[:2]):
            assert fleet.retired == 2 * shard.retired
        # beyond the short shard's horizon the long shard passes through
        assert summaries_digest(merged[2:]) \
            == summaries_digest(windows[2:])

    def test_merge_of_merges_is_associative(self, windows):
        a, b, c = windows, windows, windows
        left = merge_window_lists(merge_window_lists(a, b), c)
        right = merge_window_lists(a, merge_window_lists(b, c))
        flat = merge_window_lists(a, b, c)
        assert summaries_digest(left) == summaries_digest(right) \
            == summaries_digest(flat)

    def test_dict_round_trip_preserves_digest(self, windows):
        payloads = [window.to_dict() for window in windows]
        rebuilt = [WindowSummary.from_dict(payload)
                   for payload in payloads]
        assert [w.to_dict() for w in rebuilt] == payloads
        assert summaries_digest(rebuilt) == summaries_digest(windows)
        # merge accepts the dict transport form directly
        assert summaries_digest(merge_window_lists(payloads)) \
            == summaries_digest(windows)

    def test_dict_missing_field_rejected(self, windows):
        payload = windows[0].to_dict()
        payload.pop("retired")
        with pytest.raises(ConfigurationError, match="retired"):
            WindowSummary.from_dict(payload)


class TestStreaming:
    @pytest.fixture(scope="class")
    def stream(self, built):
        from repro.kernels.benchmark import build_block_series
        from repro.platform.streaming import run_stream

        spec = BenchmarkSpec(n_samples=64, n_measurements=32,
                             huffman_private=True)
        series = build_block_series(spec, n_blocks=3)
        system = build_platform("ulpmc-bank", fast_forward=True)
        aggregator = WindowedAggregator.attach(
            system.probe_bus(), window_cycles=WINDOW,
            deadline_budget_cycles=1.0)  # everything misses
        report = run_stream("ulpmc-bank", series, clock_hz=1e6,
                            system=system)
        aggregator.detach()
        return aggregator, report

    def test_stream_offsets_never_alias(self, stream):
        aggregator, _ = stream
        edges = [(w.start_cycle, w.end_cycle) for w in aggregator.windows]
        assert all(start < end for start, end in edges)
        assert all(prev[1] == cur[0]
                   for prev, cur in zip(edges, edges[1:])), \
            "windows must tile the stream without gaps or overlap"

    def test_stream_totals_cover_all_blocks(self, stream):
        aggregator, report = stream
        assert aggregator.blocks_done == 3
        assert aggregator.totals()["cycles"] \
            == sum(aggregator.block_cycles)
        assert sum(1 for w in aggregator.windows if w.final) == 3

    def test_deadline_misses_counted(self, stream):
        aggregator, _ = stream
        assert aggregator.deadline_misses == 3
        fleet = aggregator.fleet_summary()
        assert fleet["streaming"]["deadline_misses"] == 3
        assert fleet["streaming"]["blocks_done"] == 3


class TestHelpers:
    def test_percentile_semantics(self):
        assert percentile([], 0.5) is None
        assert percentile([3.0], 0.99) == 3.0
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.50) == 2.0
        assert percentile(values, 0.99) == 4.0

    def test_window_cycles_validation(self):
        with pytest.raises(ConfigurationError):
            WindowedAggregator(window_cycles=0)
        with pytest.raises(ConfigurationError):
            WindowedAggregator(window_cycles="8192")

    def test_fleet_summary_shape(self, built):
        aggregator, _ = _run(built, "mc-ref", fast_forward=True)
        fleet = aggregator.fleet_summary(recent=4)
        assert fleet["windows"] == len(aggregator.windows)
        for name in ("ipc", "stall_rate", "conflicts_per_kcycle",
                     "broadcasts_per_kcycle", "lockstep_fraction"):
            stats = fleet["rates"][name]
            assert set(stats) == {"last", "mean", "p50", "p99"}
        assert "streaming" not in fleet  # no block.done events
