"""Regression gate over run manifests: fixture-driven behaviour tests.

Synthesised ``manifest.jsonl`` fixtures (no simulation involved) pin
down the gate's contract: identical digests pass, cross-revision drift
fails with the changed summary fields named, same-revision divergence
is flagged as nondeterminism, corrupt lines are skipped with a warning
instead of aborting the scan, and the CLI exit code follows the
verdict.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.obs import run_regression
from repro.obs.regress import load_records


def _record(name="bench", arch="ulpmc-int", config_hash="cfg-a",
            git_rev="rev-1", digest="digest-1", created=1000.0,
            kind="profile", cycles=8000):
    return {
        "kind": kind, "name": name, "arch": arch,
        "config_hash": config_hash, "git_rev": git_rev,
        "stats_digest": digest,
        "stats_summary": {"total_cycles": cycles},
        "created": created,
    }


def _write(directory, records, raw_lines=()):
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "manifest.jsonl"
    lines = [json.dumps(record) for record in records]
    lines += list(raw_lines)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return directory


def test_identical_reruns_pass(tmp_path):
    runs = _write(tmp_path / "runs", [
        _record(created=1.0),
        _record(created=2.0),
        _record(created=3.0, git_rev="rev-2"),  # new rev, same digest
    ])
    report = run_regression(runs, min_groups=1)
    assert report.ok
    assert report.groups_compared == 1
    assert not report.findings
    assert "PASS" in report.to_text()


def test_cross_revision_drift_fails(tmp_path):
    runs = _write(tmp_path / "runs", [
        _record(created=1.0),
        _record(created=2.0, git_rev="rev-2", digest="digest-2",
                cycles=8017),
    ])
    report = run_regression(runs)
    assert not report.ok
    (finding,) = report.findings
    assert finding.severity == "drift"
    assert finding.baseline_rev == "rev-1"
    assert finding.current_rev == "rev-2"
    assert finding.summary_delta == {"total_cycles": (8000, 8017)}
    assert "total_cycles: 8000 -> 8017" in report.to_text()


def test_same_revision_divergence_is_nondeterminism(tmp_path):
    runs = _write(tmp_path / "runs", [
        _record(created=1.0),
        _record(created=2.0, digest="digest-2"),
    ])
    report = run_regression(runs)
    assert not report.ok
    (finding,) = report.findings
    assert finding.severity == "nondeterministic"


def test_different_identities_never_compared(tmp_path):
    # Same name but different arch / config hash: distinct groups.
    runs = _write(tmp_path / "runs", [
        _record(created=1.0),
        _record(created=2.0, arch="mc-ref", digest="digest-2"),
        _record(created=3.0, config_hash="cfg-b", digest="digest-3"),
    ])
    report = run_regression(runs)
    assert report.ok
    assert report.groups_checked == 3
    assert report.groups_compared == 0


def test_corrupt_lines_skipped_with_warning(tmp_path, capsys):
    runs = _write(tmp_path / "runs",
                  [_record(created=1.0), _record(created=2.0)],
                  raw_lines=["{truncated", '"a bare string"', "[1, 2]"])
    records, skipped = load_records(runs)
    assert len(records) == 2
    assert skipped == 3
    assert capsys.readouterr().err.count("skipping corrupt") == 3
    report = run_regression(runs, min_groups=1)
    assert report.ok
    assert report.skipped_lines == 3


def test_benchmark_records_excluded_by_default(tmp_path):
    runs = _write(tmp_path / "runs", [
        _record(created=1.0, kind="benchmark"),
        _record(created=2.0, kind="benchmark", digest="digest-2"),
    ])
    assert run_regression(runs).groups_checked == 0
    assert not run_regression(runs, kinds=("benchmark",)).ok


def test_min_groups_guards_vacuous_pass(tmp_path):
    runs = _write(tmp_path / "runs", [_record()])
    assert run_regression(runs).ok  # nothing to compare, no floor
    report = run_regression(runs, min_groups=1)
    assert not report.ok
    assert "--min-groups" in report.to_text()


def test_baseline_mode_compares_newest_per_identity(tmp_path):
    base = _write(tmp_path / "base", [
        _record(created=1.0, digest="digest-old"),
        _record(created=2.0),  # newest baseline record wins
    ])
    current = _write(tmp_path / "cur", [
        _record(created=3.0, git_rev="rev-2"),
        _record(name="other", created=3.0),  # no baseline: skipped
    ])
    report = run_regression(current, baseline_dir=base)
    assert report.mode == "baseline"
    assert report.groups_compared == 1
    assert report.ok
    drifted = _write(tmp_path / "cur2", [
        _record(created=3.0, git_rev="rev-2", digest="digest-2")])
    assert not run_regression(drifted, baseline_dir=base).ok


def test_report_formats_round_trip(tmp_path):
    runs = _write(tmp_path / "runs", [
        _record(created=1.0),
        _record(created=2.0, git_rev="rev-2", digest="digest-2",
                cycles=8017),
    ])
    report = run_regression(runs)
    parsed = json.loads(report.to_json())
    assert parsed["ok"] is False
    assert parsed["findings"][0]["severity"] == "drift"
    assert parsed["findings"][0]["summary_delta"] == {
        "total_cycles": [8000, 8017]}
    markdown = report.to_markdown()
    assert "FAIL" in markdown
    assert "total_cycles 8000→8017" in markdown
    with pytest.raises(KeyError):
        report.render("yaml")


def test_cli_exit_codes_and_output_file(tmp_path, capsys):
    runs = _write(tmp_path / "runs", [
        _record(created=1.0), _record(created=2.0)])
    out = tmp_path / "report.md"
    assert cli_main(["regress", "--runs-dir", str(runs), "--min-groups",
                     "1", "--format", "markdown", "--output",
                     str(out)]) == 0
    assert "PASS" in out.read_text(encoding="utf-8")
    capsys.readouterr()
    drifted = _write(tmp_path / "runs2", [
        _record(created=1.0),
        _record(created=2.0, git_rev="rev-2", digest="digest-2")])
    assert cli_main(["regress", "--runs-dir", str(drifted)]) == 1
    assert "DRIFT" in capsys.readouterr().out


def test_missing_directory_is_empty_not_fatal(tmp_path):
    report = run_regression(tmp_path / "nowhere")
    assert report.ok
    assert report.groups_checked == 0


def test_newer_schema_records_skipped_with_warning(tmp_path, capsys):
    # A future checkout wrote the manifest: its records are valid JSON
    # but carry a schema this parser does not know.  The gate must
    # skip them (with a warning) and still judge the readable ones.
    future = dict(_record(created=3.0, digest="digest-future"),
                  schema="repro-manifest/99")
    runs = _write(tmp_path / "runs",
                  [_record(created=1.0), _record(created=2.0), future])
    report = run_regression(runs, min_groups=1)
    assert report.ok
    assert report.skipped_schema == 1
    assert report.groups_checked == 1
    err = capsys.readouterr().err
    assert "unsupported manifest schema 'repro-manifest/99'" in err


def test_unparseable_schema_tag_treated_as_foreign(tmp_path, capsys):
    # Tags that do not even split as repro-manifest/<n> come from a
    # foreign file; same skip-don't-raise treatment as newer versions.
    alien = dict(_record(digest="digest-alien"), schema="not-a-manifest")
    runs = _write(tmp_path / "runs",
                  [_record(created=1.0), _record(created=2.0), alien])
    report = run_regression(runs, min_groups=1)
    assert report.ok
    assert report.skipped_schema == 1
    assert "unsupported manifest schema 'not-a-manifest'" \
        in capsys.readouterr().err


def test_current_and_v1_schemas_both_kept(tmp_path):
    # Records predating the schema field are v1; records tagged with
    # the current version pass the filter too.  Their digests compare.
    tagged = dict(_record(created=2.0), schema="repro-manifest/2")
    runs = _write(tmp_path / "runs", [_record(created=1.0), tagged])
    report = run_regression(runs, min_groups=1)
    assert report.ok
    assert report.skipped_schema == 0
    assert report.groups_checked == 1


def test_schema_skips_counted_from_baseline_too(tmp_path, capsys):
    runs = _write(tmp_path / "runs", [_record(created=2.0)])
    baseline = _write(tmp_path / "baseline", [
        _record(created=1.0),
        dict(_record(created=1.5), schema="repro-manifest/99"),
    ])
    report = run_regression(runs, baseline_dir=baseline, min_groups=1)
    assert report.ok
    assert report.skipped_schema == 1
    assert str(baseline) in capsys.readouterr().err


def test_schema_skips_surface_in_every_format(tmp_path):
    runs = _write(tmp_path / "runs", [
        _record(created=1.0), _record(created=2.0),
        dict(_record(created=3.0), schema="repro-manifest/99"),
    ])
    report = run_regression(runs, min_groups=1)
    assert "unsupported newer schema skipped" in report.to_text()
    assert json.loads(report.to_json())["skipped_schema"] == 1
    assert "unsupported-schema records skipped: 1" in report.to_markdown()
