"""Metrics registry and the probe-driven collector."""

import pytest

from repro.kernels import BenchmarkSpec, build_benchmark
from repro.obs import MetricsRegistry, ProbeMetrics
from repro.platform import build_platform


@pytest.fixture(scope="module")
def built():
    return build_benchmark(BenchmarkSpec(n_samples=64, n_measurements=32,
                                         huffman_private=True))


class TestPrimitives:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits", "help text")
        counter.inc()
        counter.inc(4)
        assert registry.counter("hits").value == 5
        assert registry.get("hits") is counter

    def test_gauge(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(3.5)
        assert registry.gauge("depth").value == 3.5

    def test_histogram(self):
        histogram = MetricsRegistry().histogram("sizes")
        for value in (1, 1, 2, 8):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == 12
        assert histogram.mean == 3.0
        assert (histogram.min, histogram.max) == (1, 8)
        assert histogram.percentile(0.5) == 1
        assert histogram.percentile(1.0) == 8
        assert histogram.buckets() == [(1, 2), (2, 1), (8, 1)]

    def test_empty_histogram(self):
        histogram = MetricsRegistry().histogram("empty")
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.min is None
        assert histogram.percentile(0.5) is None

    def test_type_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(TypeError):
            registry.histogram("name")

    def test_snapshot_and_render(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(3)
        registry.histogram("widths").observe(2, 5)
        snapshot = registry.snapshot()
        assert snapshot["events"] == 3
        assert snapshot["widths"]["buckets"] == {"2": 5}
        text = registry.render()
        assert "events" in text and "widths" in text


class TestUpdateFromStats:
    def test_imports_every_scalar_field(self, built):
        stats = build_platform("ulpmc-int").run(built.benchmark).stats
        registry = MetricsRegistry()
        registry.update_from_stats(stats)
        assert registry.counter("sim.total_cycles").value \
            == stats.total_cycles
        assert registry.counter("sim.im_broadcasts").value \
            == stats.im_broadcasts
        assert registry.counter("sim.total_retired").value \
            == stats.total_retired


class TestProbeMetrics:
    @pytest.mark.parametrize("fast_forward", [False, True])
    @pytest.mark.parametrize("arch", ["mc-ref", "ulpmc-int", "ulpmc-bank"])
    def test_reconciles_with_stats(self, arch, fast_forward, built):
        system = build_platform(arch, fast_forward=fast_forward)
        collector = ProbeMetrics.attach(system.probe_bus())
        stats = system.run(built.benchmark).stats
        assert collector.verify_against(stats) == []

    def test_sync_group_histogram_subsumes_sync_cycles(self, built):
        """The size-1 bucket over multi-core cycles is exactly the
        aggregate ``sync_cycles`` counter — plus the tail of cycles in
        which only one core was still running (those never count as
        synchronised)."""
        system = build_platform("ulpmc-int")
        collector = ProbeMetrics.attach(system.probe_bus())
        per_cycle_cores = {}
        system.probe_bus().subscribe(
            "core.retire",
            lambda cycle, pid, pc: per_cycle_cores.setdefault(cycle, set())
            .add(pid))
        system.probe_bus().subscribe(
            "core.stall",
            lambda cycle, pid, pc: per_cycle_cores.setdefault(cycle, set())
            .add(pid))
        stats = system.run(built.benchmark).stats
        collector.finish()
        histogram = collector.sync_groups
        assert histogram.count == stats.total_cycles
        lone_core_cycles = sum(1 for cores in per_cycle_cores.values()
                               if len(cores) == 1)
        assert histogram.counts[1] == stats.sync_cycles + lone_core_cycles

    def test_conflict_burst_lengths_cover_conflict_cycles(self, built):
        system = build_platform("ulpmc-int")
        collector = ProbeMetrics.attach(system.probe_bus())
        conflict_cycles = set()
        system.probe_bus().subscribe(
            "ixbar.conflict",
            lambda cycle, bank, masters: conflict_cycles.add(cycle))
        system.run(built.benchmark)
        collector.finish()
        histogram = collector.conflict_bursts
        assert histogram.total == len(conflict_cycles)
        assert histogram.count >= 1
        assert histogram.max >= 1

    def test_detach(self, built):
        system = build_platform("mc-ref")
        bus = system.probe_bus()
        collector = ProbeMetrics.attach(bus)
        collector.detach()
        assert not bus.active
        system.run(built.benchmark)
        assert collector.retired.value == 0
