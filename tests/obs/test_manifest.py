"""Run manifests: digests, record schema and JSONL round-trip."""

import json

import pytest

from repro.kernels import BenchmarkSpec, build_benchmark
from repro.obs import (config_digest, git_revision, manifest_record,
                       read_manifests, stats_digest, write_manifest)
from repro.obs.manifest import SCHEMA, SCHEMA_VERSION, schema_version
from repro.platform import build_platform

REQUIRED_FIELDS = {
    "schema", "kind", "name", "arch", "config", "config_hash", "git_rev",
    "stats_digest", "stats_summary", "event_summary", "telemetry",
    "wall_time_s", "speedup_vs_exact", "created", "extra",
}


@pytest.fixture(scope="module")
def run():
    built = build_benchmark(BenchmarkSpec(n_samples=64, n_measurements=32,
                                          huffman_private=True))
    system = build_platform("ulpmc-bank")
    result = system.run(built.benchmark)
    return system, result


class TestDigests:
    def test_config_digest_is_stable(self, run):
        system, _ = run
        assert config_digest(system.config) == config_digest(system.config)
        assert config_digest(build_platform("mc-ref").config) \
            != config_digest(system.config)

    def test_stats_digest_tracks_content(self, run):
        _, result = run
        digest = stats_digest(result.stats)
        assert len(digest) == 64 and int(digest, 16) >= 0
        import dataclasses
        mutated = dataclasses.replace(result.stats,
                                      total_cycles=result.stats.total_cycles
                                      + 1)
        assert stats_digest(mutated) != digest

    def test_git_revision_in_checkout(self):
        rev = git_revision()
        assert rev == "unknown" or len(rev) == 40

    def test_git_revision_outside_checkout(self, tmp_path):
        assert git_revision(cwd=tmp_path) == "unknown"


class TestRecord:
    def test_schema_fields_always_present(self):
        record = manifest_record("benchmark", "smoke")
        assert set(record) == REQUIRED_FIELDS
        assert record["schema"] == SCHEMA
        assert record["arch"] is None
        assert record["stats_digest"] is None
        assert record["telemetry"] is None
        assert record["speedup_vs_exact"] is None
        assert record["extra"] == {}

    def test_schema_version_parsing(self):
        assert schema_version(manifest_record("benchmark", "x")) \
            == SCHEMA_VERSION
        assert schema_version({"kind": "trace"}) == 1  # v1: no tag
        assert schema_version({"schema": "repro-manifest/99"}) == 99
        assert schema_version({"schema": "not-a-manifest"}) is None
        assert schema_version({"schema": 3}) is None

    def test_telemetry_block_round_trips(self, run):
        from repro.obs import WindowedAggregator

        built = build_benchmark(BenchmarkSpec(n_samples=64,
                                              n_measurements=32,
                                              huffman_private=True))
        system = build_platform("ulpmc-bank", fast_forward=True)
        aggregator = WindowedAggregator.attach(system.probe_bus(),
                                               window_cycles=1024)
        system.run(built.benchmark)
        aggregator.detach()
        record = manifest_record(
            "watch", "ecg", arch="ulpmc-bank",
            telemetry=aggregator.telemetry_block(),
            wall_time_s=0.5, speedup_vs_exact=3.0)
        json.dumps(record)
        block = record["telemetry"]
        assert block["schema"] == "telemetry/1"
        assert block["windows"] == len(aggregator.windows) > 0
        assert block["digest"] == aggregator.digest()
        assert len(block["window_digests"]) == block["windows"]

    def test_record_from_stats(self, run):
        system, result = run
        record = manifest_record(
            "trace", "ecg", arch="ulpmc-bank", config=system.config,
            stats=result.stats, wall_time_s=1.25,
            extra={"fast_forward": False})
        assert record["config_hash"] == config_digest(system.config)
        assert record["stats_digest"] == stats_digest(result.stats)
        assert record["stats_summary"]["total_cycles"] \
            == result.stats.total_cycles
        assert record["extra"] == {"fast_forward": False}
        # The whole record must be JSON-serialisable as-is.
        json.dumps(record)

    def test_payload_digest_without_stats(self):
        record = manifest_record("experiment", "table1", payload="a,b\n1,2")
        assert record["stats_digest"] is not None
        assert record["stats_summary"] is None


class TestJsonl:
    def test_append_and_read_round_trip(self, tmp_path, run):
        system, result = run
        directory = tmp_path / "runs"
        first = manifest_record("profile", "ecg", arch="ulpmc-bank",
                                stats=result.stats)
        second = manifest_record("benchmark", "overhead",
                                 payload=[{"idle_overhead": 0.01}])
        path = write_manifest(first, directory=directory)
        assert write_manifest(second, directory=directory) == path
        records = read_manifests(directory=directory)
        assert [record["kind"] for record in records] \
            == ["profile", "benchmark"]
        assert records[0]["stats_digest"] == stats_digest(result.stats)

    def test_read_missing_manifest(self, tmp_path):
        assert read_manifests(directory=tmp_path / "nowhere") == []

    def test_identical_runs_share_digests(self, run):
        """The reproducibility contract the manifest trail exists for."""
        system, result = run
        built = build_benchmark(BenchmarkSpec(n_samples=64,
                                              n_measurements=32,
                                              huffman_private=True))
        again = build_platform("ulpmc-bank", fast_forward=True) \
            .run(built.benchmark)
        assert stats_digest(again.stats) == stats_digest(result.stats)


class TestPrecomputedDigests:
    def test_digest_value_carried_verbatim(self):
        record = manifest_record("farm", "shard", arch="mc-ref",
                                 stats_digest_value="abc123",
                                 stats_summary={"total_cycles": 7})
        assert record["stats_digest"] == "abc123"
        assert record["stats_summary"] == {"total_cycles": 7}

    def test_digest_value_excludes_stats_and_payload(self, run):
        system, result = run
        with pytest.raises(ValueError):
            manifest_record("farm", "shard", stats=result.stats,
                            stats_digest_value="abc123")
        with pytest.raises(ValueError):
            manifest_record("farm", "shard", payload="x",
                            stats_digest_value="abc123")


def _hammer(directory, writer: int, count: int, barrier) -> None:
    barrier.wait()
    for sequence in range(count):
        write_manifest(manifest_record(
            "farm", f"writer{writer}-rec{sequence}",
            payload={"writer": writer, "sequence": sequence}),
            directory=directory)


class TestConcurrentAppends:
    def test_parallel_writers_never_interleave_lines(self, tmp_path):
        """N processes hammering one manifest must yield N*COUNT whole
        lines — the single-``os.write`` append contract the farm's
        result writer relies on."""
        import json as json_module
        import multiprocessing

        writers, count = 4, 25
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        barrier = ctx.Barrier(writers)
        processes = [ctx.Process(target=_hammer,
                                 args=(tmp_path, writer, count, barrier))
                     for writer in range(writers)]
        for process in processes:
            process.start()
        for process in processes:
            process.join(60)
            assert process.exitcode == 0
        lines = (tmp_path / "manifest.jsonl").read_text() \
            .splitlines()
        assert len(lines) == writers * count
        seen = set()
        for line in lines:
            record = json_module.loads(line)  # every line parses whole
            seen.add(record["name"])
        assert seen == {f"writer{w}-rec{s}"
                        for w in range(writers) for s in range(count)}
        assert len(read_manifests(directory=tmp_path)) == writers * count
