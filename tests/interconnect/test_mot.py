"""Mesh-of-Trees structural model."""

import pytest

from repro.errors import ConfigurationError
from repro.interconnect.mot import MeshOfTrees


@pytest.mark.parametrize("masters,banks", [(8, 16), (8, 8), (4, 4), (2, 8),
                                           (1, 1)])
def test_node_counts_match_closed_form(masters, banks):
    mot = MeshOfTrees(masters, banks)
    mot.validate_structure()
    assert mot.routing_nodes == masters * (banks - 1)
    assert mot.arbitration_nodes == banks * (masters - 1)


def test_paper_crossbar_geometries():
    dxbar = MeshOfTrees(8, 16)
    ixbar = MeshOfTrees(8, 8)
    assert dxbar.total_nodes == 8 * 15 + 16 * 7   # 232
    assert ixbar.total_nodes == 8 * 7 + 8 * 7     # 112
    # The deeper D-Xbar explains part of the critical path discussion.
    assert dxbar.depth == 7 and ixbar.depth == 6


def test_every_master_reaches_every_bank():
    import networkx as nx
    mot = MeshOfTrees(4, 8)
    for master in range(4):
        for bank in range(8):
            assert nx.has_path(mot.graph, ("master", master),
                               ("bank", bank))


def test_non_power_of_two_rejected():
    with pytest.raises(ConfigurationError):
        MeshOfTrees(6, 16)
    with pytest.raises(ConfigurationError):
        MeshOfTrees(8, 12)


def test_zero_rejected():
    with pytest.raises(ConfigurationError):
        MeshOfTrees(0, 4)
