"""Round-robin arbiter fairness."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.interconnect.arbiter import RoundRobinArbiter


class TestBasics:
    def test_single_requester_always_wins(self):
        arbiter = RoundRobinArbiter(4)
        for __ in range(5):
            assert arbiter.grant([2]) == 2

    def test_alternation_under_persistent_conflict(self):
        """Paper: 'the requests are served alternately'."""
        arbiter = RoundRobinArbiter(4)
        winners = [arbiter.grant([1, 3]) for __ in range(6)]
        assert winners == [1, 3, 1, 3, 1, 3]

    def test_pointer_moves_past_winner(self):
        arbiter = RoundRobinArbiter(8)
        assert arbiter.grant(range(8)) == 0
        assert arbiter.grant(range(8)) == 1
        assert arbiter.grant([0]) == 0
        assert arbiter.grant(range(8)) == 1

    def test_empty_request_set_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(4).grant([])

    def test_out_of_range_requester_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(4).grant([7])

    def test_reset(self):
        arbiter = RoundRobinArbiter(4)
        arbiter.grant([3])
        arbiter.reset()
        assert arbiter.pointer == 0 and arbiter.grants == 0


class TestFairnessProperty:
    @given(st.sets(st.integers(min_value=0, max_value=7), min_size=1),
           st.integers(min_value=1, max_value=5))
    def test_each_persistent_requester_served_equally(self, requesters,
                                                      rounds):
        """Over k*N grants of a persistent set of N requesters, everyone
        wins exactly k times."""
        arbiter = RoundRobinArbiter(8)
        wins = {requester: 0 for requester in requesters}
        for __ in range(rounds * len(requesters)):
            wins[arbiter.grant(requesters)] += 1
        assert set(wins.values()) == {rounds}

    @given(st.lists(st.sets(st.integers(min_value=0, max_value=7),
                            min_size=1), min_size=1, max_size=50))
    def test_winner_always_a_requester(self, request_sequence):
        arbiter = RoundRobinArbiter(8)
        for requesters in request_sequence:
            assert arbiter.grant(requesters) in requesters
