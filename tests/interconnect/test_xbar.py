"""Crossbar: broadcast merging, conflicts, stalls, transitions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.interconnect.xbar import Crossbar, Request


def reads(*specs):
    return [Request(master, bank, offset) for master, bank, offset in specs]


class TestBroadcast:
    def test_same_address_reads_merge_into_one_access(self):
        xbar = Crossbar(8, 8, broadcast=True)
        granted = xbar.arbitrate(reads(*[(m, 2, 5) for m in range(8)]))
        assert granted == {(m, False) for m in range(8)}
        assert xbar.stats.bank_accesses == 1
        assert xbar.stats.broadcast_savings == 7
        assert xbar.stats.broadcasts == 1
        assert xbar.stats.stalls == 0

    def test_broadcast_disabled_serialises(self):
        xbar = Crossbar(8, 8, broadcast=False)
        granted = xbar.arbitrate(reads(*[(m, 2, 5) for m in range(8)]))
        assert len(granted) == 1
        assert xbar.stats.stalls == 7

    def test_different_offsets_same_bank_conflict(self):
        xbar = Crossbar(8, 8, broadcast=True)
        granted = xbar.arbitrate(reads((0, 1, 10), (1, 1, 11)))
        assert len(granted) == 1
        assert xbar.stats.conflict_events == 1

    def test_writes_never_merge(self):
        xbar = Crossbar(8, 8, broadcast=True)
        granted = xbar.arbitrate([Request(0, 3, 7, write=True),
                                  Request(1, 3, 7, write=True)])
        assert len(granted) == 1

    def test_partial_broadcast_group_wins_together(self):
        xbar = Crossbar(8, 8, broadcast=True)
        granted = xbar.arbitrate(reads((0, 1, 5), (1, 1, 5), (2, 1, 9)))
        # Round-robin points at master 0; its whole same-address group
        # (masters 0 and 1) is served in the single access.
        assert granted == {(0, False), (1, False)}
        assert xbar.stats.bank_accesses == 1
        assert xbar.stats.stalls == 1


class TestPorts:
    def test_read_and_write_from_same_master_different_banks(self):
        xbar = Crossbar(8, 16, broadcast=True)
        granted = xbar.arbitrate([Request(0, 1, 5),
                                  Request(0, 2, 6, write=True)])
        assert granted == {(0, False), (0, True)}
        assert xbar.stats.bank_accesses == 2

    def test_read_and_write_same_bank_serialise(self):
        """A single-ported bank cannot serve a core's read and write in
        one cycle."""
        xbar = Crossbar(8, 16, broadcast=True)
        granted = xbar.arbitrate([Request(0, 1, 5),
                                  Request(0, 1, 6, write=True)])
        assert granted == {(0, False)}  # read served first
        granted = xbar.arbitrate([Request(0, 1, 6, write=True)])
        assert granted == {(0, True)}

    def test_duplicate_port_request_rejected(self):
        xbar = Crossbar(8, 8)
        with pytest.raises(ValueError):
            xbar.arbitrate(reads((0, 1, 5), (0, 2, 6)))


class TestFairness:
    def test_round_robin_across_cycles(self):
        xbar = Crossbar(4, 4, broadcast=True)
        winners = []
        for __ in range(4):
            granted = xbar.arbitrate(reads((0, 0, 1), (1, 0, 2),
                                           (2, 0, 3), (3, 0, 4)))
            winners.append(next(iter(granted))[0])
        assert sorted(winners) == [0, 1, 2, 3]


class TestTransitions:
    def test_bank_transitions_counted_per_master(self):
        xbar = Crossbar(2, 4, broadcast=True)
        xbar.arbitrate(reads((0, 0, 0)))
        xbar.arbitrate(reads((0, 1, 0)))   # transition
        xbar.arbitrate(reads((0, 1, 1)))   # same bank: no transition
        xbar.arbitrate(reads((0, 2, 0)))   # transition
        assert xbar.stats.bank_transitions == {0: 2}
        assert xbar.stats.total_bank_transitions == 2

    def test_first_access_is_not_a_transition(self):
        xbar = Crossbar(2, 4)
        xbar.arbitrate(reads((0, 3, 0)))
        assert xbar.stats.total_bank_transitions == 0


class TestInvariants:
    banks = st.integers(min_value=0, max_value=3)
    offsets = st.integers(min_value=0, max_value=7)

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=7),
                              banks, offsets, st.booleans()),
                    min_size=1, max_size=16))
    def test_conservation(self, raw):
        """deliveries == granted requests; accesses <= deliveries;
        stalls == requests - deliveries; at most one access per bank."""
        seen = set()
        requests = []
        for master, bank, offset, write in raw:
            if (master, write) in seen:
                continue
            seen.add((master, write))
            requests.append(Request(master, bank, offset, write=write))
        xbar = Crossbar(8, 4, broadcast=True)
        granted = xbar.arbitrate(requests)
        stats = xbar.stats
        assert stats.deliveries == len(granted)
        assert stats.bank_accesses <= stats.deliveries
        assert stats.stalls == len(requests) - stats.deliveries
        touched_banks = {request.bank for request in requests}
        assert stats.bank_accesses == len(touched_banks)

    def test_reset(self):
        xbar = Crossbar(4, 4)
        xbar.arbitrate(reads((0, 0, 0)))
        xbar.reset()
        assert xbar.stats.bank_accesses == 0
        assert xbar._last_bank == [None] * 4


class TestEmpty:
    def test_no_requests(self):
        assert Crossbar(4, 4).arbitrate([]) == set()
