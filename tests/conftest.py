"""Shared fixtures: small benchmark instances and cached platform runs."""

from __future__ import annotations

import pytest

from repro.kernels import BenchmarkSpec, build_benchmark
from repro.platform import build_platform


@pytest.fixture(scope="session")
def small_spec() -> BenchmarkSpec:
    """A reduced-geometry benchmark: same kernel, fast to simulate."""
    return BenchmarkSpec(n_samples=64, n_measurements=32)


@pytest.fixture(scope="session")
def small_built(small_spec):
    return build_benchmark(small_spec)


@pytest.fixture(scope="session")
def small_built_private():
    return build_benchmark(
        BenchmarkSpec(n_samples=64, n_measurements=32,
                      huffman_private=True))


@pytest.fixture(scope="session")
def small_results(small_built):
    """Simulation results of the small benchmark on all three platforms."""
    results = {}
    for arch in ("mc-ref", "ulpmc-int", "ulpmc-bank"):
        results[arch] = build_platform(arch).run(small_built.benchmark)
    return results
