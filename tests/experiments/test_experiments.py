"""Every experiment runs and lands close to the paper.

Per-experiment tolerances reflect the calibration structure: anchored
quantities must be tight; emergent quantities (simulated activity flowing
through the calibrated models) may drift a few percent; cycle-count
ratios of the re-implemented kernel get the loosest bound.
"""

import pytest

from repro.experiments import EXPERIMENTS

#: experiment id -> maximum relative error allowed over its *anchored*
#: comparisons (checked metric by metric below with named exceptions).
TOLERANCES = {
    # Fig 3 is an integer-rounded pie chart (and the paper's Table II
    # components sum to 0.66 mW against its 0.64 mW total row).
    "fig3": 0.10,
    "fig5": 0.02,
    "fig6": 0.02,
    "table1": 0.10,
    "table2": 0.35,
    "fig7": 0.10,
    "fig8": 0.06,
    "core": 0.01,
    "cycles": 0.15,
    "ablations": 0.05,
    "scaling": 0.05,
    "lifetime": 0.10,
}

#: metrics excluded from the blanket tolerance, with their own bound:
#: quantities the paper itself reports loosely, or narrative/ablation
#: checks whose magnitude is kernel-specific (shape still asserted).
EXCEPTIONS = {
    ("fig7", "ulpmc-int saving at 5 kOps/s (falters: no gating)"): None,
    ("cycles", "IM access reduction with I-Xbar broadcast only"): None,
    ("table2", "ulpmc-int dxbar power"): 0.5,
    ("table2", "ulpmc-int dm power"): 0.25,
    ("table2", "ulpmc-bank dm power"): 0.25,
    # Extension studies: directional claims, checked in NarrativeShapes.
    ("scaling", "8-core vs 1-core dynamic power, burst scenario"): None,
    ("scaling",
     "8-core vs 1-core dynamic power, continuous scenario"): None,
}


@pytest.fixture(scope="module", params=sorted(EXPERIMENTS))
def experiment(request):
    return request.param, EXPERIMENTS[request.param].run()


class TestExperiments:
    def test_produces_rows(self, experiment):
        __, result = experiment
        assert result.rows
        assert all(len(row) == len(result.headers)
                   for row in result.rows)

    def test_comparisons_within_tolerance(self, experiment):
        exp_id, result = experiment
        tolerance = TOLERANCES[exp_id]
        failures = []
        for comparison in result.comparisons:
            bound = EXCEPTIONS.get((exp_id, comparison.metric), tolerance)
            if bound is None:
                continue
            if comparison.relative_error > bound:
                failures.append(comparison.render())
        assert not failures, "\n".join(failures)

    def test_text_rendering(self, experiment):
        exp_id, result = experiment
        text = result.to_text()
        assert exp_id in text
        assert "paper" in text

    def test_csv_rendering(self, experiment):
        __, result = experiment
        csv = result.to_csv()
        assert csv.count("\n") == len(result.rows)


class TestNarrativeShapes:
    """Direction-of-effect checks for the loosely-bounded metrics."""

    def test_broadcast_only_ablation_direction(self):
        result = EXPERIMENTS["cycles"].run()
        values = {c.metric: c.measured for c in result.comparisons}
        full = values["IM access reduction with DM organisation + "
                      "broadcasts"]
        partial = values["IM access reduction with I-Xbar broadcast only"]
        assert partial < full, \
            "losing the DM organisation must hurt instruction broadcast"

    def test_fig7_int_falters_at_low_workload(self):
        result = EXPERIMENTS["fig7"].run()
        values = {c.metric: c.measured for c in result.comparisons}
        low = values["ulpmc-int saving at 5 kOps/s (falters: no gating)"]
        high = values["ulpmc-int saving at the highest common workload"]
        assert low < 5.0 < high

    def test_scaling_burst_favours_parallelism(self):
        """PATMOS'11 premise: 8 near-threshold cores beat 1 near-nominal
        core by a wide margin in the compute-bound scenario."""
        result = EXPERIMENTS["scaling"].run()
        values = {c.metric: c.measured for c in result.comparisons}
        burst = values["8-core vs 1-core dynamic power, burst scenario"]
        continuous = values[
            "8-core vs 1-core dynamic power, continuous scenario"]
        assert burst < 0.35
        assert burst < continuous < 1.0

    def test_ablations_monotone(self):
        """Each removed mechanism costs cycles: full <= shared-LUT <=
        no-data-broadcast <= no-instruction-broadcast."""
        result = EXPERIMENTS["ablations"].run()
        cycles = [row[1] for row in result.rows]
        assert cycles == sorted(cycles)

    def test_lifetime_ordering(self):
        result = EXPERIMENTS["lifetime"].run()
        by_mission = {}
        for mission, arch, power, *__ in result.rows:
            by_mission.setdefault(mission, {})[arch] = power
        for powers in by_mission.values():
            assert powers["ulpmc-bank"] < powers["ulpmc-int"] \
                <= powers["mc-ref"] * 1.001
