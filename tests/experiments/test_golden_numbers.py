"""Golden-trace regression tests for the paper-reproduction outputs.

The tolerance-based checks in ``test_experiments.py`` verify we land
close to the *paper*; these tests pin our own reproduced numbers — Table
1 area, Table 2 dynamic power and the Fig. 5–8 design points — as JSON
fixtures, so any simulator or power-model change that silently shifts a
reproduced quantity fails tier-1 even while staying inside the paper
tolerances.  This is the safety net that let the fast-forward execution
mode land: a fast path that drifted any activity statistic would move
these numbers.

The comparison is exact for strings/integers and uses a tight relative
tolerance (``REL_TOL``) for floats, leaving room only for
platform-dependent floating-point rounding.

To regenerate after an *intentional* change::

    PYTHONPATH=src python tests/experiments/test_golden_numbers.py
"""

from __future__ import annotations

import json
import math
import pathlib

import pytest

from repro.experiments import EXPERIMENTS
from repro.platform import set_default_fast_forward, \
    set_default_translation_blocks
from repro.power.calibration import calibrated_set, reference_results

#: The pinned experiments: paper tables/figures built from simulation.
GOLDEN_IDS = ("table1", "table2", "fig5", "fig6", "fig7", "fig8")

#: Execution modes the golden numbers are pinned under.  All three must
#: reproduce the *same* fixtures bit-for-bit: the fast-forward engine
#: and its translation-block layer may only change wall-clock time,
#: never a reproduced quantity.  ``exact`` runs last so the session-wide
#: ``reference_results`` cache ends up holding the default-mode results
#: for any later test module.
MODES = {
    "blocks": (True, True),      # (fast_forward, translation_blocks)
    "noblocks": (True, False),
    "exact": (False, True),
}

_active_mode: str | None = None


def _activate(mode: str) -> None:
    """Switch the process-wide execution mode, invalidating caches."""
    global _active_mode
    if mode == _active_mode:
        return
    fast_forward, blocks = MODES[mode]
    reference_results.cache_clear()
    calibrated_set.cache_clear()
    set_default_fast_forward(fast_forward)
    set_default_translation_blocks(blocks)
    _active_mode = mode


@pytest.fixture(scope="module", autouse=True)
def _restore_execution_mode():
    yield
    global _active_mode
    set_default_fast_forward(False)
    set_default_translation_blocks(True)
    if _active_mode not in (None, "exact"):
        # don't leave another mode's results in the session-wide cache
        reference_results.cache_clear()
        calibrated_set.cache_clear()
    _active_mode = None

#: Relative tolerance for float cells; everything else must match exactly.
REL_TOL = 1e-6

FIXTURE_DIR = pathlib.Path(__file__).resolve().parent.parent / "fixtures"


def fixture_path(exp_id: str) -> pathlib.Path:
    return FIXTURE_DIR / f"golden_{exp_id}.json"


def snapshot(exp_id: str) -> dict:
    """Run one experiment and reduce it to its JSON-serialisable core."""
    result = EXPERIMENTS[exp_id].run()
    return {
        "exp_id": result.exp_id,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [list(row) for row in result.rows],
        "comparisons": [
            {"metric": c.metric, "paper": c.paper, "measured": c.measured}
            for c in result.comparisons
        ],
    }


def assert_cell_equal(golden, measured, where: str) -> None:
    if isinstance(golden, float) or isinstance(measured, float):
        assert math.isclose(float(golden), float(measured),
                            rel_tol=REL_TOL, abs_tol=1e-12), \
            f"{where}: golden {golden!r} != measured {measured!r}"
    else:
        assert golden == measured, \
            f"{where}: golden {golden!r} != measured {measured!r}"


#: Mode-major parameter order: each mode runs all experiments before
#: the caches are cleared for the next mode, so the expensive
#: ``reference_results`` simulations happen once per mode, not once per
#: (mode, experiment) pair.
PARAMS = [(mode, exp_id) for mode in MODES for exp_id in GOLDEN_IDS]


@pytest.fixture(scope="module", params=PARAMS,
                ids=[f"{mode}-{exp_id}" for mode, exp_id in PARAMS])
def golden_and_current(request):
    mode, exp_id = request.param
    path = fixture_path(exp_id)
    assert path.is_file(), \
        f"missing fixture {path}; regenerate with " \
        "'PYTHONPATH=src python tests/experiments/test_golden_numbers.py'"
    with path.open(encoding="utf-8") as handle:
        golden = json.load(handle)
    _activate(mode)
    return exp_id, golden, snapshot(exp_id)


class TestGoldenNumbers:
    def test_shape_pinned(self, golden_and_current):
        exp_id, golden, current = golden_and_current
        assert golden["exp_id"] == current["exp_id"] == exp_id
        assert golden["headers"] == current["headers"]
        assert len(golden["rows"]) == len(current["rows"])
        assert [c["metric"] for c in golden["comparisons"]] \
            == [c["metric"] for c in current["comparisons"]]

    def test_rows_pinned(self, golden_and_current):
        exp_id, golden, current = golden_and_current
        for row_i, (grow, crow) in enumerate(zip(golden["rows"],
                                                 current["rows"])):
            assert len(grow) == len(crow), f"{exp_id} row {row_i} width"
            for col_i, (gcell, ccell) in enumerate(zip(grow, crow)):
                assert_cell_equal(
                    gcell, ccell,
                    f"{exp_id} row {row_i} col {col_i}")

    def test_comparisons_pinned(self, golden_and_current):
        exp_id, golden, current = golden_and_current
        for gcomp, ccomp in zip(golden["comparisons"],
                                current["comparisons"]):
            where = f"{exp_id} comparison {gcomp['metric']!r}"
            assert_cell_equal(gcomp["paper"], ccomp["paper"],
                              where + " (paper)")
            assert_cell_equal(gcomp["measured"], ccomp["measured"],
                              where + " (measured)")


def regenerate() -> None:
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    for exp_id in GOLDEN_IDS:
        path = fixture_path(exp_id)
        with path.open("w", encoding="utf-8") as handle:
            json.dump(snapshot(exp_id), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    regenerate()
