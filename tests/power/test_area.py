"""Area model: Table I must come out exactly."""

import pytest

from repro.platform.config import build_config
from repro.power.area import AreaModel, UM2_PER_GE, area_report


class TestTableOne:
    def test_mcref_row(self):
        report = area_report(build_config("mc-ref"))
        assert report["cores"] == pytest.approx(81.5, abs=0.05)
        assert report["im"] == pytest.approx(429.4, abs=0.05)
        assert report["dm"] == pytest.approx(576.7, abs=0.05)
        assert report["dxbar"] == pytest.approx(20.5, abs=0.05)
        assert report["ixbar"] == 0.0
        assert report["total"] == pytest.approx(1108.1, abs=0.2)

    @pytest.mark.parametrize("arch", ["ulpmc-int", "ulpmc-bank"])
    def test_proposed_row(self, arch):
        report = area_report(build_config(arch))
        assert report["cores"] == pytest.approx(87.3, abs=0.05)
        assert report["dxbar"] == pytest.approx(23.0, abs=0.05)
        assert report["ixbar"] == pytest.approx(12.4, abs=0.05)
        assert report["total"] == pytest.approx(1128.8, abs=0.2)

    def test_memories_dominate(self):
        report = area_report(build_config("mc-ref"))
        assert (report["im"] + report["dm"]) / report["total"] > 0.88

    def test_proposed_overhead_below_two_percent(self):
        ref = area_report(build_config("mc-ref"))["total"]
        proposed = area_report(build_config("ulpmc-int"))["total"]
        assert 0 < proposed / ref - 1 < 0.02

    def test_logic_area_increases_twenty_percent(self):
        """Paper: 'the logic area in the proposed design increases almost
        20% with respect to the mc-ref architecture'."""
        ref = AreaModel(build_config("mc-ref")).logic_kge()
        proposed = AreaModel(build_config("ulpmc-int")).logic_kge()
        assert 0.15 < proposed / ref - 1 < 0.25


class TestModelBehaviour:
    def test_banking_costs_periphery(self):
        """More banks of the same total capacity cost more area."""
        model = AreaModel(build_config("mc-ref"))
        few = 8 * model.memory_bank_kge(8192)
        many = 16 * model.memory_bank_kge(4096)
        assert many > few

    def test_total_mm2_plausible(self):
        area = AreaModel(build_config("ulpmc-int")).total_mm2()
        assert 3.0 < area < 4.0  # ~1.13 MGE * 3.136 um2
        assert UM2_PER_GE == 3.136
