"""Power model on synthetic statistics: scaling laws and gating."""

import pytest

from repro.platform.config import build_config
from repro.platform.stats import CoreStats, SimulationStats
from repro.power.components import calibrate_energies, calibrate_leakage
from repro.power.power_model import PowerModel
from repro.power.technology import make_technology

from tests.power.test_components import make_rates


def synthetic_stats(arch, cycles=10_000, gated=0, transitions=0):
    stats = SimulationStats(arch=arch, total_cycles=cycles)
    stats.cores = [CoreStats(retired=cycles) for __ in range(8)]
    stats.im_bank_accesses = cycles if arch != "mc-ref" else 8 * cycles
    stats.im_fetches = 8 * cycles
    stats.im_bank_transitions = transitions
    stats.im_banks_gated = gated
    stats.dm_bank_accesses = 2 * cycles
    stats.dm_reads_delivered = 2 * cycles
    return stats


@pytest.fixture(scope="module")
def parts():
    energies = calibrate_energies(
        make_rates(),
        make_rates(im=1.1, trans=8.0),
        make_rates(im=1.0, trans=0.0))
    leakage = calibrate_leakage(30e-6, logic_kge_mcref=102.0)
    technology = make_technology()
    return energies, leakage, technology


def make_model(parts, arch="mc-ref", post_layout_factor=1.0, **kwargs):
    energies, leakage, technology = parts
    return PowerModel(build_config(arch), synthetic_stats(arch, **kwargs),
                      energies, leakage, technology,
                      post_layout_factor=post_layout_factor)


class TestScalingLaws:
    def test_dynamic_power_linear_in_frequency(self, parts):
        model = make_model(parts)
        p1 = model.dynamic_power(1e6, 1.2).total
        p2 = model.dynamic_power(2e6, 1.2).total
        assert p2 == pytest.approx(2 * p1)

    def test_dynamic_power_quadratic_in_voltage(self, parts):
        model = make_model(parts)
        p_nom = model.dynamic_power(1e6, 1.2).total
        p_half = model.dynamic_power(1e6, 0.6).total
        assert p_half == pytest.approx(p_nom / 4)

    def test_post_layout_factor_is_uniform(self, parts):
        model = make_model(parts, post_layout_factor=7.8)
        raw = model.dynamic_power(1e6, 1.2, post_layout=False)
        scaled = model.dynamic_power(1e6, 1.2, post_layout=True)
        for name, value in raw.as_dict().items():
            assert scaled.as_dict()[name] == pytest.approx(7.8 * value)
        # Ratios (the paper's savings) are invariant.
        assert scaled.shares() == pytest.approx(raw.shares())

    def test_leakage_independent_of_frequency(self, parts):
        model = make_model(parts)
        assert model.total_leakage(0.5) == model.total_leakage(0.5)
        low = model.total_power(1e3, 0.5)
        lower = model.total_power(1e2, 0.5)
        assert low > lower > model.total_leakage(0.5)


class TestGating:
    def test_gated_banks_cut_im_leakage(self, parts):
        full = make_model(parts, arch="ulpmc-bank", gated=0)
        gated = make_model(parts, arch="ulpmc-bank", gated=7)
        leak_full = full.leakage_power(1.2)
        leak_gated = gated.leakage_power(1.2)
        assert leak_gated["im"] == pytest.approx(leak_full["im"] / 8)
        assert leak_gated["dm"] == leak_full["dm"]

    def test_mcref_has_no_ixbar_terms(self, parts):
        model = make_model(parts, arch="mc-ref")
        breakdown = model.dynamic_power(1e6, 1.2)
        assert breakdown.ixbar == 0.0

    def test_proposed_pays_transition_energy(self, parts):
        quiet = make_model(parts, arch="ulpmc-bank", transitions=0)
        busy = make_model(parts, arch="ulpmc-bank", transitions=80_000)
        p_quiet = quiet.dynamic_power(1e6, 1.2)
        p_busy = busy.dynamic_power(1e6, 1.2)
        assert p_busy.cores > p_quiet.cores
        assert p_busy.ixbar > p_quiet.ixbar


class TestEnergyPerOp:
    def test_mcref_energy_per_op_near_80pj(self, parts):
        model = make_model(parts)
        assert model.energy_per_op() * 1e12 == pytest.approx(80.0, rel=0.1)
