"""DVFS policy: the ~10 MOps/s knee behaviour."""

import pytest

from repro.errors import ConfigurationError
from repro.power.dvfs import DVFSPolicy, NOMINAL_PERIOD_NS
from repro.power.technology import make_technology


@pytest.fixture(scope="module")
def policy():
    return DVFSPolicy(make_technology())


class TestOperatingPoints:
    def test_nominal_frequency(self, policy):
        assert policy.f_nominal_hz == pytest.approx(1e9 / 12.0)
        assert NOMINAL_PERIOD_NS == 12.0

    def test_peak_workload_is_paper_magnitude(self, policy):
        peak = policy.max_workload_ops(ops_per_cycle=8.0)
        assert peak == pytest.approx(666.7e6, rel=1e-3)

    def test_voltage_and_frequency_scale_above_knee(self, policy):
        point = policy.operating_point(300e6, ops_per_cycle=8.0)
        assert point.voltage > policy.technology.v_min
        assert point.frequency_hz == pytest.approx(300e6 / 8.0)

    def test_frequency_only_below_knee(self, policy):
        """Paper: below ~10 MOps/s only frequency scales; the supply
        stays at the minimum level."""
        knee = policy.f_min_voltage_hz * 8.0
        assert knee == pytest.approx(10.03e6, rel=0.01)
        for workload in (5e3, 50e3, 5e6):
            point = policy.operating_point(workload, ops_per_cycle=8.0)
            assert point.voltage == policy.technology.v_min

    def test_voltage_monotone_in_workload(self, policy):
        previous = 0.0
        for workload in (1e4, 1e5, 1e6, 1e7, 5e7, 1e8, 3e8, 6e8):
            point = policy.operating_point(workload, ops_per_cycle=8.0)
            assert point.voltage >= previous
            previous = point.voltage

    def test_slower_architecture_needs_higher_frequency(self, policy):
        """ulpmc-bank retires fewer ops/cycle, so the same workload costs
        a higher clock."""
        fast = policy.operating_point(1e6, ops_per_cycle=8.0)
        slow = policy.operating_point(1e6, ops_per_cycle=7.5)
        assert slow.frequency_hz > fast.frequency_hz


class TestGuards:
    def test_infeasible_workload_rejected(self, policy):
        with pytest.raises(ConfigurationError, match="exceeds"):
            policy.operating_point(700e6, ops_per_cycle=8.0)

    def test_nonpositive_workload_rejected(self, policy):
        with pytest.raises(ConfigurationError):
            policy.operating_point(0, ops_per_cycle=8.0)

    def test_bad_period_rejected(self):
        with pytest.raises(ConfigurationError):
            DVFSPolicy(make_technology(), period_ns=0)

    def test_period_property(self, policy):
        point = policy.operating_point(666e6, ops_per_cycle=8.0)
        assert point.period_ns == pytest.approx(1e9 / point.frequency_hz)
