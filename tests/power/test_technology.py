"""Technology model: delay/voltage scaling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CalibrationError
from repro.power.technology import (
    THRESHOLD_SPEED_RATIO,
    TechnologyModel,
    make_technology,
)

voltages = st.floats(min_value=0.5, max_value=1.2)


@pytest.fixture(scope="module")
def tech():
    return make_technology()


class TestCalibration:
    def test_anchor_hit_exactly(self, tech):
        assert tech.speed_factor(tech.v_min) \
            == pytest.approx(THRESHOLD_SPEED_RATIO, rel=1e-8)

    def test_nominal_speed_is_one(self, tech):
        assert tech.speed_factor(tech.v_nom) == pytest.approx(1.0)

    def test_alpha_plausible_for_near_threshold(self, tech):
        assert 1.0 < tech.alpha < 4.0

    def test_bad_ratio_rejected(self):
        with pytest.raises(CalibrationError):
            make_technology(threshold_speed_ratio=1.5)

    def test_inconsistent_voltages_rejected(self):
        with pytest.raises(CalibrationError):
            TechnologyModel(v_nom=1.2, v_min=0.3, v_t=0.4)


class TestMonotonicity:
    def test_speed_monotone(self, tech):
        previous = 0.0
        for step in range(51):
            v = 0.5 + step * (1.2 - 0.5) / 50
            speed = tech.speed_factor(v)
            assert speed >= previous
            previous = speed

    def test_speed_zero_at_threshold_device(self, tech):
        assert tech.speed_factor(tech.v_t) == 0.0

    @given(st.floats(min_value=0.016, max_value=1.0))
    def test_voltage_for_speed_inverts(self, speed):
        tech = make_technology()
        v = tech.voltage_for_speed(speed)
        assert tech.v_min <= v <= tech.v_nom
        if speed > tech.min_speed_factor:
            assert tech.speed_factor(v) == pytest.approx(speed, rel=1e-6)

    def test_below_knee_returns_v_min(self, tech):
        assert tech.voltage_for_speed(1e-6) == tech.v_min

    def test_overspeed_rejected(self, tech):
        with pytest.raises(CalibrationError):
            tech.voltage_for_speed(1.5)


class TestPowerScaling:
    def test_dynamic_scale_is_square_law(self, tech):
        """Paper: 'the power decreases with the square of the supply
        voltage'."""
        assert tech.dynamic_scale(1.2) == pytest.approx(1.0)
        assert tech.dynamic_scale(0.6) == pytest.approx(0.25)

    def test_leakage_scale(self, tech):
        assert tech.leakage_scale(1.2) == pytest.approx(1.0)
        assert tech.leakage_scale(0.5) < 0.25
