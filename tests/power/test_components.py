"""Per-event energy calibration on synthetic activity rates."""

import pytest

from repro.errors import CalibrationError
from repro.power.components import (
    IM_LEAKAGE_SHARE,
    calibrate_energies,
    calibrate_leakage,
)


def make_rates(core=8.0, im=8.0, dm=1.75, dmdel=2.4, imdel=8.0, trans=0.0):
    return {
        "core_active": core,
        "im_access": im,
        "im_delivery": imdel,
        "im_bank_transition": trans,
        "dm_access": dm,
        "dm_delivery": dmdel,
    }


class TestEnergyCalibration:
    def test_core_energy_matches_paper_core_claim(self):
        """0.18 mW at 8 MOps/s -> 22.5 pJ/op -> 15.6 pJ/op at 1.0 V."""
        energies = calibrate_energies(
            make_rates(),
            make_rates(im=1.1, trans=8.0),
            make_rates(im=1.0, trans=0.0))
        assert energies.core_instr * 1e12 == pytest.approx(22.5, rel=1e-6)
        at_1v = energies.core_instr * (1.0 / 1.2) ** 2
        assert at_1v * 1e12 == pytest.approx(15.625, rel=1e-6)

    def test_im_energy(self):
        energies = calibrate_energies(
            make_rates(),
            make_rates(im=1.1, trans=8.0),
            make_rates(im=1.0, trans=0.0))
        assert energies.im_access * 1e12 == pytest.approx(45.0, rel=1e-6)

    def test_transition_term_separates_int_from_bank(self):
        energies = calibrate_energies(
            make_rates(),
            make_rates(im=1.1, trans=8.0),
            make_rates(im=1.0, trans=0.0))
        # int cores draw 0.25 mW vs bank 0.21 mW at identical activity:
        # the difference must be carried entirely by the transition term.
        per_transition = energies.core_path_transition
        assert per_transition > 0
        diff_w = per_transition * 8.0 * 1e6
        assert diff_w == pytest.approx(0.04e-3, rel=1e-6)

    def test_identical_transition_rates_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate_energies(make_rates(), make_rates(trans=1.0),
                               make_rates(trans=1.0))

    def test_zero_activity_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate_energies(make_rates(im=0.0),
                               make_rates(trans=8.0),
                               make_rates(trans=0.0))


class TestLeakageCalibration:
    def test_im_share_matches_gating_saving(self):
        """Gating 7 of 8 banks must save 38.8 % of total leakage."""
        budget = calibrate_leakage(100e-6, logic_kge_mcref=102.0)
        saving = 7 * budget.im_per_bank / 100e-6
        assert saving == pytest.approx(0.388, rel=1e-9)
        assert IM_LEAKAGE_SHARE == pytest.approx(0.4434, abs=1e-3)

    def test_budget_sums_to_total(self):
        budget = calibrate_leakage(100e-6, logic_kge_mcref=102.0)
        total = (8 * budget.im_per_bank + 16 * budget.dm_per_bank
                 + 102.0 * budget.logic_per_kge)
        assert total == pytest.approx(100e-6, rel=1e-9)

    def test_excessive_logic_share_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate_leakage(1e-6, logic_kge_mcref=100.0,
                              logic_share=0.9)
