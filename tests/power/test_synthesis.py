"""Synthesis clock-constraint model (Figs. 5 and 6 machinery)."""

import pytest

from repro.errors import ConfigurationError
from repro.power.synthesis import (
    DESIGN_POINTS_NS,
    IXBAR_PATH_DELAY_NS,
    KNEE_LABELS_MW,
    SynthesisModel,
)
from repro.power.technology import make_technology


@pytest.fixture(scope="module")
def model():
    return SynthesisModel(make_technology(), leakage_nominal_w=30e-6)


class TestCalibration:
    @pytest.mark.parametrize("family", ["mc-ref", "proposed"])
    def test_knee_labels_reproduced(self, model, family):
        for period in DESIGN_POINTS_NS[family]:
            measured = model.threshold_knee_power(family, period)
            assert measured * 1e3 == pytest.approx(
                KNEE_LABELS_MW[family][period], rel=1e-6)

    def test_savings_vs_speed_optimised(self, model):
        assert 100 * model.saving_vs_speed_optimised("mc-ref") \
            == pytest.approx(15.5, abs=0.3)
        assert 100 * model.saving_vs_speed_optimised("proposed") \
            == pytest.approx(24.1, abs=0.3)

    def test_ixbar_critical_path_delay(self):
        assert IXBAR_PATH_DELAY_NS == pytest.approx(1.8)
        assert min(DESIGN_POINTS_NS["proposed"]) \
            - min(DESIGN_POINTS_NS["mc-ref"]) == pytest.approx(1.8)


class TestPhysicalConsistency:
    @pytest.mark.parametrize("family", ["mc-ref", "proposed"])
    def test_tighter_constraint_higher_energy(self, model, family):
        """Speed-optimised designs pay more energy per op: the solved
        multipliers must decrease with the clock period."""
        periods = sorted(DESIGN_POINTS_NS[family])
        multipliers = [model.energy_multiplier(family, p) for p in periods]
        assert multipliers == sorted(multipliers, reverse=True)
        assert model.energy_multiplier(family, 12.0) == pytest.approx(1.0)

    def test_power_monotone_in_workload(self, model):
        powers = [model.power("mc-ref", 12.0, w)
                  for w in (1e5, 1e6, 1e7, 1e8, 6e8)]
        assert powers == sorted(powers)

    def test_max_workload_scales_with_period(self, model):
        assert model.max_workload("mc-ref", 7.1) \
            > model.max_workload("mc-ref", 12.0)
        assert model.max_workload("mc-ref", 12.0) \
            == pytest.approx(666.7e6, rel=1e-3)

    def test_curve_generation(self, model):
        curve = model.power_curve("proposed", 12.0, [1e6, 1e7])
        assert len(curve) == 2
        assert curve[0][1] < curve[1][1]


class TestGuards:
    def test_unknown_design_point(self, model):
        with pytest.raises(ConfigurationError):
            model.design_point("mc-ref", 13.0)

    def test_workload_beyond_peak(self, model):
        with pytest.raises(ConfigurationError):
            model.power("mc-ref", 20.0, 500e6)
