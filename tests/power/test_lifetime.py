"""Battery lifetime model."""

import pytest

from repro.errors import ConfigurationError
from repro.power.lifetime import (
    Battery,
    CR2032,
    CR2477,
    lifetime_days,
    lifetime_hours,
)


@pytest.fixture
def cell():
    return Battery.from_preset(CR2032)


class TestBattery:
    def test_energy(self, cell):
        # 225 mAh * 3 V * 0.85 efficiency
        assert cell.energy_joules == pytest.approx(
            0.225 * 3600 * 3.0 * 0.85)

    def test_presets(self):
        big = Battery.from_preset(CR2477)
        small = Battery.from_preset(CR2032)
        assert big.energy_joules > small.energy_joules

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Battery("bad", -1, 3.0)
        with pytest.raises(ConfigurationError):
            Battery("bad", 100, 3.0, converter_efficiency=0.0)


class TestLifetime:
    def test_inverse_in_power(self, cell):
        """Near-inverse in load; self-discharge bends it slightly below
        the ideal 10x."""
        ratio = lifetime_hours(10e-6, cell) / lifetime_hours(100e-6, cell)
        assert 8.0 < ratio < 10.0

    def test_days_conversion(self, cell):
        assert lifetime_days(50e-6, cell) \
            == pytest.approx(lifetime_hours(50e-6, cell) / 24)

    def test_self_discharge_caps_lifetime(self, cell):
        """At vanishing load, self-discharge bounds the lifetime to the
        order of the discharge time constant (~50 years at 2 %/year)."""
        days = lifetime_days(1e-12, cell)
        assert days < 60 * 365

    def test_magnitude_for_paper_operating_point(self, cell):
        """A ~6 uW leakage-dominated node should live years on CR2032."""
        assert 2 * 365 < lifetime_days(6e-6, cell) < 20 * 365

    def test_zero_load_rejected(self, cell):
        with pytest.raises(ConfigurationError):
            lifetime_hours(0.0, cell)
