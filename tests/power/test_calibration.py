"""End-to-end calibration against the reference benchmark runs.

These are the integration tests of the whole power stack; they share the
cached full-geometry simulations (about 15 s once per session).
"""

import pytest

from repro.power.calibration import (
    FIG7_ANCHOR_POWER_W,
    FIG7_ANCHOR_WORKLOAD_OPS,
    calibrated_set,
)


@pytest.fixture(scope="module")
def cal():
    return calibrated_set()


class TestAnchors:
    def test_fig7_anchor_hit(self, cal):
        power = cal.workload_power("mc-ref", FIG7_ANCHOR_WORKLOAD_OPS)
        assert power == pytest.approx(FIG7_ANCHOR_POWER_W, rel=0.03)

    def test_core_energy_matches_section_iv_c1(self, cal):
        model = cal.power_model("mc-ref")
        rates = cal.results["mc-ref"].stats.activity_rates()
        per_instr = model.cycle_energy().cores / rates["core_active"]
        at_1v = per_instr * (1.0 / 1.2) ** 2
        assert at_1v * 1e12 == pytest.approx(15.6, rel=0.01)

    def test_post_layout_factor_magnitude(self, cal):
        assert 6.0 < cal.post_layout_factor < 10.0

    def test_max_workloads(self, cal):
        assert cal.max_workload("mc-ref") / 1e6 \
            == pytest.approx(664.5, rel=0.01)
        assert cal.max_workload("ulpmc-int") / 1e6 \
            == pytest.approx(662.3, rel=0.01)
        assert cal.max_workload("ulpmc-bank") / 1e6 \
            == pytest.approx(636.9, rel=0.03)


class TestPaperSavings:
    def test_table2_savings(self, cal):
        totals = {}
        for arch in ("mc-ref", "ulpmc-int", "ulpmc-bank"):
            model = cal.power_model(arch)
            f = 8e6 / cal.ops_per_cycle(arch)
            totals[arch] = model.dynamic_power(f, 1.2,
                                               post_layout=False).total
        int_saving = 1 - totals["ulpmc-int"] / totals["mc-ref"]
        bank_saving = 1 - totals["ulpmc-bank"] / totals["mc-ref"]
        assert int_saving == pytest.approx(0.297, abs=0.03)
        assert bank_saving == pytest.approx(0.406, abs=0.03)

    def test_high_workload_savings(self, cal):
        base = cal.workload_power("mc-ref", 600e6)
        bank = cal.workload_power("ulpmc-bank", 600e6)
        interleaved = cal.workload_power("ulpmc-int", 600e6)
        assert 1 - bank / base == pytest.approx(0.395, abs=0.035)
        assert 1 - interleaved / base == pytest.approx(0.296, abs=0.02)

    def test_leakage_dominated_savings(self, cal):
        base = cal.workload_power("mc-ref", 5e3)
        bank = cal.workload_power("ulpmc-bank", 5e3)
        interleaved = cal.workload_power("ulpmc-int", 5e3)
        assert 1 - bank / base == pytest.approx(0.388, abs=0.03)
        # ulpmc-int falters at low workloads (paper Fig. 7).
        assert abs(1 - interleaved / base) < 0.05

    def test_crossover_near_50kops(self, cal):
        model = cal.power_model("mc-ref")
        point = cal.dvfs().operating_point(50e3,
                                           cal.ops_per_cycle("mc-ref"))
        dynamic = model.dynamic_power(point.frequency_hz,
                                      point.voltage).total
        leak = model.total_leakage(point.voltage)
        assert dynamic == pytest.approx(leak, rel=0.05)


class TestInternalConsistency:
    def test_results_are_verified_and_cached(self, cal):
        assert set(cal.results) == {"mc-ref", "ulpmc-int", "ulpmc-bank"}
        assert calibrated_set() is cal

    def test_ops_per_cycle_ordering(self, cal):
        assert cal.ops_per_cycle("mc-ref") >= cal.ops_per_cycle("ulpmc-int")
        assert cal.ops_per_cycle("ulpmc-int") \
            >= cal.ops_per_cycle("ulpmc-bank")

    def test_benchmark_footprints(self, cal):
        meta = cal.built.benchmark.meta
        assert meta["read_only_bytes"] == 14336
        assert meta["program_bytes"] < 552
