"""Monotonicity properties of the technology/DVFS scaling the sweep
ranks with.

If any of these break, the analytical ordering can invert between two
design points for reasons that have nothing to do with architecture —
so they are pinned as properties over the whole voltage range and the
whole node table, not just spot values:

* lower supply => lower dynamic power at a *fixed* frequency, and a
  lower (never higher) maximum speed;
* a smaller technology node never increases area or energy and never
  decreases speed;
* the model-level consequence: the same design point evaluated at a
  lower voltage draws less dynamic power, and at a smaller node
  occupies no more area.
"""

import dataclasses

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import CalibrationError
from repro.power.calibration import calibrated_set
from repro.power.technology import TECH_NODES, make_technology, tech_node

_TECH = make_technology()
_VOLTS = st.floats(_TECH.v_min, _TECH.v_nom, allow_nan=False)
_NODES = st.sampled_from(sorted(TECH_NODES))


@settings(max_examples=80, deadline=None)
@given(_VOLTS, _VOLTS)
def test_speed_factor_monotone_in_voltage(v1, v2):
    lo, hi = sorted((v1, v2))
    assert _TECH.speed_factor(lo) <= _TECH.speed_factor(hi)


@settings(max_examples=80, deadline=None)
@given(_VOLTS, _VOLTS)
def test_dynamic_scale_monotone_in_voltage(v1, v2):
    """Lower V => lower dynamic energy per toggle (~ C V^2)."""
    lo, hi = sorted((v1, v2))
    assume(hi - lo > 1e-9)
    assert _TECH.dynamic_scale(lo) < _TECH.dynamic_scale(hi)


@settings(max_examples=40, deadline=None)
@given(_VOLTS)
def test_voltage_for_speed_round_trips(v):
    speed = _TECH.speed_factor(v)
    assume(speed >= _TECH.min_speed_factor)
    recovered = _TECH.voltage_for_speed(speed)
    assert _TECH.v_min <= recovered <= _TECH.v_nom
    assert _TECH.speed_factor(recovered) == pytest.approx(speed,
                                                          rel=1e-6)


@settings(max_examples=60, deadline=None)
@given(_VOLTS, _VOLTS)
def test_power_model_dynamic_power_monotone_at_fixed_frequency(v1, v2):
    """The calibrated PowerModel, not just the raw scale law: at a fixed
    clock, dropping the supply strictly drops total dynamic power."""
    lo, hi = sorted((v1, v2))
    assume(hi - lo > 1e-9)
    model = calibrated_set().power_model("ulpmc-int")
    frequency_hz = 8e6
    assert model.dynamic_power(frequency_hz, lo).total \
        < model.dynamic_power(frequency_hz, hi).total


def test_node_table_monotone():
    """Smaller node: no more area/energy/leakage headroom lost, no less
    speed.  Leakage *density* may grow below 65 nm, but never area."""
    ordered = sorted(TECH_NODES)  # smallest first
    for smaller, larger in zip(ordered, ordered[1:]):
        a, b = tech_node(smaller), tech_node(larger)
        assert a.area_scale <= b.area_scale
        assert a.dynamic_scale <= b.dynamic_scale
        assert a.speed_scale >= b.speed_scale
        assert a.leakage_scale >= b.leakage_scale


def test_node_90nm_is_identity():
    base = tech_node(90)
    assert (base.area_scale, base.dynamic_scale, base.leakage_scale,
            base.speed_scale) == (1.0, 1.0, 1.0, 1.0)


def test_unknown_node_raises():
    with pytest.raises(CalibrationError):
        tech_node(28)


@settings(max_examples=25, deadline=None)
@given(_NODES, _NODES)
def test_model_area_never_grows_at_smaller_node(n1, n2):
    from repro.dse import AnalyticalModel, seed_points

    smaller, larger = sorted((n1, n2))
    model = AnalyticalModel()
    point = seed_points()[1]  # ulpmc-int, paper geometry
    at_small = model.evaluate(dataclasses.replace(point, tech_nm=smaller))
    at_large = model.evaluate(dataclasses.replace(point, tech_nm=larger))
    assert at_small["area_mm2"] <= at_large["area_mm2"]
    assert at_small["throughput_mops"] >= at_large["throughput_mops"]


@settings(max_examples=25, deadline=None)
@given(st.sampled_from((1.2, 1.0, 0.8, 0.65, 0.5)),
       st.sampled_from((1.2, 1.0, 0.8, 0.65, 0.5)))
def test_model_energy_rate_monotone_in_voltage(v1, v2):
    """Same design, lower supply: lower total power draw (the DVFS
    fast path slows the clock *and* cheapens every toggle)."""
    from repro.dse import AnalyticalModel, seed_points

    lo, hi = sorted((v1, v2))
    assume(hi - lo > 1e-9)
    model = AnalyticalModel()
    point = seed_points()[1]
    at_lo = model.evaluate(dataclasses.replace(point, voltage=lo))
    at_hi = model.evaluate(dataclasses.replace(point, voltage=hi))
    assert at_lo["total_mw"] < at_hi["total_mw"]
    assert at_lo["dynamic_mw"] < at_hi["dynamic_mw"]
