"""Hypothesis properties of Pareto dominance and front extraction.

The sweep driver escalates only frontier candidates and merges cached
partial fronts, so it silently relies on this algebra:

* dominance is irreflexive, asymmetric and transitive;
* the front is invariant under permutation and duplication of the
  input (the cache replays points in arbitrary order);
* ``merge_fronts`` over any partition of the input equals the front of
  the union (incremental sweeps lose nothing);
* no survivor is dominated, and everything rejected is dominated by a
  survivor (the escalation step never simulates a dominated design and
  never needs a design the front dropped).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import dominates, merge_fronts, pareto_front

# Small integer coordinates force frequent ties, duplicates and
# dominance chains — the interesting regime for front algebra.
_VECTOR = st.tuples(st.integers(-4, 4), st.integers(-4, 4),
                    st.integers(-4, 4))
_VECTORS = st.lists(_VECTOR, max_size=24)


@settings(max_examples=100, deadline=None)
@given(_VECTOR)
def test_dominance_irreflexive(v):
    assert not dominates(v, v)


@settings(max_examples=100, deadline=None)
@given(_VECTOR, _VECTOR)
def test_dominance_asymmetric(a, b):
    if dominates(a, b):
        assert not dominates(b, a)


@settings(max_examples=200, deadline=None)
@given(_VECTOR, _VECTOR, _VECTOR)
def test_dominance_transitive(a, b, c):
    if dominates(a, b) and dominates(b, c):
        assert dominates(a, c)


def test_dominance_arity_mismatch_raises():
    with pytest.raises(ValueError):
        dominates((1.0, 2.0), (1.0, 2.0, 3.0))


@settings(max_examples=100, deadline=None)
@given(_VECTORS, st.randoms(use_true_random=False))
def test_front_invariant_under_permutation(vectors, rng):
    shuffled = list(vectors)
    rng.shuffle(shuffled)
    assert pareto_front(shuffled) == pareto_front(vectors)


@settings(max_examples=100, deadline=None)
@given(_VECTORS)
def test_front_invariant_under_duplication(vectors):
    assert pareto_front(vectors + vectors) == pareto_front(vectors)


@settings(max_examples=100, deadline=None)
@given(_VECTORS, st.integers(0, 24))
def test_merge_of_fronts_is_front_of_union(vectors, cut):
    cut = min(cut, len(vectors))
    left, right = vectors[:cut], vectors[cut:]
    merged = merge_fronts(pareto_front(left), pareto_front(right))
    assert merged == pareto_front(vectors)


@settings(max_examples=100, deadline=None)
@given(_VECTORS)
def test_no_dominated_survivor_and_full_coverage(vectors):
    front = pareto_front(vectors)
    front_set = set(front)
    for survivor in front:
        assert not any(dominates(other, survivor) for other in vectors)
    # Everything not on the front is dominated by a front member.
    for vector in vectors:
        assert vector in front_set \
            or any(dominates(survivor, vector) for survivor in front)


@settings(max_examples=60, deadline=None)
@given(_VECTORS)
def test_front_with_key_matches_raw_front(vectors):
    """Keyed extraction sees exactly the same vectors as raw extraction."""
    records = [{"objectives": vector, "tag": index}
               for index, vector in enumerate(vectors)]
    keyed = pareto_front(records, key=lambda record: record["objectives"])
    assert [record["objectives"] for record in keyed] \
        == pareto_front(vectors)
