"""The candidate space: size, feasibility rules, de-duplication."""

import dataclasses

import pytest

from repro.dse import build_space, make_point, seed_points
from repro.dse.space import DEFAULT_VOLTAGES, MCREF_IM_BANK_WORDS
from repro.errors import ConfigurationError


def test_default_space_meets_sweep_floor():
    """The acceptance bar: a default sweep covers >= 200 configurations
    and rejects nothing silently."""
    points, rejected = build_space()
    assert len(points) >= 200
    assert all("reason" in entry and entry["reason"]
               for entry in rejected)
    # De-duplicated: every payload is unique.
    payloads = [tuple(sorted(point.payload().items()))
                for point in points]
    assert len(payloads) == len(set(payloads))


def test_paper_seed_points_are_in_the_default_space():
    points, _ = build_space()
    payloads = {tuple(sorted(point.payload().items()))
                for point in points}
    for seed in seed_points():
        assert tuple(sorted(seed.payload().items())) in payloads


def test_mcref_im_geometry_is_pinned():
    """mc-ref replicates the program: the IM-bank axis collapses to one
    paper-sized bank per core, whatever the sweep asked for."""
    for im_banks in (4, 8, 16):
        point = make_point("mc-ref", 4, im_banks, 8, "private-lut")
        assert point.im_banks == 4
        assert point.im_bank_words == MCREF_IM_BANK_WORDS


def test_shared_im_preserves_total_capacity():
    for im_banks in (4, 8, 16):
        point = make_point("ulpmc-int", 8, im_banks, 16, "private-lut")
        assert point.im_banks * point.im_bank_words == 8 * 4096


def test_structural_key_ignores_node_and_voltage():
    point = make_point("ulpmc-int", 8, 8, 16, "private-lut")
    variant = dataclasses.replace(point, tech_nm=65, voltage=0.8)
    assert variant.structural_key() == point.structural_key()
    assert variant.payload() != point.payload()


@pytest.mark.parametrize("axes, fragment", [
    (dict(n_cores=3), "leads"),
    (dict(n_cores=16), "leads"),
    (dict(im_banks=6), "power of two"),
    (dict(dm_banks=12), "power of two"),
    (dict(n_cores=8, dm_banks=4), "divide evenly"),
    (dict(mapping="mystery-lut"), "unknown mapping"),
    (dict(voltage=1.5), "outside"),
    (dict(voltage=0.3), "outside"),
    (dict(tech_nm=28), "no scaling table"),
])
def test_infeasible_axes_are_rejected_with_the_rule(axes, fragment):
    kwargs = dict(arch="ulpmc-int", n_cores=8, im_banks=8, dm_banks=16,
                  mapping="private-lut")
    kwargs.update(axes)
    with pytest.raises(ConfigurationError, match=fragment):
        make_point(**kwargs)


def test_build_space_reports_rejections():
    points, rejected = build_space(cores=(3, 8), im_banks=(8,),
                                   dm_banks=(16,),
                                   mappings=("private-lut",),
                                   voltages=(1.2,))
    assert points
    assert rejected
    assert all(entry["axes"]["n_cores"] == 3 for entry in rejected)


def test_default_voltage_axis_spans_the_technology_window():
    assert max(DEFAULT_VOLTAGES) == 1.2
    assert min(DEFAULT_VOLTAGES) == 0.5
