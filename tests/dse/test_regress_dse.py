"""``dse`` manifest records gate in `repro regress` like any run.

Fixture-driven (no sweeps): synthesised ``manifest.jsonl`` files pin
that a mutated Pareto-front digest is reported as drift with the
summary fields named, that identical reruns pass, and that records
from a newer manifest schema are skipped rather than misread.
"""

import json

from repro.obs import run_regression
from repro.obs.regress import DEFAULT_KINDS


def _dse_record(digest="front-digest-1", git_rev="rev-1", created=1000.0,
                front_size=23, schema="repro-manifest/2"):
    return {
        "schema": schema,
        "kind": "dse",
        "name": "sweep",
        "arch": None,
        "config_hash": "space-digest-a",
        "git_rev": git_rev,
        "stats_digest": digest,
        "stats_summary": {"points": 840, "front_size": front_size,
                          "escalated_families": 23},
        "created": created,
    }


def _write(directory, records):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "manifest.jsonl").write_text(
        "\n".join(json.dumps(record) for record in records) + "\n",
        encoding="utf-8")
    return directory


def test_dse_is_a_gated_kind():
    assert "dse" in DEFAULT_KINDS


def test_identical_dse_reruns_pass(tmp_path):
    runs = _write(tmp_path / "runs", [
        _dse_record(created=1.0),
        _dse_record(created=2.0, git_rev="rev-2"),
    ])
    report = run_regression(runs, min_groups=1)
    assert report.ok


def test_mutated_front_is_drift(tmp_path):
    """A new revision whose sweep produced a different front fails the
    gate, naming the summary delta."""
    runs = _write(tmp_path / "runs", [
        _dse_record(created=1.0),
        _dse_record(created=2.0, git_rev="rev-2",
                    digest="front-digest-MUTATED", front_size=21),
    ])
    report = run_regression(runs, min_groups=1)
    assert not report.ok
    (finding,) = report.findings
    assert finding.severity == "drift"
    assert finding.key[0] == "dse"
    assert finding.summary_delta == {"front_size": (23, 21)}


def test_same_revision_front_divergence_is_nondeterminism(tmp_path):
    runs = _write(tmp_path / "runs", [
        _dse_record(created=1.0),
        _dse_record(created=2.0, digest="front-digest-2"),
    ])
    report = run_regression(runs, min_groups=1)
    assert not report.ok
    (finding,) = report.findings
    assert finding.severity == "nondeterministic"


def test_newer_schema_dse_records_are_skipped(tmp_path):
    runs = _write(tmp_path / "runs", [
        _dse_record(created=1.0),
        _dse_record(created=2.0, git_rev="rev-2",
                    digest="front-digest-MUTATED",
                    schema="repro-manifest/99"),
    ])
    report = run_regression(runs, min_groups=0)
    # The mutated record is from a future schema: skipped, not compared,
    # so no drift is reported.
    assert not report.findings
    assert report.skipped_schema == 1
