"""Differential suite: analytical ranking vs cycle-accurate truth.

Two claims make the explorer trustworthy, and both are checked against
real simulations, not against the model itself:

* **Ordering** — over a grid spanning architectures and core counts,
  the analytical energy ranking agrees with the ranking computed from
  escalated cycle-accurate runs.
* **Anchored exactness** — at the paper's own 8-core geometry the
  prediction is *exact* (delta-form counters), so escalating the seed
  design points reproduces the reference simulations bit-for-bit, and
  the pinned Table I / Table II golden numbers fall out of the
  escalated stats unchanged, digit for digit.
"""

import json
import pathlib

import pytest

from repro.dse import build_space, run_dse, seed_points
from repro.dse.escalate import stats_from_canonical
from repro.obs.manifest import _canonical
from repro.platform.config import build_config
from repro.power.area import area_report
from repro.power.calibration import calibrated_set, reference_results
from repro.power.power_model import PowerModel

FIXTURES = pathlib.Path(__file__).resolve().parent.parent / "fixtures"
ARCHES = ("mc-ref", "ulpmc-int", "ulpmc-bank")


def _golden(exp_id: str) -> dict:
    document = json.loads(
        (FIXTURES / f"golden_{exp_id}.json").read_text(encoding="utf-8"))
    return {comparison["metric"]: comparison["measured"]
            for comparison in document["comparisons"]}


@pytest.fixture(scope="module")
def swept():
    """Every structural family escalated: 3 arches x {2, 8} cores."""
    points, rejected = build_space(
        arches=ARCHES, cores=(2, 8), im_banks=(8,), dm_banks=(16,),
        mappings=("private-lut",), voltages=(1.2,))
    assert not rejected
    result = run_dse(points, cache_dir=None, escalate_policy="all",
                     max_escalations=len(points))
    assert result.fidelity["escalated_families"] == len(points) == 6
    return result


@pytest.fixture(scope="module")
def by_family(swept):
    return {(esc["structure"]["arch"], esc["structure"]["n_cores"]): esc
            for esc in swept.escalations.values()}


def test_analytical_ordering_matches_simulated_ordering(swept):
    assert swept.fidelity["rank_correlation"] >= 0.95
    assert swept.fidelity["cycle_accuracy"] >= 0.95


def test_predictions_exact_at_the_paper_anchors(by_family):
    for arch in ARCHES:
        assert by_family[(arch, 8)]["cycle_rel_error"] == 0.0


def test_escalated_seeds_reproduce_reference_stats_bit_for_bit(by_family):
    _, references = reference_results()
    for arch in ARCHES:
        escalated = by_family[(arch, 8)]["stats"]
        assert escalated == _canonical(references[arch].stats)


def test_seed_points_rank_in_paper_order(swept):
    """The paper's result in miniature: the proposed interleaved design
    beats mc-ref on simulated energy at identical throughput."""
    metrics = {esc["structure"]["arch"]: esc["simulated_metrics"]
               for esc in swept.escalations.values()
               if esc["structure"]["n_cores"] == 8}
    assert metrics["ulpmc-int"]["energy_per_sample_nj"] \
        < metrics["mc-ref"]["energy_per_sample_nj"]
    assert metrics["ulpmc-bank"]["energy_per_sample_nj"] \
        < metrics["mc-ref"]["energy_per_sample_nj"]


def test_seed_geometry_is_the_reference_geometry():
    for seed in seed_points():
        assert seed.arch_config() == build_config(seed.arch)


def test_escalated_front_reproduces_golden_table1_area():
    golden = _golden("table1")
    for arch, label in (("mc-ref", "mc-ref"), ("ulpmc-int", "proposed")):
        (seed,) = [point for point in seed_points()
                   if point.arch == arch]
        report = area_report(seed.arch_config())
        for component in ("total", "cores", "im", "dm", "dxbar", "ixbar"):
            metric = f"{label} {component} area"
            if metric in golden:
                assert report[component] == golden[metric]


def test_escalated_front_reproduces_golden_table2_power(by_family):
    """Table II recomputed from the *escalated* stats, bit-for-bit."""
    golden = _golden("table2")
    cal = calibrated_set()
    stats = {arch: stats_from_canonical(by_family[(arch, 8)]["stats"])
             for arch in ARCHES}
    ops_per_block = stats["mc-ref"].total_retired
    totals = {}
    for arch in ARCHES:
        model = PowerModel(
            config=build_config(arch), stats=stats[arch],
            energies=cal.energies, leakage=cal.leakage,
            technology=cal.technology,
            post_layout_factor=cal.post_layout_factor)
        frequency = 8e6 / (ops_per_block / stats[arch].total_cycles)
        breakdown = model.dynamic_power(frequency, cal.technology.v_nom,
                                        post_layout=False)
        totals[arch] = breakdown.total
        cells = breakdown.as_dict()
        assert breakdown.total * 1e3 \
            == golden[f"{arch} total dynamic power"]
        for component in ("cores", "im", "dm", "dxbar", "ixbar", "clock"):
            metric = f"{arch} {component} power"
            if metric in golden:
                assert cells[component] * 1e3 == golden[metric]
    for arch in ("ulpmc-int", "ulpmc-bank"):
        saving = 100 * (1 - totals[arch] / totals["mc-ref"])
        assert saving == golden[f"{arch} active power saving"]
