"""Cache keys and sweep digests across interpreter invocations.

The sweep cache is only useful if the key of a design point is the
same *in a different process* — different ``PYTHONHASHSEED``, different
dict/set iteration history.  The historical hazard is real: set
iteration order depends on the hash seed, and ``_canonical`` once fell
back to ``repr()`` for sets, which would have made every set-bearing
payload hash process-local.  These tests run actual subprocesses with
different hash seeds and require

* identical hashes for payloads containing sets, nested dicts in
  scrambled insertion orders, and mixed-type set elements;
* a cache written by one interpreter to be 100% hits in a second one
  (the acceptance criterion: a rerun re-evaluates zero points).
"""

import json
import os
import subprocess
import sys

SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")

_HASH_SCRIPT = """
import json
from repro.dse.cache import canonical_hash, point_key, simulation_key

payloads = {
    "set_of_strings": {"gamma", "alpha", "beta", "delta"},
    "frozen_mixed": frozenset([3, 1, 2]),
    "nested": {"z": {"names": {"b", "a"}}, "a": [1, {"k", "j"}]},
}
scrambled = dict(reversed(list(payloads.items())))
print(json.dumps({
    "canonical": canonical_hash(payloads),
    "canonical_scrambled": canonical_hash(scrambled),
    "point": point_key("dse-analytical/1",
                       {"arch": "ulpmc-int", "tags": {"x", "y"}}),
    "sim": simulation_key("dse-sim/1", {"arch": "mc-ref", "n_cores": 8}),
}))
"""

_SWEEP_SCRIPT = """
import json, sys
from repro.platform import set_default_fast_forward
set_default_fast_forward(True)
from repro.dse import build_space, run_dse

points, _ = build_space(arches=("ulpmc-int",), cores=(8,), im_banks=(8,),
                        dm_banks=(16,), mappings=("private-lut",),
                        voltages=(1.2, 0.8))
result = run_dse(points, cache_dir=sys.argv[1], escalate=False)
print(json.dumps({
    "digest": result.digest(),
    "evaluated": result.counters["analytical_evaluated"],
    "hits": result.counters["analytical_cache_hits"],
    "hashes": sorted(record["point_hash"] for record in result.records),
}))
"""


def _run(script, seed, *args):
    env = dict(os.environ, PYTHONHASHSEED=str(seed),
               PYTHONPATH=SRC + os.pathsep
               + os.environ.get("PYTHONPATH", ""))
    completed = subprocess.run(
        [sys.executable, "-c", script, *args], env=env,
        capture_output=True, text=True, check=True)
    return json.loads(completed.stdout.splitlines()[-1])


def test_hashes_identical_across_hash_seeds():
    first = _run(_HASH_SCRIPT, 1)
    second = _run(_HASH_SCRIPT, 4242)
    assert first == second
    # Insertion order of the top-level dict is invisible too.
    assert first["canonical"] == first["canonical_scrambled"]


def test_cache_written_by_one_interpreter_is_hits_in_another(tmp_path):
    cache_dir = str(tmp_path / "cache")
    first = _run(_SWEEP_SCRIPT, 7, cache_dir)
    second = _run(_SWEEP_SCRIPT, 9001, cache_dir)
    assert first["evaluated"] == 2
    assert second["evaluated"] == 0      # the acceptance criterion
    assert second["hits"] == 2
    assert second["digest"] == first["digest"]
    assert second["hashes"] == first["hashes"]
