"""The sweep driver: caching, budget, determinism, artifacts, CLI.

One module-scoped cold sweep (4 points, 2 escalated families) feeds
most assertions; the rerun tests replay against its cache directory,
which is exactly how a user-visible ``repro dse`` rerun behaves.
"""

import json
import pathlib

import pytest

from repro.cli import main as cli_main
from repro.dse import (build_space, dse_manifest_record, run_dse,
                       write_artifact)
from repro.dse.driver import ESCALATION_BUDGET, FRONT_SCHEMA
from repro.obs.manifest import schema_version
from repro.obs.regress import load_records

AXES = dict(arches=("mc-ref", "ulpmc-int"), cores=(8,), im_banks=(8,),
            dm_banks=(16,), mappings=("private-lut",),
            voltages=(1.2, 0.8))


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("dse-cache")


@pytest.fixture(scope="module")
def points():
    built, rejected = build_space(**AXES)
    assert not rejected
    return built


@pytest.fixture(scope="module")
def cold(points, cache_dir):
    # Explicit budget: the default 15% of a 4-point toy space rounds
    # down to a single escalation and would truncate the front.
    return run_dse(points, cache_dir=cache_dir, workers=1,
                   max_escalations=2)


def test_cold_sweep_evaluates_everything(cold, points):
    counters = cold.counters
    assert counters["points"] == len(points) == 4
    assert counters["analytical_evaluated"] == 4
    assert counters["analytical_cache_hits"] == 0
    assert counters["structural_families"] == 2


def test_escalation_covers_the_front_within_budget(cold):
    counters = cold.counters
    assert counters["escalations_run"] + \
        counters["escalation_cache_hits"] == counters["front_families"]
    assert counters["escalations_selected"] <= counters["escalation_budget"]
    assert set(cold.escalations) \
        <= {record["structural_hash"] for record in cold.records}
    for esc in cold.escalations.values():
        assert esc["total_cycles"] > 0
        assert esc["sim_digest"]


def test_cached_rerun_computes_nothing(cold, points, cache_dir):
    rerun = run_dse(points, cache_dir=cache_dir, workers=1,
                    max_escalations=2)
    counters = rerun.counters
    assert counters["analytical_evaluated"] == 0
    assert counters["escalations_run"] == 0
    assert counters["escalation_cache_hits"] == \
        counters["escalations_selected"]
    assert counters["cache"]["writes"] == 0
    assert rerun.digest() == cold.digest()


def test_digest_excludes_run_dependent_noise(cold):
    payload = cold.front_payload()
    flattened = json.dumps(payload)
    assert "wall_time" not in flattened
    assert "cache_hits" not in flattened
    assert payload["schema"] == FRONT_SCHEMA


def test_default_budget_is_15_percent(points):
    result = run_dse(points, cache_dir=None, escalate=False)
    assert result.counters["escalation_budget"] \
        == max(1, int(ESCALATION_BUDGET * len(points)))


def test_unknown_escalation_policy_raises(points):
    with pytest.raises(ValueError, match="policy"):
        run_dse(points, escalate_policy="everything")


def test_artifact_round_trips(cold, tmp_path):
    path = write_artifact(cold, tmp_path / "front" / "pareto_front.json")
    document = json.loads(path.read_text(encoding="utf-8"))
    assert document["schema"] == FRONT_SCHEMA
    assert document["digest"] == cold.digest()
    assert len(document["front"]) == len(cold.front)
    for entry in document["front"]:
        assert set(entry) == {"point", "metrics", "objectives"}
    assert document["counters"]["points"] == cold.counters["points"]


def test_manifest_record_shape(cold):
    record = dse_manifest_record(cold)
    assert record["kind"] == "dse"
    assert record["stats_digest"] == cold.digest()
    assert schema_version(record) is not None
    assert record["stats_summary"]["points"] == cold.counters["points"]
    assert record["extra"]["fidelity"] == cold.fidelity


def test_cli_runs_writes_artifact_and_manifest(tmp_path, capsys):
    runs = tmp_path / "runs"
    status = cli_main([
        "dse", "--arch", "ulpmc-int", "--cores", "8", "--im-banks", "8",
        "--dm-banks", "16", "--mappings", "private-lut",
        "--voltages", "1.2,0.8", "--max-escalations", "1",
        "--runs-dir", str(runs), "--json"])
    assert status == 0
    lines = [json.loads(line)
             for line in capsys.readouterr().out.splitlines() if line]
    summary = lines[-1]
    assert summary["type"] == "dse"
    assert summary["counters"]["escalations_run"] <= 1
    front_path = pathlib.Path(summary["front_out"])
    assert front_path.is_file()
    records, skipped = load_records(runs)
    assert not skipped
    assert [record["kind"] for record in records] == ["dse"]
    assert records[0]["stats_digest"] == summary["digest"]


def test_cli_rejects_empty_space(tmp_path):
    with pytest.raises(SystemExit):
        cli_main(["dse", "--cores", "3", "--runs-dir", str(tmp_path)])


def test_default_space_front_keeps_the_paper_designs():
    """Acceptance bar: sweeping the full default space (>= 200 points)
    analytically, both paper design points survive on the front."""
    from repro.dse import seed_points

    default_points, _ = build_space()
    assert len(default_points) >= 200
    result = run_dse(default_points, cache_dir=None, escalate=False)
    front = {tuple(sorted(record["point"].items()))
             for record in result.front}
    for seed in seed_points():
        assert tuple(sorted(seed.payload().items())) in front
    assert result.counters["front_size"] < len(default_points)
