"""MMU: translation dispatch and access-mix accounting."""

from repro.memory.layout import DataMemoryLayout, PRIVATE_BASE
from repro.memory.mmu import MMU


def test_translation_matches_layout():
    layout = DataMemoryLayout()
    mmu = MMU(pid=3, layout=layout)
    assert mmu.translate(100) == layout.translate(3, 100)
    assert mmu.translate(PRIVATE_BASE + 5) \
        == layout.translate(3, PRIVATE_BASE + 5)


def test_same_program_different_physical_placement():
    """The MMU is what lets one program image serve all cores: the same
    logical private address lands in different banks per PID."""
    layout = DataMemoryLayout()
    locations = {MMU(pid, layout).translate(PRIVATE_BASE + 7)
                 for pid in range(8)}
    assert len(locations) == 8


def test_access_mix_counters():
    mmu = MMU(pid=0, layout=DataMemoryLayout())
    for __ in range(3):
        mmu.translate(PRIVATE_BASE)
    mmu.translate(0)
    assert mmu.private_accesses == 3
    assert mmu.shared_accesses == 1
    assert abs(mmu.private_fraction - 0.75) < 1e-12


def test_quiet_translation_does_not_count():
    mmu = MMU(pid=0, layout=DataMemoryLayout())
    mmu.translate_quiet(0)
    assert mmu.translations == 0
    assert mmu.private_fraction == 0.0
