"""Property tests for the PID-based MMU translation (paper Fig. 2).

The MMU's contract is what makes one compiled program image serve all
eight cores: every core sees the same logical address space, yet private
data never aliases across PIDs.  Three properties, over random
geometries and addresses:

* **Private round-trip** — translating a private logical address and
  reading the (bank, offset) back through the layout's inverse
  arithmetic recovers the address; no two logical words of one PID
  share a physical word.
* **Injectivity across PIDs** — distinct ``(pid, private address)``
  pairs map to distinct physical words, and each PID's private window
  stays inside the banks :meth:`DataMemoryLayout.core_banks` assigns
  to it, disjoint from the shared section.
* **Shared pass-through** — shared addresses translate identically for
  every PID (word-interleaved, PID-independent), which is what lets
  cores exchange data without copies.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.layout import DataMemoryLayout, PRIVATE_BASE
from repro.memory.mmu import MMU

# Geometries around the paper's (16 banks x 2048 words, 8 cores,
# 768-word shared split), constrained to the layout's invariants:
# banks divide evenly among cores, the split leaves both sections room,
# and the shared section fits the logical window below PRIVATE_BASE.
_GEOMETRIES = st.tuples(
    st.sampled_from((8, 16, 32)),          # banks
    st.sampled_from((256, 1024, 2048)),    # words per bank
    st.sampled_from((64, 128, 768)),       # shared words per bank
).filter(lambda g: g[2] < g[1] and g[0] * g[2] <= PRIVATE_BASE).map(
    lambda g: DataMemoryLayout(banks=g[0], bank_words=g[1],
                               shared_words_per_bank=g[2]))


@settings(max_examples=60, deadline=None)
@given(_GEOMETRIES, st.integers(0, 7), st.data())
def test_private_round_trip(layout, pid, data):
    """(bank, offset) -> logical inversion recovers every private word."""
    mmu = MMU(pid=pid, layout=layout)
    offset = data.draw(st.integers(
        0, layout.private_words_per_core - 1), label="window offset")
    logical = PRIVATE_BASE + offset
    bank, word = mmu.translate(logical)
    # Invert: which slot of the PID's private section is this?
    assert bank in layout.core_banks(pid)
    assert word >= layout.shared_words_per_bank, \
        "private data must not land in the shared section"
    bank_index = layout.core_banks(pid).index(bank)
    recovered = PRIVATE_BASE \
        + bank_index * layout.private_words_per_bank \
        + (word - layout.shared_words_per_bank)
    assert recovered == logical


@settings(max_examples=60, deadline=None)
@given(_GEOMETRIES, st.data())
def test_private_translation_injective_across_pids(layout, data):
    """Distinct (pid, private address) pairs never collide physically."""
    n_addresses = data.draw(st.integers(1, 24), label="sample size")
    addresses = data.draw(st.lists(
        st.integers(0, layout.private_words_per_core - 1),
        min_size=n_addresses, max_size=n_addresses, unique=True),
        label="window offsets")
    seen = {}
    for pid in range(layout.n_cores):
        mmu = MMU(pid=pid, layout=layout)
        for offset in addresses:
            physical = mmu.translate(PRIVATE_BASE + offset)
            key = (pid, offset)
            assert physical not in seen, \
                f"{key} aliases {seen[physical]} at {physical}"
            seen[physical] = key
            assert physical[0] in layout.core_banks(pid)


@settings(max_examples=60, deadline=None)
@given(_GEOMETRIES, st.data())
def test_shared_translation_identical_across_pids(layout, data):
    """The shared window is PID-independent and word-interleaved."""
    logical = data.draw(st.integers(0, layout.shared_words - 1),
                        label="shared address")
    translations = {MMU(pid=pid, layout=layout).translate(logical)
                    for pid in range(layout.n_cores)}
    assert translations == {(logical % layout.banks,
                             logical // layout.banks)}
