"""Address layouts: IM organisations and the shared/private DM map."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.memory.layout import (
    DataMemoryLayout,
    IMOrganization,
    InstructionMemoryLayout,
    PRIVATE_BASE,
)

cores = st.integers(min_value=0, max_value=7)
pcs = st.integers(min_value=0, max_value=8 * 4096 - 1)


class TestInstructionLayouts:
    def test_private_uses_own_bank(self):
        layout = InstructionMemoryLayout(IMOrganization.PRIVATE)
        assert layout.locate(3, 100) == (3, 100)
        assert layout.locate(0, 0) == (0, 0)

    def test_private_rejects_overflow(self):
        layout = InstructionMemoryLayout(IMOrganization.PRIVATE)
        with pytest.raises(SimulationError):
            layout.locate(0, 4096)

    @given(pcs)
    def test_interleaved_uses_low_bits(self, pc):
        layout = InstructionMemoryLayout(IMOrganization.INTERLEAVED)
        bank, offset = layout.locate(0, pc)
        assert bank == pc % 8 and offset == pc // 8

    @given(pcs)
    def test_banked_uses_high_bits(self, pc):
        layout = InstructionMemoryLayout(IMOrganization.BANKED)
        bank, offset = layout.locate(0, pc)
        assert bank == pc // 4096 and offset == pc % 4096

    @given(st.sampled_from([IMOrganization.INTERLEAVED,
                            IMOrganization.BANKED]),
           st.sets(pcs, min_size=2, max_size=64))
    def test_shared_mappings_are_injective(self, org, pc_set):
        layout = InstructionMemoryLayout(org)
        located = {layout.locate(0, pc) for pc in pc_set}
        assert len(located) == len(pc_set)

    def test_shared_organisations_ignore_core(self):
        layout = InstructionMemoryLayout(IMOrganization.INTERLEAVED)
        assert layout.locate(0, 77) == layout.locate(5, 77)

    @pytest.mark.parametrize("org,program_words,expected", [
        (IMOrganization.PRIVATE, 100, 8),       # every core's copy
        (IMOrganization.INTERLEAVED, 100, 8),   # spread over all banks
        (IMOrganization.INTERLEAVED, 3, 3),
        (IMOrganization.BANKED, 100, 1),        # packed into one bank
        (IMOrganization.BANKED, 4096, 1),
        (IMOrganization.BANKED, 4097, 2),
        (IMOrganization.BANKED, 0, 0),
    ])
    def test_banks_used(self, org, program_words, expected):
        layout = InstructionMemoryLayout(org)
        assert layout.banks_used(program_words, n_cores=8) == expected

    def test_power_of_two_banks_required(self):
        with pytest.raises(ConfigurationError):
            InstructionMemoryLayout(IMOrganization.BANKED, banks=6)


class TestDataLayout:
    layout = DataMemoryLayout()

    def test_geometry(self):
        assert self.layout.total_words == 32768          # 64 kB
        assert self.layout.banks_per_core == 2
        assert self.layout.private_words_per_core == 2 * (2048 - 768)

    @given(st.integers(min_value=0, max_value=16 * 768 - 1))
    def test_shared_is_word_interleaved(self, addr):
        bank, offset = self.layout.translate(0, addr)
        assert bank == addr % 16
        assert offset == addr // 16
        assert offset < self.layout.shared_words_per_bank

    @given(cores, st.integers(min_value=0, max_value=2 * 1280 - 1))
    def test_private_lands_in_owned_banks(self, core, offset):
        bank, intra = self.layout.translate(core, PRIVATE_BASE + offset)
        assert bank in self.layout.core_banks(core)
        assert intra >= self.layout.shared_words_per_bank

    @given(cores, cores,
           st.integers(min_value=0, max_value=2 * 1280 - 1),
           st.integers(min_value=0, max_value=2 * 1280 - 1))
    def test_private_sections_never_collide(self, core_a, core_b,
                                            offset_a, offset_b):
        """Distinct (core, private address) pairs map to distinct
        physical locations — the paper's conflict-freedom guarantee."""
        loc_a = self.layout.translate(core_a, PRIVATE_BASE + offset_a)
        loc_b = self.layout.translate(core_b, PRIVATE_BASE + offset_b)
        if (core_a, offset_a) != (core_b, offset_b):
            assert loc_a != loc_b

    @given(cores,
           st.integers(min_value=0, max_value=16 * 768 - 1),
           st.integers(min_value=0, max_value=2 * 1280 - 1))
    def test_shared_and_private_never_collide(self, core, shared_addr,
                                              private_offset):
        shared_loc = self.layout.translate(core, shared_addr)
        private_loc = self.layout.translate(
            core, PRIVATE_BASE + private_offset)
        assert shared_loc != private_loc

    def test_shared_overflow_rejected(self):
        with pytest.raises(SimulationError):
            self.layout.translate(0, self.layout.shared_words)

    def test_private_overflow_rejected(self):
        with pytest.raises(SimulationError):
            self.layout.translate(
                0, PRIVATE_BASE + self.layout.private_words_per_core)

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            self.layout.translate(0, -1)

    def test_configurable_split(self):
        """Paper: section sizes are determined at compile time."""
        wide = DataMemoryLayout(shared_words_per_bank=1024)
        assert wide.shared_words == 16384
        assert wide.private_words_per_core == 2048

    def test_invalid_split_rejected(self):
        with pytest.raises(ConfigurationError):
            DataMemoryLayout(shared_words_per_bank=2048)

    def test_banks_must_divide_among_cores(self):
        with pytest.raises(ConfigurationError):
            DataMemoryLayout(banks=12, n_cores=8)
