"""Memory bank: bounds, counters, power gating."""

import pytest

from repro.errors import SimulationError
from repro.memory.bank import MemoryBank


class TestAccess:
    def test_read_write(self):
        bank = MemoryBank(16)
        bank.write(3, 0x1234)
        assert bank.read(3) == 0x1234

    def test_values_masked_to_word(self):
        bank = MemoryBank(4)
        bank.write(0, 0x12345)
        assert bank.read(0) == 0x2345

    def test_instruction_width_mask(self):
        bank = MemoryBank(4, word_mask=0xFFFFFF)
        bank.write(0, 0xA1B2C3)
        assert bank.read(0) == 0xA1B2C3

    @pytest.mark.parametrize("offset", [-1, 16, 1000])
    def test_out_of_bounds(self, offset):
        bank = MemoryBank(16)
        with pytest.raises(SimulationError):
            bank.read(offset)
        with pytest.raises(SimulationError):
            bank.write(offset, 0)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            MemoryBank(0)


class TestCounters:
    def test_reads_and_writes_counted(self):
        bank = MemoryBank(8)
        bank.write(0, 1)
        bank.read(0)
        bank.read(0)
        assert bank.writes == 1 and bank.reads == 2
        assert bank.accesses == 3

    def test_load_does_not_count(self):
        bank = MemoryBank(8)
        bank.load(0, [1, 2, 3])
        assert bank.accesses == 0
        assert bank.read(1) == 2

    def test_reset_counters(self):
        bank = MemoryBank(8)
        bank.write(0, 1)
        bank.reset_counters()
        assert bank.accesses == 0
        assert bank.read(0) == 1  # contents preserved


class TestPowerGating:
    def test_gated_bank_rejects_access(self):
        bank = MemoryBank(8)
        bank.gate()
        with pytest.raises(SimulationError, match="power-gated"):
            bank.read(0)
        with pytest.raises(SimulationError, match="power-gated"):
            bank.write(0, 1)
        with pytest.raises(SimulationError, match="power-gated"):
            bank.load(0, [1])

    def test_gating_loses_contents(self):
        bank = MemoryBank(8)
        bank.write(2, 99)
        bank.gate()
        bank.ungate()
        assert bank.read(2) == 0

    def test_load_beyond_bank_rejected(self):
        bank = MemoryBank(4)
        with pytest.raises(SimulationError, match="beyond"):
            bank.load(2, [1, 2, 3])
