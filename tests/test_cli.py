"""Command-line driver: legacy experiment interface and the
``trace``/``profile`` observability subcommands."""

import json

import pytest

from repro.cli import main


class TestExperiment:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_single_experiment_text(self, capsys):
        assert main(["table1", "--no-manifest"]) == 0
        out = capsys.readouterr().out
        assert "Area of the architectures" in out
        assert "paper" in out

    def test_csv_output(self, capsys):
        assert main(["table1", "--csv", "--no-manifest"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("component,")

    def test_output_directory(self, tmp_path, capsys):
        assert main(["table1", "--output", str(tmp_path / "results"),
                     "--no-manifest"]) == 0
        csv_file = tmp_path / "results" / "table1.csv"
        assert csv_file.exists()
        assert csv_file.read_text().startswith("component,")

    def test_explicit_subcommand_word(self, tmp_path, capsys):
        """``repro experiment table1`` == ``repro-experiment table1``."""
        assert main(["experiment", "table1",
                     "--runs-dir", str(tmp_path)]) == 0
        assert "Area of the architectures" in capsys.readouterr().out

    def test_manifest_written(self, tmp_path, capsys):
        from repro.obs import read_manifests
        assert main(["table1", "--runs-dir", str(tmp_path)]) == 0
        records = read_manifests(directory=tmp_path)
        assert len(records) == 1
        assert records[0]["kind"] == "experiment"
        assert records[0]["name"] == "table1"
        assert records[0]["stats_digest"]


class TestTrace:
    def test_trace_single_arch(self, tmp_path, capsys):
        from repro.obs import read_manifests
        assert main(["trace", "--arch", "ulpmc-bank", "--samples", "64",
                     "--measurements", "32",
                     "--out-dir", str(tmp_path / "traces"),
                     "--runs-dir", str(tmp_path / "runs")]) == 0
        out = capsys.readouterr().out
        assert "ulpmc-bank:" in out and "slices" in out

        trace_file = tmp_path / "traces" / "trace-ulpmc-bank.json"
        document = json.loads(trace_file.read_text(encoding="utf-8"))
        assert document["traceEvents"]
        assert document["otherData"]["arch"] == "ulpmc-bank"

        records = read_manifests(directory=tmp_path / "runs")
        assert [record["kind"] for record in records] == ["trace"]
        assert records[0]["arch"] == "ulpmc-bank"
        assert records[0]["config_hash"]
        assert records[0]["event_summary"]["probe.retired"] > 0
        assert records[0]["extra"]["trace_file"].endswith(
            "trace-ulpmc-bank.json")

    def test_trace_all_arches_fast_forward(self, tmp_path, capsys):
        assert main(["trace", "--samples", "64", "--measurements", "32",
                     "--fast-forward", "--no-manifest",
                     "--out-dir", str(tmp_path)]) == 0
        names = {path.name for path in tmp_path.iterdir()}
        assert names == {"trace-mc-ref.json", "trace-ulpmc-int.json",
                         "trace-ulpmc-bank.json"}
        out = capsys.readouterr().out
        assert "fast-forward spans" in out


class TestProfile:
    def test_profile_prints_registry_and_reconciles(self, tmp_path, capsys):
        from repro.obs import read_manifests
        assert main(["profile", "--arch", "ulpmc-int", "--samples", "64",
                     "--measurements", "32",
                     "--runs-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "== ulpmc-int (exact" in out
        assert "sync_group_size" in out
        assert "conflict_burst_length" in out
        assert "sim.total_cycles" in out
        assert "probe/stats reconciliation ok" in out

        records = read_manifests(directory=tmp_path)
        assert [record["kind"] for record in records] == ["profile"]
        summary = records[0]["event_summary"]
        assert summary["probe.retired"] == summary["sim.total_retired"]

    def test_profile_fast_forward(self, capsys):
        assert main(["profile", "--arch", "mc-ref", "--samples", "64",
                     "--measurements", "32", "--fast-forward",
                     "--no-manifest"]) == 0
        out = capsys.readouterr().out
        assert "== mc-ref (fast-forward" in out
        assert "probe/stats reconciliation ok" in out


class TestWatch:
    ARGS = ["watch", "--arch", "mc-ref", "--fast-forward", "--samples",
            "64", "--measurements", "32", "--window", "1024"]

    def test_json_lines_stream_and_manifest(self, tmp_path, capsys):
        assert main(self.ARGS + ["--json-lines", "--repeat", "1",
                                 "--runs-dir", str(tmp_path)]) == 0
        lines = capsys.readouterr().out.splitlines()
        windows = [json.loads(line) for line in lines
                   if line.startswith("{")]
        assert len(windows) > 1
        assert all(w["arch"] == "mc-ref" for w in windows)
        assert [w["index"] for w in windows] == list(range(len(windows)))
        assert [w["final"] for w in windows[:-1]] == \
            [False] * (len(windows) - 1)
        assert windows[-1]["final"] is True
        assert all(w["end_cycle"] % 1024 == 0 for w in windows[:-1])
        assert all("ipc" in w and "stall_rate" in w for w in windows)
        assert lines[-1].startswith(f"mc-ref: {len(windows)} windows")

        record = json.loads(
            (tmp_path / "manifest.jsonl").read_text().splitlines()[-1])
        assert record["kind"] == "watch"
        assert record["schema"] == "repro-manifest/2"
        assert record["wall_time_s"] > 0
        telemetry = record["telemetry"]
        assert telemetry["schema"] == "telemetry/1"
        assert telemetry["window_cycles"] == 1024
        assert telemetry["windows"] == len(windows)
        assert record["extra"]["deadline_misses"] == 0

    def test_dashboard_mode(self, tmp_path, capsys):
        assert main(self.ARGS + ["--repeat", "2", "--interval", "0",
                                 "--runs-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "repro watch — mc-ref [fast-forward]" in out
        assert "lockstep_fraction" in out
        assert "deadline_misses=0" in out          # streaming footer
        assert "2 block(s)" in out

    def test_speedup_vs_exact_recorded(self, tmp_path, capsys):
        assert main(self.ARGS + ["--json-lines", "--repeat", "1",
                                 "--speedup-vs-exact",
                                 "--runs-dir", str(tmp_path)]) == 0
        record = json.loads(
            (tmp_path / "manifest.jsonl").read_text().splitlines()[-1])
        assert record["speedup_vs_exact"] > 0

    def test_repeat_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["watch", "--repeat", "0"])

    def test_json_lines_flushed_after_every_line(self, monkeypatch,
                                                 tmp_path):
        """A downstream consumer reading the pipe must see each JSON
        line as soon as it is produced, not when the process exits."""
        import sys

        recorder = _RecordingStdout()
        monkeypatch.setattr(sys, "stdout", recorder)
        assert main(self.ARGS + ["--json-lines", "--repeat", "1",
                                 "--runs-dir", str(tmp_path)]) == 0
        unflushed_line = False
        for kind, text in recorder.events:
            if kind == "flush":
                unflushed_line = False
            elif "\n" in text:
                assert not unflushed_line, \
                    "a line was emitted before the previous one flushed"
                unflushed_line = True
        assert not unflushed_line, "final line never flushed"
        emitted = "".join(text for kind, text in recorder.events
                          if kind == "write")
        assert sum(1 for line in emitted.splitlines()
                   if line.startswith("{")) > 1


class _RecordingStdout:
    """Stdout stand-in that records the write/flush interleaving."""

    def __init__(self):
        self.events = []

    def write(self, text):
        self.events.append(("write", text))
        return len(text)

    def flush(self):
        self.events.append(("flush", ""))

    def isatty(self):
        return False


class TestFarm:
    ARGS = ["farm", "--runs", "3", "--workers", "2", "--samples", "64",
            "--measurements", "32", "--blocks", "1", "--window", "4096",
            "--arch", "all"]

    def test_json_stream_and_manifest(self, tmp_path, capsys):
        assert main(self.ARGS + ["--json",
                                 "--runs-dir", str(tmp_path)]) == 0
        lines = [json.loads(line) for line in
                 capsys.readouterr().out.splitlines()
                 if line.startswith("{")]
        jobs = [line for line in lines if line["type"] == "job"]
        fleets = [line for line in lines if line["type"] == "fleet"]
        assert len(jobs) == 3 and len(fleets) == 1
        assert all(job["state"] == "done" for job in jobs)
        assert sorted(job["shard_index"] for job in jobs) == [0, 1, 2]
        assert [job["done"] for job in jobs] == [1, 2, 3]
        summary = fleets[0]["summary"]
        assert summary["completed"] == 3 and summary["failed"] == 0

        records = [json.loads(line) for line in
                   (tmp_path / "manifest.jsonl").read_text().splitlines()]
        farm_records = [r for r in records if r["kind"] == "farm"]
        fleet_records = [r for r in records if r["kind"] == "fleet"]
        assert len(farm_records) == 3 and len(fleet_records) == 1
        assert fleet_records[0]["stats_digest"] == fleets[0]["digest"]
        assert fleet_records[0]["schema"] == "repro-manifest/2"
        assert {r["arch"] for r in farm_records} \
            == {"mc-ref", "ulpmc-int", "ulpmc-bank"}

    def test_table_mode(self, tmp_path, capsys):
        assert main(self.ARGS + ["--runs-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "farm fleet — 3/3 runs ok" in out
        assert "fleet digest: " in out
        assert "per-arch" not in out  # table uses rows, not the raw dict

    def test_digest_independent_of_worker_count(self, tmp_path, capsys):
        digests = []
        for workers in ("1", "2"):
            args = list(self.ARGS)
            args[args.index("--workers") + 1] = workers
            assert main(args + ["--runs", "2", "--json",
                                "--no-manifest"]) == 0
            lines = [json.loads(line) for line in
                     capsys.readouterr().out.splitlines()
                     if line.startswith("{")]
            digests.append(next(line["digest"] for line in lines
                                if line["type"] == "fleet"))
        assert digests[0] == digests[1]

    def test_degenerate_geometry_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["farm", "--runs", "0"])
        with pytest.raises(SystemExit):
            main(["farm", "--workers", "0"])


class TestFaults:
    ARGS = ["faults", "--trials", "4", "--workers", "2",
            "--samples", "64", "--measurements", "32"]

    def test_json_stream_manifest_and_resume(self, tmp_path, capsys):
        """Cold campaign writes its manifest record; --resume reruns
        recompute nothing and reproduce the digest bit-for-bit."""
        args = self.ARGS + ["--json", "--resume",
                            "--runs-dir", str(tmp_path)]
        assert main(args) == 0
        lines = [json.loads(line) for line in
                 capsys.readouterr().out.splitlines()
                 if line.startswith("{")]
        trials = [line for line in lines if line["type"] == "trial"]
        campaigns = [line for line in lines
                     if line["type"] == "campaign"]
        assert len(trials) == 4 and len(campaigns) == 1
        assert all(trial["state"] == "done" for trial in trials)
        assert sorted(trial["trial"] for trial in trials) == [0, 1, 2, 3]
        cold = campaigns[0]
        assert cold["resumed"] == 0
        assert sum(cold["outcomes"].values()) == 4

        records = [json.loads(line) for line in
                   (tmp_path / "manifest.jsonl").read_text().splitlines()]
        fault_records = [r for r in records if r["kind"] == "fault"]
        assert len(fault_records) == 1
        assert fault_records[0]["stats_digest"] == cold["digest"]
        assert fault_records[0]["schema"] == "repro-manifest/2"
        assert len(fault_records[0]["extra"]["trials"]) == 4

        # Second invocation: every trial satisfied from the checkpoint.
        assert main(args) == 0
        lines = [json.loads(line) for line in
                 capsys.readouterr().out.splitlines()
                 if line.startswith("{")]
        resumed = next(line for line in lines
                       if line["type"] == "campaign")
        assert resumed["resumed"] == 4
        assert all(line["resumed"] for line in lines
                   if line["type"] == "trial")
        assert resumed["digest"] == cold["digest"]

        # The gate applies to resumed runs too: seed 2012 produces at
        # least one SDC trial, so --max-sdc 0.0 fails instantly.
        assert main(args + ["--max-sdc", "0.0"]) == 1
        assert "exceeds --max-sdc" in capsys.readouterr().err

    def test_table_mode(self, tmp_path, capsys):
        assert main(self.ARGS + ["--runs-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fault campaign" in out
        assert "campaign digest: " in out
        for outcome in ("masked", "sdc", "detected", "hang"):
            assert outcome in out


class TestExitCodes:
    """The uniform contract: 0 success, 1 gate failure, 2 usage or
    configuration error (one-line message, no traceback)."""

    def test_repro_error_maps_to_exit_2(self, capsys):
        assert main(["faults", "--trials", "0", "--no-manifest"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "Traceback" not in err

    def test_missing_regress_baseline_is_exit_2(self, tmp_path, capsys):
        assert main(["regress", "--runs-dir", str(tmp_path),
                     "--baseline", str(tmp_path / "nope")]) == 2
        err = capsys.readouterr().err
        assert "baseline manifest not found" in err
        assert "Traceback" not in err

    def test_bad_arch_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["farm", "--arch", "bogus"])
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit) as excinfo:
            main(["faults", "--arch", "bogus"])
        assert excinfo.value.code == 2
