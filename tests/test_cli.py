"""Command-line driver."""

import pytest

from repro.cli import main


def test_unknown_experiment_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["nope"])


def test_single_experiment_text(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Area of the architectures" in out
    assert "paper" in out


def test_csv_output(capsys):
    assert main(["table1", "--csv"]) == 0
    out = capsys.readouterr().out
    assert out.splitlines()[0].startswith("component,")


def test_output_directory(tmp_path, capsys):
    assert main(["table1", "--output", str(tmp_path / "results")]) == 0
    csv_file = tmp_path / "results" / "table1.csv"
    assert csv_file.exists()
    assert csv_file.read_text().startswith("component,")
