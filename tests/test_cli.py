"""Command-line driver: legacy experiment interface and the
``trace``/``profile`` observability subcommands."""

import json

import pytest

from repro.cli import main


class TestExperiment:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_single_experiment_text(self, capsys):
        assert main(["table1", "--no-manifest"]) == 0
        out = capsys.readouterr().out
        assert "Area of the architectures" in out
        assert "paper" in out

    def test_csv_output(self, capsys):
        assert main(["table1", "--csv", "--no-manifest"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("component,")

    def test_output_directory(self, tmp_path, capsys):
        assert main(["table1", "--output", str(tmp_path / "results"),
                     "--no-manifest"]) == 0
        csv_file = tmp_path / "results" / "table1.csv"
        assert csv_file.exists()
        assert csv_file.read_text().startswith("component,")

    def test_explicit_subcommand_word(self, tmp_path, capsys):
        """``repro experiment table1`` == ``repro-experiment table1``."""
        assert main(["experiment", "table1",
                     "--runs-dir", str(tmp_path)]) == 0
        assert "Area of the architectures" in capsys.readouterr().out

    def test_manifest_written(self, tmp_path, capsys):
        from repro.obs import read_manifests
        assert main(["table1", "--runs-dir", str(tmp_path)]) == 0
        records = read_manifests(directory=tmp_path)
        assert len(records) == 1
        assert records[0]["kind"] == "experiment"
        assert records[0]["name"] == "table1"
        assert records[0]["stats_digest"]


class TestTrace:
    def test_trace_single_arch(self, tmp_path, capsys):
        from repro.obs import read_manifests
        assert main(["trace", "--arch", "ulpmc-bank", "--samples", "64",
                     "--measurements", "32",
                     "--out-dir", str(tmp_path / "traces"),
                     "--runs-dir", str(tmp_path / "runs")]) == 0
        out = capsys.readouterr().out
        assert "ulpmc-bank:" in out and "slices" in out

        trace_file = tmp_path / "traces" / "trace-ulpmc-bank.json"
        document = json.loads(trace_file.read_text(encoding="utf-8"))
        assert document["traceEvents"]
        assert document["otherData"]["arch"] == "ulpmc-bank"

        records = read_manifests(directory=tmp_path / "runs")
        assert [record["kind"] for record in records] == ["trace"]
        assert records[0]["arch"] == "ulpmc-bank"
        assert records[0]["config_hash"]
        assert records[0]["event_summary"]["probe.retired"] > 0
        assert records[0]["extra"]["trace_file"].endswith(
            "trace-ulpmc-bank.json")

    def test_trace_all_arches_fast_forward(self, tmp_path, capsys):
        assert main(["trace", "--samples", "64", "--measurements", "32",
                     "--fast-forward", "--no-manifest",
                     "--out-dir", str(tmp_path)]) == 0
        names = {path.name for path in tmp_path.iterdir()}
        assert names == {"trace-mc-ref.json", "trace-ulpmc-int.json",
                         "trace-ulpmc-bank.json"}
        out = capsys.readouterr().out
        assert "fast-forward spans" in out


class TestProfile:
    def test_profile_prints_registry_and_reconciles(self, tmp_path, capsys):
        from repro.obs import read_manifests
        assert main(["profile", "--arch", "ulpmc-int", "--samples", "64",
                     "--measurements", "32",
                     "--runs-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "== ulpmc-int (exact" in out
        assert "sync_group_size" in out
        assert "conflict_burst_length" in out
        assert "sim.total_cycles" in out
        assert "probe/stats reconciliation ok" in out

        records = read_manifests(directory=tmp_path)
        assert [record["kind"] for record in records] == ["profile"]
        summary = records[0]["event_summary"]
        assert summary["probe.retired"] == summary["sim.total_retired"]

    def test_profile_fast_forward(self, capsys):
        assert main(["profile", "--arch", "mc-ref", "--samples", "64",
                     "--measurements", "32", "--fast-forward",
                     "--no-manifest"]) == 0
        out = capsys.readouterr().out
        assert "== mc-ref (fast-forward" in out
        assert "probe/stats reconciliation ok" in out
