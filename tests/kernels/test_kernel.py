"""The CS + Huffman kernel: bit-exact against the golden Python models."""

import pytest

from repro.kernels import (
    BenchmarkSpec,
    build_benchmark,
    kernel_source,
    verify_result,
)
from repro.kernels.memmap import BenchmarkMemoryMap
from repro.platform import build_platform
from repro.tamarisc import InstructionSetSimulator, assemble

ARCHES = ("mc-ref", "ulpmc-int", "ulpmc-bank")


class TestProgramProperties:
    def test_program_is_compact_single_image(self, small_built):
        program = small_built.benchmark.program
        assert program.size_bytes < 552  # paper benchmark: 552 B
        assert program.entry == program.symbol("start")

    def test_uses_only_the_eleven_instructions(self, small_built):
        from repro.tamarisc.isa import Op
        ops = {instr.op for instr in small_built.benchmark.program.decoded()}
        assert ops <= set(Op)
        assert Op.BR in ops and Op.HLT in ops and Op.MOV in ops

    def test_kernel_source_renders_for_paper_geometry(self):
        source = kernel_source(BenchmarkMemoryMap())
        program = assemble(source, entry="start")
        assert len(program) > 50


class TestGoldenOnISS:
    """Single-core check: run the kernel on the flat-memory ISS."""

    def test_iss_matches_golden_model(self, small_built):
        built = small_built
        memmap = built.memmap
        bench = built.benchmark
        data = dict(bench.data.shared)
        data.update(bench.data.private[0])
        iss = InstructionSetSimulator(bench.program, data=data)
        iss.core.pc = bench.program.entry
        iss.run(max_cycles=2_000_000)
        golden = built.golden[0]
        measured_y = iss.read_block(memmap.y_base, memmap.n_measurements)
        assert measured_y == golden.measurements
        assert iss.read(memmap.out_base) == golden.total_bits
        assert iss.read_block(memmap.out_base + 1, len(golden.bitstream)) \
            == golden.bitstream


class TestMultiCoreGolden:
    @pytest.mark.parametrize("arch", ARCHES)
    def test_all_architectures_bit_exact(self, arch, small_built):
        result = build_platform(arch).run(small_built.benchmark)
        verify_result(small_built, result)

    @pytest.mark.parametrize("arch", ARCHES)
    def test_private_lut_variant_bit_exact(self, arch,
                                           small_built_private):
        result = build_platform(arch).run(small_built_private.benchmark)
        verify_result(small_built_private, result)

    def test_ablations_remain_functionally_correct(self, small_built):
        """Broadcast knobs change timing, never results."""
        for overrides in ({"data_broadcast": False},
                          {"instr_broadcast": False},
                          {"data_broadcast": False,
                           "instr_broadcast": False}):
            system = build_platform("ulpmc-bank", **overrides)
            verify_result(small_built, system.run(small_built.benchmark))


class TestPaperNarrative:
    """The architectural effects Section IV-C2 describes, at small scale."""

    def test_cycle_ordering(self, small_results):
        ref = small_results["mc-ref"].stats.total_cycles
        interleaved = small_results["ulpmc-int"].stats.total_cycles
        banked = small_results["ulpmc-bank"].stats.total_cycles
        assert ref <= interleaved <= banked
        assert banked < 1.25 * ref  # modest overhead, not serialisation

    def test_instruction_broadcast_saves_most_fetch_accesses(self,
                                                             small_results):
        for arch in ("ulpmc-int", "ulpmc-bank"):
            stats = small_results[arch].stats
            reduction = 1 - stats.im_bank_accesses / stats.im_fetches
            assert reduction > 0.75

    def test_mcref_has_one_access_per_fetch(self, small_results):
        stats = small_results["mc-ref"].stats
        assert stats.im_bank_accesses == stats.im_fetches

    def test_private_luts_restore_synchronisation(self, small_built,
                                                  small_built_private):
        shared = build_platform("ulpmc-bank").run(
            small_built.benchmark).stats
        private = build_platform("ulpmc-bank").run(
            small_built_private.benchmark).stats
        assert private.total_cycles < shared.total_cycles
        assert private.dm_conflict_events < shared.dm_conflict_events

    def test_private_to_shared_access_mix(self, small_results):
        """Paper Section III-D: roughly 3/4 private, 1/4 shared."""
        fraction = small_results["mc-ref"].stats.private_access_fraction
        assert 0.55 <= fraction <= 0.85

    def test_cs_phase_keeps_cores_synchronised(self, small_results):
        assert small_results["ulpmc-int"].stats.sync_fraction > 0.6

    def test_gated_banks(self, small_results):
        assert small_results["ulpmc-bank"].stats.im_banks_gated == 7


class TestSpecHandling:
    def test_spec_and_overrides_are_exclusive(self):
        with pytest.raises(ValueError):
            build_benchmark(BenchmarkSpec(), n_samples=64)

    def test_overrides_build(self):
        built = build_benchmark(n_samples=32, n_measurements=16, n_leads=2)
        assert built.spec.n_leads == 2
        assert len(built.golden) == 2
