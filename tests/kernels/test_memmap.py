"""Benchmark memory map: the paper's data footprints."""

import pytest

from repro.errors import ConfigurationError
from repro.kernels.memmap import BenchmarkMemoryMap
from repro.memory.layout import DataMemoryLayout


class TestPaperFootprints:
    memmap = BenchmarkMemoryMap()

    def test_read_only_data_is_14336_bytes(self):
        """Paper Section II: 14336 B read-only (12288 B CS vector + two
        1024 B Huffman LUTs)."""
        assert self.memmap.read_only_bytes == 14336
        assert 2 * self.memmap.cs_lut_words == 12288

    def test_shared_section_layout_is_contiguous(self):
        assert self.memmap.cs_lut == 0
        assert self.memmap.code_lut_shared == 6144
        assert self.memmap.len_lut_shared == 6656
        assert self.memmap.shared_words_used == 7168

    def test_private_window_layout(self):
        assert self.memmap.y_base == self.memmap.x_base + 512
        assert self.memmap.out_base == self.memmap.y_base + 256
        assert self.memmap.working_bytes == 2 * (512 + 256 + 257)

    def test_fits_default_platform_layout(self):
        self.memmap.validate(DataMemoryLayout())


class TestPrivateLutVariant:
    memmap = BenchmarkMemoryMap(huffman_private=True)

    def test_kernel_uses_private_luts(self):
        assert self.memmap.code_lut == self.memmap.code_lut_private
        assert self.memmap.len_lut == self.memmap.len_lut_private
        assert self.memmap.code_lut_private >= self.memmap.x_base

    def test_working_set_grows_by_two_kilobytes(self):
        shared_variant = BenchmarkMemoryMap()
        assert self.memmap.working_bytes \
            == shared_variant.working_bytes + 2048

    def test_still_fits(self):
        self.memmap.validate(DataMemoryLayout())


class TestValidation:
    def test_oversized_shared_rejected(self):
        memmap = BenchmarkMemoryMap(n_samples=2048, entries_per_column=12)
        with pytest.raises(ConfigurationError, match="shared"):
            memmap.validate(DataMemoryLayout())

    def test_oversized_private_rejected(self):
        memmap = BenchmarkMemoryMap(n_samples=4096, n_measurements=256,
                                    entries_per_column=1)
        with pytest.raises(ConfigurationError, match="private"):
            memmap.validate(DataMemoryLayout())

    def test_reduced_geometry_scales(self):
        memmap = BenchmarkMemoryMap(n_samples=64, n_measurements=32)
        assert memmap.cs_lut_words == 64 * 12
        memmap.validate(DataMemoryLayout())
