"""Pinned results of the full paper-geometry benchmark.

These are *our* measured values for the 512-sample, 8-lead reference
benchmark (they share the session-cached calibration runs).  They pin
the reproduction against silent regressions: if a refactor changes any
of these, the paper comparisons in EXPERIMENTS.md move too, and the
change must be deliberate.
"""

import pytest

from repro.power.calibration import reference_results


@pytest.fixture(scope="module")
def runs():
    return reference_results(huffman_private=True)[1]


class TestPinnedCycleCounts:
    def test_footprints(self, runs):
        built, __ = reference_results(huffman_private=True)
        assert built.benchmark.meta["program_bytes"] == 267
        assert built.benchmark.meta["read_only_bytes"] == 14336
        assert built.benchmark.meta["working_bytes"] == 4098

    def test_mcref(self, runs):
        stats = runs["mc-ref"].stats
        assert stats.total_cycles == 66816
        assert stats.im_bank_accesses == stats.im_fetches == 534153
        assert stats.im_conflict_events == 0

    def test_ulpmc_int(self, runs):
        stats = runs["ulpmc-int"].stats
        assert stats.total_cycles == pytest.approx(67193, abs=5)
        assert stats.im_fetches == 534153
        assert 0.80 < 1 - stats.im_bank_accesses / stats.im_fetches < 0.90

    def test_ulpmc_bank(self, runs):
        stats = runs["ulpmc-bank"].stats
        assert stats.total_cycles == pytest.approx(68862, abs=5)
        assert stats.im_banks_gated == 7
        reduction = 1 - stats.im_bank_accesses / stats.im_fetches
        assert reduction == pytest.approx(0.871, abs=0.01)

    def test_dm_identical_across_architectures(self, runs):
        """The data side is architecture-independent by design."""
        accesses = {arch: run.stats.dm_bank_accesses
                    for arch, run in runs.items()}
        assert len(set(accesses.values())) == 1

    def test_deliveries_balance(self, runs):
        for run in runs.values():
            stats = run.stats
            assert stats.dm_reads_delivered == 108544
            assert stats.dm_writes_delivered == 52229
