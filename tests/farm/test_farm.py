"""Simulation-farm contracts: seeds, scheduling, crashes, determinism.

The farm's value rests on one promise (see :mod:`repro.farm`): every
simulated bit a fleet produces is a pure function of its plan — worker
count, submission order, warm/cold caches and crash-retries change only
wall-clock fields.  These tests pin that promise plus the scheduler's
failure semantics (reported exceptions retry, worker deaths respawn,
``fail_fast`` drains the queue) and the manifest shapes ``repro
regress`` consumes.
"""

import random

import pytest

from repro.errors import ConfigurationError
from repro.farm import (
    FarmJobSpec,
    FarmScheduler,
    JobState,
    build_plan,
    execute_job,
    fleet_digest,
    run_farm,
    shard_seed,
)
from repro.farm.fleet import plan_identity, write_fleet_manifests
from repro.farm.jobs import respec
from repro.obs import read_manifests

#: Reduced geometry shared by every farm test (fast to simulate).
SMALL = dict(n_samples=64, n_measurements=32, n_blocks=1,
             window_cycles=4096)


def small_spec(**overrides) -> FarmJobSpec:
    fields = dict(shard_index=0, seed=shard_seed(2012, 0), arch="mc-ref",
                  **SMALL)
    fields.update(overrides)
    return FarmJobSpec(**fields)


class TestShardSeed:
    def test_pure_function_of_inputs(self):
        assert shard_seed(2012, 5) == shard_seed(2012, 5)
        assert shard_seed(2012, 5) != shard_seed(2012, 6)
        assert shard_seed(2012, 5) != shard_seed(2013, 5)

    def test_distinct_across_a_fleet(self):
        seeds = [shard_seed(2012, index) for index in range(64)]
        assert len(set(seeds)) == len(seeds)

    def test_fits_generator_seed_range(self):
        for index in (0, 1, 1000):
            assert 0 <= shard_seed(2012, index) < 2 ** 32


class TestPlan:
    def test_cycles_arches_and_derives_seeds(self):
        plan = build_plan(5, ["mc-ref", "ulpmc-int"], base_seed=7, **SMALL)
        assert [spec.arch for spec in plan] \
            == ["mc-ref", "ulpmc-int", "mc-ref", "ulpmc-int", "mc-ref"]
        assert [spec.seed for spec in plan] \
            == [shard_seed(7, index) for index in range(5)]
        assert [spec.shard_index for spec in plan] == list(range(5))

    def test_rejects_degenerate_plans(self):
        with pytest.raises(ConfigurationError):
            build_plan(0, ["mc-ref"])
        with pytest.raises(ConfigurationError):
            build_plan(4, [])

    def test_identity_omits_execution_details(self):
        plan = build_plan(3, ["mc-ref"], **SMALL)
        identity = plan_identity(plan, 2012)
        assert identity["runs"] == 3
        for execution_detail in ("workers", "warm", "max_retries"):
            assert execution_detail not in identity


class TestExecuteJob:
    def test_deterministic_reduction(self):
        first = execute_job(0, small_spec())
        second = execute_job(1, small_spec(), worker_id=3)
        assert first.stats_digest == second.stats_digest
        assert first.telemetry_digest == second.telemetry_digest
        assert first.windows == second.windows
        assert first.blocks_done == SMALL["n_blocks"]
        assert second.worker_id == 3

    def test_cache_stats_measure_traffic(self):
        result = execute_job(0, small_spec())
        assert set(result.cache_stats) >= {
            "block_hits", "block_misses", "program_hits",
            "program_misses", "source_compiles"}
        assert result.cache_hit_rate is None \
            or 0.0 <= result.cache_hit_rate <= 1.0

    def test_fault_hook_raises(self):
        with pytest.raises(RuntimeError, match="fault injection"):
            execute_job(0, small_spec(fault="raise"))


class TestScheduler:
    def test_rejects_bad_pool_parameters(self):
        with pytest.raises(ConfigurationError):
            FarmScheduler(workers=0)
        with pytest.raises(ConfigurationError):
            FarmScheduler(workers=1, max_retries=-1)
        with pytest.raises(ConfigurationError):
            FarmScheduler(workers=1, start_method="not-a-method")

    def test_cancel_withdraws_pending_only(self):
        with FarmScheduler(workers=1) as farm:
            first = farm.submit(small_spec())
            second = farm.submit(small_spec(shard_index=1,
                                            seed=shard_seed(2012, 1)))
            assert farm.cancel(second)
            assert farm.jobs[second].state is JobState.CANCELLED
            assert not farm.cancel(second)  # already terminal
            jobs = farm.run_until_complete()
            assert farm.jobs[first].state is JobState.DONE
        assert [job.state for job in jobs] \
            == [JobState.DONE, JobState.CANCELLED]

    def test_reported_failure_retries_then_fails(self):
        with FarmScheduler(workers=1, max_retries=1) as farm:
            job_id = farm.submit(small_spec(fault="raise"))
            farm.run_until_complete()
            job = farm.jobs[job_id]
        assert job.state is JobState.FAILED
        assert job.attempts == 2  # first try + one retry
        assert "fault injection" in job.error

    def test_worker_crash_respawns_pool(self):
        with FarmScheduler(workers=1, max_retries=0) as farm:
            crash = farm.submit(small_spec(fault="exit"))
            farm.run_until_complete()
            assert farm.jobs[crash].state is JobState.FAILED
            assert farm.crashes == 1
            # the replacement worker must be able to run real jobs
            follow_up = farm.submit(small_spec())
            farm.run_until_complete()
            assert farm.jobs[follow_up].state is JobState.DONE

    def test_fail_fast_cancels_the_queue(self):
        with FarmScheduler(workers=1, max_retries=0,
                           fail_fast=True) as farm:
            farm.submit(small_spec(fault="raise"))
            queued = [farm.submit(small_spec(shard_index=index,
                                             seed=shard_seed(2012, index)))
                      for index in (1, 2)]
            farm.run_until_complete()
            states = [farm.jobs[job_id].state for job_id in queued]
        assert states.count(JobState.CANCELLED) >= 1
        assert JobState.FAILED not in states

    def test_submit_after_shutdown_rejected(self):
        farm = FarmScheduler(workers=1)
        farm.shutdown()
        farm.shutdown()  # idempotent
        with pytest.raises(ConfigurationError):
            farm.submit(small_spec())


class TestFleetDeterminism:
    @pytest.fixture(scope="class")
    def plan(self):
        return build_plan(4, ["mc-ref", "ulpmc-int"], **SMALL)

    @pytest.fixture(scope="class")
    def serial(self, plan):
        return run_farm(plan, workers=1)

    def test_worker_count_and_order_do_not_change_bits(self, plan,
                                                       serial):
        shuffled = list(plan)
        random.Random(13).shuffle(shuffled)
        parallel = run_farm(shuffled, workers=2)
        assert serial.ok and parallel.ok
        by_shard_serial = {r.shard_index: r for r in serial.completed()}
        by_shard_parallel = {r.shard_index: r
                             for r in parallel.completed()}
        assert set(by_shard_serial) == set(by_shard_parallel)
        for index, result in by_shard_serial.items():
            other = by_shard_parallel[index]
            assert result.stats_digest == other.stats_digest
            assert result.telemetry_digest == other.telemetry_digest
            assert result.windows == other.windows
        assert serial.digest() == parallel.digest()

    def test_cold_caches_do_not_change_bits(self, plan, serial):
        cold = run_farm(plan, workers=1, warm=False)
        assert cold.ok
        assert cold.digest() == serial.digest()

    def test_fleet_digest_is_order_independent(self, serial):
        results = serial.completed()
        assert fleet_digest(results) \
            == fleet_digest(list(reversed(results)))

    def test_fleet_summary_shape(self, serial):
        summary = serial.fleet_summary()
        assert summary["completed"] == summary["runs"] == 4
        assert summary["failed"] == summary["cancelled"] == 0
        assert summary["blocks_done"] == 4 * SMALL["n_blocks"]
        assert set(summary["per_arch"]) == {"mc-ref", "ulpmc-int"}
        assert set(summary["cycles_per_block"]) \
            == {"p50", "p99", "worst", "mean"}
        cache = summary["shared_cache"]
        assert cache["hits"] + cache["misses"] == cache["lookups"]
        assert 0.0 <= cache["hit_rate"] <= 1.0
        assert 0.0 < summary["parallel_efficiency"]

    def test_merged_windows_cover_every_shard(self, serial):
        merged = serial.merged_windows()
        per_run = [len(result.windows) for result in serial.completed()]
        assert len(merged) == max(per_run)
        assert [window.index for window in merged] \
            == list(range(len(merged)))

    def test_manifest_records(self, serial, tmp_path):
        write_fleet_manifests(serial, tmp_path)
        records = read_manifests(tmp_path)
        farm_records = [r for r in records if r["kind"] == "farm"]
        fleet_records = [r for r in records if r["kind"] == "fleet"]
        assert len(farm_records) == 4
        assert len(fleet_records) == 1
        by_shard = {r.shard_index: r for r in serial.completed()}
        for record in farm_records:
            result = by_shard[record["extra"]["shard_index"]]
            assert record["stats_digest"] == result.stats_digest
            assert record["arch"] == result.arch
            assert record["telemetry"]["digest"] \
                == result.telemetry_digest
            assert "cache_stats" in record["extra"]
        fleet_record = fleet_records[0]
        assert fleet_record["stats_digest"] == serial.digest()
        assert fleet_record["config"] \
            == plan_identity(serial.plan, serial.base_seed)
        assert fleet_record["extra"]["fleet"]["completed"] == 4


class TestRunFarmValidation:
    def test_empty_plan_rejected(self):
        with pytest.raises(ConfigurationError):
            run_farm([], workers=1)

    def test_on_job_progress_callback(self):
        plan = build_plan(2, ["mc-ref"], **SMALL)
        seen = []
        fleet = run_farm(plan, workers=1,
                         on_job=lambda job, done, total:
                         seen.append((job.spec.shard_index, done, total)))
        assert fleet.ok
        assert [done for _, done, _ in seen] == [1, 2]
        assert all(total == 2 for _, _, total in seen)

    def test_respec_overrides_fields(self):
        spec = small_spec()
        assert respec(spec, fault="raise").fault == "raise"
        assert respec(spec, fault="raise").seed == spec.seed
