"""Hang-proof farm contracts: timeouts, heartbeats, checkpoint/resume.

Two kill channels, distinguished in the job record: the per-job
wall-clock timeout catches pure-Python hangs (the worker keeps beating,
the job never finishes), the heartbeat timeout catches wedged
interpreters (the sidecar stops beating entirely).  Both requeue the
job with exponential backoff and the cause attributed.  Checkpoints
make an interrupted fleet resumable with zero recomputation and a
bit-identical digest — including after SIGKILL of the whole driver.
"""

import pathlib
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.farm import FarmScheduler, JobState, build_plan, run_farm
from repro.farm.checkpoint import Checkpoint, checkpoint_path, spec_key
from repro.farm.fleet import plan_identity, write_fleet_manifests
from repro.farm.jobs import respec
from repro.obs import read_manifests

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

SMALL = dict(n_samples=64, n_measurements=32, n_blocks=1,
             window_cycles=4096)


def small_plan(runs=3, **overrides):
    return build_plan(runs, ["mc-ref"], **{**SMALL, **overrides})


@dataclass(frozen=True)
class QuickSpec:
    """Instant no-simulation job so timeout tests measure the
    scheduler, not the simulator."""

    shard_index: int = 0
    fault: str | None = None

    farm_warm: ClassVar[bool] = False

    def run_in_worker(self, job_id, worker_id=0):
        return {"job_id": job_id, "worker_id": worker_id}


class TestTimeouts:
    def test_hanging_job_killed_on_wall_clock_timeout(self):
        """A job that spins (while still beating) overruns the job
        timeout: its worker is killed, the job requeues with cause
        'timeout' and completes on the second attempt."""
        with FarmScheduler(workers=1, max_retries=1, warm=False,
                           job_timeout_s=1.0,
                           backoff_base_s=0.01) as farm:
            farm.submit(QuickSpec(fault="hang"))
            jobs = farm.run_until_complete()
            assert farm.timeouts == 1
        job = jobs[0]
        assert job.state is JobState.DONE
        assert job.attempts == 2
        assert [entry["cause"] for entry in job.retries] == ["timeout"]
        assert "wall-clock budget" in job.retries[0]["error"]
        summary = job.retry_summary()
        assert summary["causes"] == ["timeout"]
        assert summary["backoff_schedule_s"] == [0.01]

    def test_wedged_worker_caught_by_heartbeat(self):
        """A worker whose heartbeat goes silent is distinguished from a
        wall-clock overrun: cause 'heartbeat'."""
        with FarmScheduler(workers=1, max_retries=1, warm=False,
                           heartbeat_timeout_s=1.0,
                           heartbeat_interval_s=0.05,
                           backoff_base_s=0.01) as farm:
            farm.submit(QuickSpec(fault="wedge"))
            jobs = farm.run_until_complete()
            assert farm.timeouts == 1
        job = jobs[0]
        assert job.state is JobState.DONE
        assert job.attempts == 2
        assert [entry["cause"] for entry in job.retries] == ["heartbeat"]
        assert "no heartbeat" in job.retries[0]["error"]

    def test_backoff_schedule_is_exponential(self):
        """A deterministic failer records base * 2**(k-1) backoffs."""
        with FarmScheduler(workers=1, max_retries=2, warm=False,
                           backoff_base_s=0.01) as farm:
            farm.submit(respec(small_plan(1)[0], fault="raise"))
            jobs = farm.run_until_complete()
        job = jobs[0]
        assert job.state is JobState.FAILED
        assert job.attempts == 3
        assert [entry["cause"] for entry in job.retries] \
            == ["error", "error", "error"]
        assert job.retry_summary()["backoff_schedule_s"] \
            == [0.01, 0.02, 0.04]

    def test_timeout_knobs_validated(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            FarmScheduler(job_timeout_s=0)
        with pytest.raises(ConfigurationError):
            FarmScheduler(heartbeat_timeout_s=-1)


class TestRetryAccountingInManifests:
    def test_heartbeat_retry_lands_in_farm_record(self, tmp_path):
        """The farm manifest record carries attempts, cause and the
        backoff schedule for a shard that needed a requeue."""
        plan = small_plan(2)
        plan[0] = respec(plan[0], fault="wedge")
        fleet = run_farm(plan, workers=2, max_retries=1,
                         heartbeat_timeout_s=2.0)
        assert fleet.ok
        assert fleet.timeouts == 1
        write_fleet_manifests(fleet, directory=tmp_path)
        records = read_manifests(directory=tmp_path)
        farm = {r["extra"]["shard_index"]: r for r in records
                if r["kind"] == "farm"}
        assert farm[0]["extra"]["attempts"] == 2
        assert [entry["cause"]
                for entry in farm[0]["extra"]["retries"]] == ["heartbeat"]
        assert farm[1]["extra"]["attempts"] == 1
        assert farm[1]["extra"]["retries"] == []
        fleet_record = next(r for r in records if r["kind"] == "fleet")
        summary = fleet_record["extra"]["fleet"]
        assert summary["worker_timeouts"] == 1
        assert summary["retried_jobs"] == 1
        assert summary["retries"]["shard000"]["causes"] == ["heartbeat"]


class TestCheckpoint:
    def test_round_trip_and_later_records_win(self, tmp_path):
        store = Checkpoint(tmp_path / "ck.jsonl")
        store.append("k1", {"value": 1})
        store.append("k2", {"value": 2})
        store.append("k1", {"value": 3})
        assert store.load() == {"k1": {"value": 3}, "k2": {"value": 2}}

    def test_truncated_tail_skipped_with_counted_warning(self, tmp_path,
                                                         capsys):
        store = Checkpoint(tmp_path / "ck.jsonl")
        store.append("k1", {"value": 1})
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": "repro-checkpoint/1", "spec_')
        assert store.load() == {"k1": {"value": 1}}
        assert store.skipped == 1
        assert "skipped 1 corrupt checkpoint line" in \
            capsys.readouterr().err

    def test_path_derivation_is_identity_stable(self, tmp_path):
        plan = small_plan(3)
        identity = plan_identity(plan, 2012)
        one = checkpoint_path(tmp_path, "farm", identity)
        two = checkpoint_path(tmp_path, "farm", identity)
        other = checkpoint_path(
            tmp_path, "farm", plan_identity(small_plan(4), 2012))
        assert one == two
        assert one != other
        assert one.parent == tmp_path / "checkpoints"

    def test_resume_recomputes_nothing(self, tmp_path):
        plan = small_plan(3)
        checkpoint = tmp_path / "fleet.jsonl"
        cold = run_farm(plan, workers=2, checkpoint=checkpoint)
        assert cold.ok and cold.resumed == 0
        resumed = run_farm(plan, workers=2, checkpoint=checkpoint,
                           resume=True)
        assert resumed.ok
        assert resumed.resumed == 3
        assert all(job.resumed for job in resumed.jobs)
        assert resumed.digest() == cold.digest()
        assert [r.stats_digest for r in resumed.completed()] \
            == [r.stats_digest for r in cold.completed()]

    def test_sigkill_mid_fleet_then_resume_bit_identical(self, tmp_path):
        """Kill the whole driver process mid-fleet; the resume must
        pick up the checkpointed shards and reproduce the digest of an
        uninterrupted run."""
        plan = small_plan(6)
        checkpoint = tmp_path / "fleet.jsonl"
        reference = run_farm(plan, workers=1)
        assert reference.ok

        script = (
            "import sys; sys.path.insert(0, {src!r})\n"
            "from repro.farm import build_plan, run_farm\n"
            "plan = build_plan(6, ['mc-ref'], n_samples=64, "
            "n_measurements=32, n_blocks=1, window_cycles=4096)\n"
            "run_farm(plan, workers=1, checkpoint={checkpoint!r})\n"
        ).format(src=str(REPO_ROOT / "src"), checkpoint=str(checkpoint))
        process = subprocess.Popen([sys.executable, "-c", script],
                                   cwd=str(REPO_ROOT))
        # Wait for at least one shard to checkpoint, then SIGKILL.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if checkpoint.exists() \
                    and checkpoint.read_text().strip():
                break
            time.sleep(0.05)
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=10)

        prior = Checkpoint(checkpoint).load()
        assert prior, "driver was killed before any shard checkpointed"
        resumed = run_farm(plan, workers=1, checkpoint=checkpoint,
                           resume=True)
        assert resumed.ok
        assert resumed.resumed >= 1
        assert resumed.resumed == len(prior)
        assert resumed.digest() == reference.digest()

    def test_spec_key_separates_engines_and_seeds(self):
        base = small_plan(1)[0]
        assert spec_key(base) == spec_key(small_plan(1)[0])
        assert spec_key(base) != spec_key(respec(base, seed=1))
        assert spec_key(base) != spec_key(respec(base,
                                                 fast_forward=False))
