"""Core model: operand walk stability, side effects, branches."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.tamarisc.cpu import Core
from repro.tamarisc.isa import (
    BranchMode,
    Cond,
    DstMode,
    Instruction,
    Op,
    REG_XR,
    SrcMode,
)

from tests.tamarisc.test_encoding import alu_instructions, mov_instructions

data_instructions = st.one_of(alu_instructions(), mov_instructions())
reg_values = st.lists(st.integers(min_value=0, max_value=0xFFFF),
                      min_size=16, max_size=16)


def make_core(regs):
    core = Core()
    core.regs = list(regs)
    return core


class TestOperandWalk:
    @given(data_instructions, reg_values,
           st.integers(min_value=0, max_value=0xFFFF))
    def test_preview_matches_execute(self, instr, regs, mem_value):
        """The addresses previewed for arbitration equal those used at
        commit, and preview never mutates state."""
        core = make_core(regs)
        before = list(core.regs)
        dread, dwrite = core.data_requests(instr)
        assert core.regs == before, "preview mutated registers"
        dread2, dwrite2 = core.data_requests(instr)
        assert (dread, dwrite) == (dread2, dwrite2), "preview not stable"

        value = mem_value if dread is not None else None
        store = core.execute(instr, value)
        if store is None:
            assert dwrite is None
        else:
            assert dwrite is not None and store[0] == dwrite.addr

    @given(data_instructions, reg_values,
           st.integers(min_value=0, max_value=0xFFFF))
    def test_pc_advances_by_one(self, instr, regs, mem_value):
        core = make_core(regs)
        dread, __ = core.data_requests(instr)
        core.execute(instr, mem_value if dread else None)
        assert core.pc == 1
        assert core.retired == 1


class TestSideEffects:
    def test_post_increment(self):
        core = make_core([0] * 16)
        core.regs[1] = 100
        instr = Instruction(op=Op.MOV, dreg=2,
                            s1mode=SrcMode.IND_POSTINC, s1val=1)
        dread, __ = core.data_requests(instr)
        assert dread.addr == 100
        core.execute(instr, 7)
        assert core.regs[1] == 101 and core.regs[2] == 7

    def test_pre_decrement(self):
        core = make_core([0] * 16)
        core.regs[1] = 100
        instr = Instruction(op=Op.MOV, dreg=2,
                            s1mode=SrcMode.IND_PREDEC, s1val=1)
        dread, __ = core.data_requests(instr)
        assert dread.addr == 99
        core.execute(instr, 3)
        assert core.regs[1] == 99

    def test_indexed_addressing_uses_xr(self):
        core = make_core([0] * 16)
        core.regs[1] = 0x200
        core.regs[REG_XR] = 5
        instr = Instruction(op=Op.MOV, dreg=2, s1mode=SrcMode.IND_IDX,
                            s1val=1)
        dread, __ = core.data_requests(instr)
        assert dread.addr == 0x205

    def test_mem_to_mem_move_same_pointer(self):
        """mov [r1++], [r1++]: source evaluated first, then destination."""
        core = make_core([0] * 16)
        core.regs[1] = 10
        instr = Instruction(op=Op.MOV, dmode=DstMode.IND_POSTINC, dreg=1,
                            s1mode=SrcMode.IND_POSTINC, s1val=1)
        dread, dwrite = core.data_requests(instr)
        assert dread.addr == 10 and dwrite.addr == 11
        store = core.execute(instr, 42)
        assert store == (11, 42)
        assert core.regs[1] == 12

    def test_register_destination_wins_over_side_effect(self):
        """add r1, [r1++], #1: the ALU result lands in r1, overriding the
        post-increment."""
        core = make_core([0] * 16)
        core.regs[1] = 10
        instr = Instruction(op=Op.ADD, dreg=1,
                            s1mode=SrcMode.IND_POSTINC, s1val=1,
                            s2mode=SrcMode.IMM, s2val=1)
        core.execute(instr, 100)
        assert core.regs[1] == 101

    def test_wraparound_pointer(self):
        core = make_core([0] * 16)
        core.regs[1] = 0xFFFF
        instr = Instruction(op=Op.MOV, dreg=2,
                            s1mode=SrcMode.IND_POSTINC, s1val=1)
        core.execute(instr, 0)
        assert core.regs[1] == 0


class TestBranches:
    def test_taken_direct(self):
        core = make_core([0] * 16)
        core.execute(Instruction(op=Op.BR, cond=Cond.AL,
                                 bmode=BranchMode.DIR, target=40))
        assert core.pc == 40

    def test_not_taken_falls_through(self):
        core = make_core([0] * 16)
        core.flags.z = False
        core.execute(Instruction(op=Op.BR, cond=Cond.EQ,
                                 bmode=BranchMode.DIR, target=40))
        assert core.pc == 1

    def test_relative_backwards(self):
        core = make_core([0] * 16)
        core.pc = 10
        core.execute(Instruction(op=Op.BR, cond=Cond.AL,
                                 bmode=BranchMode.REL, target=-3))
        assert core.pc == 7

    def test_register_indirect(self):
        core = make_core([0] * 16)
        core.regs[5] = 123
        core.execute(Instruction(op=Op.BR, cond=Cond.AL,
                                 bmode=BranchMode.IND, target=5))
        assert core.pc == 123

    def test_branch_preserves_flags(self):
        core = make_core([0] * 16)
        core.flags.c = True
        core.execute(Instruction(op=Op.BR, cond=Cond.CS,
                                 bmode=BranchMode.DIR, target=3))
        assert core.flags.c


class TestHalt:
    def test_hlt_stops_the_core(self):
        core = make_core([0] * 16)
        core.execute(Instruction(op=Op.HLT))
        assert core.halted
        with pytest.raises(SimulationError):
            core.execute(Instruction(op=Op.HLT))

    def test_reset_clears_everything(self):
        core = make_core([1] * 16)
        core.execute(Instruction(op=Op.HLT))
        core.reset(entry=5)
        assert not core.halted and core.pc == 5
        assert core.regs == [0] * 16 and core.retired == 0


class TestMovSemantics:
    def test_mov_does_not_touch_flags(self):
        core = make_core([0] * 16)
        core.flags.z = True
        core.flags.c = True
        core.execute(Instruction(op=Op.MOV, dreg=1, s1mode=SrcMode.IMM,
                                 s1val=0))
        assert core.flags.z and core.flags.c

    def test_missing_memory_value_raises(self):
        core = make_core([0] * 16)
        instr = Instruction(op=Op.MOV, dreg=1, s1mode=SrcMode.IND, s1val=2)
        with pytest.raises(SimulationError):
            core.execute(instr, None)
