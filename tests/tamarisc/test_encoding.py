"""24-bit encoding round trips and illegal-encoding rejection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.tamarisc.encoding import decode, encode
from repro.tamarisc.isa import (
    ALU_OPS,
    BranchMode,
    Cond,
    DstMode,
    IMM11_MAX,
    Instruction,
    Op,
    SrcMode,
)

regs = st.integers(min_value=0, max_value=15)
imm4 = st.integers(min_value=0, max_value=15)
dst_modes = st.sampled_from(list(DstMode))
src_modes = st.sampled_from(list(SrcMode))


def source(mode, value):
    """Clamp a source operand's payload to its mode's legal range."""
    return value


@st.composite
def alu_instructions(draw):
    op = draw(st.sampled_from(sorted(ALU_OPS)))
    s1mode = draw(src_modes)
    s2_choices = [SrcMode.REG, SrcMode.IMM] \
        if s1mode not in (SrcMode.REG, SrcMode.IMM) else list(SrcMode)
    s2mode = draw(st.sampled_from(s2_choices))
    return Instruction(
        op=op, dmode=draw(dst_modes), dreg=draw(regs),
        s1mode=s1mode, s1val=draw(regs),
        s2mode=s2mode, s2val=draw(regs),
    )


@st.composite
def mov_instructions(draw):
    s1mode = draw(src_modes)
    if s1mode == SrcMode.IMM:
        s1val = draw(st.integers(min_value=0, max_value=IMM11_MAX))
    else:
        s1val = draw(regs)
    return Instruction(op=Op.MOV, dmode=draw(dst_modes), dreg=draw(regs),
                       s1mode=s1mode, s1val=s1val)


@st.composite
def branch_instructions(draw):
    bmode = draw(st.sampled_from(list(BranchMode)))
    if bmode == BranchMode.DIR:
        target = draw(st.integers(min_value=0, max_value=(1 << 14) - 1))
    elif bmode == BranchMode.REL:
        target = draw(st.integers(min_value=-(1 << 13),
                                  max_value=(1 << 13) - 1))
    else:
        target = draw(regs)
    return Instruction(op=Op.BR, cond=draw(st.sampled_from(list(Cond))),
                       bmode=bmode, target=target)


any_instruction = st.one_of(
    alu_instructions(), mov_instructions(), branch_instructions(),
    st.just(Instruction(op=Op.HLT)))


class TestRoundTrip:
    @given(any_instruction)
    def test_encode_decode_round_trip(self, instr):
        word = encode(instr)
        assert 0 <= word < (1 << 24)
        assert decode(word) == instr

    @given(any_instruction)
    def test_encoding_is_deterministic(self, instr):
        assert encode(instr) == encode(instr)

    @given(any_instruction, any_instruction)
    def test_distinct_instructions_encode_differently(self, a, b):
        if a != b:
            assert encode(a) != encode(b)


class TestFieldLimits:
    def test_mov_immediate_eleven_bits(self):
        encode(Instruction(op=Op.MOV, dreg=0, s1mode=SrcMode.IMM,
                           s1val=IMM11_MAX))
        with pytest.raises(EncodingError):
            encode(Instruction(op=Op.MOV, dreg=0, s1mode=SrcMode.IMM,
                               s1val=IMM11_MAX + 1))

    def test_alu_immediate_four_bits(self):
        with pytest.raises(EncodingError):
            encode(Instruction(op=Op.ADD, dreg=0, s1mode=SrcMode.IMM,
                               s1val=16, s2mode=SrcMode.REG, s2val=0))

    def test_direct_branch_target_fourteen_bits(self):
        encode(Instruction(op=Op.BR, bmode=BranchMode.DIR,
                           target=(1 << 14) - 1))
        with pytest.raises(EncodingError):
            encode(Instruction(op=Op.BR, bmode=BranchMode.DIR,
                               target=1 << 14))

    def test_relative_branch_range(self):
        encode(Instruction(op=Op.BR, bmode=BranchMode.REL,
                           target=-(1 << 13)))
        with pytest.raises(EncodingError):
            encode(Instruction(op=Op.BR, bmode=BranchMode.REL,
                               target=1 << 13))

    def test_two_memory_sources_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction(op=Op.ADD, dreg=0,
                               s1mode=SrcMode.IND, s1val=1,
                               s2mode=SrcMode.IND_POSTINC, s2val=2))


class TestIllegalWords:
    @pytest.mark.parametrize("word", [
        0xB00000,  # opcode 11
        0xF00000,  # opcode 15
        0xA00001,  # HLT with operand bits
        0x9F0000,  # BR with reserved condition 15
        0x90C000,  # BR with reserved target mode 3
    ])
    def test_rejected(self, word):
        with pytest.raises(EncodingError):
            decode(word)

    def test_word_beyond_24_bits_rejected(self):
        with pytest.raises(EncodingError):
            decode(1 << 24)

    @given(st.integers(min_value=0, max_value=(1 << 24) - 1))
    def test_decode_never_crashes(self, word):
        """Every 24-bit word either decodes or raises EncodingError."""
        try:
            instr = decode(word)
        except EncodingError:
            return
        # A successfully decoded word must re-encode to itself.
        assert encode(instr) == word
