"""Assembler: expressions, operands, directives, pseudo-instructions."""

import pytest

from repro.errors import AssemblerError
from repro.tamarisc.assembler import Assembler, assemble, evaluate
from repro.tamarisc.encoding import decode
from repro.tamarisc.isa import BranchMode, Cond, DstMode, Op, SrcMode


class TestExpressions:
    @pytest.mark.parametrize("text,expected", [
        ("42", 42),
        ("0x2A", 42),
        ("0b101010", 42),
        ("'a'", 97),
        ("'\\n'", 10),
        ("1+2*3", 7),
        ("(1+2)*3", 9),
        ("1<<12", 4096),
        ("0xF0|0x0F", 255),
        ("0xFF&0x0F", 15),
        ("0xFF^0x0F", 240),
        ("100/7", 14),
        ("100%7", 2),
        ("-5+10", 5),
        ("~0&0xFFFF", 65535),
        ("10-2-3", 5),
        ("1<<4>>2", 4),
    ])
    def test_values(self, text, expected):
        assert evaluate(text, {}) == expected

    def test_symbols(self):
        assert evaluate("BASE + 2*N", {"BASE": 0x100, "N": 8}) == 0x110

    def test_undefined_symbol_raises_key_error(self):
        with pytest.raises(KeyError):
            evaluate("missing", {})

    @pytest.mark.parametrize("text", ["1+", "(1", "1 2", "@", "*3"])
    def test_malformed(self, text):
        with pytest.raises(AssemblerError):
            evaluate(text, {})


class TestStatements:
    def test_alu_with_all_source_modes(self):
        program = assemble("""
            add r0, r1, r2
            add r0, r1, #5
            add r0, [r1], r2
            add r0, [r1++], #3
            add r0, [r1--], r2
            add r0, [++r1], r2
            add r0, [--r1], r2
            add r0, [r1+xr], r2
        """)
        modes = [decode(w).s1mode for w in program.words[2:]]
        assert modes == [SrcMode.IND, SrcMode.IND_POSTINC,
                         SrcMode.IND_POSTDEC, SrcMode.IND_PREINC,
                         SrcMode.IND_PREDEC, SrcMode.IND_IDX]

    def test_destination_modes(self):
        program = assemble("""
            mov r3, r1
            mov [r3], r1
            mov [r3++], r1
            mov [r3+xr], r1
        """)
        modes = [decode(w).dmode for w in program.words]
        assert modes == [DstMode.REG, DstMode.IND, DstMode.IND_POSTINC,
                         DstMode.IND_IDX]

    def test_register_aliases(self):
        program = assemble("mov xr, r0\nmov lr, r0\nmov sp, r0")
        assert [decode(w).dreg for w in program.words] == [13, 14, 15]

    def test_mov_immediate_eleven_bits(self):
        program = assemble("mov r1, #2047")
        instr = decode(program.words[0])
        assert instr.s1mode == SrcMode.IMM and instr.s1val == 2047

    def test_mov_immediate_overflow_suggests_li(self):
        with pytest.raises(AssemblerError, match="li"):
            assemble("mov r1, #2048")

    def test_alu_immediate_range(self):
        with pytest.raises(AssemblerError, match="0..15"):
            assemble("add r0, r1, #16")

    def test_labels_and_direct_branch(self):
        program = assemble("""
        start:
            nop
        loop:
            sub r1, r1, #1
            bne loop
            br al, start
            hlt
        """)
        assert program.symbol("loop") == 1
        branch = decode(program.words[2])
        assert branch.bmode == BranchMode.DIR and branch.target == 1
        assert decode(program.words[3]).target == 0

    def test_relative_branch(self):
        program = assemble("br al, pc-2\nbr ne, pc+3")
        assert decode(program.words[0]).bmode == BranchMode.REL
        assert decode(program.words[0]).target == -2
        assert decode(program.words[1]).target == 3

    def test_indirect_branch(self):
        program = assemble("brx lr\nbr eq, r5")
        first = decode(program.words[0])
        assert first.bmode == BranchMode.IND and first.target == 14
        assert first.cond == Cond.AL
        second = decode(program.words[1])
        assert second.cond == Cond.EQ and second.target == 5

    def test_all_branch_aliases(self):
        names = ["bra", "beq", "bne", "bcs", "bcc", "bmi", "bpl", "bvs",
                 "bvc", "bhi", "bls", "bge", "blt", "bgt", "ble"]
        source = "target:\n" + "\n".join(f"    {name} target"
                                         for name in names)
        program = assemble(source)
        conds = [decode(w).cond for w in program.words]
        assert conds[0] == Cond.AL
        assert len(set(conds)) == 15


class TestPseudoInstructions:
    @pytest.mark.parametrize("value,words", [
        (0, 1), (2047, 1), (2048, 3), (0x7FFF, 3), (0x8000, 5),
        (0xFFFF, 5),
    ])
    def test_li_length(self, value, words):
        program = assemble(f"li r1, {value}")
        assert len(program) == words

    @pytest.mark.parametrize("value", [
        0, 1, 15, 16, 255, 2047, 2048, 4095, 0x1234, 0x7FFF, 0x8000,
        0xABCD, 0xFFFF,
    ])
    def test_li_loads_correct_value(self, value):
        from repro.tamarisc.iss import InstructionSetSimulator
        program = assemble(f"li r1, {value}\nhlt")
        iss = InstructionSetSimulator(program)
        iss.run()
        assert iss.core.regs[1] == value

    def test_li_forward_reference_is_padded(self):
        program = assemble("""
            li r1, target
            hlt
        target:
        """)
        # Forward references always occupy 3 words for stable layout.
        assert program.symbol("target") == 4

    def test_nop_is_harmless_mov(self):
        program = assemble("nop")
        instr = decode(program.words[0])
        assert instr.op == Op.MOV and instr.dreg == 0


class TestDirectives:
    def test_equ(self):
        program = assemble(".equ A, 5\n.equ B, A*2\nmov r0, #B")
        assert decode(program.words[0]).s1val == 10

    def test_equ_not_listed_as_label(self):
        program = assemble(".equ A, 5\nstart:\n    hlt")
        assert "A" not in program.symbols
        assert "start" in program.symbols

    def test_org_pads_with_hlt(self):
        program = assemble("nop\n.org 4\nlabel: nop")
        assert program.symbol("label") == 4
        assert decode(program.words[2]).op == Op.HLT

    def test_org_backwards_rejected(self):
        with pytest.raises(AssemblerError, match="backwards"):
            assemble("nop\nnop\n.org 1")

    def test_word_emits_raw(self):
        program = assemble(".word 0xA00000")
        assert program.words == [0xA00000]


class TestErrors:
    @pytest.mark.parametrize("source,pattern", [
        ("frobnicate r1", "unknown mnemonic"),
        ("dup: nop\ndup: nop", "duplicate"),
        ("add r0, r1", "needs"),
        ("mov #5, r1", "immediate"),
        ("add [r1--], r0, r1", "destination"),
        ("add r0, [r1], [r2]", "data-read"),
        ("br xx, 0", "unknown condition"),
        ("bne nowhere", "undefined symbol"),
    ])
    def test_rejects(self, source, pattern):
        with pytest.raises(AssemblerError, match=pattern):
            assemble(source)

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("nop\nnop\nbogus r0")

    def test_entry_label(self):
        program = assemble("nop\nmain: hlt", entry="main")
        assert program.entry == 1

    def test_comments_and_blank_lines(self):
        program = assemble("""
        ; full-line comment
        // another comment style

        nop   ; trailing comment
        nop   // trailing
        """)
        assert len(program) == 2

    def test_source_map(self):
        program = assemble("nop\n\nnop")
        assert program.source_map[0] == 1
        assert program.source_map[1] == 3


class TestAssemblerState:
    def test_assembler_instances_are_independent(self):
        first = Assembler().assemble("a: nop")
        second = Assembler().assemble("a: hlt")
        assert first.symbol("a") == second.symbol("a") == 0
        assert first.words != second.words
