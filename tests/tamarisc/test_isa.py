"""ALU semantics, flags and condition modes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tamarisc.isa import (
    ALU_OPS,
    Cond,
    Flags,
    Instruction,
    Op,
    SrcMode,
    WORD_MASK,
    alu_compute,
    cond_holds,
    to_signed,
    to_word,
)

words = st.integers(min_value=0, max_value=WORD_MASK)


class TestAluSemantics:
    def test_isa_has_exactly_eleven_instructions(self):
        assert len(Op) == 11
        assert len(ALU_OPS) == 8

    @given(words, words)
    def test_add_matches_modular_arithmetic(self, a, b):
        result, flags = alu_compute(Op.ADD, a, b, Flags())
        assert result == (a + b) & WORD_MASK
        assert flags.c == (a + b > WORD_MASK)
        assert flags.z == (result == 0)
        assert flags.n == bool(result & 0x8000)

    @given(words, words)
    def test_add_signed_overflow(self, a, b):
        __, flags = alu_compute(Op.ADD, a, b, Flags())
        true_sum = to_signed(a) + to_signed(b)
        assert flags.v == not_representable(true_sum)

    @given(words, words)
    def test_sub_matches_modular_arithmetic(self, a, b):
        result, flags = alu_compute(Op.SUB, a, b, Flags())
        assert result == (a - b) & WORD_MASK
        assert flags.c == (a >= b)  # carry = no borrow
        diff = to_signed(a) - to_signed(b)
        assert flags.v == not_representable(diff)

    @given(words, words)
    def test_logic_ops(self, a, b):
        assert alu_compute(Op.AND, a, b, Flags())[0] == a & b
        assert alu_compute(Op.OR, a, b, Flags())[0] == a | b
        assert alu_compute(Op.XOR, a, b, Flags())[0] == a ^ b

    @given(words, words)
    def test_logic_preserves_carry_and_overflow(self, a, b):
        before = Flags(c=True, v=True)
        __, flags = alu_compute(Op.AND, a, b, before)
        assert flags.c and flags.v

    @given(words, st.integers(min_value=0, max_value=15))
    def test_shifts(self, a, sh):
        left, lf = alu_compute(Op.SLL, a, sh, Flags())
        right, rf = alu_compute(Op.SRL, a, sh, Flags())
        assert left == (a << sh) & WORD_MASK
        assert right == a >> sh
        if sh:
            assert lf.c == bool((a >> (16 - sh)) & 1)
            assert rf.c == bool((a >> (sh - 1)) & 1)
        else:
            assert not lf.c and not rf.c

    @given(words, words)
    def test_shift_amount_uses_low_four_bits(self, a, b):
        full, __ = alu_compute(Op.SLL, a, b, Flags())
        masked, __ = alu_compute(Op.SLL, a, b & 15, Flags())
        assert full == masked

    @given(words, words)
    def test_mul_low_half_and_overflow_flag(self, a, b):
        result, flags = alu_compute(Op.MUL, a, b, Flags())
        assert result == (a * b) & WORD_MASK
        assert flags.v == (a * b > WORD_MASK)

    def test_non_alu_opcode_rejected(self):
        with pytest.raises(ValueError):
            alu_compute(Op.MOV, 1, 2, Flags())


def not_representable(value: int) -> bool:
    return not -0x8000 <= value <= 0x7FFF


class TestConditions:
    def test_always(self):
        assert cond_holds(Cond.AL, Flags())

    @pytest.mark.parametrize("cond,flags,expected", [
        (Cond.EQ, Flags(z=True), True),
        (Cond.EQ, Flags(z=False), False),
        (Cond.NE, Flags(z=False), True),
        (Cond.CS, Flags(c=True), True),
        (Cond.CC, Flags(c=True), False),
        (Cond.MI, Flags(n=True), True),
        (Cond.PL, Flags(n=True), False),
        (Cond.VS, Flags(v=True), True),
        (Cond.VC, Flags(v=False), True),
        (Cond.HI, Flags(c=True, z=False), True),
        (Cond.HI, Flags(c=True, z=True), False),
        (Cond.LS, Flags(c=False), True),
        (Cond.GE, Flags(n=True, v=True), True),
        (Cond.GE, Flags(n=True, v=False), False),
        (Cond.LT, Flags(n=False, v=True), True),
        (Cond.GT, Flags(z=False, n=False, v=False), True),
        (Cond.GT, Flags(z=True, n=False, v=False), False),
        (Cond.LE, Flags(z=True), True),
    ])
    def test_flag_dependent_modes(self, cond, flags, expected):
        assert cond_holds(cond, flags) == expected

    @given(words, words)
    def test_signed_comparison_via_sub_flags(self, a, b):
        """SUB then GE/LT/GT/LE implements signed comparison."""
        __, flags = alu_compute(Op.SUB, a, b, Flags())
        sa, sb = to_signed(a), to_signed(b)
        assert cond_holds(Cond.GE, flags) == (sa >= sb)
        assert cond_holds(Cond.LT, flags) == (sa < sb)
        assert cond_holds(Cond.GT, flags) == (sa > sb)
        assert cond_holds(Cond.LE, flags) == (sa <= sb)

    @given(words, words)
    def test_unsigned_comparison_via_sub_flags(self, a, b):
        __, flags = alu_compute(Op.SUB, a, b, Flags())
        assert cond_holds(Cond.CS, flags) == (a >= b)
        assert cond_holds(Cond.HI, flags) == (a > b)
        assert cond_holds(Cond.LS, flags) == (a <= b)

    def test_reserved_condition_rejected(self):
        with pytest.raises(ValueError):
            cond_holds(15, Flags())

    def test_fifteen_condition_modes(self):
        assert len(Cond) == 15


class TestHelpers:
    @given(words)
    def test_to_signed_round_trip(self, w):
        assert to_word(to_signed(w)) == w

    @given(st.integers(min_value=-0x8000, max_value=0x7FFF))
    def test_to_word_round_trip(self, v):
        assert to_signed(to_word(v)) == v


class TestInstructionStructure:
    def test_two_memory_sources_rejected(self):
        instr = Instruction(op=Op.ADD, dreg=0,
                            s1mode=SrcMode.IND, s1val=1,
                            s2mode=SrcMode.IND, s2val=2)
        with pytest.raises(ValueError):
            instr.validate()

    def test_mov_memory_to_memory_is_legal(self):
        from repro.tamarisc.isa import DstMode
        instr = Instruction(op=Op.MOV, dmode=DstMode.IND_POSTINC, dreg=2,
                            s1mode=SrcMode.IND_POSTINC, s1val=1)
        instr.validate()
        assert instr.reads_mem() and instr.writes_mem()

    def test_branch_has_no_data_ports(self):
        instr = Instruction(op=Op.BR)
        assert not instr.reads_mem() and not instr.writes_mem()
