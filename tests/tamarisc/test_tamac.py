"""TamaC compiler: lexer, parser, codegen, end-to-end execution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tamarisc.iss import InstructionSetSimulator
from repro.tamarisc.tamac import compile_program, compile_source, \
    parse, tokenize
from repro.tamarisc.tamac.lexer import CompileError, TokenKind
from repro.tamarisc.tamac import parser as ast


def run_main(source, max_cycles=1_000_000):
    compiled = compile_program(source)
    iss = InstructionSetSimulator(compiled.program)
    iss.core.pc = compiled.program.entry
    iss.run(max_cycles=max_cycles)
    return compiled, iss


def global_value(compiled, iss, name):
    return iss.read(compiled.address_of(name))


def eval_main_expr(expression):
    """Compile `out = <expression>;` and return the stored 16-bit word."""
    compiled, iss = run_main(f"""
        var out;
        func main() {{ out = {expression}; return; }}
    """)
    return global_value(compiled, iss, "out")


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize("var x = 0x10; // comment\nfunc f() {}")
        kinds = [token.kind for token in tokens[:4]]
        assert kinds == [TokenKind.KEYWORD, TokenKind.IDENT,
                         TokenKind.OP, TokenKind.NUMBER]

    def test_comments_stripped(self):
        tokens = tokenize("/* a\nb */ x // y\n z")
        values = [t.value for t in tokens if t.kind == TokenKind.IDENT]
        assert values == ["x", "z"]

    def test_char_literals(self):
        tokens = tokenize("'a' '\\n'")
        assert [t.value for t in tokens[:2]] == [97, 10]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        lines = {t.value: t.line for t in tokens
                 if t.kind == TokenKind.IDENT}
        assert lines == {"a": 1, "b": 2, "c": 4}

    def test_division_rejected_with_explanation(self):
        with pytest.raises(CompileError, match="divider"):
            tokenize("a / b")

    def test_bad_character(self):
        with pytest.raises(CompileError, match="unexpected"):
            tokenize("a @ b")


class TestParser:
    def test_module_structure(self):
        module = parse("var a; var b[4]; func main() { return; }")
        assert [g.name for g in module.globals] == ["a", "b"]
        assert module.globals[1].size == 4
        assert "main" in module.functions

    def test_precedence(self):
        module = parse("func main() { return 1 + 2 * 3; }")
        expr = module.functions["main"].body[0].expr
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert expr.rhs.op == "*"

    def test_comparison_binds_looser_than_shift(self):
        module = parse("func main() { return 1 << 2 < 3; }")
        expr = module.functions["main"].body[0].expr
        assert expr.op == "<"

    @pytest.mark.parametrize("source,pattern", [
        ("func main() { 5 = x; }", "assignment target"),
        ("func main() { 5; }", "function call"),
        ("func f(a, a) {}", "duplicate parameter"),
        ("var x[0];", "positive"),
        ("var x[2] = 1;", "array initialisers"),
        ("func main() { if 1 {} }", "expected"),
        ("blah;", "expected 'var' or 'func'"),
        ("func main() {", "unterminated"),
        ("func f() {} func f() {}", "duplicate function"),
    ])
    def test_rejects(self, source, pattern):
        with pytest.raises(CompileError, match=pattern):
            parse(source)


class TestExpressions:
    @pytest.mark.parametrize("expr,expected", [
        ("1 + 2 * 3", 7),
        ("(1 + 2) * 3", 9),
        ("10 - 3 - 2", 5),
        ("1 << 10", 1024),
        ("0xFF00 >> 8", 0xFF),
        ("0xF0F0 & 0x0FF0", 0x00F0),
        ("0xF000 | 0x000F", 0xF00F),
        ("0xFF ^ 0x0F", 0xF0),
        ("-5", 0xFFFB),
        ("~0", 0xFFFF),
        ("!0", 1),
        ("!7", 0),
        ("3 < 5", 1),
        ("5 < 3", 0),
        ("-1 < 1", 1),          # signed comparison
        ("5 <= 5", 1),
        ("5 > 5", 0),
        ("5 >= 5", 1),
        ("4 == 4", 1),
        ("4 != 4", 0),
        ("2 && 3", 1),
        ("2 && 0", 0),
        ("0 || 5", 1),
        ("0 || 0", 0),
        ("1000 * 1000", (1000 * 1000) & 0xFFFF),  # wraps like hardware
        ("'z'", 122),
    ])
    def test_constant_expressions(self, expr, expected):
        assert eval_main_expr(expr) == expected

    @given(st.integers(min_value=-1000, max_value=1000),
           st.integers(min_value=-1000, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_signed_comparison_property(self, a, b):
        assert eval_main_expr(f"({a}) < ({b})") == int(a < b)


class TestStatements:
    def test_while_loop(self):
        compiled, iss = run_main("""
            var total;
            func main() {
                var i;
                i = 1;
                total = 0;
                while (i <= 100) { total = total + i; i = i + 1; }
                return;
            }
        """)
        assert global_value(compiled, iss, "total") == 5050

    def test_if_else_chains(self):
        compiled, iss = run_main("""
            var cls;
            func classify(x) {
                if (x < 10) { return 0; }
                else { if (x < 100) { return 1; } else { return 2; } }
            }
            func main() {
                cls = classify(7) + 10 * classify(50) + 100 * classify(500);
                return;
            }
        """)
        assert global_value(compiled, iss, "cls") == 210

    def test_arrays_and_locals(self):
        compiled, iss = run_main("""
            var squares[12];
            func main() {
                var i;
                i = 0;
                while (i < 12) { squares[i] = i * i; i = i + 1; }
                return;
            }
        """)
        base = compiled.address_of("squares")
        assert iss.read_block(base, 12) == [i * i for i in range(12)]

    def test_global_initialisers(self):
        compiled, iss = run_main("""
            var a = 42; var b = 0xFFFF; var c;
            func main() { return; }
        """)
        assert global_value(compiled, iss, "a") == 42
        assert global_value(compiled, iss, "b") == 0xFFFF
        assert global_value(compiled, iss, "c") == 0

    def test_local_shadowing(self):
        compiled, iss = run_main("""
            var x = 5; var out;
            func main() { var x; x = 9; out = x; return; }
        """)
        assert global_value(compiled, iss, "out") == 9
        assert global_value(compiled, iss, "x") == 5


class TestFunctions:
    def test_nested_calls(self):
        compiled, iss = run_main("""
            var out;
            func double(x) { return x + x; }
            func main() { out = double(double(double(5))); return; }
        """)
        assert global_value(compiled, iss, "out") == 40

    def test_call_in_argument_of_same_function(self):
        """f(f(1), 2): the inner call must not corrupt the outer call's
        parameter binding."""
        compiled, iss = run_main("""
            var out;
            func weigh(a, b) { return a * 10 + b; }
            func main() { out = weigh(weigh(1, 2), 3); return; }
        """)
        assert global_value(compiled, iss, "out") == 123

    def test_call_with_live_registers(self):
        """A call nested inside an arithmetic expression must preserve
        the partially evaluated operands (register spilling)."""
        compiled, iss = run_main("""
            var out;
            func seven() { return 7; }
            func main() { out = 100 + seven() * 2; return; }
        """)
        assert global_value(compiled, iss, "out") == 114

    def test_recursion_rejected(self):
        with pytest.raises(CompileError, match="recursion"):
            compile_source("func main() { main(); }")

    def test_mutual_recursion_rejected(self):
        with pytest.raises(CompileError, match="recursion"):
            compile_source("""
                func even(n) { return odd(n - 1); }
                func odd(n) { return even(n - 1); }
                func main() { even(4); return; }
            """)

    def test_arity_checked(self):
        with pytest.raises(CompileError, match="arguments"):
            compile_source("""
                func f(a) { return a; }
                func main() { f(1, 2); return; }
            """)

    def test_undefined_function(self):
        with pytest.raises(CompileError, match="undefined function"):
            compile_source("func main() { ghost(); return; }")

    def test_undefined_variable(self):
        with pytest.raises(CompileError, match="undefined variable"):
            compile_source("func main() { return ghost; }")

    def test_main_required(self):
        with pytest.raises(CompileError, match="main"):
            compile_source("func helper() { return; }")


class TestMultiCoreDeployment:
    def test_compiled_program_runs_on_all_cores(self):
        """One compiled image on the 8-core platform: every core computes
        into its own private frame — the MMU story of the paper, now for
        compiled code."""
        from repro.platform import Benchmark, build_platform
        from repro.tamarisc.program import DataImage

        compiled = compile_program("""
            var out;
            func main() {
                var i; var acc;
                i = 0; acc = 0;
                while (i < 10) { acc = acc + i * i; i = i + 1; }
                out = acc;
                return;
            }
        """)
        system = build_platform("ulpmc-bank")
        system.run(Benchmark("tamac", compiled.program, DataImage()))
        expected = sum(i * i for i in range(10))
        for core in range(8):
            assert system.read_logical(core, compiled.address_of("out")) \
                == expected


class TestExpressionDepth:
    def test_deep_expression_rejected(self):
        nested = "1" + " + (1" * 9 + ")" * 9
        with pytest.raises(CompileError, match="too deep"):
            compile_source(f"func main() {{ return {nested}; }}")

    def test_moderately_deep_ok(self):
        assert eval_main_expr("1 + (2 + (3 + (4 + 5)))") == 15
