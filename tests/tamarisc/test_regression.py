"""Differential testing: ISS vs cycle-accurate platform (paper Fig. 4).

The paper cross-verifies its LISA simulator against the generated HDL
with a custom regression suite; here constrained-random programs run on
the functional ISS and on every core of the cycle-accurate platform, and
the full architectural outcome must match exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tamarisc.regression import (
    SANDBOX_WORDS,
    cross_check,
    generate_random_program,
    run_on_iss,
    run_on_platform,
)


class TestGenerator:
    @pytest.mark.parametrize("seed", range(8))
    def test_programs_are_safe_and_terminate(self, seed):
        program = generate_random_program(seed)
        outcome = run_on_iss(program, sandbox_seed=seed)
        assert outcome.retired > 20

    def test_deterministic(self):
        assert generate_random_program(7).words \
            == generate_random_program(7).words

    def test_length_scales(self):
        short = generate_random_program(1, length=10)
        long = generate_random_program(1, length=120)
        assert len(long.words) > len(short.words)


class TestCrossCheck:
    @pytest.mark.parametrize("seed", range(6))
    def test_platform_matches_iss(self, seed):
        cross_check(seed, length=30)

    @pytest.mark.parametrize("arch", ["mc-ref", "ulpmc-int"])
    def test_other_architectures(self, arch):
        cross_check(17, length=30, arch=arch)

    @given(st.integers(min_value=100, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_random_seeds_property(self, seed):
        program = generate_random_program(seed, length=25)
        golden = run_on_iss(program, sandbox_seed=seed)
        measured = run_on_platform(program, sandbox_seed=seed)
        assert measured.registers == golden.registers
        assert measured.flags == golden.flags
        assert measured.sandbox == golden.sandbox
        assert measured.retired == golden.retired

    def test_sandbox_was_actually_written(self):
        """The generated programs must exercise stores, not just ALU."""
        seed = 3
        program = generate_random_program(seed, length=60)
        import random
        rng = random.Random(seed)
        initial = [rng.randrange(0x10000) for __ in range(SANDBOX_WORDS)]
        outcome = run_on_iss(program, sandbox_seed=seed)
        assert outcome.sandbox != initial
