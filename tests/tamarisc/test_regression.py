"""Differential testing: ISS vs cycle-accurate platform (paper Fig. 4).

The paper cross-verifies its LISA simulator against the generated HDL
with a custom regression suite; here constrained-random programs run on
the functional ISS and on every core of the cycle-accurate platform, and
the full architectural outcome must match exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tamarisc.isa import (
    BranchMode,
    Cond,
    DstMode,
    Op,
    SRC_MEM_MODES,
)
from repro.tamarisc.regression import (
    SANDBOX_WORDS,
    cross_check,
    generate_random_program,
    run_on_iss,
    run_on_platform,
)


class TestGenerator:
    @pytest.mark.parametrize("seed", range(8))
    def test_programs_are_safe_and_terminate(self, seed):
        program = generate_random_program(seed)
        outcome = run_on_iss(program, sandbox_seed=seed)
        assert outcome.retired > 20

    def test_deterministic(self):
        assert generate_random_program(7).words \
            == generate_random_program(7).words

    def test_length_scales(self):
        short = generate_random_program(1, length=10)
        long = generate_random_program(1, length=120)
        assert len(long.words) > len(short.words)


class TestCrossCheck:
    @pytest.mark.parametrize("seed", range(6))
    def test_platform_matches_iss(self, seed):
        cross_check(seed, length=30)

    @pytest.mark.parametrize("arch", ["mc-ref", "ulpmc-int"])
    def test_other_architectures(self, arch):
        cross_check(17, length=30, arch=arch)

    @given(st.integers(min_value=100, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_random_seeds_property(self, seed):
        program = generate_random_program(seed, length=25)
        golden = run_on_iss(program, sandbox_seed=seed)
        measured = run_on_platform(program, sandbox_seed=seed)
        assert measured.registers == golden.registers
        assert measured.flags == golden.flags
        assert measured.sandbox == golden.sandbox
        assert measured.retired == golden.retired

    def test_sandbox_was_actually_written(self):
        """The generated programs must exercise stores, not just ALU."""
        seed = 3
        program = generate_random_program(seed, length=60)
        import random
        rng = random.Random(seed)
        initial = [rng.randrange(0x10000) for __ in range(SANDBOX_WORDS)]
        outcome = run_on_iss(program, sandbox_seed=seed)
        assert outcome.sandbox != initial


#: Seeds of the full-ISA random corpus used across the classes below.
FULL_COVERAGE_SEEDS = range(20)


class TestFullCoverageGenerator:
    """``full_coverage=True`` must reach the complete ISA surface."""

    def test_corpus_covers_full_isa(self):
        ops, conds, bmodes = set(), set(), set()
        mem_to_mem = 0
        for seed in FULL_COVERAGE_SEEDS:
            program = generate_random_program(seed, length=60,
                                              full_coverage=True)
            for instr in program.decoded():
                ops.add(instr.op)
                if instr.op == Op.BR:
                    conds.add(instr.cond)
                    bmodes.add(instr.bmode)
                elif instr.op == Op.MOV \
                        and instr.s1mode in SRC_MEM_MODES \
                        and instr.dmode != DstMode.REG:
                    mem_to_mem += 1
        assert ops == set(Op), "all 11 opcodes"
        assert conds == set(Cond), "all 15 condition modes"
        assert bmodes == set(BranchMode), "all 3 branch target modes"
        assert mem_to_mem > 0, "memory-to-memory MOV exercised"

    def test_default_mode_output_is_stable(self):
        """The flag must not perturb historical generator output."""
        program = generate_random_program(0)
        import hashlib
        digest = hashlib.sha256(
            b"".join(word.to_bytes(3, "big")
                     for word in program.words)).hexdigest()
        assert digest == ("33ab3c3f460ddd53604b5a6d6511a4d3"
                          "9150aec2156523c5e3ec84c1892b4bb8")

    @pytest.mark.parametrize("seed", FULL_COVERAGE_SEEDS)
    def test_programs_terminate(self, seed):
        program = generate_random_program(seed, length=60,
                                          full_coverage=True)
        outcome = run_on_iss(program, sandbox_seed=seed)
        assert outcome.retired > 20


class TestDispatchEquivalence:
    """ISS and platform dispatch-table fast paths retire identical state
    to the generic interpreters over the full-ISA corpus."""

    @pytest.mark.parametrize("seed", FULL_COVERAGE_SEEDS)
    def test_iss_fast_matches_slow(self, seed):
        program = generate_random_program(seed, length=60,
                                          full_coverage=True)
        slow = run_on_iss(program, sandbox_seed=seed)
        fast = run_on_iss(program, sandbox_seed=seed, fast=True)
        assert fast.retired == slow.retired
        assert fast.registers == slow.registers
        assert fast.flags == slow.flags
        assert fast.sandbox == slow.sandbox

    @pytest.mark.parametrize("seed", FULL_COVERAGE_SEEDS)
    def test_iss_fast_stats_match(self, seed):
        from repro.tamarisc.iss import InstructionSetSimulator
        import random
        from repro.memory.layout import PRIVATE_BASE
        program = generate_random_program(seed, length=60,
                                          full_coverage=True)
        rng = random.Random(seed)
        data = {PRIVATE_BASE + i: rng.randrange(0x10000)
                for i in range(SANDBOX_WORDS)}
        slow = InstructionSetSimulator(program, data=dict(data))
        fast = InstructionSetSimulator(program, data=dict(data), fast=True)
        assert fast.run() == slow.run()
        assert fast.dmem == slow.dmem

    @pytest.mark.parametrize("seed", (0, 7, 13))
    def test_platform_fast_forward_matches_iss(self, seed):
        cross_check(seed, length=40, full_coverage=True, fast=True)

    @pytest.mark.parametrize("arch", ["mc-ref", "ulpmc-int"])
    def test_other_architectures_fast(self, arch):
        cross_check(23, length=40, arch=arch, full_coverage=True,
                    fast=True)

    def test_single_core_platform_matches_iss(self):
        """A single-core run through the platform equals the ISS."""
        program = generate_random_program(42, length=60,
                                          full_coverage=True)
        golden = run_on_iss(program, sandbox_seed=42, fast=True)
        for fast_forward in (False, True):
            measured = run_on_platform(program, sandbox_seed=42,
                                       fast_forward=fast_forward)
            assert measured.registers == golden.registers
            assert measured.flags == golden.flags
            assert measured.sandbox == golden.sandbox
            assert measured.retired == golden.retired
