"""Disassembler round trips: asm -> words -> asm -> identical words."""

from hypothesis import given

from repro.tamarisc.assembler import assemble
from repro.tamarisc.disassembler import (
    disassemble,
    disassemble_program,
)
from repro.tamarisc.encoding import encode

from tests.tamarisc.test_encoding import any_instruction


@given(any_instruction)
def test_disassemble_reassemble_round_trip(instr):
    word = encode(instr)
    text = disassemble(word)
    program = assemble(text)
    assert program.words == [word]


def test_listing_contains_labels_and_addresses():
    program = assemble("""
    start:
        mov r1, #7
    loop:
        sub r1, r1, #1
        bne loop
        hlt
    """)
    listing = disassemble_program(program)
    assert "start:" in listing
    assert "loop:" in listing
    assert "hlt" in listing
    assert "0x0000" in listing


def test_listing_reassembles_to_same_words():
    source = """
        li   r2, 0x4321
        mov  r3, [r2++]
        add  r3, r3, [r2+xr]
        mov  [r2], r3
        br   cs, pc-3
        brx  r3
        hlt
    """
    program = assemble(source)
    listing_lines = []
    for line in disassemble_program(program).splitlines():
        if not line.endswith(":"):
            listing_lines.append(line.split(None, 2)[2])
    reassembled = assemble("\n".join(listing_lines))
    assert reassembled.words == program.words
