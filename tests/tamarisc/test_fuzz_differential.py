"""Fuzz differential: 50 random programs, three execution modes.

The fast-forward engine's bit-identity promise covers more than the
architectural state the older differential suite checks — the *probe
event stream* must also be indistinguishable, because every metric,
trace and manifest digest is derived from it.  Each seeded
constrained-random program (full ISA surface) runs once per mode —
exact cycle-stepped loop, per-instruction fast-forward, and
block-translated fast-forward (:mod:`repro.tamarisc.blocks`) — with

* per-event subscribers on every comparable event (which forces all
  modes onto the ``emit()`` fallback paths), and
* the batched metrics collector attached on the same bus,

and the test asserts equal registers, memory, ``SimulationStats``,
metric snapshots, and per-cycle-sorted event streams.  The ``ff.*``
events are excluded: they describe the engine's own mode transitions
(enter/exit/translation-block usage), which by definition differ
between modes.

A second pass re-runs a slice of the corpus with *only* the batched
collector attached, so the raw ring-buffer fast paths (no ``emit()``
involved at all) get the same fuzz coverage.

A third pass runs *unobserved* (no probe bus at all) with the loop-trace
profiling thresholds lowered, so the trace layer — which only engages on
unobserved runs — discovers, compiles and executes loop traces over the
random corpus and its state must still match the exact loop bit for bit.
"""

import dataclasses
import random

import pytest

from repro.memory.layout import PRIVATE_BASE
from repro.obs import EVENTS, ProbeMetrics
from repro.platform import ARCH_NAMES, Benchmark, build_platform
from repro.tamarisc.program import DataImage
from repro.tamarisc.regression import SANDBOX_WORDS, generate_random_program

#: ff.* events announce fast-forward engine transitions; the exact loop
#: never emits them, so they are not part of the identity contract.
COMPARABLE_EVENTS = sorted(
    name for name in EVENTS if not name.startswith("ff."))

#: (fast_forward, translation_blocks) per compared execution mode.
MODES = {
    "exact": (False, False),
    "ff-instr": (True, False),
    "ff-blocks": (True, True),
}

FUZZ_SEEDS = range(50)


def fuzz_benchmark(seed: int) -> Benchmark:
    """Full-coverage random program plus a seeded private sandbox."""
    program = generate_random_program(seed, length=40, full_coverage=True)
    rng = random.Random(seed)
    sandbox = [rng.randrange(0x10000) for __ in range(SANDBOX_WORDS)]
    data = DataImage()
    for pid in range(8):
        data.set_private_block(pid, PRIVATE_BASE, sandbox)
    return Benchmark(f"fuzz-{seed}", program, data)


def looped_fuzz_benchmark(seed: int, iters: int = 24) -> Benchmark:
    """Random straight-line body wrapped in a counted loop (trace bait).

    :func:`generate_random_program` is forward-branch-only, so nothing
    in the plain corpus ever re-enters a block often enough to grow a
    loop trace.  This variant emits a sandbox pointer, a loop counter in
    ``r12`` (untouched by the body mix) and a random ALU/memory body,
    closed by ``SUB r12, 1`` + ``BR NE`` back to the top — exactly the
    counted-loop shape the trace builder profiles for.  A data-dependent
    forward branch mid-body splits the loop into a multi-block diamond
    (a single-block loop would just self-loop inside the block layer and
    never profile a trace).  Per-pid sandbox contents differ, so loaded
    registers diverge across cores and both trace variants (uniform and
    generic) plus the bail path get exercised; even seeds branch on the
    uniform loop counter so whole iterations actually commit, odd seeds
    branch on per-core data so the lockstep agreement check bails.
    """
    from repro.tamarisc.encoding import encode
    from repro.tamarisc.isa import (BranchMode, Cond, DstMode, Instruction,
                                    Op, SrcMode)
    from repro.tamarisc.program import Program

    rng = random.Random(0x10000 + seed)
    words: list[int] = []

    def emit(instr: Instruction) -> None:
        words.append(encode(instr))

    counter = 12  # outside the generator's data/pointer/XR register pools
    pointer = 8
    base = PRIVATE_BASE + rng.randrange(8, SANDBOX_WORDS - 8)
    emit(Instruction(op=Op.MOV, dreg=counter, s1mode=SrcMode.IMM,
                     s1val=iters))
    emit(Instruction(op=Op.MOV, dreg=pointer, s1mode=SrcMode.IMM,
                     s1val=base >> 4))
    emit(Instruction(op=Op.SLL, dreg=pointer, s1mode=SrcMode.REG,
                     s1val=pointer, s2mode=SrcMode.IMM, s2val=4))
    emit(Instruction(op=Op.OR, dreg=pointer, s1mode=SrcMode.REG,
                     s1val=pointer, s2mode=SrcMode.IMM, s2val=base & 0xF))
    top = len(words)
    alu = (Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SLL, Op.SRL, Op.MUL)
    for __ in range(rng.randrange(3, 9)):
        choice = rng.random()
        if choice < 0.25:  # sandbox load (drift-free addressing)
            emit(Instruction(op=rng.choice(alu), dreg=rng.randrange(8),
                             s1mode=SrcMode.IND, s1val=pointer,
                             s2mode=SrcMode.IMM, s2val=rng.randrange(16)))
        elif choice < 0.45:  # sandbox store
            emit(Instruction(op=rng.choice(alu), dmode=DstMode.IND,
                             dreg=pointer, s1mode=SrcMode.REG,
                             s1val=rng.randrange(8), s2mode=SrcMode.IMM,
                             s2val=rng.randrange(16)))
        else:  # register/immediate ALU
            emit(Instruction(op=rng.choice(alu), dreg=rng.randrange(8),
                             s1mode=SrcMode.REG, s1val=rng.randrange(8),
                             s2mode=rng.choice((SrcMode.REG, SrcMode.IMM)),
                             s2val=rng.randrange(8)))
    # Diamond split: flag-setting ALU + conditional skip of one filler.
    if seed % 2 == 0:  # uniform split — iterations commit in lockstep
        emit(Instruction(op=Op.AND, dreg=7, s1mode=SrcMode.REG,
                         s1val=counter, s2mode=SrcMode.IMM,
                         s2val=rng.randrange(1, 8)))
    else:  # per-core split — the trace's agreement check must bail
        emit(Instruction(op=Op.AND, dreg=7, s1mode=SrcMode.IND,
                         s1val=pointer, s2mode=SrcMode.IMM,
                         s2val=rng.randrange(1, 8)))
    emit(Instruction(op=Op.BR, bmode=BranchMode.REL, target=2,
                     cond=rng.choice((Cond.EQ, Cond.NE, Cond.PL))))
    emit(Instruction(op=Op.XOR, dreg=rng.randrange(8),
                     s1mode=SrcMode.REG, s1val=rng.randrange(8),
                     s2mode=SrcMode.IMM, s2val=rng.randrange(16)))
    emit(Instruction(op=Op.SUB, dreg=counter, s1mode=SrcMode.REG,
                     s1val=counter, s2mode=SrcMode.IMM, s2val=1))
    emit(Instruction(op=Op.BR, cond=Cond.NE, bmode=BranchMode.DIR,
                     target=top))
    emit(Instruction(op=Op.HLT))
    data = DataImage()
    for pid in range(8):
        prng = random.Random((seed << 4) | pid)
        data.set_private_block(
            pid, PRIVATE_BASE,
            [prng.randrange(0x10000) for __ in range(SANDBOX_WORDS)])
    return Benchmark(f"fuzz-loop-{seed}", Program(words=words), data)


def run_observed(arch: str, benchmark: Benchmark, fast_forward: bool,
                 capture_events: bool = True,
                 translation_blocks: bool = False):
    """One observed run; returns (result, metrics snapshot, streams)."""
    system = build_platform(arch, fast_forward=fast_forward,
                            translation_blocks=translation_blocks)
    bus = system.probe_bus()
    streams = None
    if capture_events:
        streams = {name: [] for name in COMPARABLE_EVENTS}
        for name in COMPARABLE_EVENTS:
            bus.subscribe(name,
                          lambda *args, _rec=streams[name].append:
                          _rec(args))
    metrics = ProbeMetrics.attach(bus)
    result = system.run(benchmark)
    mismatches = metrics.verify_against(result.stats)
    assert not mismatches, f"probe/stats reconciliation: {mismatches}"
    if streams is not None:
        for stream in streams.values():
            stream.sort()  # per-cycle order is not part of the contract
    snapshot = {name: value for name, value
                in metrics.registry.snapshot().items()
                if not name.startswith("probe.ff_")}  # engine-only
    return result, snapshot, streams


def assert_state_identical(slow, fast):
    for field in dataclasses.fields(slow.stats):
        assert getattr(slow.stats, field.name) \
            == getattr(fast.stats, field.name), \
            f"stats field {field.name!r} diverged"
    for pid, (ref, ffw) in enumerate(zip(slow.system.cores,
                                         fast.system.cores)):
        assert ref.regs == ffw.regs, f"core {pid} registers"
        assert ref.pc == ffw.pc, f"core {pid} PC"
        assert ref.halted == ffw.halted, f"core {pid} halt state"
    for bank, (ref, ffw) in enumerate(zip(slow.system.dmem.banks,
                                          fast.system.dmem.banks)):
        assert ref.storage == ffw.storage, f"DM bank {bank} image"


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzz_event_stream_identity(seed):
    """State, metrics and sorted event streams agree across all modes."""
    arch = ARCH_NAMES[seed % len(ARCH_NAMES)]
    benchmark = fuzz_benchmark(seed)
    slow, slow_snap, slow_events = run_observed(
        arch, benchmark, fast_forward=False)
    for mode, (ffw, blocks) in MODES.items():
        if not ffw:
            continue
        fast, fast_snap, fast_events = run_observed(
            arch, benchmark, fast_forward=ffw, translation_blocks=blocks)
        assert_state_identical(slow, fast)
        assert slow_snap == fast_snap, \
            f"metric registries diverged ({mode})"
        for name in COMPARABLE_EVENTS:
            assert slow_events[name] == fast_events[name], \
                f"{name} event stream diverged (seed {seed}, {arch}, {mode})"


@pytest.mark.parametrize("seed", range(0, 50, 4))
def test_fuzz_unobserved_trace_identity(seed, monkeypatch):
    """Unobserved runs with aggressive trace thresholds stay identical.

    Loop traces only build and run without an active probe bus, so
    neither pass above exercises them.  Lowering the profiling
    thresholds makes even the short loops of the random corpus
    trace-eligible (discovery, compilation, lockstep dispatch, bail
    and rollback all run); the committed state must still match the
    exact loop exactly.
    """
    import repro.platform.fast_forward as ff_engine

    monkeypatch.setattr(ff_engine, "TRACE_ENTRY_THRESHOLD", 4)
    monkeypatch.setattr(ff_engine, "TRACE_MIN_EDGE", 2)
    arch = ARCH_NAMES[seed % len(ARCH_NAMES)]
    benchmark = fuzz_benchmark(seed)
    runs = {}
    for mode, (ffw, blocks) in MODES.items():
        system = build_platform(arch, fast_forward=ffw,
                                translation_blocks=blocks)
        runs[mode] = system.run(benchmark)
    assert_state_identical(runs["exact"], runs["ff-instr"])
    assert_state_identical(runs["exact"], runs["ff-blocks"])


@pytest.mark.parametrize("seed", range(0, 50, 4))
def test_fuzz_looped_trace_identity(seed, monkeypatch):
    """Counted-loop corpus: traces build, run and stay bit-identical."""
    import repro.platform.fast_forward as ff_engine

    monkeypatch.setattr(ff_engine, "TRACE_ENTRY_THRESHOLD", 4)
    monkeypatch.setattr(ff_engine, "TRACE_MIN_EDGE", 2)
    arch = ARCH_NAMES[seed % len(ARCH_NAMES)]
    benchmark = looped_fuzz_benchmark(seed)
    runs = {}
    for mode, (ffw, blocks) in MODES.items():
        system = build_platform(arch, fast_forward=ffw,
                                translation_blocks=blocks)
        runs[mode] = system.run(benchmark)
    assert_state_identical(runs["exact"], runs["ff-instr"])
    assert_state_identical(runs["exact"], runs["ff-blocks"])


@pytest.mark.parametrize("arch", ARCH_NAMES)
@pytest.mark.parametrize("seed", range(0, 50, 10))
def test_fuzz_batched_ring_identity(arch, seed):
    """Ring-only delivery (no per-event subscribers) across modes.

    Without per-event subscribers the emitters write straight into the
    typed ring buffers, so this pass fuzzes the zero-allocation fast
    paths the stream test above bypasses.
    """
    benchmark = fuzz_benchmark(seed)
    slow, slow_snap, _ = run_observed(
        arch, benchmark, fast_forward=False, capture_events=False)
    for mode, (ffw, blocks) in MODES.items():
        if not ffw:
            continue
        fast, fast_snap, _ = run_observed(
            arch, benchmark, fast_forward=ffw, translation_blocks=blocks,
            capture_events=False)
        assert_state_identical(slow, fast)
        assert slow_snap == fast_snap, \
            f"metric registries diverged ({mode})"
