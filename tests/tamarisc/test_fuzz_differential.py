"""Fuzz differential: 50 random programs, exact vs fast-forward.

The fast-forward engine's bit-identity promise covers more than the
architectural state the older differential suite checks — the *probe
event stream* must also be indistinguishable, because every metric,
trace and manifest digest is derived from it.  Each seeded
constrained-random program (full ISA surface) runs once per mode with

* per-event subscribers on every comparable event (which forces both
  modes onto the ``emit()`` fallback paths), and
* the batched metrics collector attached on the same bus,

and the test asserts equal registers, memory, ``SimulationStats``,
metric snapshots, and per-cycle-sorted event streams.  ``ff.enter`` /
``ff.exit`` are excluded: they describe the engine's own mode
transitions, which the exact loop by definition never emits.

A second pass re-runs a slice of the corpus with *only* the batched
collector attached, so the raw ring-buffer fast paths (no ``emit()``
involved at all) get the same fuzz coverage.
"""

import dataclasses
import random

import pytest

from repro.memory.layout import PRIVATE_BASE
from repro.obs import EVENTS, ProbeMetrics
from repro.platform import ARCH_NAMES, Benchmark, build_platform
from repro.tamarisc.program import DataImage
from repro.tamarisc.regression import SANDBOX_WORDS, generate_random_program

#: ff.* events announce fast-forward engine transitions; the exact loop
#: never emits them, so they are not part of the identity contract.
COMPARABLE_EVENTS = sorted(EVENTS - {"ff.enter", "ff.exit"})

FUZZ_SEEDS = range(50)


def fuzz_benchmark(seed: int) -> Benchmark:
    """Full-coverage random program plus a seeded private sandbox."""
    program = generate_random_program(seed, length=40, full_coverage=True)
    rng = random.Random(seed)
    sandbox = [rng.randrange(0x10000) for __ in range(SANDBOX_WORDS)]
    data = DataImage()
    for pid in range(8):
        data.set_private_block(pid, PRIVATE_BASE, sandbox)
    return Benchmark(f"fuzz-{seed}", program, data)


def run_observed(arch: str, benchmark: Benchmark, fast_forward: bool,
                 capture_events: bool = True):
    """One observed run; returns (result, metrics snapshot, streams)."""
    system = build_platform(arch, fast_forward=fast_forward)
    bus = system.probe_bus()
    streams = None
    if capture_events:
        streams = {name: [] for name in COMPARABLE_EVENTS}
        for name in COMPARABLE_EVENTS:
            bus.subscribe(name,
                          lambda *args, _rec=streams[name].append:
                          _rec(args))
    metrics = ProbeMetrics.attach(bus)
    result = system.run(benchmark)
    mismatches = metrics.verify_against(result.stats)
    assert not mismatches, f"probe/stats reconciliation: {mismatches}"
    if streams is not None:
        for stream in streams.values():
            stream.sort()  # per-cycle order is not part of the contract
    snapshot = {name: value for name, value
                in metrics.registry.snapshot().items()
                if not name.startswith("probe.ff_")}  # engine-only
    return result, snapshot, streams


def assert_state_identical(slow, fast):
    for field in dataclasses.fields(slow.stats):
        assert getattr(slow.stats, field.name) \
            == getattr(fast.stats, field.name), \
            f"stats field {field.name!r} diverged"
    for pid, (ref, ffw) in enumerate(zip(slow.system.cores,
                                         fast.system.cores)):
        assert ref.regs == ffw.regs, f"core {pid} registers"
        assert ref.pc == ffw.pc, f"core {pid} PC"
        assert ref.halted == ffw.halted, f"core {pid} halt state"
    for bank, (ref, ffw) in enumerate(zip(slow.system.dmem.banks,
                                          fast.system.dmem.banks)):
        assert ref.storage == ffw.storage, f"DM bank {bank} image"


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzz_event_stream_identity(seed):
    """State, metrics and sorted event streams agree across modes."""
    arch = ARCH_NAMES[seed % len(ARCH_NAMES)]
    benchmark = fuzz_benchmark(seed)
    slow, slow_snap, slow_events = run_observed(
        arch, benchmark, fast_forward=False)
    fast, fast_snap, fast_events = run_observed(
        arch, benchmark, fast_forward=True)
    assert_state_identical(slow, fast)
    assert slow_snap == fast_snap, "metric registries diverged"
    for name in COMPARABLE_EVENTS:
        assert slow_events[name] == fast_events[name], \
            f"{name} event stream diverged (seed {seed}, {arch})"


@pytest.mark.parametrize("arch", ARCH_NAMES)
@pytest.mark.parametrize("seed", range(0, 50, 10))
def test_fuzz_batched_ring_identity(arch, seed):
    """Ring-only delivery (no per-event subscribers) across modes.

    Without per-event subscribers the emitters write straight into the
    typed ring buffers, so this pass fuzzes the zero-allocation fast
    paths the stream test above bypasses.
    """
    benchmark = fuzz_benchmark(seed)
    slow, slow_snap, _ = run_observed(
        arch, benchmark, fast_forward=False, capture_events=False)
    fast, fast_snap, _ = run_observed(
        arch, benchmark, fast_forward=True, capture_events=False)
    assert_state_identical(slow, fast)
    assert slow_snap == fast_snap, "metric registries diverged"
