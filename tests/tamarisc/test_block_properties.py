"""Property tests for the basic-block translation layer.

Three block-level properties lock the tentpole down:

* executing a fused block is indistinguishable from per-instruction
  dispatch (and from the exact cycle loop) for the full architectural
  state and the accounting stats;
* block discovery stops exactly at control-flow boundaries — a
  ``BR``/``HLT`` terminator is included, an unsupported instruction or
  the :data:`~repro.tamarisc.blocks.MAX_BLOCK_BODY` cap ends the block
  before it, and the collected instructions mirror the decoded image;
* the translation cache is keyed on ``(pc, image_hash)`` and returns
  the *same object* for repeated lookups — different images never
  alias.
"""

import dataclasses
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.layout import PRIVATE_BASE
from repro.platform import ARCH_NAMES, Benchmark, build_platform
from repro.tamarisc.blocks import (
    MAX_BLOCK_BODY,
    cache_clear,
    discover_block,
    get_block,
    image_hash,
)
from repro.tamarisc.encoding import decode
from repro.tamarisc.isa import Op
from repro.tamarisc.program import DataImage
from repro.tamarisc.regression import SANDBOX_WORDS, generate_random_program
from repro.tamarisc.blocks import _supported

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)


def _benchmark(seed: int) -> Benchmark:
    program = generate_random_program(seed, length=30, full_coverage=True)
    rng = random.Random(seed)
    sandbox = [rng.randrange(0x10000) for __ in range(SANDBOX_WORDS)]
    data = DataImage()
    for pid in range(8):
        data.set_private_block(pid, PRIVATE_BASE, sandbox)
    return Benchmark(f"prop-{seed}", program, data)


def _run(benchmark, arch, fast_forward, translation_blocks):
    system = build_platform(arch, fast_forward=fast_forward,
                            translation_blocks=translation_blocks)
    return system, system.run(benchmark)


class TestFusedExecution:
    @given(SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_block_mode_equals_dispatch_and_exact(self, seed):
        benchmark = _benchmark(seed)
        arch = ARCH_NAMES[seed % len(ARCH_NAMES)]
        exact_sys, exact = _run(benchmark, arch, False, False)
        for blocks in (False, True):
            fast_sys, fast = _run(benchmark, arch, True, blocks)
            for field in dataclasses.fields(exact.stats):
                assert getattr(exact.stats, field.name) \
                    == getattr(fast.stats, field.name), field.name
            for ref, ffw in zip(exact_sys.cores, fast_sys.cores):
                assert ref.regs == ffw.regs
                assert ref.pc == ffw.pc
                assert ref.flags.as_tuple() == ffw.flags.as_tuple()
                assert ref.halted == ffw.halted
            for ref, ffw in zip(exact_sys.dmem.banks, fast_sys.dmem.banks):
                assert ref.storage == ffw.storage


class TestDiscovery:
    @given(SEEDS, st.integers(min_value=0, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_stops_at_control_flow_boundaries(self, seed, pc_pick):
        program = generate_random_program(seed, length=25,
                                          full_coverage=True)
        decoded = [decode(word) for word in program.words]
        pc = pc_pick % len(decoded)
        block = discover_block(decoded, pc)
        assert block.start == pc
        assert len(block.instrs) <= MAX_BLOCK_BODY + 1
        # the collected instructions mirror the image
        assert block.instrs == decoded[pc:pc + len(block.instrs)]
        if block.terminator is not None:
            # terminator is the block's only control-flow instruction
            last = block.instrs[-1]
            assert (block.terminator == "hlt") == (last.op == Op.HLT)
            assert (block.terminator == "br") == (last.op == Op.BR)
            body = block.instrs[:-1]
        else:
            body = block.instrs
            # the block ended early: cap, program end or unsupported next
            nxt = pc + len(body)
            assert len(body) == MAX_BLOCK_BODY or nxt >= len(decoded) \
                or not _supported(decoded[nxt])
        for instr in body:
            assert instr.op not in (Op.BR, Op.HLT)
            assert _supported(instr)

    @given(SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_every_position_reachable(self, seed):
        """Discovery never raises anywhere in the image and blocks
        starting on a terminator contain exactly that instruction."""
        program = generate_random_program(seed, length=15)
        decoded = [decode(word) for word in program.words]
        for pc, instr in enumerate(decoded):
            block = discover_block(decoded, pc)
            if instr.op in (Op.BR, Op.HLT):
                assert block.total == 1
                assert block.terminator is not None


class TestCacheIdentity:
    @given(SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_same_key_same_object(self, seed):
        program = generate_random_program(seed, length=20)
        decoded = [decode(word) for word in program.words]
        digest = image_hash(program.words)
        cache_clear()
        try:
            first, compiled = get_block(0, digest, decoded)
            again, recompiled = get_block(0, digest, decoded)
            assert compiled and not recompiled
            assert first is again
        finally:
            cache_clear()

    def test_different_images_never_alias(self):
        prog_a = generate_random_program(3, length=20)
        prog_b = generate_random_program(4, length=20)
        dec_a = [decode(word) for word in prog_a.words]
        dec_b = [decode(word) for word in prog_b.words]
        hash_a = image_hash(prog_a.words)
        hash_b = image_hash(prog_b.words)
        assert hash_a != hash_b
        cache_clear()
        try:
            block_a, __ = get_block(0, hash_a, dec_a)
            block_b, __ = get_block(0, hash_b, dec_b)
            assert block_a is not block_b
            assert block_a.instrs == dec_a[:len(block_a.instrs)]
            assert block_b.instrs == dec_b[:len(block_b.instrs)]
        finally:
            cache_clear()
