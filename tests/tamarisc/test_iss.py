"""Functional single-core simulator on real programs."""

import pytest

from repro.errors import SimulationError
from repro.tamarisc.assembler import assemble
from repro.tamarisc.iss import InstructionSetSimulator


def run(source, data=None, max_cycles=200_000):
    iss = InstructionSetSimulator(assemble(source), data=data)
    iss.run(max_cycles=max_cycles)
    return iss


class TestPrograms:
    def test_sum_of_first_n(self):
        iss = run("""
            mov r1, #0
            mov r2, #100
        loop:
            add r1, r1, r2
            sub r2, r2, #1
            bne loop
            hlt
        """)
        assert iss.core.regs[1] == 5050

    def test_fibonacci(self):
        iss = run("""
            mov r1, #0
            mov r2, #1
            mov r3, #20
        loop:
            add r4, r1, r2
            mov r1, r2
            mov r2, r4
            sub r3, r3, #1
            bne loop
            hlt
        """)
        assert iss.core.regs[1] == 6765  # fib(20)

    def test_memcpy_with_mem_to_mem_mov(self):
        data = {0x100 + i: (i * 3) & 0xFFFF for i in range(32)}
        iss = run("""
            li  r1, 0x100
            li  r2, 0x200
            mov r3, #32
        loop:
            mov [r2++], [r1++]
            sub r3, r3, #1
            bne loop
            hlt
        """, data=data)
        assert iss.read_block(0x200, 32) == [v for __, v
                                             in sorted(data.items())]
        assert iss.stats.dreads == 32 and iss.stats.dwrites == 32

    def test_subroutine_call_via_link_register(self):
        iss = run("""
            mov  r1, #5
            li   lr, back
            bra  double
        back:
            hlt
        double:
            add  r1, r1, r1
            brx  lr
        """)
        assert iss.core.regs[1] == 10

    def test_indexed_table_lookup(self):
        data = {0x300 + i: i * i for i in range(16)}
        iss = run("""
            li  r1, 0x300
            mov xr, #7
            mov r2, [r1+xr]
            hlt
        """, data=data)
        assert iss.core.regs[2] == 49

    def test_sixteen_bit_wraparound_accumulation(self):
        iss = run("""
            li  r1, 0xFFF0
            li  r2, 0x0020
            add r3, r1, r2
            hlt
        """)
        assert iss.core.regs[3] == 0x0010
        assert iss.core.flags.c

    def test_conditional_max(self):
        iss = run("""
            mov r1, #100
            mov r2, #42
            sub r0, r1, r2
            bge keep_r1
            mov r1, r2
        keep_r1:
            hlt
        """)
        assert iss.core.regs[1] == 100


class TestStatistics:
    def test_cycles_equal_retired_instructions(self):
        iss = run("nop\nnop\nnop\nhlt")
        assert iss.stats.cycles == 4
        assert iss.core.retired == 4

    def test_branch_taken_counted(self):
        iss = run("""
            mov r1, #3
        loop:
            sub r1, r1, #1
            bne loop
            hlt
        """)
        assert iss.stats.branches_taken == 2


class TestGuards:
    def test_runaway_program_detected(self):
        with pytest.raises(SimulationError, match="did not halt"):
            run("loop: bra loop", max_cycles=100)

    def test_pc_out_of_program_detected(self):
        iss = InstructionSetSimulator(assemble("nop\nnop"))
        with pytest.raises(SimulationError, match="outside"):
            iss.run(max_cycles=10)

    def test_uninitialised_memory_reads_zero(self):
        iss = run("li r1, 0x5000\nmov r2, [r1]\nhlt")
        assert iss.core.regs[2] == 0
