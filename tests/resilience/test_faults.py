"""Fault model contracts: drawing, injection, classification.

The fault plan must be a pure function of ``(campaign_seed, trial)``,
every drawn site must be in bounds for the machine, and forced-plan
trials must classify deterministically — including the dead-core
graceful-degradation path and the stuck-core watchdog hang.
"""

import random
from dataclasses import replace

import pytest

from repro.errors import ReproError, TrapError
from repro.resilience import (
    FaultSession,
    FaultSpec,
    FaultTrialSpec,
    TrapInstruction,
    build_plan,
    draw_fault,
    execute_trial,
    golden_run,
    trial_seed,
)
from repro.resilience.faults import IM_BITS, IM_MASK, KINDS, PC_BITS
from repro.tamarisc.encoding import decode
from repro.tamarisc.isa import NUM_REGS, WORD_BITS

#: Small-geometry trial every classification test shares (the golden
#: run is cached per process, so only the first test pays for it).
SPEC = FaultTrialSpec(trial=0, campaign_seed=2012, arch="mc-ref",
                      n_samples=64, n_measurements=32)

MACHINE = dict(n_cores=8, dm_banks=16, dm_bank_words=2048,
               program_len=200, max_cycle=8000)


class TestTrialSeed:
    def test_pure_function_of_inputs(self):
        assert trial_seed(2012, 5) == trial_seed(2012, 5)
        assert trial_seed(2012, 5) != trial_seed(2012, 6)
        assert trial_seed(2012, 5) != trial_seed(2013, 5)

    def test_distinct_across_a_campaign(self):
        seeds = [trial_seed(2012, trial) for trial in range(256)]
        assert len(set(seeds)) == 256
        assert all(0 <= seed < 2 ** 32 for seed in seeds)


class TestDrawFault:
    def test_sites_in_bounds(self):
        for trial in range(300):
            rng = random.Random(trial_seed(99, trial))
            fault = draw_fault(rng, **MACHINE)
            assert fault.kind in KINDS
            assert 1 <= fault.cycle < MACHINE["max_cycle"]
            assert 0 <= fault.core < MACHINE["n_cores"]
            if fault.kind == "reg":
                assert 0 <= fault.index < NUM_REGS
                assert 0 < fault.mask < (1 << WORD_BITS)
            elif fault.kind == "pc":
                assert 0 < fault.mask < (1 << PC_BITS)
            elif fault.kind == "dm":
                assert 0 <= fault.bank < MACHINE["dm_banks"]
                assert 0 <= fault.index < MACHINE["dm_bank_words"]
                assert 0 < fault.mask < (1 << WORD_BITS)
            elif fault.kind == "im":
                assert 0 <= fault.index < MACHINE["program_len"]
                assert 0 < fault.mask < (1 << IM_BITS)
            else:  # stuck / dead carry no mask
                assert fault.mask == 0

    def test_every_kind_eventually_drawn(self):
        kinds = {draw_fault(random.Random(trial_seed(7, trial)),
                            **MACHINE).kind
                 for trial in range(300)}
        assert kinds == set(KINDS)

    def test_plan_is_deterministic(self):
        one = build_plan(2012, 16, **MACHINE)
        two = build_plan(2012, 16, **MACHINE)
        assert one.trials == two.trials
        other = build_plan(2013, 16, **MACHINE)
        assert one.trials != other.trials

    def test_mask_distribution_has_single_and_double_flips(self):
        weights = {bin(draw_fault(random.Random(trial_seed(3, trial)),
                                  **MACHINE).mask).count("1")
                   for trial in range(300)}
        assert {1, 2} <= weights | {0}


class TestTrapInstruction:
    def test_op_raises_trap_error(self):
        instr = TrapInstruction(word=0xFFFFFF, pc=0x40)
        with pytest.raises(TrapError, match="decode trap at PC 0x40"):
            instr.op


def _undecodable_im_faults(golden):
    """Deterministic (pc, mask) candidates whose patched word fails to
    decode.  Injected at cycle 1; whether the trap fires depends on the
    pc being fetched afterwards, so callers probe the candidates."""
    words = golden.built.benchmark.program.words
    for pc, word in enumerate(words):
        for bit in range(IM_BITS):
            flipped = (word ^ (1 << bit)) & IM_MASK
            try:
                decode(flipped)
            except ReproError:
                yield FaultSpec("im", 1, 0, index=pc, mask=1 << bit)
                break  # one candidate per pc is enough


class TestClassification:
    def test_no_fault_is_masked(self):
        golden = golden_run(SPEC)
        result = execute_trial(SPEC, fault_specs=())
        assert result.outcome == "masked"
        assert result.cycles == golden.cycles
        assert result.output_digest == golden.output_digest

    def test_cycle_budget_exhaustion_is_hang(self):
        spec = replace(SPEC, max_cycles=500)
        result = execute_trial(spec, fault_specs=())
        assert result.outcome == "hang"
        assert result.cycles == -1
        assert "cycle" in result.detail

    def test_stuck_core_trips_the_watchdog(self):
        result = execute_trial(
            SPEC, fault_specs=(FaultSpec("stuck", 100, 0),))
        assert result.outcome == "hang"
        assert "watchdog" in result.detail

    def test_decode_trap_is_detected(self):
        """Some reachable instruction word must trap when corrupted."""
        golden = golden_run(SPEC)
        candidates = _undecodable_im_faults(golden)
        for _ in range(20):
            fault = next(candidates, None)
            if fault is None:
                break
            result = execute_trial(SPEC, fault_specs=(fault,))
            if result.outcome == "detected":
                assert "decode trap" in result.detail
                return
        raise AssertionError(
            "no probed IM corruption raised a decode trap")

    def test_dead_core_degrades_gracefully(self):
        golden = golden_run(SPEC)
        result = execute_trial(
            SPEC, fault_specs=(FaultSpec("dead", 0, 2),))
        assert result.outcome == "sdc"  # the dead lead never computes
        report = result.degradation
        assert report is not None
        assert report["dead_core"] == 2 and report["survivor"] == 3
        assert report["remap_verified"] is True
        # The survivor runs two leads sequentially: roughly half the
        # healthy throughput, never more than one.
        assert 0.4 < report["throughput_factor"] < 0.6
        assert report["degraded_cycles"] == sum(report["pass_cycles"])
        assert report["healthy_cycles"] == golden.cycles

    def test_trial_is_deterministic(self):
        fault = (FaultSpec("reg", 2000, 1, index=3, mask=0x10),)
        one = execute_trial(SPEC, fault_specs=fault)
        two = execute_trial(SPEC, fault_specs=fault)
        assert one.identity_row() == two.identity_row()

    def test_forced_fault_identical_across_engines(self):
        fault = (FaultSpec("reg", 2000, 1, index=3, mask=0x10),)
        ff = execute_trial(SPEC, fault_specs=fault)
        exact = execute_trial(replace(SPEC, fast_forward=False),
                              fault_specs=fault)
        assert ff.identity_row() == exact.identity_row()


class TestFaultSession:
    def test_pending_ordered_and_next_cycle(self):
        session = FaultSession([FaultSpec("reg", 500, 1, index=0, mask=1),
                                FaultSpec("dm", 100, 0, index=5, bank=2,
                                          mask=2)])
        assert session.next_cycle == 100
        assert [spec.cycle for spec in session.pending] == [100, 500]

    def test_im_patch_never_mutates_the_cached_decode(self):
        """An IM fault patches a copy of the decoded program; the
        shared process-level decode cache must stay pristine, so a
        clean trial after a patched one is still masked."""
        fault = (FaultSpec("im", 10, 0, index=0, mask=0x1),)
        execute_trial(SPEC, fault_specs=fault)
        clean = execute_trial(SPEC, fault_specs=())
        assert clean.outcome == "masked"
