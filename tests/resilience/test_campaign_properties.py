"""Campaign determinism properties.

The acceptance contract of the resilience subsystem: a fixed-seed
campaign produces identical fault sites, per-trial outcomes and
campaign digests across the exact and fast-forward engines, across
worker counts, and across cold vs resumed executions — every
scheduling and engine knob is invisible to the simulated bits.
"""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.farm.checkpoint import Checkpoint, spec_key
from repro.resilience import (
    build_campaign,
    campaign_digest,
    execute_trial,
    run_campaign,
)

#: Small geometry: the per-process golden cache makes trial N cheap,
#: but exact-engine trials still dominate the budget.
GEOMETRY = dict(n_samples=64, n_measurements=32)


@settings(max_examples=3, deadline=None)
@given(campaign_seed=st.integers(min_value=0, max_value=2 ** 16))
def test_same_plan_seed_identical_across_engines(campaign_seed):
    """Same campaign seed => identical fault sites, outcomes and
    digests whether trials run exact or fast-forward."""
    ff_specs = build_campaign(3, "mc-ref", campaign_seed=campaign_seed,
                              **GEOMETRY)
    exact_specs = [replace(spec, fast_forward=False)
                   for spec in ff_specs]
    ff = [execute_trial(spec) for spec in ff_specs]
    exact = [execute_trial(spec) for spec in exact_specs]
    assert [r.fault for r in ff] == [r.fault for r in exact]
    assert [r.outcome for r in ff] == [r.outcome for r in exact]
    assert [r.identity_row() for r in ff] \
        == [r.identity_row() for r in exact]
    assert campaign_digest(ff) == campaign_digest(exact)


def test_digest_identical_across_worker_counts():
    specs = build_campaign(4, "mc-ref", campaign_seed=7, **GEOMETRY)
    one = run_campaign(specs, workers=1)
    four = run_campaign(specs, workers=4)
    assert one.ok and four.ok
    assert [r.identity_row() for r in one.results] \
        == [r.identity_row() for r in four.results]
    assert one.digest() == four.digest()


def test_resumed_campaign_digest_bit_identical(tmp_path):
    """A checkpointed campaign resumed after partial completion
    recomputes nothing and reproduces the cold digest exactly."""
    specs = build_campaign(4, "mc-ref", campaign_seed=11, **GEOMETRY)
    checkpoint = tmp_path / "campaign.jsonl"
    cold = run_campaign(specs, workers=2, checkpoint=checkpoint)
    assert cold.ok and cold.resumed == 0

    # Drop the final record, simulating a kill before the last trial.
    lines = checkpoint.read_text().splitlines()
    checkpoint.write_text("\n".join(lines[:-1]) + "\n")
    partial = Checkpoint(checkpoint).load()
    assert len(partial) == 3

    resumed = run_campaign(specs, workers=2, checkpoint=checkpoint,
                           resume=True)
    assert resumed.ok
    assert resumed.resumed == 3  # only the dropped trial recomputed
    assert resumed.digest() == cold.digest()
    assert [r.identity_row() for r in resumed.results] \
        == [r.identity_row() for r in cold.results]
    # The recomputed trial was re-checkpointed: a second resume is
    # fully satisfied from the store.
    again = run_campaign(specs, workers=2, checkpoint=checkpoint,
                         resume=True)
    assert again.resumed == 4
    assert again.digest() == cold.digest()


def test_campaign_identity_excludes_the_engine():
    from repro.resilience import campaign_identity
    ff = build_campaign(3, "mc-ref", campaign_seed=5, **GEOMETRY)
    exact = build_campaign(3, "mc-ref", campaign_seed=5,
                           fast_forward=False, translation_blocks=False,
                           **GEOMETRY)
    assert campaign_identity(ff) == campaign_identity(exact)
    # ... but the spec keys differ, so checkpoints never cross engines.
    assert spec_key(ff[0]) != spec_key(exact[0])
