"""Regenerates Table II (dynamic power at 8 MOps/s, 1.2 V)."""

from benchmarks.conftest import show
from repro.experiments import table2
from repro.experiments.common import ARCHES


def test_table2_reproduction(benchmark, cal):
    result = table2.run()
    show(result)
    models = {arch: cal.power_model(arch) for arch in ARCHES}
    frequencies = {arch: 8e6 / cal.ops_per_cycle(arch) for arch in ARCHES}

    def breakdowns():
        return {arch: models[arch].dynamic_power(frequencies[arch], 1.2,
                                                 post_layout=False)
                for arch in ARCHES}

    totals = benchmark(breakdowns)
    saving = 1 - totals["ulpmc-bank"].total / totals["mc-ref"].total
    assert 0.35 < saving < 0.45  # paper: 40.6 %
