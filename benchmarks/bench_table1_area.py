"""Regenerates Table I (area in kGE) and times the area model."""

from benchmarks.conftest import show
from repro.experiments import table1
from repro.platform.config import build_config
from repro.power.area import area_report


def test_table1_reproduction(benchmark):
    result = table1.run()
    show(result)
    assert result.max_relative_error() < 0.10
    configs = [build_config(name) for name in ("mc-ref", "ulpmc-int")]
    benchmark(lambda: [area_report(config) for config in configs])
