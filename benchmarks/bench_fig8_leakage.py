"""Regenerates Fig. 8 (dynamic vs leakage split at low workloads)."""

from benchmarks.conftest import show
from repro.experiments import fig8
from repro.experiments.common import ARCHES


def test_fig8_reproduction(benchmark, cal):
    result = fig8.run()
    show(result)
    assert result.max_relative_error() < 0.06

    def decompose():
        rows = []
        for arch in ARCHES:
            model = cal.power_model(arch)
            point = cal.dvfs().operating_point(50e3,
                                               cal.ops_per_cycle(arch))
            rows.append((model.dynamic_power(point.frequency_hz,
                                             point.voltage).total,
                         model.total_leakage(point.voltage)))
        return rows

    rows = benchmark(decompose)
    leak_saving = 1 - rows[2][1] / rows[0][1]
    assert 0.33 < leak_saving < 0.42  # paper: 38.8 %
