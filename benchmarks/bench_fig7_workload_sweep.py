"""Regenerates Fig. 7 (normalised power across 5 kOps/s .. 637 MOps/s)."""

from benchmarks.conftest import show
from repro.experiments import fig7
from repro.experiments.common import ARCHES


def test_fig7_reproduction(benchmark, cal):
    result = fig7.run()
    show(result)

    workloads = [5e3, 50e3, 500e3, 5e6, 50e6, 500e6]

    def sweep():
        return {arch: [cal.workload_power(arch, w) for w in workloads]
                for arch in ARCHES}

    powers = benchmark(sweep)
    top_saving = 1 - powers["ulpmc-bank"][-1] / powers["mc-ref"][-1]
    low_saving = 1 - powers["ulpmc-bank"][0] / powers["mc-ref"][0]
    assert 0.34 < top_saving < 0.43  # paper: 39.5 % at 637 MOps/s
    assert 0.34 < low_saving < 0.43  # paper: 38.8 % at 5 kOps/s
