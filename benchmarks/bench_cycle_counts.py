"""Regenerates the Section IV-C2 cycle/IM-access study and times the
cycle-accurate simulator itself (the heaviest computation in the repo)."""

from benchmarks.conftest import show
from repro.experiments import cycles
from repro.kernels import BenchmarkSpec, build_benchmark, verify_result
from repro.platform import build_platform


def test_cycle_counts_reproduction(benchmark):
    result = cycles.run()
    show(result)

    built = build_benchmark(BenchmarkSpec(n_samples=32, n_measurements=16,
                                          huffman_private=True))

    def simulate():
        system = build_platform("ulpmc-bank")
        outcome = system.run(built.benchmark)
        verify_result(built, outcome)
        return outcome.stats

    stats = benchmark(simulate)
    assert stats.im_banks_gated == 7
    reduction = 1 - stats.im_bank_accesses / stats.im_fetches
    assert reduction > 0.75
