"""Regenerates Fig. 6 (proposed power vs throughput per constraint)."""

from benchmarks.conftest import show
from repro.experiments import fig6
from repro.power.synthesis import SynthesisModel


def test_fig6_reproduction(benchmark, cal):
    result = fig6.run()
    show(result)
    assert result.max_relative_error() < 0.02

    leak = cal.power_model("ulpmc-int").total_leakage(cal.technology.v_nom)
    calibration = benchmark(
        lambda: SynthesisModel(cal.technology, leakage_nominal_w=leak))
    saving = calibration.saving_vs_speed_optimised("proposed")
    assert 0.23 < saving < 0.26  # paper: 24.1 %
