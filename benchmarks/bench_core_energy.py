"""Regenerates the Section IV-C1 core-energy comparison."""

from benchmarks.conftest import show
from repro.experiments import core_energy


def test_core_energy_reproduction(benchmark, cal):
    result = core_energy.run()
    show(result)
    assert result.comparisons[0].relative_error < 0.01

    model = cal.power_model("mc-ref")
    rates = cal.results["mc-ref"].stats.activity_rates()

    def core_pj_at_1v():
        per_instr = model.cycle_energy().cores / rates["core_active"]
        return per_instr * (1.0 / 1.2) ** 2 * 1e12

    value = benchmark(core_pj_at_1v)
    assert 15.0 < value < 16.5  # paper: 15.6 pJ/op
