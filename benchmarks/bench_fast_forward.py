"""Measures the fast-forward speedup on the 8-lead ECG compression workload.

Runs the full CS+Huffman benchmark through three execution modes on each
platform — the cycle-stepped reference loop, the per-instruction
fast-forward mode and the fast-forward mode with its translation-block
layer — verifies the outputs and every ``SimulationStats`` field are
bit-identical across all three, and reports the wall-clock speedups.

Each run can be recorded as a ``bench_fast_forward/1`` JSON document
(``--json``), giving the repo a tracked speed trajectory: CI writes the
quick-geometry record as an artifact and compares its speedups against
the committed baseline in ``benchmarks/baselines/BENCH_fast_forward.json``
(``--check``), failing on a >20% regression.  Speedup *ratios* rather
than raw seconds are compared, so the gate transfers across machines.

Usable both as a pytest-benchmark module and as a script::

    python benchmarks/bench_fast_forward.py              # full workload
    python benchmarks/bench_fast_forward.py --quick      # CI smoke run
    python benchmarks/bench_fast_forward.py --quick \\
        --json BENCH_fast_forward.json \\
        --check benchmarks/baselines/BENCH_fast_forward.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:  # direct script invocation
    sys.path.insert(0, str(_SRC))

from repro.kernels import BenchmarkSpec, build_benchmark, verify_result
from repro.obs import git_revision, stats_digest
from repro.platform import ARCH_NAMES, build_platform

#: Record format version for the JSON trajectory documents.
SCHEMA = "bench_fast_forward/1"

#: Wall-clock speedup the per-instruction fast path must reach over the
#: cycle-stepped loop on conflict-free mc-ref (full workload only).
TARGET_SPEEDUP = 3.0

#: A checked run fails when a gated speedup drops below this fraction
#: of the committed baseline's speedup (>20% regression).
CHECK_FRACTION = 0.8

#: Architectures the baseline gate applies to.  Only conflict-free
#: mc-ref is gated: the banked configurations take hundreds of
#: arbitration fallbacks on this workload, which makes their quick-run
#: wall clock too noisy for a 20% gate (their rows are still recorded
#: in the trajectory for human inspection).
CHECK_ARCHES = ("mc-ref",)

#: Default location of the committed quick-geometry baseline.
BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "baselines" \
    / "BENCH_fast_forward.json"


def _timed(factory, benchmark, reps: int):
    """Best-of-``reps`` wall time; returns (seconds, system, result)."""
    best = None
    for __ in range(max(1, reps)):
        system = factory()
        t0 = time.perf_counter()
        result = system.run(benchmark)
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best[0]:
            best = (elapsed, system, result)
    return best


def _assert_stats_equal(arch: str, mode: str, ref, other) -> None:
    if ref.stats != other.stats:
        raise AssertionError(
            f"{arch}: {mode} statistics diverged from the cycle-stepped "
            "reference")


def compare_modes(arch: str, built, reps: int = 1) -> dict:
    """Run one architecture in all three modes; verify; time each."""
    benchmark = built.benchmark
    # the exact loop dominates wall time: cap its repetitions, but keep
    # best-of timing so the speedup ratios are stable under load
    exact_s, __, exact = _timed(
        lambda: build_platform(arch, fast_forward=False), benchmark,
        min(reps, 3))
    ff_s, __, ff = _timed(
        lambda: build_platform(arch, fast_forward=True,
                               translation_blocks=False), benchmark, reps)
    blocks_s, blocks_system, blocks = _timed(
        lambda: build_platform(arch, fast_forward=True,
                               translation_blocks=True), benchmark, reps)

    for mode, result in (("fast-forward", ff), ("translation-block",
                                                blocks)):
        verify_result(built, result)
        _assert_stats_equal(arch, mode, exact, result)
    digest = stats_digest(exact.stats)
    assert digest == stats_digest(ff.stats) == stats_digest(blocks.stats)

    engine = blocks_system._ff_engine
    summary = engine.block_summary()
    return {
        "arch": arch,
        "exact_s": exact_s,
        "ff_s": ff_s,
        "blocks_s": blocks_s,
        "speedup_blocks_vs_exact": exact_s / blocks_s,
        "speedup_blocks_vs_ff": ff_s / blocks_s,
        "speedup_ff_vs_exact": exact_s / ff_s,
        "cycles": blocks.stats.total_cycles,
        "fallbacks": engine.fallbacks,
        "block_entries": summary["entries"],
        "blocks_compiled": summary["compiled"],
        "block_hit_rate": summary["hit_rate"],
        "block_cycles": summary["block_cycles"],
        "lockstep_fraction": summary["lockstep_fraction"],
        "traces": summary["traces"],
        "trace_entries": summary["trace_entries"],
        "trace_cycles": summary["trace_cycles"],
        "stats_digest": digest,
    }


def run_comparison(spec: BenchmarkSpec, reps: int = 1) -> list[dict]:
    built = build_benchmark(spec)
    return [compare_modes(arch, built, reps) for arch in ARCH_NAMES]


def make_record(rows: list[dict], quick: bool) -> dict:
    return {
        "schema": SCHEMA,
        "quick": quick,
        "git_rev": git_revision(),
        "rows": rows,
    }


def report(rows: list[dict]) -> None:
    print(f"{'arch':<11} {'exact [s]':>9} {'ff [s]':>8} {'blocks [s]':>10} "
          f"{'x exact':>8} {'x ff':>6} {'lockstep':>8} {'traces':>6} "
          f"{'fallbacks':>9}")
    for row in rows:
        print(f"{row['arch']:<11} {row['exact_s']:>9.3f} "
              f"{row['ff_s']:>8.3f} {row['blocks_s']:>10.3f} "
              f"{row['speedup_blocks_vs_exact']:>7.2f}x "
              f"{row['speedup_blocks_vs_ff']:>5.2f}x "
              f"{row['lockstep_fraction']:>8.2f} {row['traces']:>6} "
              f"{row['fallbacks']:>9}")


def check_against_baseline(record: dict, baseline: dict) -> list[str]:
    """Speedup-trajectory gate: >20% regression per arch/metric fails."""
    failures = []
    base_rows = {row["arch"]: row for row in baseline.get("rows", [])}
    for row in record["rows"]:
        base = base_rows.get(row["arch"])
        if base is None or row["arch"] not in CHECK_ARCHES:
            continue
        for metric in ("speedup_blocks_vs_exact", "speedup_blocks_vs_ff"):
            floor = base[metric] * CHECK_FRACTION
            if row[metric] < floor:
                failures.append(
                    f"{row['arch']}: {metric} {row[metric]:.2f}x is below "
                    f"{CHECK_FRACTION:.0%} of baseline {base[metric]:.2f}x")
    return failures


def test_fast_forward_speedup(benchmark):
    """pytest-benchmark entry: times the block-enabled mode on mc-ref."""
    built = build_benchmark(BenchmarkSpec(n_samples=128, n_measurements=64,
                                          huffman_private=True))
    row = compare_modes("mc-ref", built)
    assert row["fallbacks"] == 0

    def simulate():
        result = build_platform("mc-ref", fast_forward=True) \
            .run(built.benchmark)
        verify_result(built, result)
        return result.stats

    stats = benchmark(simulate)
    assert stats.im_conflict_events == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="three-way fast-forward wall-clock comparison")
    parser.add_argument("--quick", action="store_true",
                        help="small-geometry smoke run (for CI)")
    parser.add_argument("--reps", type=int, default=None,
                        help="best-of repetitions for the fast modes "
                             "(default: 5 quick, 1 full)")
    parser.add_argument("--json", type=pathlib.Path, metavar="PATH",
                        help="write the bench_fast_forward/1 record here")
    parser.add_argument("--check", type=pathlib.Path, metavar="BASELINE",
                        nargs="?", const=BASELINE_PATH,
                        help="fail if any speedup regresses >20%% vs this "
                             f"baseline record (default {BASELINE_PATH})")
    args = parser.parse_args(argv)

    if args.quick:
        spec = BenchmarkSpec(n_samples=64, n_measurements=32,
                             huffman_private=True)
    else:
        spec = BenchmarkSpec(huffman_private=True)
    reps = args.reps if args.reps is not None else (5 if args.quick else 1)
    rows = run_comparison(spec, reps)
    report(rows)
    record = make_record(rows, args.quick)

    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        with args.json.open("w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    status = 0
    if args.check:
        with args.check.open(encoding="utf-8") as handle:
            baseline = json.load(handle)
        if baseline.get("schema") != SCHEMA:
            print(f"FAIL: baseline {args.check} has schema "
                  f"{baseline.get('schema')!r}, expected {SCHEMA!r}",
                  file=sys.stderr)
            return 1
        if baseline.get("quick") != record["quick"]:
            print(f"FAIL: baseline {args.check} was recorded with "
                  f"quick={baseline.get('quick')}; this run used "
                  f"quick={record['quick']} — speedups are only "
                  "comparable at matching geometry", file=sys.stderr)
            return 1
        failures = check_against_baseline(record, baseline)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            status = 1
        else:
            print(f"OK: speedups within {CHECK_FRACTION:.0%} of baseline "
                  f"{args.check}")

    mc_ref = next(row for row in rows if row["arch"] == "mc-ref")
    if not args.quick \
            and mc_ref["speedup_ff_vs_exact"] < TARGET_SPEEDUP:
        print(f"FAIL: mc-ref fast-forward speedup "
              f"{mc_ref['speedup_ff_vs_exact']:.2f}x is below the "
              f"{TARGET_SPEEDUP}x target", file=sys.stderr)
        return 1
    print(f"OK: results bit-identical in all three modes; mc-ref blocks "
          f"{mc_ref['speedup_blocks_vs_exact']:.2f}x vs exact, "
          f"{mc_ref['speedup_blocks_vs_ff']:.2f}x vs fast-forward")
    return status


if __name__ == "__main__":
    sys.exit(main())
