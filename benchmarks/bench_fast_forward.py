"""Measures the fast-forward speedup on the 8-lead ECG compression workload.

Runs the full CS+Huffman benchmark through the cycle-stepped reference
loop and through the conflict-free fast-forward mode on each platform,
verifies the outputs and every ``SimulationStats`` field are
bit-identical, and reports the wall-clock speedup.  The conflict-free
mc-ref configuration is the acceptance gate: the fast path must be at
least 3x faster there.

Usable both as a pytest-benchmark module and as a script::

    python benchmarks/bench_fast_forward.py            # full workload
    python benchmarks/bench_fast_forward.py --quick    # CI smoke run
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:  # direct script invocation
    sys.path.insert(0, str(_SRC))

from repro.kernels import BenchmarkSpec, build_benchmark, verify_result
from repro.platform import ARCH_NAMES, build_platform

#: Wall-clock speedup the fast path must reach on conflict-free mc-ref.
TARGET_SPEEDUP = 3.0


def compare_modes(arch: str, built) -> dict:
    """Run one architecture in both modes; verify equality; time both."""
    t0 = time.perf_counter()
    slow = build_platform(arch, fast_forward=False).run(built.benchmark)
    t1 = time.perf_counter()
    fast_system = build_platform(arch, fast_forward=True)
    t2 = time.perf_counter()
    fast = fast_system.run(built.benchmark)
    t3 = time.perf_counter()

    verify_result(built, fast)
    if slow.stats != fast.stats:
        raise AssertionError(
            f"{arch}: fast-forward statistics diverged from the "
            "cycle-stepped reference")
    engine = fast_system._ff_engine
    return {
        "arch": arch,
        "slow_s": t1 - t0,
        "fast_s": t3 - t2,
        "speedup": (t1 - t0) / (t3 - t2),
        "cycles": fast.stats.total_cycles,
        "fast_cycles": engine.fast_cycles,
        "fallbacks": engine.fallbacks,
    }


def run_comparison(spec: BenchmarkSpec) -> list[dict]:
    built = build_benchmark(spec)
    return [compare_modes(arch, built) for arch in ARCH_NAMES]


def report(rows: list[dict]) -> None:
    print(f"{'arch':<11} {'slow [s]':>9} {'fast [s]':>9} {'speedup':>8} "
          f"{'fast cyc':>9} {'cycles':>8} {'fallbacks':>9}")
    for row in rows:
        print(f"{row['arch']:<11} {row['slow_s']:>9.3f} "
              f"{row['fast_s']:>9.3f} {row['speedup']:>7.2f}x "
              f"{row['fast_cycles']:>9} {row['cycles']:>8} "
              f"{row['fallbacks']:>9}")


def test_fast_forward_speedup(benchmark):
    """pytest-benchmark entry: times the fast mode on mc-ref."""
    built = build_benchmark(BenchmarkSpec(n_samples=128, n_measurements=64,
                                          huffman_private=True))
    row = compare_modes("mc-ref", built)
    assert row["fallbacks"] == 0

    def simulate():
        result = build_platform("mc-ref", fast_forward=True) \
            .run(built.benchmark)
        verify_result(built, result)
        return result.stats

    stats = benchmark(simulate)
    assert stats.im_conflict_events == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fast-forward vs cycle-stepped wall-clock comparison")
    parser.add_argument("--quick", action="store_true",
                        help="small-geometry smoke run (for CI)")
    args = parser.parse_args(argv)

    if args.quick:
        spec = BenchmarkSpec(n_samples=64, n_measurements=32,
                             huffman_private=True)
    else:
        spec = BenchmarkSpec(huffman_private=True)
    rows = run_comparison(spec)
    report(rows)

    mc_ref = next(row for row in rows if row["arch"] == "mc-ref")
    if not args.quick and mc_ref["speedup"] < TARGET_SPEEDUP:
        print(f"FAIL: mc-ref speedup {mc_ref['speedup']:.2f}x is below "
              f"the {TARGET_SPEEDUP}x target", file=sys.stderr)
        return 1
    print(f"OK: results bit-identical in both modes; mc-ref speedup "
          f"{mc_ref['speedup']:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
