"""Regenerates Fig. 5 (mc-ref power vs throughput per clock constraint)."""

import numpy as np

from benchmarks.conftest import show
from repro.experiments import fig5
from repro.power.synthesis import DESIGN_POINTS_NS, SynthesisModel


def test_fig5_reproduction(benchmark, cal):
    result = fig5.run()
    show(result)
    assert result.max_relative_error() < 0.02

    leak = cal.power_model("mc-ref").total_leakage(cal.technology.v_nom)
    model = SynthesisModel(cal.technology, leakage_nominal_w=leak)
    workloads = np.logspace(6, 9, 40)

    def curves():
        return {period: [model.power("mc-ref", period, w)
                         for w in workloads
                         if w <= model.max_workload("mc-ref", period)]
                for period in DESIGN_POINTS_NS["mc-ref"]}

    series = benchmark(curves)
    assert all(len(points) > 10 for points in series.values())
