"""Regenerates the core-count scaling and battery-lifetime extension
studies."""

from benchmarks.conftest import show
from repro.experiments import lifetime, scaling
from repro.power.lifetime import Battery, CR2032, lifetime_days


def test_scaling_reproduction(benchmark, cal):
    result = scaling.run()
    show(result)
    burst = {row[0]: row[6] for row in result.rows if row[1] == "burst"}
    assert burst[8] < burst[4] < burst[2] < burst[1]

    technology = cal.technology

    def burst_voltages():
        # The voltage-selection core of the scaling study: per-core clock
        # falls with the core count, and the supply follows.
        voltages = []
        for n_cores in (1, 2, 4, 8):
            speed = min(1.0, 0.8 / n_cores)
            voltages.append(technology.voltage_for_speed(speed))
        return voltages

    voltages = benchmark(burst_voltages)
    assert voltages == sorted(voltages, reverse=True)


def test_lifetime_reproduction(benchmark, cal):
    result = lifetime.run()
    show(result)

    cell = Battery.from_preset(CR2032)

    def mission_lifetimes():
        return {arch: lifetime_days(cal.workload_power(arch, 261e3), cell)
                for arch in ("mc-ref", "ulpmc-bank")}

    days = benchmark(mission_lifetimes)
    assert days["ulpmc-bank"] > 1.5 * days["mc-ref"]
