"""Measures the design-space explorer's fidelity and fast-path speed.

Runs a fidelity grid — every structural family escalated, not just the
front, so the comparison covers points the analytical model would
normally never simulate — and reports:

* ``rank_correlation`` — Spearman agreement between the analytical
  energy ordering and the simulated one over all escalated families.
  This is the number that justifies ranking 100% of the sweep
  analytically and simulating only the frontier.
* ``cycle_accuracy`` — ``1 - mean relative cycle error`` of the
  analytical cycle predictions against cycle-accurate truth.  The
  model is exact at the paper's 8-core anchor geometries by
  construction (delta-form counters); the grid deliberately includes
  2-core shared-LUT points where it is genuinely an estimate.
* ``analytical_points_per_s`` — fast-path throughput (reported, not
  gated: wall-clock on shared CI runners is noise).

The grid includes the shared-LUT mapping on purpose: private-LUT
designs have no data-crossbar conflicts, so a private-only grid would
measure a trivially perfect model.

Each run can be recorded as a ``bench_dse/1`` JSON document
(``--json``); ``--check`` compares the fidelity metrics against the
committed baseline in ``benchmarks/baselines/BENCH_dse.json``, failing
on a >20% regression.  Usable both as a pytest module and a script::

    python benchmarks/bench_dse.py --quick
    python benchmarks/bench_dse.py --quick \\
        --json BENCH_dse.json --check
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:  # direct script invocation
    sys.path.insert(0, str(_SRC))

from repro.dse import build_space, run_dse, seed_points
from repro.obs import git_revision

#: Record format version for the JSON trajectory documents.
SCHEMA = "bench_dse/1"

#: A checked run fails when a gated metric drops below this fraction of
#: the committed baseline (>20% regression).
CHECK_FRACTION = 0.8

#: Metrics the baseline gate applies to.
CHECK_METRICS = ("rank_correlation", "cycle_accuracy")

#: Default location of the committed quick-geometry baseline.
BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "baselines" \
    / "BENCH_dse.json"

#: Fidelity grids.  Both include shared-lut and 2-core points — the
#: regime where the analytical model actually has to estimate — and two
#: voltages so the structural de-duplication is exercised.
QUICK_AXES = dict(cores=(2, 8), im_banks=(4, 8), dm_banks=(8, 16),
                  mappings=("private-lut", "shared-lut"),
                  voltages=(1.2, 0.5))
FULL_AXES = dict(cores=(2, 8), im_banks=(4, 8, 16), dm_banks=(8, 16),
                 mappings=("private-lut", "shared-lut"),
                 voltages=(1.2, 1.0, 0.8, 0.65, 0.5))


def run_measurements(axes: dict) -> dict:
    points, rejected = build_space(**axes)
    if not points:
        raise AssertionError("fidelity grid produced no feasible points")

    # Warm the anchor simulations (lru_cached process-wide) so the
    # timed pass measures the fast path, not the one-time calibration.
    # Fast-forward is bit-identical to exact mode (a tested invariant),
    # so warming in it changes nothing downstream.
    from repro.platform import set_default_fast_forward
    from repro.power.calibration import reference_results
    set_default_fast_forward(True)
    for private in (True, False):
        reference_results(huffman_private=private)

    # Time the pure analytical pass separately (no cache, no farm).
    started = time.perf_counter()
    analytical = run_dse(points, cache_dir=None, escalate=False)
    analytical_wall = time.perf_counter() - started

    # Escalate *every* structural family for the fidelity comparison.
    started = time.perf_counter()
    result = run_dse(points, cache_dir=None, escalate=True,
                     escalate_policy="all",
                     max_escalations=len(points))
    escalated_wall = time.perf_counter() - started

    fidelity = result.fidelity
    if fidelity["escalated_families"] < 2:
        raise AssertionError(
            "fidelity grid escalated fewer than 2 families; "
            "rank correlation is undefined")
    if analytical.digest() != run_dse(points, cache_dir=None,
                                      escalate=False).digest():
        raise AssertionError("analytical sweep digest is not stable")

    front_points = {tuple(sorted(record["point"].items()))
                    for record in result.front}
    seeds_on_front = all(
        tuple(sorted(seed.payload().items())) in front_points
        for seed in seed_points())

    return {
        "points": len(points),
        "rejected": len(rejected),
        "structural_families": result.counters["structural_families"],
        "front_size": result.counters["front_size"],
        "escalated_families": fidelity["escalated_families"],
        "rank_correlation": fidelity["rank_correlation"],
        "cycle_accuracy": fidelity["cycle_accuracy"],
        "max_cycle_rel_error": fidelity["max_cycle_rel_error"],
        "seeds_on_front": seeds_on_front,
        "analytical_wall_s": analytical_wall,
        "analytical_points_per_s": len(points) / analytical_wall,
        "escalation_wall_s": escalated_wall,
        "front_digest": result.digest(),
    }


def make_record(result: dict, quick: bool) -> dict:
    record = {
        "schema": SCHEMA,
        "quick": quick,
        "git_rev": git_revision(),
    }
    record.update(result)
    return record


def report(result: dict) -> None:
    print(f"grid: {result['points']} points, "
          f"{result['structural_families']} structural families, "
          f"front {result['front_size']}, "
          f"{result['escalated_families']} families escalated")
    print(f"fidelity: rank correlation "
          f"{result['rank_correlation']:.4f}, cycle accuracy "
          f"{result['cycle_accuracy']:.2%} "
          f"(max rel error {result['max_cycle_rel_error']:.2%})")
    print(f"fast path: {result['analytical_points_per_s']:.0f} "
          f"points/s analytical "
          f"({result['analytical_wall_s']:.2f} s) vs "
          f"{result['escalation_wall_s']:.2f} s with full escalation")
    print(f"paper seed points on front: "
          f"{'yes' if result['seeds_on_front'] else 'NO'}")


def check_against_baseline(record: dict, baseline: dict) -> list[str]:
    """Fidelity gate: >20% regression per metric fails."""
    failures = []
    for metric in CHECK_METRICS:
        base = baseline.get(metric)
        if base is None:
            continue
        floor = base * CHECK_FRACTION
        if record[metric] is None or record[metric] < floor:
            failures.append(
                f"{metric} {record[metric]} is below "
                f"{CHECK_FRACTION:.0%} of baseline {base:.3f}")
    return failures


def test_dse_fidelity():
    """pytest entry: the quick grid keeps its ranking fidelity."""
    result = run_measurements(QUICK_AXES)
    assert result["seeds_on_front"]
    assert result["rank_correlation"] >= 0.8
    assert result["cycle_accuracy"] >= 0.9


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="design-space explorer fidelity benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="small fidelity grid (for CI)")
    parser.add_argument("--json", type=pathlib.Path, metavar="PATH",
                        help="write the bench_dse/1 record here")
    parser.add_argument("--check", type=pathlib.Path, metavar="BASELINE",
                        nargs="?", const=BASELINE_PATH,
                        help="fail if ranking fidelity regresses >20%% "
                             f"vs this baseline (default {BASELINE_PATH})")
    args = parser.parse_args(argv)

    result = run_measurements(QUICK_AXES if args.quick else FULL_AXES)
    report(result)
    record = make_record(result, args.quick)

    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        with args.json.open("w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    status = 0
    if args.check:
        with args.check.open(encoding="utf-8") as handle:
            baseline = json.load(handle)
        if baseline.get("schema") != SCHEMA:
            print(f"FAIL: baseline {args.check} has schema "
                  f"{baseline.get('schema')!r}, expected {SCHEMA!r}",
                  file=sys.stderr)
            return 1
        failures = check_against_baseline(record, baseline)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            status = 1
        else:
            print(f"OK: ranking fidelity within {CHECK_FRACTION:.0%} of "
                  f"baseline {args.check}")

    if not result["seeds_on_front"]:
        print("FAIL: the paper's evaluated design points fell off the "
              "Pareto front", file=sys.stderr)
        return 1
    return status


if __name__ == "__main__":
    sys.exit(main())
