"""Regenerates the mechanism-ablation study (extension, DESIGN.md §8)."""

from benchmarks.conftest import show
from repro.experiments import ablations
from repro.power.calibration import reference_results


def test_ablations_reproduction(benchmark):
    result = ablations.run()
    show(result)
    assert result.max_relative_error() < 0.05

    def summarise():
        __, runs = reference_results(huffman_private=True)
        stats = runs["ulpmc-bank"].stats
        return stats.im_bank_accesses / stats.im_fetches

    ratio = benchmark(summarise)
    assert ratio < 0.2  # broadcast collapses >80% of fetch accesses
