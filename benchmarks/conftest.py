"""Benchmark harness plumbing.

Each ``bench_*`` module regenerates one paper table/figure: it prints the
reproduced rows (run pytest with ``-s`` to see them inline) and times the
computational core behind that artefact with pytest-benchmark.
"""

import pytest

from repro.power.calibration import calibrated_set


@pytest.fixture(scope="session")
def cal():
    """The calibrated model set (runs the three reference simulations)."""
    return calibrated_set()


def show(result) -> None:
    """Print one experiment's reproduced rows and comparisons."""
    print()
    print(result.to_text())
