"""Regenerates Fig. 3 (mc-ref power distribution pie)."""

from benchmarks.conftest import show
from repro.experiments import fig3


def test_fig3_reproduction(benchmark, cal):
    result = fig3.run()
    show(result)
    model = cal.power_model("mc-ref")
    frequency = 8e6 / cal.ops_per_cycle("mc-ref")

    shares = benchmark(
        lambda: model.dynamic_power(frequency, 1.2,
                                    post_layout=False).shares())
    assert shares["im"] > 0.5  # the pie's headline: IM dominates
