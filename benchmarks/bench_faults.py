"""Gates the fault-injection campaign's outcome distribution.

Runs one fixed-seed campaign (quick geometry: 64x32, mc-ref) three
ways — fast-forward with translation blocks on 2 workers, the same
campaign on 1 worker, and the exact cycle-stepped engine — and asserts
the campaign digest and per-trial outcomes are bit-identical across
all three.  The committed baseline in
``benchmarks/baselines/BENCH_faults.json`` then pins the full
masked/SDC/detected/hang distribution and the campaign digest: a
campaign is a pure function of ``(campaign_seed, trial)``, so any
deviation is a real behaviour change in the fault model, the
classifier or the simulator — never noise.

Usable both as a pytest module and a script::

    python benchmarks/bench_faults.py --quick
    python benchmarks/bench_faults.py --quick \\
        --json BENCH_faults.json \\
        --check benchmarks/baselines/BENCH_faults.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:  # direct script invocation
    sys.path.insert(0, str(_SRC))

from repro.obs import git_revision
from repro.resilience import OUTCOMES, build_campaign, run_campaign

#: Record format version for the JSON documents.
SCHEMA = "bench_faults/1"

#: Default location of the committed quick-geometry baseline.
BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "baselines" \
    / "BENCH_faults.json"

#: Fields the baseline gate compares exactly (deterministic campaign).
CHECK_FIELDS = ("outcomes", "campaign_digest")


def _measure(specs, workers: int) -> dict:
    started = time.perf_counter()
    campaign = run_campaign(specs, workers=workers)
    wall = time.perf_counter() - started
    if not campaign.ok:
        raise AssertionError(
            f"campaign failed: {len(campaign.failed())} trial(s) did not "
            f"classify")
    return {
        "workers": workers,
        "fast_forward": specs[0].fast_forward,
        "translation_blocks": specs[0].translation_blocks,
        "wall_s": wall,
        "trials_per_s": len(campaign.results) / wall,
        "digest": campaign.digest(),
        "outcomes": campaign.outcome_counts(),
        "outcome_sequence": [result.outcome
                             for result in campaign.results],
    }


def run_measurements(trials: int, *, n_samples: int,
                     n_measurements: int) -> dict:
    def specs(fast_forward=True, translation_blocks=True):
        return build_campaign(
            trials, "mc-ref", campaign_seed=2012, n_samples=n_samples,
            n_measurements=n_measurements, fast_forward=fast_forward,
            translation_blocks=translation_blocks)

    primary = _measure(specs(), 2)
    serial = _measure(specs(), 1)
    exact = _measure(specs(fast_forward=False), 2)

    # the whole point: injection preserves bit identity, so the
    # campaign digest must not depend on the engine or the worker count
    for label, other in (("1 worker", serial),
                         ("exact engine", exact)):
        if other["digest"] != primary["digest"]:
            raise AssertionError(
                f"{label}: campaign digest diverged from the 2-worker "
                f"fast-forward run ({other['digest'][:16]} != "
                f"{primary['digest'][:16]})")
        if other["outcome_sequence"] != primary["outcome_sequence"]:
            raise AssertionError(
                f"{label}: per-trial outcomes diverged from the "
                f"2-worker fast-forward run")

    total = sum(primary["outcomes"].values())
    return {
        "trials": trials,
        "geometry": f"{n_samples}x{n_measurements}",
        "outcomes": primary["outcomes"],
        "sdc_rate": primary["outcomes"]["sdc"] / total if total else 0.0,
        "campaign_digest": primary["digest"],
        "exact_speedup": exact["wall_s"] / primary["wall_s"]
        if primary["wall_s"] > 0 else None,
        "modes": {
            "primary": primary,
            "serial": serial,
            "exact": exact,
        },
    }


def make_record(result: dict, quick: bool) -> dict:
    record = {
        "schema": SCHEMA,
        "quick": quick,
        "git_rev": git_revision(),
    }
    record.update({key: value for key, value in result.items()
                   if key != "modes"})
    record["modes"] = {
        label: {key: value for key, value in mode.items()
                if key != "outcome_sequence"}
        for label, mode in result["modes"].items()}
    return record


def report(result: dict) -> None:
    print(f"{'mode':<10} {'workers':>7} {'engine':>14} {'wall [s]':>9} "
          f"{'trials/s':>9}")
    for label, mode in result["modes"].items():
        engine = "exact" if not mode["fast_forward"] else (
            "ff+blocks" if mode["translation_blocks"] else "ff")
        print(f"{label:<10} {mode['workers']:>7} {engine:>14} "
              f"{mode['wall_s']:>9.3f} {mode['trials_per_s']:>9.2f}")
    counts = result["outcomes"]
    distribution = "  ".join(f"{outcome}={counts[outcome]}"
                             for outcome in OUTCOMES)
    print(f"{result['trials']} trial(s) @ {result['geometry']}: "
          f"{distribution}  (sdc rate {result['sdc_rate']:.1%})")
    print(f"exact-engine wall ratio {result['exact_speedup']:.2f}x; "
          f"campaign digest {result['campaign_digest'][:16]}...")


def check_against_baseline(record: dict, baseline: dict) -> list[str]:
    """Exact-match gate: the campaign is deterministic, so the
    distribution and digest must equal the committed baseline."""
    failures = []
    for field in CHECK_FIELDS:
        base = baseline.get(field)
        if base is None:
            continue
        if record[field] != base:
            failures.append(f"{field} {record[field]!r} differs from "
                            f"baseline {base!r}")
    return failures


def test_fault_campaign_determinism():
    """pytest entry: the quick corpus, full cross-engine identity."""
    result = run_measurements(12, n_samples=64, n_measurements=32)
    counts = result["outcomes"]
    assert sum(counts.values()) == 12
    assert counts["masked"] + counts["sdc"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fault-campaign outcome-distribution benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="small campaign (for CI)")
    parser.add_argument("--trials", type=int, default=None, metavar="N",
                        help="campaign size (default: 12 quick, 32 full)")
    parser.add_argument("--json", type=pathlib.Path, metavar="PATH",
                        help="write the bench_faults/1 record here")
    parser.add_argument("--check", type=pathlib.Path, metavar="BASELINE",
                        nargs="?", const=BASELINE_PATH,
                        help="fail unless the outcome distribution and "
                             "campaign digest exactly match this "
                             f"baseline record (default {BASELINE_PATH})")
    args = parser.parse_args(argv)

    geometry = dict(n_samples=64, n_measurements=32)
    trials = args.trials if args.trials is not None \
        else (12 if args.quick else 32)
    result = run_measurements(trials, **geometry)
    report(result)
    record = make_record(result, args.quick)

    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        with args.json.open("w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    status = 0
    if args.check:
        with args.check.open(encoding="utf-8") as handle:
            baseline = json.load(handle)
        if baseline.get("schema") != SCHEMA:
            print(f"FAIL: baseline {args.check} has schema "
                  f"{baseline.get('schema')!r}, expected {SCHEMA!r}",
                  file=sys.stderr)
            return 1
        if baseline.get("trials") != record["trials"]:
            print(f"FAIL: baseline ran {baseline.get('trials')} trial(s),"
                  f" this run {record['trials']} — sizes must match for "
                  f"the exact gate", file=sys.stderr)
            return 1
        failures = check_against_baseline(record, baseline)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            status = 1
        else:
            print(f"OK: outcome distribution and campaign digest match "
                  f"baseline {args.check}")

    print(f"OK: campaign digest bit-identical across 1/2 workers and "
          f"exact vs fast-forward engines "
          f"({result['campaign_digest'][:16]}...)")
    return status


if __name__ == "__main__":
    sys.exit(main())
