"""Measures the cost of the observability layer on the ECG workload.

Two questions, one per acceptance criterion:

* **Disabled-probe overhead** — how much slower is a run with a probe
  bus *attached but idle* (no subscribers) than a run with no bus at
  all?  This is the price every user pays for the instrumentation
  sites; the budget is <2 % (CI fails the quick run above 5 % to leave
  headroom for runner noise).
* **Subscribed cost** — the slowdown with the full metrics collector
  attached, i.e. what ``repro profile`` costs.  The batched ring-buffer
  delivery path measures 3-9 % on a quiet machine in both execution
  modes, and the gate holds it under 15 %.  Before timing anything the
  script also verifies that batched and per-event delivery produce
  bit-identical metric registries on every platform/mode — speed that
  changes the numbers would be worthless.

  Subscribed overheads are measured against a *matched* bare run with
  the loop-trace layer disabled: traces are definitionally
  unobservable (probed runs must keep the per-cycle-shaped event
  stream), so an observed run takes the block/cycle paths regardless
  of delivery cost.  Dividing by a traced bare run would charge the
  whole trace-layer speedup to the subscriber; that ratio belongs to
  ``bench_fast_forward.py``, not this gate.
* **Watch cost** — the slowdown with a
  :class:`~repro.obs.telemetry.WindowedAggregator` subscribed, i.e.
  what ``repro watch`` costs per run.  The aggregator drains the same
  batched rings plus a per-window boundary flush, so it shares the
  subscribed ceiling (quiet measurements sit within noise of the
  metrics collector's).

Measured on both execution modes of every platform: the fast-forward
engine amortises its emission checks per stretch, the cycle-stepped
loop per cycle, so both paths need the guard.

Usable both as a script and under pytest-benchmark collection::

    python benchmarks/bench_obs_overhead.py            # full workload
    python benchmarks/bench_obs_overhead.py --quick    # CI guard (<5 %)
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:  # direct script invocation
    sys.path.insert(0, str(_SRC))

from repro.kernels import BenchmarkSpec, build_benchmark
from repro.obs import ProbeMetrics, WindowedAggregator
from repro.obs.telemetry import DEFAULT_WINDOW_CYCLES
from repro.platform import ARCH_NAMES, build_platform

#: Maximum tolerated attached-but-idle slowdown in the CI quick run.
#: The design target is 2 %; the gate leaves headroom for shared-runner
#: timing noise.
FAIL_THRESHOLD = 0.05

#: Maximum tolerated slowdown with the full metrics collector
#: subscribed.  Against the matched (trace-free) denominator the
#: batched delivery path measures 3-9 % on a quiet machine; the gate
#: roughly doubles the quiet ceiling for runner noise, the same margin
#: the original 10 % gate gave the pre-translation-block cost of
#: 2-5 %.  The windowed telemetry aggregator (``repro watch``) shares
#: this ceiling.
SUBSCRIBED_THRESHOLD = 0.15

#: Window length used for the watch-subscribed stream: the production
#: default of ``repro watch``.  The quick workload runs ~8.4-8.8 kcycle,
#: so every timed run crosses one interior boundary plus the final
#: emit — the flush-and-truncate boundary cost is in the timed region
#: at exactly the rate a default watch pays it.  (Shorter windows
#: flush more often *and* cut block fusion at every boundary, which
#: gates a configuration ``repro watch`` does not ship.)
WATCH_WINDOW_CYCLES = DEFAULT_WINDOW_CYCLES


#: Minimum duration of one timed sample; short runs are repeated within
#: the timed region until they reach it, so percentage overheads are not
#: dominated by scheduler jitter.
MIN_SAMPLE_S = 0.25


def _time_run(built, arch: str, fast_forward: bool, attach_bus: bool,
              subscribe: str | None, inner: int,
              loop_traces: bool = True) -> float:
    system = build_platform(arch, fast_forward=fast_forward)
    system.loop_traces = loop_traces
    if attach_bus:
        bus = system.probe_bus()
        if subscribe == "metrics":
            ProbeMetrics.attach(bus)
        elif subscribe == "watch":
            WindowedAggregator.attach(bus,
                                      window_cycles=WATCH_WINDOW_CYCLES)
    started = time.perf_counter()
    for _ in range(inner):
        system.run(built.benchmark)
    return (time.perf_counter() - started) / inner


def measure(built, arch: str, fast_forward: bool, repeats: int) -> dict:
    """Min-of-stream timing of bare / matched / idle / subscribed / watch.

    ``bare`` is the untouched default configuration (idle-bus
    denominator); ``matched`` is bare with the loop-trace layer off
    (subscribed/watch denominator — see the module docstring).  The
    variants are sampled in strict rotation so machine-wide
    throughput drift lands on every stream equally, and each stream is
    summarised by its *minimum*: scheduler noise and frequency dips only
    ever add time, so the fastest observed sample is the best estimate
    of the true cost (the same reasoning as ``timeit``'s ``min``
    recommendation).  This keeps the overhead ratio stable on shared
    runners where median-of-stream estimates still swing by several
    percent under sustained load from neighbours.
    """
    calibration = _time_run(built, arch, fast_forward, attach_bus=False,
                            subscribe=None, inner=1)
    inner = max(1, round(MIN_SAMPLE_S / max(calibration, 1e-9)))
    variants = {
        "bare": dict(attach_bus=False, subscribe=None),
        "matched": dict(attach_bus=False, subscribe=None,
                        loop_traces=False),
        "idle": dict(attach_bus=True, subscribe=None),
        "subscribed": dict(attach_bus=True, subscribe="metrics"),
        "watch": dict(attach_bus=True, subscribe="watch"),
    }
    order = list(variants)
    streams = {name: [] for name in order}
    for repeat in range(repeats):
        # Rotate the starting variant each round: sustained frequency
        # decay within a round would otherwise systematically tax
        # whichever stream always samples last.
        shift = repeat % len(order)
        for name in order[shift:] + order[:shift]:
            streams[name].append(_time_run(
                built, arch, fast_forward, inner=inner, **variants[name]))
    bare = min(streams["bare"])
    matched = min(streams["matched"])
    idle = min(streams["idle"])
    subscribed = min(streams["subscribed"])
    watch = min(streams["watch"])
    return {
        "arch": arch,
        "mode": "fast-forward" if fast_forward else "exact",
        "bare_s": bare,
        "matched_s": matched,
        "idle_s": idle,
        "subscribed_s": subscribed,
        "watch_s": watch,
        "idle_overhead": idle / bare - 1.0,
        "subscribed_overhead": subscribed / matched - 1.0,
        "watch_overhead": watch / matched - 1.0,
    }


def verify_identity(built) -> list[str]:
    """Batched and per-event delivery must agree bit-for-bit.

    Runs the workload once per platform/mode under each delivery mode
    and diffs the finished metric registries.  Returns human-readable
    mismatch descriptions; empty means identical everywhere.
    """
    mismatches = []
    for arch in ARCH_NAMES:
        for fast_forward in (False, True):
            snaps = {}
            for batched in (True, False):
                system = build_platform(arch, fast_forward=fast_forward)
                bus = system.probe_bus()
                collector = ProbeMetrics.attach(bus, batched=batched)
                system.run(built.benchmark)
                snaps[batched] = collector.finish().snapshot()
            if snaps[True] != snaps[False]:
                diverging = sorted(
                    name for name in set(snaps[True]) | set(snaps[False])
                    if snaps[True].get(name) != snaps[False].get(name))
                mode = "fast-forward" if fast_forward else "exact"
                mismatches.append(
                    f"{arch} ({mode}): batched != per-event on "
                    f"{', '.join(diverging)}")
    return mismatches


def report(rows: list[dict]) -> None:
    print(f"{'arch':<11} {'mode':<13} {'bare [s]':>9} {'idle [s]':>9} "
          f"{'idle ovh':>9} {'metrics ovh':>12} {'watch ovh':>10}")
    for row in rows:
        print(f"{row['arch']:<11} {row['mode']:<13} {row['bare_s']:>9.3f} "
              f"{row['idle_s']:>9.3f} {row['idle_overhead']:>8.1%} "
              f"{row['subscribed_overhead']:>11.1%} "
              f"{row['watch_overhead']:>9.1%}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="observability-layer overhead measurement")
    parser.add_argument("--quick", action="store_true",
                        help="small-geometry CI guard run")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per configuration")
    args = parser.parse_args(argv)
    bench_started = time.perf_counter()

    if args.quick:
        spec = BenchmarkSpec(n_samples=64, n_measurements=32,
                             huffman_private=True)
        repeats = args.repeats or 9
    else:
        spec = BenchmarkSpec(huffman_private=True)
        repeats = args.repeats or 5
    built = build_benchmark(spec)

    mismatches = verify_identity(built)
    for mismatch in mismatches:
        print(f"FAIL: {mismatch}", file=sys.stderr)
    if mismatches:
        return 1  # timing a wrong answer is pointless
    print("identity: batched == per-event metrics on every platform/mode")

    rows = [measure(built, arch, fast_forward, repeats)
            for arch in ARCH_NAMES for fast_forward in (False, True)]

    # A cell over budget on a noisy runner gets one clean re-measurement
    # with doubled repeats before the verdict: failing CI then requires
    # two independent bad measurements of the same configuration.  The
    # passes are merged field-wise by minimum — noise only ever inflates
    # a ratio (the same reasoning as the per-stream min above), so the
    # smaller of two independent estimates is the better one.
    def over_budget(row):
        return (row["idle_overhead"] > FAIL_THRESHOLD
                or row["subscribed_overhead"] > SUBSCRIBED_THRESHOLD
                or row["watch_overhead"] > SUBSCRIBED_THRESHOLD)

    for index, row in enumerate(rows):
        if over_budget(row):
            print(f"re-measuring {row['arch']} ({row['mode']}): first pass "
                  f"read idle {row['idle_overhead']:.1%} / subscribed "
                  f"{row['subscribed_overhead']:.1%} / watch "
                  f"{row['watch_overhead']:.1%}", file=sys.stderr)
            again = measure(
                built, row["arch"], row["mode"] == "fast-forward",
                repeats * 2)
            rows[index] = {key: (value if isinstance(value, str)
                                 else min(value, again[key]))
                           for key, value in row.items()}
    report(rows)

    worst_idle = max(rows, key=lambda row: row["idle_overhead"])
    worst_sub = max(rows, key=lambda row: row["subscribed_overhead"])
    worst_watch = max(rows, key=lambda row: row["watch_overhead"])
    try:
        from repro.obs import manifest_record, write_manifest
        write_manifest(manifest_record(
            "benchmark", "bench_obs_overhead",
            payload=rows,
            wall_time_s=time.perf_counter() - bench_started,
            extra={"quick": args.quick,
                   "worst_idle_overhead": worst_idle["idle_overhead"],
                   "worst_subscribed_overhead":
                       worst_sub["subscribed_overhead"],
                   "worst_watch_overhead":
                       worst_watch["watch_overhead"]}))
    except OSError:
        pass  # read-only checkout: the measurement still stands

    failed = False
    if worst_idle["idle_overhead"] > FAIL_THRESHOLD:
        print(f"FAIL: idle-bus overhead {worst_idle['idle_overhead']:.1%} "
              f"on {worst_idle['arch']} ({worst_idle['mode']}) exceeds "
              f"the {FAIL_THRESHOLD:.0%} budget", file=sys.stderr)
        failed = True
    if worst_sub["subscribed_overhead"] > SUBSCRIBED_THRESHOLD:
        print(f"FAIL: subscribed overhead "
              f"{worst_sub['subscribed_overhead']:.1%} on "
              f"{worst_sub['arch']} ({worst_sub['mode']}) exceeds the "
              f"{SUBSCRIBED_THRESHOLD:.0%} budget", file=sys.stderr)
        failed = True
    if worst_watch["watch_overhead"] > SUBSCRIBED_THRESHOLD:
        print(f"FAIL: watch overhead "
              f"{worst_watch['watch_overhead']:.1%} on "
              f"{worst_watch['arch']} ({worst_watch['mode']}) exceeds the "
              f"{SUBSCRIBED_THRESHOLD:.0%} budget", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print(f"OK: worst idle {worst_idle['idle_overhead']:.1%} "
          f"({worst_idle['arch']}, {worst_idle['mode']}), worst "
          f"subscribed {worst_sub['subscribed_overhead']:.1%} "
          f"({worst_sub['arch']}, {worst_sub['mode']}), worst watch "
          f"{worst_watch['watch_overhead']:.1%} ({worst_watch['arch']}, "
          f"{worst_watch['mode']}) — all within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
