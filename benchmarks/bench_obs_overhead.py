"""Measures the cost of the observability layer on the ECG workload.

Two questions, one per acceptance criterion:

* **Disabled-probe overhead** — how much slower is a run with a probe
  bus *attached but idle* (no subscribers) than a run with no bus at
  all?  This is the price every user pays for the instrumentation
  sites; the budget is <2 % (CI fails the quick run above 5 % to leave
  headroom for runner noise).
* **Subscribed cost** (reported, not gated) — the slowdown with the
  full metrics collector attached, i.e. what ``repro profile`` costs.

Measured on both execution modes of every platform: the fast-forward
engine amortises its emission checks per stretch, the cycle-stepped
loop per cycle, so both paths need the guard.

Usable both as a script and under pytest-benchmark collection::

    python benchmarks/bench_obs_overhead.py            # full workload
    python benchmarks/bench_obs_overhead.py --quick    # CI guard (<5 %)
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:  # direct script invocation
    sys.path.insert(0, str(_SRC))

from repro.kernels import BenchmarkSpec, build_benchmark
from repro.obs import ProbeMetrics
from repro.platform import ARCH_NAMES, build_platform

#: Maximum tolerated attached-but-idle slowdown in the CI quick run.
#: The design target is 2 %; the gate leaves headroom for shared-runner
#: timing noise.
FAIL_THRESHOLD = 0.05


#: Minimum duration of one timed sample; short runs are repeated within
#: the timed region until they reach it, so percentage overheads are not
#: dominated by scheduler jitter.
MIN_SAMPLE_S = 0.15


def _time_run(built, arch: str, fast_forward: bool, attach_bus: bool,
              subscribe: bool, inner: int) -> float:
    system = build_platform(arch, fast_forward=fast_forward)
    if attach_bus:
        bus = system.probe_bus()
        if subscribe:
            ProbeMetrics.attach(bus)
    started = time.perf_counter()
    for _ in range(inner):
        system.run(built.benchmark)
    return (time.perf_counter() - started) / inner


def measure(built, arch: str, fast_forward: bool, repeats: int) -> dict:
    """Min-of-stream timing of bare / idle-bus / subscribed runs.

    The three variants are sampled in strict rotation
    (bare/idle/subscribed, bare/idle/subscribed, ...) so machine-wide
    throughput drift lands on every stream equally, and each stream is
    summarised by its *minimum*: scheduler noise and frequency dips only
    ever add time, so the fastest observed sample is the best estimate
    of the true cost (the same reasoning as ``timeit``'s ``min``
    recommendation).  This keeps the overhead ratio stable on shared
    runners where median-of-stream estimates still swing by several
    percent under sustained load from neighbours.
    """
    calibration = _time_run(built, arch, fast_forward, attach_bus=False,
                            subscribe=False, inner=1)
    inner = max(1, round(MIN_SAMPLE_S / max(calibration, 1e-9)))
    streams = {"bare": [], "idle": [], "subscribed": []}
    for _ in range(repeats):
        streams["bare"].append(_time_run(
            built, arch, fast_forward, attach_bus=False, subscribe=False,
            inner=inner))
        streams["idle"].append(_time_run(
            built, arch, fast_forward, attach_bus=True, subscribe=False,
            inner=inner))
        streams["subscribed"].append(_time_run(
            built, arch, fast_forward, attach_bus=True, subscribe=True,
            inner=inner))
    bare = min(streams["bare"])
    idle = min(streams["idle"])
    subscribed = min(streams["subscribed"])
    return {
        "arch": arch,
        "mode": "fast-forward" if fast_forward else "exact",
        "bare_s": bare,
        "idle_s": idle,
        "subscribed_s": subscribed,
        "idle_overhead": idle / bare - 1.0,
        "subscribed_overhead": subscribed / bare - 1.0,
    }


def report(rows: list[dict]) -> None:
    print(f"{'arch':<11} {'mode':<13} {'bare [s]':>9} {'idle [s]':>9} "
          f"{'idle ovh':>9} {'metrics ovh':>12}")
    for row in rows:
        print(f"{row['arch']:<11} {row['mode']:<13} {row['bare_s']:>9.3f} "
              f"{row['idle_s']:>9.3f} {row['idle_overhead']:>8.1%} "
              f"{row['subscribed_overhead']:>11.1%}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="observability-layer overhead measurement")
    parser.add_argument("--quick", action="store_true",
                        help="small-geometry CI guard run")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per configuration")
    args = parser.parse_args(argv)

    if args.quick:
        spec = BenchmarkSpec(n_samples=64, n_measurements=32,
                             huffman_private=True)
        repeats = args.repeats or 9
    else:
        spec = BenchmarkSpec(huffman_private=True)
        repeats = args.repeats or 5
    built = build_benchmark(spec)

    rows = [measure(built, arch, fast_forward, repeats)
            for arch in ARCH_NAMES for fast_forward in (False, True)]

    # A cell over budget on a noisy runner gets one clean re-measurement
    # with doubled repeats before the verdict: failing CI then requires
    # two independent bad measurements of the same configuration.
    for index, row in enumerate(rows):
        if row["idle_overhead"] > FAIL_THRESHOLD:
            print(f"re-measuring {row['arch']} ({row['mode']}): first pass "
                  f"read {row['idle_overhead']:.1%}", file=sys.stderr)
            rows[index] = measure(
                built, row["arch"], row["mode"] == "fast-forward",
                repeats * 2)
    report(rows)

    worst = max(rows, key=lambda row: row["idle_overhead"])
    try:
        from repro.obs import manifest_record, write_manifest
        write_manifest(manifest_record(
            "benchmark", "bench_obs_overhead",
            payload=rows,
            extra={"quick": args.quick,
                   "worst_idle_overhead": worst["idle_overhead"]}))
    except OSError:
        pass  # read-only checkout: the measurement still stands

    if worst["idle_overhead"] > FAIL_THRESHOLD:
        print(f"FAIL: idle-bus overhead {worst['idle_overhead']:.1%} on "
              f"{worst['arch']} ({worst['mode']}) exceeds the "
              f"{FAIL_THRESHOLD:.0%} budget", file=sys.stderr)
        return 1
    print(f"OK: worst idle-bus overhead {worst['idle_overhead']:.1%} "
          f"({worst['arch']}, {worst['mode']}) within the "
          f"{FAIL_THRESHOLD:.0%} budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
