"""Measures the simulation farm's scaling and warm-cache payoff.

Runs one fleet plan through four configurations — 1 worker warm,
4 workers warm, 4 workers with the submission order shuffled, and
1 worker cold (caches dropped before every job) — asserts the per-run
``stats_digest`` values and the fleet digest are bit-identical across
all four, and reports throughput, parallel speedup and the measured
shared-cache hit rates.

Two numbers carry the regression gate:

* ``parallel_efficiency`` — the 4-worker speedup divided by the
  parallelism the machine can actually grant, ``min(4, usable_cpus)``.
  Raw speedup depends on the host's core count (a 1-CPU CI runner
  cannot exceed 1x no matter how good the farm is), but efficiency
  transfers: a healthy farm stays near 1.0 anywhere.  The absolute
  ``TARGET_SPEEDUP`` (>= 3x at 4 workers) is enforced whenever the
  host grants >= 4 CPUs.
* ``warm_hit_rate`` — the fraction of shared-cache lookups (block
  translations + decode tables) served warm.  Warm workers must beat
  the cold control arm by a wide, measured margin.

Each run can be recorded as a ``bench_farm/1`` JSON document
(``--json``); ``--check`` compares efficiency and hit rates against the
committed baseline in ``benchmarks/baselines/BENCH_farm.json``, failing
on a >20% regression.  Usable both as a pytest module and a script::

    python benchmarks/bench_farm.py --quick
    python benchmarks/bench_farm.py --quick \\
        --json BENCH_farm.json \\
        --check benchmarks/baselines/BENCH_farm.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import random
import sys
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:  # direct script invocation
    sys.path.insert(0, str(_SRC))

from repro.farm import build_plan, run_farm
from repro.obs import git_revision

#: Record format version for the JSON trajectory documents.
SCHEMA = "bench_farm/1"

#: Wall-clock speedup 4 warm workers must reach over 1 on hosts that
#: actually grant >= 4 CPUs.
TARGET_SPEEDUP = 3.0

#: A checked run fails when a gated metric drops below this fraction of
#: the committed baseline (>20% regression).
CHECK_FRACTION = 0.8

#: Metrics the baseline gate applies to.
CHECK_METRICS = ("parallel_efficiency_4", "warm_hit_rate")

#: Default location of the committed quick-geometry baseline.
BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "baselines" \
    / "BENCH_farm.json"


def usable_cpus() -> int:
    """CPUs this process may actually schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _measure(plan, workers: int, *, warm: bool = True,
             shuffle_seed: int | None = None) -> dict:
    ordered = list(plan)
    if shuffle_seed is not None:
        random.Random(shuffle_seed).shuffle(ordered)
    started = time.perf_counter()
    fleet = run_farm(ordered, workers=workers, warm=warm)
    wall = time.perf_counter() - started
    if not fleet.ok:
        raise AssertionError(
            f"farm run failed: {len(fleet.failed())} job(s) failed, "
            f"{len(fleet.cancelled())} cancelled")
    summary = fleet.fleet_summary()
    cache = summary["shared_cache"]
    return {
        "workers": workers,
        "warm": warm,
        "shuffled": shuffle_seed is not None,
        "wall_s": wall,
        "runs_per_s": len(fleet.completed()) / wall,
        "job_cpu_s": summary["job_cpu_s"],
        "cache_hit_rate": cache["hit_rate"],
        "cache_lookups": cache["lookups"],
        "source_compiles": cache["source_compiles"],
        "fleet_digest": fleet.digest(),
        "per_run_digests": {
            result.shard_index: result.stats_digest
            for result in fleet.completed()},
    }


def run_measurements(runs: int, *, n_samples: int, n_measurements: int,
                     n_blocks: int) -> dict:
    plan = build_plan(runs, ["mc-ref", "ulpmc-int", "ulpmc-bank"],
                      n_samples=n_samples, n_measurements=n_measurements,
                      n_blocks=n_blocks, window_cycles=4096)
    serial = _measure(plan, 1)
    quad = _measure(plan, 4)
    shuffled = _measure(plan, 4, shuffle_seed=13)
    cold = _measure(plan, 1, warm=False)

    # the whole point: bit-identity no matter how the fleet is executed
    for label, other in (("4 workers", quad),
                         ("4 workers shuffled", shuffled),
                         ("cold caches", cold)):
        if other["fleet_digest"] != serial["fleet_digest"]:
            raise AssertionError(
                f"{label}: fleet digest diverged from the 1-worker run")
        if other["per_run_digests"] != serial["per_run_digests"]:
            raise AssertionError(
                f"{label}: per-run digests diverged from the 1-worker run")

    cpus = usable_cpus()
    speedup = serial["wall_s"] / quad["wall_s"]
    return {
        "runs": runs,
        "geometry": f"{n_samples}x{n_measurements}x{n_blocks}",
        "usable_cpus": cpus,
        "speedup_4_vs_1": speedup,
        "parallel_efficiency_4": speedup / min(4, cpus),
        "warm_hit_rate": serial["cache_hit_rate"],
        "cold_hit_rate": cold["cache_hit_rate"],
        "warm_job_cpu_s": serial["job_cpu_s"],
        "cold_job_cpu_s": cold["job_cpu_s"],
        "warm_cpu_speedup": cold["job_cpu_s"] / serial["job_cpu_s"],
        "fleet_digest": serial["fleet_digest"],
        "modes": {
            "serial": serial,
            "quad": quad,
            "shuffled": shuffled,
            "cold": cold,
        },
    }


def make_record(result: dict, quick: bool) -> dict:
    record = {
        "schema": SCHEMA,
        "quick": quick,
        "git_rev": git_revision(),
    }
    record.update({key: value for key, value in result.items()
                   if key != "modes"})
    record["modes"] = {
        label: {key: value for key, value in mode.items()
                if key != "per_run_digests"}
        for label, mode in result["modes"].items()}
    return record


def report(result: dict) -> None:
    print(f"{'mode':<10} {'workers':>7} {'warm':>5} {'wall [s]':>9} "
          f"{'runs/s':>7} {'hit rate':>8}")
    for label, mode in result["modes"].items():
        rate = mode["cache_hit_rate"]
        print(f"{label:<10} {mode['workers']:>7} "
              f"{'yes' if mode['warm'] else 'no':>5} "
              f"{mode['wall_s']:>9.3f} {mode['runs_per_s']:>7.2f} "
              f"{rate if rate is None else format(rate, '.1%'):>8}")
    print(f"speedup 4v1 {result['speedup_4_vs_1']:.2f}x on "
          f"{result['usable_cpus']} usable CPU(s) — parallel efficiency "
          f"{result['parallel_efficiency_4']:.2f}; warm CPU speedup "
          f"{result['warm_cpu_speedup']:.2f}x "
          f"(hit rate {result['warm_hit_rate']:.1%} warm vs "
          f"{result['cold_hit_rate']:.1%} cold)")


def check_against_baseline(record: dict, baseline: dict) -> list[str]:
    """Efficiency/hit-rate gate: >20% regression per metric fails."""
    failures = []
    for metric in CHECK_METRICS:
        base = baseline.get(metric)
        if base is None:
            continue
        floor = base * CHECK_FRACTION
        if record[metric] < floor:
            failures.append(
                f"{metric} {record[metric]:.3f} is below "
                f"{CHECK_FRACTION:.0%} of baseline {base:.3f}")
    return failures


def test_farm_scaling_digest_identity():
    """pytest entry: the quick corpus, full identity + warmth checks."""
    result = run_measurements(6, n_samples=64, n_measurements=32,
                              n_blocks=1)
    assert result["warm_hit_rate"] > result["cold_hit_rate"]
    if result["usable_cpus"] >= 4:
        assert result["speedup_4_vs_1"] >= TARGET_SPEEDUP


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="simulation-farm scaling and warm-cache benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="small-geometry smoke run (for CI)")
    parser.add_argument("--runs", type=int, default=None, metavar="N",
                        help="fleet size (default: 6 quick, 8 full)")
    parser.add_argument("--json", type=pathlib.Path, metavar="PATH",
                        help="write the bench_farm/1 record here")
    parser.add_argument("--check", type=pathlib.Path, metavar="BASELINE",
                        nargs="?", const=BASELINE_PATH,
                        help="fail if efficiency or warm hit rate "
                             "regresses >20%% vs this baseline record "
                             f"(default {BASELINE_PATH})")
    args = parser.parse_args(argv)

    if args.quick:
        geometry = dict(n_samples=64, n_measurements=32, n_blocks=1)
        runs = args.runs if args.runs is not None else 6
    else:
        geometry = dict(n_samples=512, n_measurements=256, n_blocks=2)
        runs = args.runs if args.runs is not None else 8
    result = run_measurements(runs, **geometry)
    report(result)
    record = make_record(result, args.quick)

    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        with args.json.open("w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    status = 0
    if args.check:
        with args.check.open(encoding="utf-8") as handle:
            baseline = json.load(handle)
        if baseline.get("schema") != SCHEMA:
            print(f"FAIL: baseline {args.check} has schema "
                  f"{baseline.get('schema')!r}, expected {SCHEMA!r}",
                  file=sys.stderr)
            return 1
        failures = check_against_baseline(record, baseline)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            status = 1
        else:
            print(f"OK: farm metrics within {CHECK_FRACTION:.0%} of "
                  f"baseline {args.check}")

    if result["usable_cpus"] >= 4 \
            and result["speedup_4_vs_1"] < TARGET_SPEEDUP:
        print(f"FAIL: 4-worker speedup {result['speedup_4_vs_1']:.2f}x "
              f"is below the {TARGET_SPEEDUP}x target on "
              f"{result['usable_cpus']} usable CPUs", file=sys.stderr)
        return 1
    print(f"OK: fleet digests bit-identical across 1/4 workers, "
          f"shuffled order and cold caches "
          f"({result['fleet_digest'][:16]}...)")
    return status


if __name__ == "__main__":
    sys.exit(main())
