"""Setuptools shim.

The offline environment ships setuptools but not ``wheel``; keeping a
``setup.py`` (and no ``[build-system]`` table in ``pyproject.toml``) lets
``pip install -e .`` use the legacy editable path that works without
network access.
"""

from setuptools import setup

setup()
