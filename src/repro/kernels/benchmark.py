"""Build the complete, loadable reference benchmark.

``build_benchmark`` assembles the kernel, draws deterministic ECG leads,
generates the sensing matrix and Huffman tables, lays everything out in
memory, and computes the *golden* expected outputs (bit-identical Python
models of CS and Huffman) that ``verify_result`` later checks against the
simulated machine's memory.

The Huffman code is trained on a *different* ECG seed than the evaluated
recording (as a deployed system would be), so the benchmark exercises the
data-dependent table lookups with realistic symbol statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.biosignal.compressed_sensing import SensingMatrix, cs_compress
from repro.biosignal.ecg import ECGGenerator
from repro.biosignal.huffman import HuffmanCode, HuffmanEncoder
from repro.biosignal.quantize import NUM_SYMBOLS
from repro.errors import SimulationError
from repro.kernels.memmap import BenchmarkMemoryMap
from repro.kernels.source import kernel_source
from repro.platform.multicore import Benchmark, SimulationResult
from repro.tamarisc.assembler import assemble
from repro.tamarisc.program import DataImage


@dataclass(frozen=True)
class BenchmarkSpec:
    """Parameters of one benchmark instance.

    The defaults are the paper's geometry (512-sample blocks, 50 %
    compression, 8 leads).  Tests use smaller blocks for speed; the
    kernel is identical, only loop bounds and buffer sizes change.
    """

    n_leads: int = 8
    n_samples: int = 512
    n_measurements: int = 256
    entries_per_column: int = 12
    huffman_private: bool = False
    seed: int = 2012
    training_seed: int = 1984


@dataclass
class GoldenLead:
    """Expected outputs for one lead, from the bit-exact Python models."""

    samples: list[int]
    measurements: list[int]
    total_bits: int
    bitstream: list[int]


@dataclass
class BuiltBenchmark:
    """A loadable benchmark plus everything needed to verify it."""

    spec: BenchmarkSpec
    memmap: BenchmarkMemoryMap
    benchmark: Benchmark
    matrix: SensingMatrix
    code: HuffmanCode
    golden: list[GoldenLead] = field(default_factory=list)

    @property
    def program_bytes(self) -> int:
        return self.benchmark.program.size_bytes


def build_benchmark(spec: BenchmarkSpec | None = None,
                    **overrides) -> BuiltBenchmark:
    """Construct the CS + Huffman benchmark for the given spec."""
    if spec is None:
        spec = BenchmarkSpec(**overrides)
    elif overrides:
        raise ValueError("pass either a spec or keyword overrides")

    memmap = BenchmarkMemoryMap(
        n_samples=spec.n_samples,
        n_measurements=spec.n_measurements,
        entries_per_column=spec.entries_per_column,
        huffman_private=spec.huffman_private,
    )
    program = assemble(kernel_source(memmap), entry="start")

    matrix = SensingMatrix.generate(
        n_input=spec.n_samples,
        n_output=spec.n_measurements,
        entries_per_column=spec.entries_per_column,
        seed=spec.seed,
    )
    code = _train_huffman(spec, matrix)

    leads = ECGGenerator(n_leads=spec.n_leads,
                         seed=spec.seed).generate(spec.n_samples)
    encoder = HuffmanEncoder(code)
    golden = []
    data = DataImage()
    data.set_shared_block(memmap.cs_lut, matrix.lut)
    if spec.huffman_private:
        for core in range(spec.n_leads):
            data.set_private_block(core, memmap.code_lut_private,
                                   code.code_lut_words())
            data.set_private_block(core, memmap.len_lut_private,
                                   code.length_lut_words())
    else:
        data.set_shared_block(memmap.code_lut_shared, code.code_lut_words())
        data.set_shared_block(memmap.len_lut_shared, code.length_lut_words())
    for core in range(spec.n_leads):
        samples = [int(v) for v in leads[core]]
        data.set_private_block(core, memmap.x_base, samples)
        measurements = cs_compress(matrix, samples)
        total_bits, bitstream = encoder.encode_measurements(measurements)
        if len(bitstream) >= memmap.out_words:
            raise SimulationError(
                "bitstream overflows the output buffer; the Huffman code "
                "degenerated")
        golden.append(GoldenLead(samples=samples, measurements=measurements,
                                 total_bits=total_bits, bitstream=bitstream))

    name = "cs-huffman" + ("-privlut" if spec.huffman_private else "")
    benchmark = Benchmark(
        name=name,
        program=program,
        data=data,
        meta={
            "spec": spec,
            "memmap": memmap,
            "program_bytes": program.size_bytes,
            "read_only_bytes": memmap.read_only_bytes,
            "working_bytes": memmap.working_bytes,
        },
    )
    return BuiltBenchmark(spec=spec, memmap=memmap, benchmark=benchmark,
                          matrix=matrix, code=code, golden=golden)


def _train_huffman(spec: BenchmarkSpec,
                   matrix: SensingMatrix) -> HuffmanCode:
    """Train the Huffman tables on a held-out recording."""
    from repro.biosignal.quantize import quantize_measurement

    training = ECGGenerator(n_leads=spec.n_leads,
                            seed=spec.training_seed).generate(spec.n_samples)
    symbols = []
    for lead in range(spec.n_leads):
        measurements = cs_compress(matrix, [int(v) for v in training[lead]])
        symbols.extend(quantize_measurement(y) for y in measurements)
    return HuffmanCode.from_training_symbols(symbols, alphabet=NUM_SYMBOLS)


def verify_result(built: BuiltBenchmark, result: SimulationResult) -> None:
    """Compare the simulated machine's memory against the golden model.

    Raises :class:`~repro.errors.SimulationError` on the first mismatch;
    passing silently means every core produced a bit-identical compressed
    stream.
    """
    memmap = built.memmap
    system = result.system
    for core, golden in enumerate(built.golden):
        measured_y = system.read_logical_block(
            core, memmap.y_base, memmap.n_measurements)
        if measured_y != golden.measurements:
            raise SimulationError(
                f"core {core}: CS measurements diverge from golden model")
        bits = system.read_logical(core, memmap.out_base)
        if bits != golden.total_bits:
            raise SimulationError(
                f"core {core}: bit count {bits} != golden "
                f"{golden.total_bits}")
        stream = system.read_logical_block(
            core, memmap.out_base + 1, len(golden.bitstream))
        if stream != golden.bitstream:
            raise SimulationError(
                f"core {core}: packed bitstream diverges from golden model")


def build_block_series(spec: BenchmarkSpec | None = None,
                       n_blocks: int = 4, **overrides) -> list[BuiltBenchmark]:
    """A stream of consecutive blocks of one recording.

    All blocks share the sensing matrix, Huffman tables, program and
    memory map (as a deployed node would); only the per-lead input
    samples advance block by block.  Used by the streaming/duty-cycle
    studies in :mod:`repro.platform.streaming`.
    """
    if spec is None:
        spec = BenchmarkSpec(**overrides)
    elif overrides:
        raise ValueError("pass either a spec or keyword overrides")
    if n_blocks <= 0:
        raise ValueError("need at least one block")

    first = build_benchmark(spec)
    recording = ECGGenerator(n_leads=spec.n_leads, seed=spec.seed) \
        .generate(spec.n_samples * n_blocks)
    encoder = HuffmanEncoder(first.code)
    series = []
    for block in range(n_blocks):
        window = recording[:, block * spec.n_samples:
                           (block + 1) * spec.n_samples]
        data = DataImage(shared=dict(first.benchmark.data.shared),
                         private={core: dict(image) for core, image
                                  in first.benchmark.data.private.items()})
        golden = []
        for core in range(spec.n_leads):
            samples = [int(v) for v in window[core]]
            data.private[core] = {
                addr: value for addr, value
                in first.benchmark.data.private[core].items()
                if not (first.memmap.x_base <= addr
                        < first.memmap.x_base + spec.n_samples)
            }
            data.set_private_block(core, first.memmap.x_base, samples)
            measurements = cs_compress(first.matrix, samples)
            total_bits, bitstream = encoder.encode_measurements(
                measurements)
            golden.append(GoldenLead(samples=samples,
                                     measurements=measurements,
                                     total_bits=total_bits,
                                     bitstream=bitstream))
        benchmark = Benchmark(
            name=f"{first.benchmark.name}-block{block}",
            program=first.benchmark.program,
            data=data,
            meta=dict(first.benchmark.meta, block=block),
        )
        series.append(BuiltBenchmark(
            spec=spec, memmap=first.memmap, benchmark=benchmark,
            matrix=first.matrix, code=first.code, golden=golden))
    return series
