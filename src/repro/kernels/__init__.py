"""The reference benchmark: CS + Huffman coding in TamaRISC assembly.

This package builds the actual program the simulated platforms execute —
the paper's "real-time multi-lead ECG processing application" with one
core per lead:

* :mod:`repro.kernels.memmap` — the logical memory map (CS random vector
  and Huffman LUTs in the shared section, samples/measurements/bitstream
  in each core's private window).
* :mod:`repro.kernels.source` — the assembly source generator for the
  combined CS + Huffman kernel.
* :mod:`repro.kernels.benchmark` — ties ECG data, sensing matrix, Huffman
  tables and program together into a loadable
  :class:`~repro.platform.multicore.Benchmark`, with the golden-model
  expected outputs attached for verification.
"""

from repro.kernels.memmap import BenchmarkMemoryMap
from repro.kernels.source import kernel_source
from repro.kernels.benchmark import (
    BenchmarkSpec,
    BuiltBenchmark,
    build_benchmark,
    build_block_series,
    verify_result,
)

__all__ = [
    "BenchmarkMemoryMap",
    "kernel_source",
    "BenchmarkSpec",
    "BuiltBenchmark",
    "build_benchmark",
    "build_block_series",
    "verify_result",
]
