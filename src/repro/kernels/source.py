"""TamaRISC assembly source of the CS + Huffman benchmark kernel.

One program image serves all eight cores (the MMU maps the private-window
addresses per PID), exactly as Section III-C requires for instruction
broadcasting.  The kernel processes one 512-sample block of one ECG lead:

1. clear the measurement accumulators ``y[0..255]``;
2. **compressed sensing** — stream the packed random vector *linearly*
   (shared reads, broadcast when the cores are synchronised) and
   accumulate ``y[row] ±= x[j]``; the branch on the matrix sign depends
   only on the shared LUT, so all cores take the same path and stay in
   lockstep — the paper's "the CS part follows always the same program
   flow independent of the input data";
3. **Huffman coding** — quantise each measurement to a 512-symbol
   alphabet, look up code/length in the two LUTs (data-dependent
   indices!) and emit the code MSB-first into 16-bit words; both the
   per-bit branch and the per-symbol code length depend on each lead's
   private data, so the cores *lose synchronisation* here — the paper's
   "short section of data-dependent program flow";
4. store the total bit count and halt (the platform's wake-on-next-block
   point in a real duty-cycled node).

Output layout: ``OUT[0]`` = total bits, ``OUT[1..]`` = packed words.
"""

from __future__ import annotations

from repro.biosignal.quantize import NUM_SYMBOLS
from repro.kernels.memmap import BenchmarkMemoryMap

_KERNEL_TEMPLATE = """\
; CS + Huffman benchmark kernel (one ECG lead per core)
.equ CS_LUT,   {cs_lut}
.equ CODE_LUT, {code_lut}
.equ LEN_LUT,  {len_lut}
.equ XBASE,    {x_base}
.equ YBASE,    {y_base}
.equ OUTBASE,  {out_base}
.equ NSAMP,    {n_samples}
.equ NMEAS,    {n_measurements}
.equ NK,       {entries_per_column}
.equ SYMMAX,   {symbol_max}
.equ QBIAS,    {quant_bias}

start:
    ; ---------------- clear measurement accumulators ----------------
    li   r3, YBASE
    li   r4, NMEAS
    mov  r5, #0
clr_loop:
    mov  [r3++], r5
    sub  r4, r4, #1
    bne  clr_loop

    ; ---------------- compressed sensing ----------------
    li   r1, XBASE          ; x pointer (private)
    li   r2, CS_LUT         ; packed matrix pointer (shared, linear)
    li   r3, YBASE          ; y base (private)
    li   r4, NSAMP
cs_outer:
    mov  r7, [r1++]         ; xv = *x++
    mov  r5, #NK
cs_inner:
    mov  r6, [r2++]         ; entry = *lut++  (row<<1 | sign)
    srl  xr, r6, #1         ; row index -> XR
    and  r6, r6, #1         ; sign (Z clear means subtract)
    mov  r15, [r3+xr]       ; y[row]
    bne  cs_sub
    add  r15, r15, r7
    bra  cs_store
cs_sub:
    sub  r15, r15, r7
cs_store:
    mov  [r3+xr], r15
    sub  r5, r5, #1
    bne  cs_inner
    sub  r4, r4, #1
    bne  cs_outer

    ; ---------------- huffman coding ----------------
    li   r1, YBASE          ; measurement pointer
    li   r2, CODE_LUT
    li   r3, LEN_LUT
    li   r4, NMEAS
    li   r10, OUTBASE+1     ; bitstream pointer (OUT[0] holds bit count)
    mov  r8, #0             ; bit accumulator
    mov  r9, #16            ; free bits in accumulator
    li   r14, 0x8000        ; sign-bias constant
    li   r7, QBIAS          ; quantiser offset
    li   r0, SYMMAX         ; clamp limit
    mov  r15, #0            ; total emitted bits
hf_loop:
    mov  r6, [r1++]         ; y (16-bit two's complement)
    xor  r6, r6, r14        ; rebias to unsigned order
    srl  r6, r6, #4         ; quantise (no arithmetic shift needed)
    sub  r6, r6, r7         ; centre symbol 256 on y == 0
    bge  hf_lo_ok
    mov  r6, #0             ; saturate low
hf_lo_ok:
    sub  r5, r6, r0
    ble  hf_hi_ok
    mov  r6, r0             ; saturate high
hf_hi_ok:
    mov  xr, r6             ; symbol -> XR
    mov  r11, [r2+xr]       ; code, left-aligned   (data-dependent index)
    mov  r12, [r3+xr]       ; code length (1..15)
    add  r15, r15, r12
    ; word-wise emit: the accumulator keeps its filled bits left-aligned
    ; and r9 counts free bits (1..16).
    mov  r5, #16
    sub  r5, r5, r9         ; bits already used
    srl  r6, r11, r5        ; align the code after the filled bits
    or   r8, r8, r6
    sub  r9, r9, r12        ; free bits -= code length
    bgt  hf_next            ; still room -> next symbol
    mov  [r10++], r8        ; word completed: store it
    mov  r6, #16
    sub  r5, r6, r5         ; old free-bit count (= consumed code bits)
    sll  r8, r11, r5        ; carry the unconsumed code bits, left-aligned
    add  r9, r9, r6         ; free bits += 16
hf_next:
    sub  r4, r4, #1
    bne  hf_loop

    ; ---------------- flush and finish ----------------
    mov  r5, #16
    sub  r5, r5, r9
    beq  hf_flushed         ; accumulator empty
    mov  [r10++], r8        ; partial word is already left-aligned
hf_flushed:
    li   r10, OUTBASE
    mov  [r10], r15         ; OUT[0] = total bit count
    hlt
"""


def kernel_source(memmap: BenchmarkMemoryMap) -> str:
    """Render the kernel for a concrete memory map / block geometry."""
    if memmap.entries_per_column > 2047:
        raise ValueError(
            "inner-loop count is an 11-bit move immediate; "
            "entries_per_column must be <= 2047")
    return _KERNEL_TEMPLATE.format(
        cs_lut=memmap.cs_lut,
        code_lut=memmap.code_lut,
        len_lut=memmap.len_lut,
        x_base=memmap.x_base,
        y_base=memmap.y_base,
        out_base=memmap.out_base,
        n_samples=memmap.n_samples,
        n_measurements=memmap.n_measurements,
        entries_per_column=memmap.entries_per_column,
        symbol_max=NUM_SYMBOLS - 1,
        quant_bias=2048 - NUM_SYMBOLS // 2,
    )
