"""Logical memory map of the reference benchmark.

Shared section (read-only data, paper Section II: 14336 bytes):

========================  =============================  ==========
object                    size (paper geometry)          placement
========================  =============================  ==========
CS random vector          512 x 12 words = 12288 B       shared, linear access
Huffman code LUT          512 words     =  1024 B        shared (or private copies)
Huffman length LUT        512 words     =  1024 B        shared (or private copies)
========================  =============================  ==========

Private window per core (working data):

========================  =============================
input samples X           512 words = 1024 B
CS measurements Y         256 words =  512 B
output bitstream          1 + 256 words (bit count + words)
Huffman LUT copies        2 x 512 words (private-LUT variant only)
========================  =============================

The private-LUT variant reproduces the paper's Section IV-C2 experiment
where the data-dependent Huffman LUTs are moved into the private section
to remove shared-bank conflicts (at the cost of replicating 2 kB per
core).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.biosignal.quantize import NUM_SYMBOLS
from repro.errors import ConfigurationError
from repro.memory.layout import DataMemoryLayout, PRIVATE_BASE


@dataclass(frozen=True)
class BenchmarkMemoryMap:
    """Word addresses of every benchmark object (logical address space)."""

    n_samples: int = 512
    n_measurements: int = 256
    entries_per_column: int = 12
    huffman_private: bool = False

    # -- shared section ----------------------------------------------------------

    @property
    def cs_lut(self) -> int:
        return 0

    @property
    def cs_lut_words(self) -> int:
        return self.n_samples * self.entries_per_column

    @property
    def code_lut_shared(self) -> int:
        return self.cs_lut + self.cs_lut_words

    @property
    def len_lut_shared(self) -> int:
        return self.code_lut_shared + NUM_SYMBOLS

    @property
    def shared_words_used(self) -> int:
        if self.huffman_private:
            return self.cs_lut_words
        return self.cs_lut_words + 2 * NUM_SYMBOLS

    # -- private window -----------------------------------------------------------

    @property
    def x_base(self) -> int:
        return PRIVATE_BASE

    @property
    def y_base(self) -> int:
        return self.x_base + self.n_samples

    @property
    def out_base(self) -> int:
        """Word 0: total bit count; words 1..: the packed bitstream."""
        return self.y_base + self.n_measurements

    @property
    def out_words(self) -> int:
        return 1 + self.n_measurements  # worst case ~15/16 bits per symbol

    @property
    def code_lut_private(self) -> int:
        return self.out_base + self.out_words

    @property
    def len_lut_private(self) -> int:
        return self.code_lut_private + NUM_SYMBOLS

    @property
    def code_lut(self) -> int:
        """The LUT base the kernel actually uses."""
        return self.code_lut_private if self.huffman_private \
            else self.code_lut_shared

    @property
    def len_lut(self) -> int:
        return self.len_lut_private if self.huffman_private \
            else self.len_lut_shared

    @property
    def private_words_used(self) -> int:
        used = self.n_samples + self.n_measurements + self.out_words
        if self.huffman_private:
            used += 2 * NUM_SYMBOLS
        return used

    # -- byte accounting (paper Section II) ---------------------------------------

    @property
    def read_only_bytes(self) -> int:
        """Paper: 14336 B (12288 B CS vector + 2 x 1024 B Huffman LUTs)."""
        return 2 * (self.cs_lut_words + 2 * NUM_SYMBOLS)

    @property
    def working_bytes(self) -> int:
        return 2 * self.private_words_used

    def validate(self, layout: DataMemoryLayout) -> None:
        """Check the map fits the platform's configured section sizes."""
        if self.shared_words_used > layout.shared_words:
            raise ConfigurationError(
                f"shared data ({self.shared_words_used} words) exceeds the "
                f"{layout.shared_words}-word shared section")
        if self.private_words_used > layout.private_words_per_core:
            raise ConfigurationError(
                f"private data ({self.private_words_used} words) exceeds "
                f"the {layout.private_words_per_core}-word private window")
