"""Fast functional single-core instruction-set simulator (ISS).

The paper's flow generates a cycle-accurate ISS from the LISA description;
this module is its stand-in for single-core work: kernel bring-up, golden
traces and unit tests.  A single core with private memories never stalls,
so cycles == retired instructions here.

Data memory is a flat 64 Ki-word logical space (dict-backed, zero-default);
no MMU is involved — the multi-core platforms in :mod:`repro.platform` add
banking, translation and arbitration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.tamarisc.cpu import Core
from repro.tamarisc.dispatch import compile_program
from repro.tamarisc.isa import WORD_MASK
from repro.tamarisc.program import Program


@dataclass
class ISSStats:
    """Counters maintained by the ISS."""

    cycles: int = 0
    ifetches: int = 0
    dreads: int = 0
    dwrites: int = 0
    branches_taken: int = 0


class InstructionSetSimulator:
    """Single-core functional simulator over a flat data memory.

    ``fast=True`` executes :meth:`run` through the decode-cached
    dispatch table of :mod:`repro.tamarisc.dispatch` instead of the
    generic operand walk.  Architectural state, statistics and error
    behaviour are bit-identical either way (the differential tests in
    ``tests/tamarisc`` enforce this); :meth:`step` always uses the
    generic path, and the two may be interleaved freely.
    """

    def __init__(self, program: Program, data: dict[int, int] | None = None,
                 fast: bool = False):
        self.program = program
        self.decoded = program.decoded()
        self.core = Core(pid=0, entry=program.entry)
        self.dmem: dict[int, int] = dict(data) if data else {}
        self.stats = ISSStats()
        self.fast = fast
        self._compiled = None

    # -- memory helpers -------------------------------------------------------

    def read(self, addr: int) -> int:
        """Read one data word (uninitialised memory reads as zero)."""
        return self.dmem.get(addr & WORD_MASK, 0)

    def write(self, addr: int, value: int) -> None:
        self.dmem[addr & WORD_MASK] = value & WORD_MASK

    def read_block(self, base: int, count: int) -> list[int]:
        """Read ``count`` consecutive words starting at ``base``."""
        return [self.read(base + offset) for offset in range(count)]

    def write_block(self, base: int, values) -> None:
        for offset, value in enumerate(values):
            self.write(base + offset, value)

    # -- execution -------------------------------------------------------------

    def step(self) -> bool:
        """Execute one instruction.  Returns False once halted."""
        core = self.core
        if core.halted:
            return False
        if not 0 <= core.pc < len(self.decoded):
            raise SimulationError(
                f"PC {core.pc:#x} outside the {len(self.decoded)}-word "
                "program")
        instr = self.decoded[core.pc]
        pc_before = core.pc
        dread, dwrite = core.data_requests(instr)
        value = self.read(dread.addr) if dread is not None else None
        store = core.execute(instr, value)
        if store is not None:
            addr, data = store
            if dwrite is None or addr != dwrite.addr:
                raise SimulationError(
                    "store address diverged from previewed request")
            self.write(addr, data)
        self.stats.cycles += 1
        self.stats.ifetches += 1
        if dread is not None:
            self.stats.dreads += 1
        if store is not None:
            self.stats.dwrites += 1
        if core.pc != ((pc_before + 1) & 0x7FFF) and not core.halted:
            self.stats.branches_taken += 1
        return not core.halted

    def run(self, max_cycles: int = 10_000_000) -> ISSStats:
        """Run until HLT.  Raises if ``max_cycles`` is exceeded."""
        if self.fast:
            return self._run_fast(max_cycles)
        for _ in range(max_cycles):
            if not self.step():
                return self.stats
        raise SimulationError(
            f"program did not halt within {max_cycles} cycles")

    def _run_fast(self, max_cycles: int) -> ISSStats:
        """Dispatch-table run loop; exact mirror of the :meth:`step` loop."""
        if self._compiled is None:
            self._compiled = compile_program(self.decoded)
        compiled = self._compiled
        core = self.core
        dmem = self.dmem
        stats = self.stats
        program_len = len(compiled)
        steps = dreads = dwrites = branches = 0
        try:
            while True:
                if core.halted:
                    return stats
                if steps >= max_cycles:
                    break
                pc = core.pc
                if pc >= program_len:
                    raise SimulationError(
                        f"PC {core.pc:#x} outside the "
                        f"{len(self.decoded)}-word program")
                handler = compiled[pc]
                value = None
                if handler.preview is not None:
                    dread, _ = handler.preview(core.regs)
                    if dread is not None:
                        value = dmem.get(dread, 0)
                store = handler.commit(core, value)
                steps += 1
                if value is not None:
                    dreads += 1
                if store is not None:
                    dmem[store[0] & WORD_MASK] = store[1] & WORD_MASK
                    dwrites += 1
                if core.pc != ((pc + 1) & 0x7FFF) and not core.halted:
                    branches += 1
            raise SimulationError(
                f"program did not halt within {max_cycles} cycles")
        finally:
            stats.cycles += steps
            stats.ifetches += steps
            stats.dreads += dreads
            stats.dwrites += dwrites
            stats.branches_taken += branches
