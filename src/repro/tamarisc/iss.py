"""Fast functional single-core instruction-set simulator (ISS).

The paper's flow generates a cycle-accurate ISS from the LISA description;
this module is its stand-in for single-core work: kernel bring-up, golden
traces and unit tests.  A single core with private memories never stalls,
so cycles == retired instructions here.

Data memory is a flat 64 Ki-word logical space (dict-backed, zero-default);
no MMU is involved — the multi-core platforms in :mod:`repro.platform` add
banking, translation and arbitration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.tamarisc.cpu import Core
from repro.tamarisc.isa import WORD_MASK
from repro.tamarisc.program import Program


@dataclass
class ISSStats:
    """Counters maintained by the ISS."""

    cycles: int = 0
    ifetches: int = 0
    dreads: int = 0
    dwrites: int = 0
    branches_taken: int = 0


class InstructionSetSimulator:
    """Single-core functional simulator over a flat data memory."""

    def __init__(self, program: Program, data: dict[int, int] | None = None):
        self.program = program
        self.decoded = program.decoded()
        self.core = Core(pid=0, entry=program.entry)
        self.dmem: dict[int, int] = dict(data) if data else {}
        self.stats = ISSStats()

    # -- memory helpers -------------------------------------------------------

    def read(self, addr: int) -> int:
        """Read one data word (uninitialised memory reads as zero)."""
        return self.dmem.get(addr & WORD_MASK, 0)

    def write(self, addr: int, value: int) -> None:
        self.dmem[addr & WORD_MASK] = value & WORD_MASK

    def read_block(self, base: int, count: int) -> list[int]:
        """Read ``count`` consecutive words starting at ``base``."""
        return [self.read(base + offset) for offset in range(count)]

    def write_block(self, base: int, values) -> None:
        for offset, value in enumerate(values):
            self.write(base + offset, value)

    # -- execution -------------------------------------------------------------

    def step(self) -> bool:
        """Execute one instruction.  Returns False once halted."""
        core = self.core
        if core.halted:
            return False
        if not 0 <= core.pc < len(self.decoded):
            raise SimulationError(
                f"PC {core.pc:#x} outside the {len(self.decoded)}-word "
                "program")
        instr = self.decoded[core.pc]
        pc_before = core.pc
        dread, dwrite = core.data_requests(instr)
        value = self.read(dread.addr) if dread is not None else None
        store = core.execute(instr, value)
        if store is not None:
            addr, data = store
            if dwrite is None or addr != dwrite.addr:
                raise SimulationError(
                    "store address diverged from previewed request")
            self.write(addr, data)
        self.stats.cycles += 1
        self.stats.ifetches += 1
        if dread is not None:
            self.stats.dreads += 1
        if store is not None:
            self.stats.dwrites += 1
        if core.pc != ((pc_before + 1) & 0x7FFF) and not core.halted:
            self.stats.branches_taken += 1
        return not core.halted

    def run(self, max_cycles: int = 10_000_000) -> ISSStats:
        """Run until HLT.  Raises if ``max_cycles`` is exceeded."""
        for _ in range(max_cycles):
            if not self.step():
                return self.stats
        raise SimulationError(
            f"program did not halt within {max_cycles} cycles")
