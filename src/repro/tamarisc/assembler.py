"""Two-pass assembler for TamaRISC.

The Synopsys Processor Designer toolchain of the paper (assembler, linker)
is replaced by this module.  Syntax overview::

    ; comment (also //)
    .equ  NSAMP, 512          ; named constant (must be resolvable here)
    .org  0x10                ; advance location counter (pads with HLT)

    start:
        li    r1, NSAMP*2     ; pseudo: load 16-bit constant (1..5 words)
        mov   r2, #7          ; 11-bit immediate move
        add   r0, r1, #5      ; ALU: dst, src1, src2
        mov   r3, [r1++]      ; load with post-increment
        mov   [r2+xr], r3     ; store, register indirect with offset (XR)
        sub   r0, r0, #1
        bne   start           ; conditional branch, direct target
        br    al, pc-2        ; relative branch
        brx   lr              ; register-indirect branch (always)
        nop                   ; pseudo: mov r0, r0
        hlt

Operands: ``rN``/``xr``/``lr``/``sp`` registers, ``#expr`` immediates,
``[rN]``, ``[rN++]``, ``[rN--]``, ``[++rN]``, ``[--rN]``, ``[rN+xr]``
memory.  Expressions support integers (``0x``/``0b``/decimal/char),
symbols, parentheses and ``+ - * / % << >> & ^ |`` with unary ``-``/``~``.

Branch mnemonics: ``br <cond>, <target>`` with cond in {al, eq, ne, cs,
cc, mi, pl, vs, vc, hi, ls, ge, lt, gt, le}, or the aliases ``bra``,
``beq``, ``bne``, ... ``ble``.  Targets: an expression (direct absolute),
``pc±expr`` (relative) or a register (indirect).  ``brx rN`` is an
unconditional register-indirect branch.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import AssemblerError
from repro.tamarisc.encoding import encode
from repro.tamarisc.isa import (
    BranchMode,
    Cond,
    DstMode,
    Instruction,
    Op,
    REG_LR,
    REG_SP,
    REG_XR,
    SrcMode,
)
from repro.tamarisc.program import Program

_HLT_WORD = encode(Instruction(op=Op.HLT))

_ALU_MNEMONICS = {
    "add": Op.ADD,
    "sub": Op.SUB,
    "and": Op.AND,
    "or": Op.OR,
    "xor": Op.XOR,
    "sll": Op.SLL,
    "srl": Op.SRL,
    "mul": Op.MUL,
}

_COND_NAMES = {cond.name.lower(): cond for cond in Cond}

_BRANCH_ALIASES = {"bra": Cond.AL}
_BRANCH_ALIASES.update(
    {"b" + cond.name.lower(): cond for cond in Cond if cond != Cond.AL}
)

_REGISTER_NAMES = {"xr": REG_XR, "lr": REG_LR, "sp": REG_SP}
_REGISTER_NAMES.update({f"r{i}": i for i in range(16)})

_NAME_RE = re.compile(r"[A-Za-z_.$][A-Za-z0-9_.$]*")
_LABEL_RE = re.compile(r"^([A-Za-z_.$][A-Za-z0-9_.$]*)\s*:")


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------

class _ExprParser:
    """Recursive-descent parser for assembler constant expressions."""

    _TOKEN_RE = re.compile(
        r"\s*(?:(0[xX][0-9a-fA-F]+|0[bB][01]+|\d+)|'(\\?.)'"
        r"|([A-Za-z_.$][A-Za-z0-9_.$]*)|(<<|>>|[()+\-*/%&^|~]))"
    )

    def __init__(self, text: str, symbols: dict[str, int]):
        self.tokens = self._tokenize(text)
        self.pos = 0
        self.symbols = symbols

    def _tokenize(self, text: str) -> list:
        tokens = []
        index = 0
        while index < len(text):
            match = self._TOKEN_RE.match(text, index)
            if not match:
                if text[index:].strip():
                    raise AssemblerError(
                        f"bad expression near {text[index:]!r}"
                    )
                break
            number, char, name, operator = match.groups()
            if number is not None:
                tokens.append(("num", int(number, 0)))
            elif char is not None:
                value = char[-1]
                escapes = {"n": "\n", "t": "\t", "0": "\0", "r": "\r"}
                if char.startswith("\\"):
                    value = escapes.get(value, value)
                tokens.append(("num", ord(value)))
            elif name is not None:
                tokens.append(("name", name))
            else:
                tokens.append(("op", operator))
            index = match.end()
        return tokens

    def _peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self):
        token = self._peek()
        if token is None:
            raise AssemblerError("unexpected end of expression")
        self.pos += 1
        return token

    def parse(self) -> int:
        value = self._or()
        if self._peek() is not None:
            raise AssemblerError(f"trailing tokens in expression")
        return value

    def _binary(self, sub, operators):
        value = sub()
        while True:
            token = self._peek()
            if token is None or token[0] != "op" or token[1] not in operators:
                return value
            self._next()
            rhs = sub()
            value = operators[token[1]](value, rhs)

    def _or(self):
        return self._binary(self._xor, {"|": lambda a, b: a | b})

    def _xor(self):
        return self._binary(self._and, {"^": lambda a, b: a ^ b})

    def _and(self):
        return self._binary(self._shift, {"&": lambda a, b: a & b})

    def _shift(self):
        return self._binary(
            self._addsub,
            {"<<": lambda a, b: a << b, ">>": lambda a, b: a >> b},
        )

    def _addsub(self):
        return self._binary(
            self._muldiv,
            {"+": lambda a, b: a + b, "-": lambda a, b: a - b},
        )

    def _muldiv(self):
        return self._binary(
            self._unary,
            {
                "*": lambda a, b: a * b,
                "/": lambda a, b: a // b,
                "%": lambda a, b: a % b,
            },
        )

    def _unary(self):
        token = self._next()
        kind, value = token
        if kind == "op" and value == "-":
            return -self._unary()
        if kind == "op" and value == "+":
            return self._unary()
        if kind == "op" and value == "~":
            return ~self._unary()
        if kind == "op" and value == "(":
            inner = self._or()
            closing = self._next()
            if closing != ("op", ")"):
                raise AssemblerError("missing closing parenthesis")
            return inner
        if kind == "num":
            return value
        if kind == "name":
            if value not in self.symbols:
                raise KeyError(value)
            return self.symbols[value]
        raise AssemblerError(f"unexpected token {value!r} in expression")


def evaluate(text: str, symbols: dict[str, int]) -> int:
    """Evaluate a constant expression against a symbol table.

    Raises ``KeyError`` for an undefined symbol and
    :class:`~repro.errors.AssemblerError` for malformed syntax.
    """
    return _ExprParser(text, symbols).parse()


# ---------------------------------------------------------------------------
# Operand parsing
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _Operand:
    kind: str          # "reg" | "imm" | "mem"
    reg: int = 0
    expr: str = ""
    mode: SrcMode = SrcMode.REG


def _parse_register(text: str):
    return _REGISTER_NAMES.get(text.strip().lower())


def _parse_operand(text: str) -> _Operand:
    text = text.strip()
    if not text:
        raise AssemblerError("empty operand")
    reg = _parse_register(text)
    if reg is not None:
        return _Operand("reg", reg=reg, mode=SrcMode.REG)
    if text.startswith("#"):
        return _Operand("imm", expr=text[1:].strip(), mode=SrcMode.IMM)
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        return _parse_memory_operand(inner)
    raise AssemblerError(f"cannot parse operand {text!r}")


def _parse_memory_operand(inner: str) -> _Operand:
    lowered = inner.replace(" ", "").lower()
    if lowered.endswith("++"):
        reg = _parse_register(lowered[:-2])
        mode = SrcMode.IND_POSTINC
    elif lowered.endswith("--"):
        reg = _parse_register(lowered[:-2])
        mode = SrcMode.IND_POSTDEC
    elif lowered.startswith("++"):
        reg = _parse_register(lowered[2:])
        mode = SrcMode.IND_PREINC
    elif lowered.startswith("--"):
        reg = _parse_register(lowered[2:])
        mode = SrcMode.IND_PREDEC
    elif lowered.endswith("+xr") or lowered.endswith(f"+r{REG_XR}"):
        base = lowered.rsplit("+", 1)[0]
        reg = _parse_register(base)
        mode = SrcMode.IND_IDX
    else:
        reg = _parse_register(lowered)
        mode = SrcMode.IND
    if reg is None:
        raise AssemblerError(f"cannot parse memory operand [{inner}]")
    return _Operand("mem", reg=reg, mode=mode)


_DST_MODE_FROM_SRC = {
    SrcMode.REG: DstMode.REG,
    SrcMode.IND: DstMode.IND,
    SrcMode.IND_POSTINC: DstMode.IND_POSTINC,
    SrcMode.IND_IDX: DstMode.IND_IDX,
}


def _as_destination(operand: _Operand) -> tuple[DstMode, int]:
    if operand.kind == "imm":
        raise AssemblerError("destination cannot be an immediate")
    mode = _DST_MODE_FROM_SRC.get(operand.mode)
    if mode is None:
        raise AssemblerError(
            "destination supports only [rN], [rN++] and [rN+xr] "
            "memory modes"
        )
    return mode, operand.reg


# ---------------------------------------------------------------------------
# Assembler proper
# ---------------------------------------------------------------------------

@dataclass
class _Item:
    """One source statement surviving pass 1."""

    line: int
    address: int
    mnemonic: str
    operands: list
    size: int


def _strip_comment(line: str) -> str:
    in_char = False
    result = []
    index = 0
    while index < len(line):
        char = line[index]
        if char == "'" and not in_char:
            in_char = True
        elif char == "'" and in_char:
            in_char = False
        if not in_char:
            if char == ";":
                break
            if char == "/" and line[index: index + 2] == "//":
                break
        result.append(char)
        index += 1
    return "".join(result).strip()


def _split_operands(text: str) -> list[str]:
    return [part.strip() for part in text.split(",")] if text else []


def _li_length(value: int) -> int:
    value &= 0xFFFF
    if value <= 0x7FF:
        return 1
    if value <= 0x7FFF:
        return 3
    return 5


def _li_words(dreg: int, value: int) -> list[Instruction]:
    value &= 0xFFFF
    movi = lambda v: Instruction(op=Op.MOV, dreg=dreg, s1mode=SrcMode.IMM,
                                 s1val=v)
    sll4 = Instruction(op=Op.SLL, dreg=dreg, s1mode=SrcMode.REG, s1val=dreg,
                       s2mode=SrcMode.IMM, s2val=4)
    or4 = lambda v: Instruction(op=Op.OR, dreg=dreg, s1mode=SrcMode.REG,
                                s1val=dreg, s2mode=SrcMode.IMM, s2val=v)
    if value <= 0x7FF:
        return [movi(value)]
    if value <= 0x7FFF:
        return [movi(value >> 4), sll4, or4(value & 0xF)]
    return [movi(value >> 8), sll4, or4((value >> 4) & 0xF), sll4,
            or4(value & 0xF)]


class Assembler:
    """Two-pass TamaRISC assembler."""

    def __init__(self) -> None:
        self.symbols: dict[str, int] = {}
        self.labels: set[str] = set()

    # -- public API ---------------------------------------------------------

    def assemble(self, source: str, entry: str | None = None) -> Program:
        """Assemble source text into a :class:`Program`.

        ``entry`` optionally names the label used as initial PC (default:
        address 0).
        """
        items = self._pass_one(source)
        words, source_map = self._pass_two(items)
        label_table = {name: addr for name, addr in self.symbols.items()
                       if name in self.labels}
        program = Program(words=words, symbols=label_table,
                          source_map=source_map)
        if entry is not None:
            program.entry = program.symbol(entry)
        return program

    # -- pass 1: sizes and symbols -------------------------------------------

    def _pass_one(self, source: str) -> list[_Item]:
        items: list[_Item] = []
        location = 0
        for line_no, raw in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw)
            while True:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                label = match.group(1)
                if label in self.symbols:
                    raise AssemblerError(
                        f"duplicate symbol {label!r}", line_no)
                self.symbols[label] = location
                self.labels.add(label)
                line = line[match.end():].strip()
            if not line:
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operands = _split_operands(parts[1]) if len(parts) > 1 else []
            try:
                location = self._pass_one_statement(
                    items, line_no, location, mnemonic, operands)
            except AssemblerError:
                raise
            except Exception as exc:
                raise AssemblerError(str(exc), line_no) from exc
        return items

    def _pass_one_statement(self, items, line_no, location, mnemonic,
                            operands) -> int:
        if mnemonic == ".equ":
            if len(operands) != 2:
                raise AssemblerError(".equ needs name, value", line_no)
            name = operands[0]
            if not _NAME_RE.fullmatch(name):
                raise AssemblerError(f"bad .equ name {name!r}", line_no)
            if name in self.symbols:
                raise AssemblerError(f"duplicate symbol {name!r}", line_no)
            try:
                self.symbols[name] = evaluate(operands[1], self.symbols)
            except KeyError as exc:
                raise AssemblerError(
                    f".equ value references undefined symbol {exc}", line_no)
            return location
        if mnemonic == ".org":
            try:
                target = evaluate(operands[0], self.symbols)
            except (IndexError, KeyError) as exc:
                raise AssemblerError(f"bad .org operand: {exc}", line_no)
            if target < location:
                raise AssemblerError(".org cannot move backwards", line_no)
            items.append(_Item(line_no, location, ".org", [target],
                               target - location))
            return target
        size = self._statement_size(line_no, mnemonic, operands)
        items.append(_Item(line_no, location, mnemonic, operands, size))
        return location + size

    def _statement_size(self, line_no, mnemonic, operands) -> int:
        if mnemonic == "li":
            if len(operands) != 2:
                raise AssemblerError("li needs register, value", line_no)
            try:
                value = evaluate(operands[1], self.symbols)
            except KeyError:
                # Forward reference (a label): addresses fit in 15 bits.
                return 3
            return _li_length(value)
        if mnemonic in _ALU_MNEMONICS or mnemonic in ("mov", "br", "brx",
                                                      "hlt", "nop", ".word"):
            return 1
        if mnemonic in _BRANCH_ALIASES:
            return 1
        raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line_no)

    # -- pass 2: emission -----------------------------------------------------

    def _pass_two(self, items: list[_Item]):
        words: list[int] = []
        source_map: dict[int, int] = {}
        for item in items:
            if item.mnemonic == ".org":
                words.extend([_HLT_WORD] * item.size)
                continue
            if len(words) != item.address:
                raise AssemblerError(
                    "internal: location counter mismatch", item.line)
            try:
                emitted = self._emit(item)
            except AssemblerError:
                raise
            except KeyError as exc:
                raise AssemblerError(f"undefined symbol {exc}", item.line)
            except Exception as exc:
                raise AssemblerError(str(exc), item.line) from exc
            if len(emitted) != item.size:
                raise AssemblerError(
                    f"internal: pass-1 size {item.size} != pass-2 size "
                    f"{len(emitted)}", item.line)
            for word in emitted:
                source_map[len(words)] = item.line
                words.append(word)
        return words, source_map

    def _emit(self, item: _Item) -> list[int]:
        mnemonic, operands = item.mnemonic, item.operands
        if mnemonic == ".word":
            return [evaluate(operands[0], self.symbols) & 0xFFFFFF]
        if mnemonic == "hlt":
            return [_HLT_WORD]
        if mnemonic == "nop":
            return [encode(Instruction(op=Op.MOV, dreg=0,
                                       s1mode=SrcMode.REG, s1val=0))]
        if mnemonic == "li":
            reg = _parse_register(operands[0])
            if reg is None:
                raise AssemblerError("li destination must be a register",
                                     item.line)
            value = evaluate(operands[1], self.symbols)
            instructions = _li_words(reg, value)
            # A forward reference was sized at 3 words in pass 1; pad a
            # short expansion with NOPs to keep addresses stable.
            while len(instructions) < item.size:
                instructions.append(Instruction(op=Op.MOV, dreg=0,
                                                s1mode=SrcMode.REG, s1val=0))
            return [encode(instr) for instr in instructions]
        if mnemonic == "mov":
            return [self._emit_mov(item)]
        if mnemonic in _ALU_MNEMONICS:
            return [self._emit_alu(item)]
        if mnemonic == "br":
            if len(operands) < 2:
                raise AssemblerError("br needs condition, target", item.line)
            cond = _COND_NAMES.get(operands[0].lower())
            if cond is None:
                raise AssemblerError(
                    f"unknown condition {operands[0]!r}", item.line)
            return [self._emit_branch(item, cond, operands[1])]
        if mnemonic == "brx":
            if len(operands) != 1:
                raise AssemblerError("brx needs a register", item.line)
            return [self._emit_branch(item, Cond.AL, operands[0])]
        if mnemonic in _BRANCH_ALIASES:
            if len(operands) != 1:
                raise AssemblerError(
                    f"{mnemonic} needs a target", item.line)
            return [self._emit_branch(item, _BRANCH_ALIASES[mnemonic],
                                      operands[0])]
        raise AssemblerError(f"unknown mnemonic {mnemonic!r}", item.line)

    def _emit_mov(self, item: _Item) -> int:
        if len(item.operands) != 2:
            raise AssemblerError("mov needs destination, source", item.line)
        dst = _parse_operand(item.operands[0])
        src = _parse_operand(item.operands[1])
        dmode, dreg = _as_destination(dst)
        if src.kind == "imm":
            value = evaluate(src.expr, self.symbols)
            if not 0 <= value <= 0x7FF:
                raise AssemblerError(
                    f"mov immediate {value} outside 0..2047 (use li)",
                    item.line)
            instr = Instruction(op=Op.MOV, dmode=dmode, dreg=dreg,
                                s1mode=SrcMode.IMM, s1val=value)
        else:
            instr = Instruction(op=Op.MOV, dmode=dmode, dreg=dreg,
                                s1mode=src.mode, s1val=src.reg)
        return encode(instr)

    def _emit_alu(self, item: _Item) -> int:
        if len(item.operands) != 3:
            raise AssemblerError(
                f"{item.mnemonic} needs destination, source1, source2",
                item.line)
        op = _ALU_MNEMONICS[item.mnemonic]
        dst = _parse_operand(item.operands[0])
        src1 = _parse_operand(item.operands[1])
        src2 = _parse_operand(item.operands[2])
        dmode, dreg = _as_destination(dst)
        s1mode, s1val = self._source_fields(src1, item)
        s2mode, s2val = self._source_fields(src2, item)
        instr = Instruction(op=op, dmode=dmode, dreg=dreg, s1mode=s1mode,
                            s1val=s1val, s2mode=s2mode, s2val=s2val)
        try:
            return encode(instr)
        except Exception as exc:
            raise AssemblerError(str(exc), item.line) from exc

    def _source_fields(self, operand: _Operand, item: _Item):
        if operand.kind == "imm":
            value = evaluate(operand.expr, self.symbols)
            if not 0 <= value <= 15:
                raise AssemblerError(
                    f"ALU immediate {value} outside 0..15", item.line)
            return SrcMode.IMM, value
        return operand.mode, operand.reg

    def _emit_branch(self, item: _Item, cond: Cond, target: str) -> int:
        target = target.strip()
        reg = _parse_register(target)
        if reg is not None:
            instr = Instruction(op=Op.BR, cond=cond, bmode=BranchMode.IND,
                                target=reg)
            return encode(instr)
        lowered = target.lower()
        if lowered == "pc" or lowered.startswith(("pc+", "pc-")):
            offset = 0
            if len(lowered) > 2:
                offset = evaluate(target[2:], self.symbols)
                # target[2:] starts with the sign, e.g. "-2".
            instr = Instruction(op=Op.BR, cond=cond, bmode=BranchMode.REL,
                                target=offset)
            return encode(instr)
        address = evaluate(target, self.symbols)
        instr = Instruction(op=Op.BR, cond=cond, bmode=BranchMode.DIR,
                            target=address)
        return encode(instr)


def assemble(source: str, entry: str | None = None) -> Program:
    """Assemble TamaRISC source text into a :class:`Program`."""
    return Assembler().assemble(source, entry=entry)


def assemble_file(path, entry: str | None = None) -> Program:
    """Assemble a TamaRISC source file."""
    with open(path, "r", encoding="utf-8") as handle:
        return assemble(handle.read(), entry=entry)
