"""TamaRISC — the custom low-power RISC core of the DATE 2012 paper.

The paper (Section III-A) specifies:

* 16-bit data word, 16 working registers, 3-stage pipeline (fetch, decode,
  execute) with complete bypassing so that every instruction retires in a
  single cycle;
* 24-bit single-word instructions with a regular encoding;
* an ISA of exactly 11 instructions — 8 ALU (add, subtract, shift, logical
  AND/OR/XOR, full 16x16 multiply), 2 program-flow and 1 general data-move;
* three memory ports usable in the same cycle: one instruction read, one
  data read, one data write;
* addressing modes: register direct, register indirect with pre-/post-
  increment and decrement, and register indirect with offset; branching in
  direct and register-indirect mode as well as by an offset, with 15
  condition modes over the carry/zero/negative/overflow flags.

This package implements that ISA (:mod:`repro.tamarisc.isa`), its 24-bit
encoding (:mod:`repro.tamarisc.encoding`), a two-pass assembler and a
disassembler, a program-image container, a cycle-accurate core model with
the three memory ports (:mod:`repro.tamarisc.cpu`) and a fast functional
single-core instruction-set simulator (:mod:`repro.tamarisc.iss`).
"""

from repro.tamarisc.isa import (
    Op,
    SrcMode,
    DstMode,
    Cond,
    BranchMode,
    Instruction,
    Flags,
    REG_XR,
    REG_LR,
    REG_SP,
    NUM_REGS,
    WORD_MASK,
    INSTR_BITS,
)
from repro.tamarisc.encoding import encode, decode
from repro.tamarisc.assembler import assemble, assemble_file
from repro.tamarisc.disassembler import disassemble, disassemble_program
from repro.tamarisc.program import Program, DataImage
from repro.tamarisc.cpu import Core, MemoryRequest, CoreState
from repro.tamarisc.iss import InstructionSetSimulator

__all__ = [
    "Op",
    "SrcMode",
    "DstMode",
    "Cond",
    "BranchMode",
    "Instruction",
    "Flags",
    "REG_XR",
    "REG_LR",
    "REG_SP",
    "NUM_REGS",
    "WORD_MASK",
    "INSTR_BITS",
    "encode",
    "decode",
    "assemble",
    "assemble_file",
    "disassemble",
    "disassemble_program",
    "Program",
    "DataImage",
    "Core",
    "MemoryRequest",
    "CoreState",
    "InstructionSetSimulator",
]
