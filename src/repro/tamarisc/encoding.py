"""24-bit TamaRISC instruction-word encoding.

The paper requires a *regular* encoding: fixed bit positions so operand
fetch decodes independently of the operation.  The layout used here:

ALU ops and ``MOV`` (bit 23 .. bit 0)::

    | op(4) | dmode(2) | dreg(4) | s1mode(3) | s1val(4) | s2mode(3) | s2val(4) |
      23..20  19..18     17..14    13..11      10..7      6..4        3..0

``MOV`` with an immediate source reuses the eleven bits 10..0 as the
immediate value (``s1val`` high 4 bits, then ``s2mode``, then ``s2val``).

``BR``::

    | op(4) | cond(4) | bmode(2) | target(14) |
      23..20  19..16    15..14     13..0

``REL`` targets store a 14-bit two's-complement offset; ``IND`` targets
store the register number in the low 4 bits.  ``HLT`` encodes as the opcode
with all remaining bits zero.
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.tamarisc.isa import (
    BRANCH_FIELD_BITS,
    BranchMode,
    Cond,
    DstMode,
    IMM11_MAX,
    INSTR_MASK,
    Instruction,
    Op,
    SrcMode,
)

_BRANCH_FIELD_MASK = (1 << BRANCH_FIELD_BITS) - 1
_REL_MIN = -(1 << (BRANCH_FIELD_BITS - 1))
_REL_MAX = (1 << (BRANCH_FIELD_BITS - 1)) - 1


def encode(instr: Instruction) -> int:
    """Encode a decoded instruction into its 24-bit word.

    Raises :class:`~repro.errors.EncodingError` when a field does not fit.
    """
    try:
        instr.validate()
    except ValueError as exc:
        raise EncodingError(str(exc)) from exc

    if instr.op == Op.HLT:
        return int(Op.HLT) << 20

    if instr.op == Op.BR:
        if instr.cond == 15:
            raise EncodingError("condition encoding 15 is reserved")
        if instr.bmode == BranchMode.DIR:
            if not 0 <= instr.target <= _BRANCH_FIELD_MASK:
                raise EncodingError(
                    f"direct branch target {instr.target} exceeds "
                    f"{BRANCH_FIELD_BITS} bits"
                )
            field = instr.target
        elif instr.bmode == BranchMode.REL:
            if not _REL_MIN <= instr.target <= _REL_MAX:
                raise EncodingError(
                    f"relative branch offset {instr.target} out of range"
                )
            field = instr.target & _BRANCH_FIELD_MASK
        elif instr.bmode == BranchMode.IND:
            if not 0 <= instr.target <= 15:
                raise EncodingError("indirect branch register out of range")
            field = instr.target
        else:
            raise EncodingError(f"illegal branch mode {instr.bmode}")
        return (
            (int(Op.BR) << 20)
            | (int(instr.cond) << 16)
            | (int(instr.bmode) << 14)
            | field
        )

    # ALU ops and MOV share the regular three-operand format.
    _check_reg("dreg", instr.dreg)
    word = (
        (int(instr.op) << 20)
        | (int(instr.dmode) << 18)
        | (instr.dreg << 14)
        | (int(instr.s1mode) << 11)
    )
    if instr.op == Op.MOV and instr.s1mode == SrcMode.IMM:
        if not 0 <= instr.s1val <= IMM11_MAX:
            raise EncodingError("MOV immediate exceeds 11 bits")
        return word | instr.s1val
    _check_field("s1val", instr.s1val)
    word |= instr.s1val << 7
    if instr.op == Op.MOV:
        if instr.s2mode != SrcMode.REG or instr.s2val != 0:
            raise EncodingError("MOV has a single source operand")
        return word
    _check_field("s2val", instr.s2val)
    return word | (int(instr.s2mode) << 4) | instr.s2val


def decode(word: int) -> Instruction:
    """Decode a 24-bit instruction word.

    Raises :class:`~repro.errors.EncodingError` for illegal encodings
    (unknown opcode, reserved condition/branch mode, nonzero HLT operand
    bits).
    """
    if not 0 <= word <= INSTR_MASK:
        raise EncodingError(f"instruction word {word:#x} exceeds 24 bits")
    opcode = word >> 20
    try:
        op = Op(opcode)
    except ValueError as exc:
        raise EncodingError(f"illegal opcode {opcode}") from exc

    if op == Op.HLT:
        if word & 0xFFFFF:
            raise EncodingError("HLT with nonzero operand bits")
        return Instruction(op=Op.HLT)

    if op == Op.BR:
        cond_bits = (word >> 16) & 0xF
        if cond_bits == 15:
            raise EncodingError("condition encoding 15 is reserved")
        bmode_bits = (word >> 14) & 0x3
        if bmode_bits == 3:
            raise EncodingError("branch mode 3 is reserved")
        bmode = BranchMode(bmode_bits)
        field = word & _BRANCH_FIELD_MASK
        if bmode == BranchMode.REL and field > _REL_MAX:
            field -= 1 << BRANCH_FIELD_BITS
        if bmode == BranchMode.IND and field > 15:
            raise EncodingError("indirect branch register field exceeds 4 bits")
        return Instruction(op=Op.BR, cond=Cond(cond_bits), bmode=bmode,
                           target=field)

    dmode = DstMode((word >> 18) & 0x3)
    dreg = (word >> 14) & 0xF
    s1mode = SrcMode((word >> 11) & 0x7)
    if op == Op.MOV:
        if s1mode == SrcMode.IMM:
            return Instruction(op=op, dmode=dmode, dreg=dreg,
                               s1mode=s1mode, s1val=word & 0x7FF)
        if word & 0x7F:
            raise EncodingError("MOV with nonzero second-source bits")
        return Instruction(op=op, dmode=dmode, dreg=dreg,
                           s1mode=s1mode, s1val=(word >> 7) & 0xF)
    instr = Instruction(
        op=op,
        dmode=dmode,
        dreg=dreg,
        s1mode=s1mode,
        s1val=(word >> 7) & 0xF,
        s2mode=SrcMode((word >> 4) & 0x7),
        s2val=word & 0xF,
    )
    try:
        instr.validate()
    except ValueError as exc:
        raise EncodingError(str(exc)) from exc
    return instr


def _check_reg(name: str, value: int) -> None:
    if not 0 <= value <= 15:
        raise EncodingError(f"{name} {value} is not a register number")


def _check_field(name: str, value: int) -> None:
    if not 0 <= value <= 15:
        raise EncodingError(f"{name} {value} exceeds 4 bits")
