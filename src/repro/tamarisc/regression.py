"""Cycle-accurate regression testing (paper Fig. 4).

The paper's design flow "contains a custom regression test for cycle
accurate verification of the LISA model simulation against the
behavioral simulation of the generated HDL code".  Our analogue verifies
the two independent executors of this repository against each other:

* the fast functional ISS (:mod:`repro.tamarisc.iss`), and
* the cycle-stepped multi-core platform (:mod:`repro.platform.multicore`).

:func:`generate_random_program` emits constrained-random but *safe*
TamaRISC programs (all loads/stores inside a sandbox region of the
private window, guaranteed termination), and :func:`cross_check` runs
one on both executors and compares the complete architectural outcome:
registers, flags, retired-instruction count and the sandbox memory.
The hypothesis-driven differential tests in ``tests/tamarisc`` feed on
this module.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.memory.layout import PRIVATE_BASE
from repro.platform.config import build_config
from repro.platform.multicore import Benchmark, MultiCoreSystem
from repro.tamarisc.encoding import encode
from repro.tamarisc.isa import (
    ALU_OPS,
    BranchMode,
    Cond,
    DstMode,
    Instruction,
    Op,
    REG_XR,
    SrcMode,
)
from repro.tamarisc.iss import InstructionSetSimulator
from repro.tamarisc.program import DataImage, Program

#: Size of the memory sandbox every generated program stays inside.
SANDBOX_WORDS = 64

#: Registers the generator may use as data; the remaining registers are
#: pointer/index registers kept inside the sandbox.
_DATA_REGS = tuple(range(0, 8))
_POINTER_REGS = (8, 9, 10)

_SRC_MODES = (SrcMode.REG, SrcMode.IMM, SrcMode.IND, SrcMode.IND_POSTINC,
              SrcMode.IND_POSTDEC, SrcMode.IND_PREINC, SrcMode.IND_PREDEC,
              SrcMode.IND_IDX)
_DST_MODES = (DstMode.REG, DstMode.IND, DstMode.IND_POSTINC,
              DstMode.IND_IDX)


@dataclass
class CrossCheckResult:
    """Outcome of one differential run."""

    retired: int
    registers: list[int]
    flags: tuple
    sandbox: list[int]


#: Register used to stage indirect branch targets (``full_coverage``).
_BRANCH_REG = 11


def generate_random_program(seed: int, length: int = 40,
                            full_coverage: bool = False) -> Program:
    """A random, safe, terminating TamaRISC program.

    Safety is by construction: pointer registers are re-centred into the
    sandbox before every memory access, forward-only conditional branches
    bound execution, and the program ends with ``HLT``.

    ``full_coverage=True`` widens the instruction mix to the complete
    ISA surface: all three branch target modes (``REL``, ``DIR`` and
    register-indirect via ``r11``), all 15 condition modes including
    ``AL``, and memory-to-memory ``MOV``.  The default keeps the
    historical generator output bit-identical for existing seeds.
    """
    rng = random.Random(seed)
    words: list[int] = []

    def emit(instr: Instruction) -> None:
        words.append(encode(instr))

    def recenter(pointer: int) -> None:
        # pointer = PRIVATE_BASE + small offset (sandbox interior).
        offset = rng.randrange(8, SANDBOX_WORDS - 8)
        value = PRIVATE_BASE + offset
        emit(Instruction(op=Op.MOV, dreg=pointer, s1mode=SrcMode.IMM,
                         s1val=value >> 4))
        emit(Instruction(op=Op.SLL, dreg=pointer, s1mode=SrcMode.REG,
                         s1val=pointer, s2mode=SrcMode.IMM, s2val=4))
        emit(Instruction(op=Op.OR, dreg=pointer, s1mode=SrcMode.REG,
                         s1val=pointer, s2mode=SrcMode.IMM,
                         s2val=value & 0xF))

    def emit_filler() -> None:
        # The single skipped instruction after a forward branch.
        emit(Instruction(op=Op.XOR, dreg=rng.choice(_DATA_REGS),
                         s1mode=SrcMode.REG,
                         s1val=rng.choice(_DATA_REGS),
                         s2mode=SrcMode.IMM, s2val=rng.randrange(16)))

    for pointer in _POINTER_REGS:
        recenter(pointer)
    # Keep the index register tiny so [Rn + XR] stays inside the sandbox.
    emit(Instruction(op=Op.MOV, dreg=REG_XR, s1mode=SrcMode.IMM,
                     s1val=rng.randrange(4)))

    body = 0
    while body < length:
        choice = rng.random()
        if full_coverage and choice < 0.10:
            # Memory-to-memory MOV: a legal single-cycle copy using the
            # data-read and data-write ports together.
            emit(Instruction(
                op=Op.MOV,
                dmode=rng.choice((DstMode.IND, DstMode.IND_POSTINC,
                                  DstMode.IND_IDX)),
                dreg=rng.choice(_POINTER_REGS),
                s1mode=rng.choice((SrcMode.IND, SrcMode.IND_POSTINC,
                                   SrcMode.IND_POSTDEC, SrcMode.IND_PREINC,
                                   SrcMode.IND_PREDEC, SrcMode.IND_IDX)),
                s1val=rng.choice(_POINTER_REGS)))
            body += 1
            if body % 8 == 0:
                for pointer in _POINTER_REGS:
                    recenter(pointer)
        elif choice < 0.72:
            op = rng.choice(sorted(ALU_OPS))
            s1mode = rng.choice(_SRC_MODES)
            s2mode = rng.choice((SrcMode.REG, SrcMode.IMM)) \
                if s1mode not in (SrcMode.REG, SrcMode.IMM) \
                else rng.choice(_SRC_MODES)
            dmode = rng.choice(_DST_MODES)
            instr = Instruction(
                op=op, dmode=dmode,
                dreg=rng.choice(_POINTER_REGS) if dmode != DstMode.REG
                else rng.choice(_DATA_REGS),
                s1mode=s1mode,
                s1val=rng.randrange(16) if s1mode == SrcMode.IMM
                else (rng.choice(_POINTER_REGS)
                      if s1mode not in (SrcMode.REG,)
                      else rng.choice(_DATA_REGS)),
                s2mode=s2mode,
                s2val=rng.randrange(16) if s2mode == SrcMode.IMM
                else (rng.choice(_POINTER_REGS)
                      if s2mode not in (SrcMode.REG, SrcMode.IMM)
                      else rng.choice(_DATA_REGS)),
            )
            emit(instr)
            body += 1
            # Pointer registers drift by +-1 per access; re-centre often
            # enough that they can never escape the sandbox.
            if body % 8 == 0:
                for pointer in _POINTER_REGS:
                    recenter(pointer)
        elif choice < 0.88:
            instr = Instruction(op=Op.MOV, dmode=DstMode.REG,
                                dreg=rng.choice(_DATA_REGS),
                                s1mode=SrcMode.IMM,
                                s1val=rng.randrange(2048))
            emit(instr)
            body += 1
        elif not full_coverage:
            # Forward-only conditional branch over the next instruction:
            # bounded control flow with every condition mode exercised.
            cond = rng.choice([c for c in Cond if c != Cond.AL])
            emit(Instruction(op=Op.BR, cond=cond, bmode=BranchMode.REL,
                             target=2))
            emit_filler()
            body += 2
        else:
            # Forward-only branch in any target mode, any condition
            # (including AL).  All targets skip exactly one instruction,
            # so control flow stays bounded regardless of the flags.
            cond = rng.choice(tuple(Cond))
            bmode = rng.choice((BranchMode.REL, BranchMode.DIR,
                                BranchMode.IND))
            if bmode == BranchMode.REL:
                emit(Instruction(op=Op.BR, cond=cond, bmode=bmode,
                                 target=2))
            elif bmode == BranchMode.DIR:
                emit(Instruction(op=Op.BR, cond=cond, bmode=bmode,
                                 target=len(words) + 2))
            else:
                # Stage the absolute target in r11, then branch through
                # it.  Generated programs stay far below the 11-bit MOV
                # immediate limit.
                emit(Instruction(op=Op.MOV, dreg=_BRANCH_REG,
                                 s1mode=SrcMode.IMM,
                                 s1val=len(words) + 3))
                emit(Instruction(op=Op.BR, cond=cond, bmode=bmode,
                                 target=_BRANCH_REG))
                body += 1
            emit_filler()
            body += 2
    emit(Instruction(op=Op.HLT))
    return Program(words=words)


def run_on_iss(program: Program, sandbox_seed: int = 0,
               fast: bool = False) -> CrossCheckResult:
    """Execute on the functional ISS over a seeded sandbox."""
    rng = random.Random(sandbox_seed)
    data = {PRIVATE_BASE + i: rng.randrange(0x10000)
            for i in range(SANDBOX_WORDS)}
    iss = InstructionSetSimulator(program, data=data, fast=fast)
    iss.run(max_cycles=100_000)
    return CrossCheckResult(
        retired=iss.core.retired,
        registers=list(iss.core.regs),
        flags=iss.core.flags.as_tuple(),
        sandbox=iss.read_block(PRIVATE_BASE, SANDBOX_WORDS),
    )


def run_on_platform(program: Program, arch: str = "ulpmc-bank",
                    core: int = 0,
                    sandbox_seed: int = 0,
                    fast_forward: bool = False) -> CrossCheckResult:
    """Execute on the cycle-accurate platform; inspect one core."""
    rng = random.Random(sandbox_seed)
    sandbox = [rng.randrange(0x10000) for __ in range(SANDBOX_WORDS)]
    data = DataImage()
    for pid in range(8):
        data.set_private_block(pid, PRIVATE_BASE, sandbox)
    system = MultiCoreSystem(build_config(arch), fast_forward=fast_forward)
    system.run(Benchmark("regression", program, data),
               max_cycles=2_000_000)
    target = system.cores[core]
    return CrossCheckResult(
        retired=target.retired,
        registers=list(target.regs),
        flags=target.flags.as_tuple(),
        sandbox=system.read_logical_block(core, PRIVATE_BASE,
                                          SANDBOX_WORDS),
    )


def cross_check(seed: int, length: int = 40,
                arch: str = "ulpmc-bank",
                full_coverage: bool = False,
                fast: bool = False) -> CrossCheckResult:
    """Differential run: ISS vs platform must agree exactly.

    All eight platform cores run the same program on the same sandbox, so
    every core is checked against the single ISS execution.  With
    ``fast=True`` both executors use their dispatch-table fast paths
    instead of the generic interpreters.  Raises
    :class:`~repro.errors.SimulationError` on the first divergence.
    """
    program = generate_random_program(seed, length=length,
                                      full_coverage=full_coverage)
    golden = run_on_iss(program, sandbox_seed=seed, fast=fast)
    for core in range(8):
        measured = run_on_platform(program, arch=arch, core=core,
                                   sandbox_seed=seed, fast_forward=fast)
        for field in ("retired", "registers", "flags", "sandbox"):
            if getattr(measured, field) != getattr(golden, field):
                raise SimulationError(
                    f"seed {seed}: core {core} diverged from the ISS "
                    f"on {field}")
    return golden
