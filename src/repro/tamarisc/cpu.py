"""Cycle-accurate TamaRISC core model.

The core retires one instruction per cycle (paper Section III-A: complete
bypassing, all instructions single-cycle) using up to three memory ports in
the same cycle: one instruction read, one data read, one data write.

In the multi-core platforms a core may *stall* when one of its memory
requests loses crossbar arbitration; the stalled core is clock-gated and
simply reissues the same requests next cycle.  To support that, address
generation is split from execution:

* :meth:`Core.data_requests` computes the data-read/-write effective
  addresses of an instruction *without* changing architectural state;
* :meth:`Core.execute` performs the instruction.

Both methods share one operand-walk routine, so the addresses previewed for
arbitration always equal the addresses the commit uses (a property test
checks this).  Operand evaluation order is: source 1, source 2, destination
address, ALU, destination write — pointer side effects (pre/post
increment/decrement) from earlier operands are visible to later ones, and a
register destination write wins over a side effect on the same register.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.tamarisc.isa import (
    BranchMode,
    DstMode,
    Flags,
    Instruction,
    NUM_REGS,
    Op,
    REG_XR,
    SRC_MEM_MODES,
    SrcMode,
    WORD_MASK,
    alu_compute,
    cond_holds,
)

#: Program-counter mask: 32 Ki instruction words cover the largest
#: instruction memory evaluated (96 kB / 3 B).
PC_MASK = 0x7FFF


@dataclass(frozen=True)
class MemoryRequest:
    """One memory port request: ``kind`` in {"ifetch", "dread", "dwrite"}."""

    kind: str
    addr: int


@dataclass
class CoreState:
    """Snapshot of architectural state, for tests and debugging."""

    regs: list[int]
    pc: int
    flags: Flags
    halted: bool


class Core:
    """One TamaRISC core.

    The core itself is memory-system agnostic: callers fetch the decoded
    instruction (modelling the instruction port), ask for
    :meth:`data_requests`, arbitrate them, perform the data read, and then
    call :meth:`execute` with the loaded value.
    """

    def __init__(self, pid: int = 0, entry: int = 0):
        self.pid = pid
        self.regs = [0] * NUM_REGS
        self.pc = entry & PC_MASK
        self.flags = Flags()
        self.halted = False
        self.retired = 0

    # -- state helpers -------------------------------------------------------

    def state(self) -> CoreState:
        return CoreState(list(self.regs), self.pc, self.flags.copy(),
                         self.halted)

    def reset(self, entry: int = 0) -> None:
        self.regs = [0] * NUM_REGS
        self.pc = entry & PC_MASK
        self.flags = Flags()
        self.halted = False
        self.retired = 0

    # -- operand walk ---------------------------------------------------------

    def _walk_addresses(self, instr: Instruction):
        """Compute (dread_addr, dwrite_addr) without mutating state.

        Mirrors :meth:`execute`'s evaluation order on a scratch register
        copy so stalled reissues are stable.
        """
        if instr.op in (Op.BR, Op.HLT):
            return None, None
        scratch = list(self.regs)
        dread_addr = None
        addr = self._source_address(instr.s1mode, instr.s1val, scratch)
        if addr is not None:
            dread_addr = addr
        if instr.op != Op.MOV:
            addr = self._source_address(instr.s2mode, instr.s2val, scratch)
            if addr is not None:
                dread_addr = addr
        dwrite_addr = self._dest_address(instr, scratch)
        return dread_addr, dwrite_addr

    @staticmethod
    def _source_address(mode: SrcMode, value: int, regs: list[int]):
        """Effective address of a memory source; updates pointer in ``regs``."""
        if mode not in SRC_MEM_MODES:
            return None
        if mode == SrcMode.IND:
            return regs[value]
        if mode == SrcMode.IND_POSTINC:
            addr = regs[value]
            regs[value] = (addr + 1) & WORD_MASK
            return addr
        if mode == SrcMode.IND_POSTDEC:
            addr = regs[value]
            regs[value] = (addr - 1) & WORD_MASK
            return addr
        if mode == SrcMode.IND_PREINC:
            regs[value] = (regs[value] + 1) & WORD_MASK
            return regs[value]
        if mode == SrcMode.IND_PREDEC:
            regs[value] = (regs[value] - 1) & WORD_MASK
            return regs[value]
        # IND_IDX: register indirect with offset register XR.
        return (regs[value] + regs[REG_XR]) & WORD_MASK

    @staticmethod
    def _dest_address(instr: Instruction, regs: list[int]):
        """Effective address of a memory destination; updates pointers."""
        if instr.dmode == DstMode.REG:
            return None
        if instr.dmode == DstMode.IND:
            return regs[instr.dreg]
        if instr.dmode == DstMode.IND_POSTINC:
            addr = regs[instr.dreg]
            regs[instr.dreg] = (addr + 1) & WORD_MASK
            return addr
        # IND_IDX
        return (regs[instr.dreg] + regs[REG_XR]) & WORD_MASK

    # -- public stepping API ---------------------------------------------------

    def fetch_request(self) -> MemoryRequest:
        """The instruction-port request for the current cycle."""
        return MemoryRequest("ifetch", self.pc)

    def data_requests(self, instr: Instruction):
        """Data-port requests for ``instr``: (dread or None, dwrite or None)."""
        dread_addr, dwrite_addr = self._walk_addresses(instr)
        dread = MemoryRequest("dread", dread_addr) if dread_addr is not None \
            else None
        dwrite = MemoryRequest("dwrite", dwrite_addr) \
            if dwrite_addr is not None else None
        return dread, dwrite

    def execute(self, instr: Instruction, dread_value: int | None = None):
        """Retire ``instr``.

        ``dread_value`` must carry the loaded word when the instruction has
        a memory source.  Returns ``(dwrite_addr, dwrite_value)`` when the
        instruction stores, else ``None``.
        """
        if self.halted:
            raise SimulationError("executing on a halted core")
        if instr.op == Op.HLT:
            self.halted = True
            self.retired += 1
            return None
        if instr.op == Op.BR:
            self._execute_branch(instr)
            self.retired += 1
            return None

        regs = self.regs
        value1, used = self._source_value(instr.s1mode, instr.s1val, regs,
                                          dread_value, False, instr.op)
        if instr.op == Op.MOV:
            result = value1
            new_flags = self.flags
        else:
            value2, used = self._source_value(instr.s2mode, instr.s2val,
                                              regs, dread_value, used,
                                              instr.op)
            result, new_flags = alu_compute(instr.op, value1, value2,
                                            self.flags)
        dwrite_addr = self._dest_address(instr, regs)
        self.flags = new_flags
        store = None
        if dwrite_addr is None:
            regs[instr.dreg] = result
        else:
            store = (dwrite_addr, result)
        self.pc = (self.pc + 1) & PC_MASK
        self.retired += 1
        return store

    def _source_value(self, mode, value, regs, dread_value, mem_used, op):
        """Operand value; consumes ``dread_value`` for the memory source."""
        if mode == SrcMode.REG:
            return regs[value], mem_used
        if mode == SrcMode.IMM:
            return value, mem_used
        if mem_used:
            raise SimulationError(
                "instruction with two memory sources reached execute")
        self._source_address(mode, value, regs)
        if dread_value is None:
            raise SimulationError(
                "memory source executed without a loaded value")
        return dread_value & WORD_MASK, True

    def _execute_branch(self, instr: Instruction) -> None:
        if not cond_holds(instr.cond, self.flags):
            self.pc = (self.pc + 1) & PC_MASK
            return
        if instr.bmode == BranchMode.DIR:
            self.pc = instr.target & PC_MASK
        elif instr.bmode == BranchMode.REL:
            self.pc = (self.pc + instr.target) & PC_MASK
        else:
            self.pc = self.regs[instr.target] & PC_MASK
