"""Basic-block translation cache for the fast-forward engine.

The fast-forward engine (:mod:`repro.platform.fast_forward`) removed the
crossbar machinery from conflict-free cycles but still dispatches one
compiled closure per instruction per core per cycle.  On the evaluated
workloads the cores spend >90 % of their cycles in *lockstep* (all
running cores at the same PC), so consecutive cycles execute the same
straight-line instruction sequence eight times over — a shape QEMU-style
dynamic binary translation exploits with translation blocks.

This module discovers straight-line **basic blocks** at first execution
(ending at a branch, ``HLT`` or the first unsupported instruction),
fuses the per-instruction preview/commit semantics of
:mod:`repro.tamarisc.dispatch` into one specialised Python function per
block via source generation + ``exec``, and caches the result keyed by
``(pc, image_hash)``.  Code memory is read-only on these platforms, so
the cache never invalidates.  The generated callable is the *lockstep
variant*: it steps every running core through the whole block in one
call, with

* straight-line ALU/MOV runs unrolled into a single per-core loop
  (register file and flags object hoisted once per core),
* dead flag-bit stores eliminated — a flag write is skipped when a later
  in-block instruction overwrites that bit before any point at which the
  block can exit (conflict fallback, address fault or block end),
* PC/retired updates deferred to the block exits (one constant store per
  core instead of one per instruction),
* memory steps compiled to a two-phase translate/verdict/commit schedule
  that replicates the engine's conflict proof exactly, including the
  all-private fast verdict (per-core private banks are disjoint, so a
  cycle whose accesses all hit the private window needs no bank map).

Exactness is the same contract the engine itself carries: architectural
state, every ``SimulationStats`` field, MMU/crossbar accounting and the
probe event stream are bit-identical to the per-instruction paths.  On a
potential bank conflict at block offset ``j`` the generated function
commits the first ``j`` cycles, fills the engine's per-core scratch
arrays with the already-translated bank/offset pairs and returns ``j``;
the engine prefills the exact loop's attempts from them, exactly like
its own per-cycle fallback.  Address faults raise mid-block with the
same message and the same committed-state cut as the per-cycle paths
(the generated code patches PC/retired before raising and records the
committed depth in ``_acc[6]`` for the engine's stat reconciliation).

The generated function is specialised on a small *environment* tuple
(data-memory geometry + broadcast capability), so one cached
:class:`Block` serves every architecture; code objects are memoised per
environment.
"""

from __future__ import annotations

import hashlib
import re

from repro.memory.layout import PRIVATE_BASE
from repro.tamarisc.dispatch import compile_instruction
from repro.tamarisc.isa import (
    ALU_OPS,
    BranchMode,
    Cond,
    DstMode,
    Instruction,
    Op,
    REG_XR,
    SRC_MEM_MODES,
    SrcMode,
)

#: Body-length cap: a block never fuses more than this many straight-line
#: instructions (the terminator comes on top).  Bounds generated-code
#: size; real straight-line runs are far shorter.
MAX_BLOCK_BODY = 128

#: Flag bits each opcode writes (see ``dispatch._compile_commit``).
_FLAG_BITS = {
    Op.ADD: "cvzn",
    Op.SUB: "cvzn",
    Op.AND: "zn",
    Op.OR: "zn",
    Op.XOR: "zn",
    Op.SLL: "czn",
    Op.SRL: "czn",
    Op.MUL: "vzn",
    Op.MOV: "",
}

_PTR_DELTA = {
    SrcMode.IND_POSTINC: 1,
    SrcMode.IND_PREINC: 1,
    SrcMode.IND_POSTDEC: -1,
    SrcMode.IND_PREDEC: -1,
}
_SRC_PRE = frozenset({SrcMode.IND_PREINC, SrcMode.IND_PREDEC})

#: Condition expressions over a hoisted ``_f`` flags object, mirroring
#: ``dispatch._COND_FNS`` bit for bit.
_COND_EXPR = {
    Cond.EQ: "_f.z",
    Cond.NE: "not _f.z",
    Cond.CS: "_f.c",
    Cond.CC: "not _f.c",
    Cond.MI: "_f.n",
    Cond.PL: "not _f.n",
    Cond.VS: "_f.v",
    Cond.VC: "not _f.v",
    Cond.HI: "_f.c and not _f.z",
    Cond.LS: "not _f.c or _f.z",
    Cond.GE: "_f.n == _f.v",
    Cond.LT: "_f.n != _f.v",
    Cond.GT: "not _f.z and _f.n == _f.v",
    Cond.LE: "_f.z or _f.n != _f.v",
}

#: Flag bits each condition code reads (guard liveness in traces).
_COND_BITS = {
    Cond.EQ: "z", Cond.NE: "z",
    Cond.CS: "c", Cond.CC: "c",
    Cond.MI: "n", Cond.PL: "n",
    Cond.VS: "v", Cond.VC: "v",
    Cond.HI: "cz", Cond.LS: "cz",
    Cond.GE: "nv", Cond.LT: "nv",
    Cond.GT: "znv", Cond.LE: "znv",
}

_PC_MASK = 0x7FFF


def image_hash(words) -> str:
    """Content hash of a program image (cache key component)."""
    digest = hashlib.sha256()
    for word in words:
        digest.update(word.to_bytes(3, "little"))
    return digest.hexdigest()


def _supported(instr: Instruction) -> bool:
    """True when the block compiler can fuse this instruction.

    The same single-read contract ``dispatch.compile_instruction``
    specialises on: illegal dual-read instructions fall back to the
    generic core (and therefore end the block before them).
    """
    if instr.op not in ALU_OPS and instr.op != Op.MOV:
        return False
    n_reads = int(instr.s1mode in SRC_MEM_MODES)
    if instr.op != Op.MOV:
        n_reads += int(instr.s2mode in SRC_MEM_MODES)
    return n_reads <= 1


def discover_block(decoded, pc: int) -> "Block":
    """Collect the straight-line block starting at ``pc`` (uncached).

    The block extends over supported ALU/``MOV`` instructions and ends
    *inclusively* at the first ``BR``/``HLT`` (the terminator executes
    inside the block) or *exclusively* at the first unsupported
    instruction, the :data:`MAX_BLOCK_BODY` cap or the program end.
    """
    instrs: list[Instruction] = []
    terminator = None
    index = pc
    end = len(decoded)
    while index < end:
        instr = decoded[index]
        if instr.op == Op.HLT or instr.op == Op.BR:
            instrs.append(instr)
            terminator = "hlt" if instr.op == Op.HLT else "br"
            break
        if not _supported(instr) or len(instrs) >= MAX_BLOCK_BODY:
            break
        instrs.append(instr)
        index += 1
    return Block(pc, instrs, terminator)


#: Global translation cache: ``(pc, image_hash) -> Block``.  Code is
#: read-only, so entries are never invalidated; systems running the same
#: image share blocks (the engine re-specialises per memory geometry).
_CACHE: dict[tuple[int, str], "Block"] = {}

#: Process-level cache traffic counters.  Unlike the *per-engine*
#: ``blocks_compiled`` (deliberately cache-independent so metric
#: registries stay bit-identical run to run), these measure the real
#: hit/miss behaviour of the shared caches — the farm's warm-vs-cold
#: accounting snapshots them around each job.
_CACHE_STATS = {"block_hits": 0, "block_misses": 0, "source_compiles": 0}


def get_block(pc: int, img_hash: str, decoded) -> tuple["Block", bool]:
    """The cached block at ``(pc, img_hash)``; ``(block, compiled_now)``."""
    key = (pc, img_hash)
    block = _CACHE.get(key)
    if block is not None:
        _CACHE_STATS["block_hits"] += 1
        return block, False
    block = discover_block(decoded, pc)
    _CACHE[key] = block
    _CACHE_STATS["block_misses"] += 1
    return block, True


#: Source-text -> code-object cache.  Generated source is a pure
#: function of (block shape, environment), so identical text across
#: engines, runs or trace rebuilds compiles exactly once per process.
_CODE_CACHE: dict[str, object] = {}


def _compile_cached(src: str, filename: str):
    code = _CODE_CACHE.get(src)
    if code is None:
        code = compile(src, filename, "exec")
        _CODE_CACHE[src] = code
        _CACHE_STATS["source_compiles"] += 1
    return code


def cache_clear() -> None:
    """Drop every cached block (tests and memory-bound long sessions)."""
    _CACHE.clear()
    _CODE_CACHE.clear()


def cache_size() -> int:
    return len(_CACHE)


def cache_stats() -> dict:
    """Snapshot of the process-level cache traffic counters."""
    return dict(_CACHE_STATS)


class Block:
    """One discovered basic block plus its per-environment code objects.

    ``total`` is the number of cycles a full execution commits (body
    length plus one for the terminator); ``total == 0`` marks an
    unusable block (first instruction unsupported) the engine must not
    enter.  ``handlers`` carries one
    :class:`~repro.tamarisc.dispatch.CompiledInstruction` per position
    so conflict fallbacks can prefill the exact loop's attempts.
    """

    __slots__ = ("start", "instrs", "terminator", "handlers", "n_body",
                 "total", "_sources", "_codes")

    def __init__(self, start: int, instrs, terminator):
        self.start = start
        self.instrs = list(instrs)
        self.terminator = terminator  # 'br' | 'hlt' | None
        self.handlers = [compile_instruction(i) for i in self.instrs]
        self.n_body = len(self.instrs) - (1 if terminator else 0)
        self.total = len(self.instrs)
        self._sources: dict[tuple, str] = {}
        self._codes: dict[tuple, object] = {}

    def source(self, env: tuple) -> str:
        """The generated source for one environment (memoised)."""
        src = self._sources.get(env)
        if src is None:
            src = _generate_source(self, env)
            self._sources[env] = src
        return src

    def code(self, env: tuple):
        code = self._codes.get(env)
        if code is None:
            code = _compile_cached(
                self.source(env), f"<block {self.start:#x}+{self.total}>")
            self._codes[env] = code
        return code

    def build(self, env: tuple, layout, core_banks, storages,
              rbs, ros, wbs, wos, drb, dro, dwb, dwo):
        """Bind one engine's geometry/scratch; ``(run_fast, run_obs)``.

        ``rbs``/``ros``/``wbs``/``wos`` are position-indexed per-core
        scratch lists (the generated memory phases fill them);
        ``drb``/``dro``/``dwb``/``dwo`` are the engine's *pid*-indexed
        attempt-prefill arrays, filled only on a conflict exit.
        """
        namespace: dict = {}
        exec(self.code(env), namespace)
        return namespace["_build"](layout, core_banks, storages,
                                   rbs, ros, wbs, wos, drb, dro, dwb, dwo)


# ---------------------------------------------------------------------------
# Liveness: which flag-bit stores can any exit observe?
# ---------------------------------------------------------------------------

def _live_flag_bits(block: Block) -> list[set]:
    """Per body position, the flag bits whose stores are observable.

    The block can stop after instruction ``m - 1`` for every memory
    position ``m`` (conflict fallback or address fault at ``m``) and
    after the last body instruction (terminator or block end), so those
    are the checkpoints; a bit written at ``t`` is dead iff another
    in-block instruction overwrites it before the first checkpoint at or
    after ``t``.
    """
    handlers = block.handlers
    instrs = block.instrs
    n_body = block.n_body
    checkpoints = {t - 1 for t in range(n_body)
                   if t >= 1 and handlers[t].preview is not None}
    if n_body:
        checkpoints.add(n_body - 1)
    ordered = sorted(checkpoints)
    live: list[set] = []
    for t in range(n_body):
        checkpoint = next(c for c in ordered if c >= t)
        bits = set()
        for bit in _FLAG_BITS[instrs[t].op]:
            if not any(bit in _FLAG_BITS[instrs[u].op]
                       for u in range(t + 1, checkpoint + 1)):
                bits.add(bit)
        live.append(bits)
    return live


# ---------------------------------------------------------------------------
# Instruction semantics -> source lines.
# ---------------------------------------------------------------------------

def _ptr_update(mode: SrcMode, reg: int) -> list[str]:
    delta = _PTR_DELTA.get(mode)
    if not delta:
        return []
    sign = "+" if delta > 0 else "-"
    return [f"_r[{reg}] = (_r[{reg}] {sign} 1) & 65535"]


def _mem_src_slot(instr: Instruction) -> int:
    """0 = no memory source, 1/2 = which source operand loads memory."""
    if instr.s1mode in SRC_MEM_MODES:
        return 1
    if instr.op != Op.MOV and instr.s2mode in SRC_MEM_MODES:
        return 2
    return 0


def _semantic_lines(instr: Instruction, live: set) -> list[str]:
    """Commit semantics of one instruction, dest store excluded for
    memory destinations (the caller owns the bank write); the loaded
    word, if any, is in ``_v``.  Mirrors ``dispatch._compile_commit``
    line for line, minus dead flag stores.
    """
    op = instr.op
    slot = _mem_src_slot(instr)
    dst_mem = instr.dmode != DstMode.REG
    out: list[str] = []

    # Source 1 (pointer side effect first, exactly like get1).
    if slot == 1:
        out += _ptr_update(instr.s1mode, instr.s1val)
        a = "_v"
    elif instr.s1mode == SrcMode.REG:
        a = f"_r[{instr.s1val}]"
    else:
        a = str(instr.s1val)

    if op == Op.MOV:
        if dst_mem:
            out.append(f"_res = {a}")
            out += _dest_side_effect(instr)
        else:
            out.append(f"_r[{instr.dreg}] = {a}")
        return out

    # Source 2.  When source 2 is the memory operand and its pointer
    # register aliases a source-1 register read, latch the source-1
    # value first (get1 runs before get2's side effect).
    if slot == 2:
        update = _ptr_update(instr.s2mode, instr.s2val)
        if update and instr.s1mode == SrcMode.REG \
                and instr.s1val == instr.s2val:
            out.append(f"_a = {a}")
            a = "_a"
        out += update
        b = "_v"
    elif instr.s2mode == SrcMode.REG:
        b = f"_r[{instr.s2val}]"
    else:
        b = str(instr.s2val)

    if op == Op.ADD:
        out.append(f"_t = {a} + {b}")
        out.append("_res = _t & 65535")
        if "c" in live:
            out.append("_f.c = _t > 65535")
        if "v" in live:
            out.append(f"_f.v = ~({a} ^ {b}) & ({a} ^ _res) & 32768 != 0")
    elif op == Op.SUB:
        out.append(f"_res = ({a} - {b}) & 65535")
        if "c" in live:
            out.append(f"_f.c = {a} >= {b}")
        if "v" in live:
            out.append(f"_f.v = ({a} ^ {b}) & ({a} ^ _res) & 32768 != 0")
    elif op in (Op.AND, Op.OR, Op.XOR):
        symbol = {Op.AND: "&", Op.OR: "|", Op.XOR: "^"}[op]
        out.append(f"_res = {a} {symbol} {b}")
    elif op in (Op.SLL, Op.SRL):
        if slot != 2 and instr.s2mode == SrcMode.IMM:
            shift = instr.s2val & 15
            if op == Op.SLL:
                out.append(f"_res = ({a} << {shift}) & 65535")
                if "c" in live:
                    out.append("_f.c = False" if shift == 0 else
                               f"_f.c = ({a} >> {16 - shift}) & 1 != 0")
            else:
                out.append(f"_res = ({a} >> {shift}) & 65535")
                if "c" in live:
                    out.append("_f.c = False" if shift == 0 else
                               f"_f.c = ({a} >> {shift - 1}) & 1 != 0")
        else:
            out.append(f"_s = {b} & 15")
            if op == Op.SLL:
                out.append(f"_res = ({a} << _s) & 65535")
                if "c" in live:
                    out.append(f"_f.c = (({a} >> (16 - _s)) & 1 != 0) "
                               "if _s else False")
            else:
                out.append(f"_res = ({a} >> _s) & 65535")
                if "c" in live:
                    out.append(f"_f.c = (({a} >> (_s - 1)) & 1 != 0) "
                               "if _s else False")
    elif op == Op.MUL:
        out.append(f"_t = {a} * {b}")
        out.append("_res = _t & 65535")
        if "v" in live:
            out.append("_f.v = _t > 65535")
    else:  # pragma: no cover - discovery admits only the ops above
        raise ValueError(f"cannot fuse opcode {op!r}")

    if "z" in live:
        out.append("_f.z = _res == 0")
    if "n" in live:
        out.append("_f.n = _res & 32768 != 0")

    if dst_mem:
        out += _dest_side_effect(instr)
    else:
        out.append(f"_r[{instr.dreg}] = _res")
    return out


def _dest_side_effect(instr: Instruction) -> list[str]:
    # The store address comes from the preview-phase translation; only
    # the post-increment pointer update remains to apply here.
    if instr.dmode == DstMode.IND_POSTINC:
        return [f"_r[{instr.dreg}] = (_r[{instr.dreg}] + 1) & 65535"]
    return []


# ---------------------------------------------------------------------------
# Source generation.
# ---------------------------------------------------------------------------

class _Writer:
    __slots__ = ("lines",)

    def __init__(self):
        self.lines: list[str] = []

    def add(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def block(self, indent: int, lines) -> None:
        for line in lines:
            self.lines.append("    " * indent + line)


def _address_lines(instr: Instruction) -> list[str]:
    """Effective-address computation (``_ra``/``_wa``), preview order."""
    slot = _mem_src_slot(instr)
    dst_mem = instr.dmode != DstMode.REG
    dreg = instr.dreg
    out: list[str] = []
    if slot == 0:
        # Write-only preview.
        if instr.dmode == DstMode.IND_IDX:
            out.append(f"_wa = (_r[{dreg}] + _r[{REG_XR}]) & 65535")
        else:
            out.append(f"_wa = _r[{dreg}]")
        return out
    mode = instr.s1mode if slot == 1 else instr.s2mode
    pointer = instr.s1val if slot == 1 else instr.s2val
    delta = _PTR_DELTA.get(mode, 0)
    sign = "+" if delta > 0 else "-"
    pre = mode in _SRC_PRE
    idx = mode == SrcMode.IND_IDX
    if not dst_mem:
        # Read-only preview.
        if idx:
            out.append(f"_ra = (_r[{pointer}] + _r[{REG_XR}]) & 65535")
        elif pre:
            out.append(f"_ra = (_r[{pointer}] {sign} 1) & 65535")
        else:
            out.append(f"_ra = _r[{pointer}]")
        return out
    # Read + write: the source's pointer update is virtually visible to
    # the destination address when the registers alias.
    if pre:
        out.append(f"_vp = (_r[{pointer}] {sign} 1) & 65535")
        out.append("_ra = _vp")
    elif idx:
        out.append(f"_vp = _r[{pointer}]")
        out.append(f"_ra = (_vp + _r[{REG_XR}]) & 65535")
    else:
        out.append(f"_vp = _r[{pointer}]")
        out.append("_ra = _vp")
        if delta:
            out.append(f"_vp = (_vp {sign} 1) & 65535")
    base = "_vp" if dreg == pointer else f"_r[{dreg}]"
    if instr.dmode == DstMode.IND_IDX:
        index_reg = "_vp" if pointer == REG_XR else f"_r[{REG_XR}]"
        out.append(f"_wa = ({base} + {index_reg}) & 65535")
    else:
        out.append(f"_wa = {base}")
    return out


def _generate_source(block: Block, env: tuple) -> str:
    """The complete ``_build`` module source for one environment.

    ``env`` is ``(pwc, pwb, swb, shared_words, dm_banks, data_broadcast)``
    — exactly the geometry the engine's per-cycle preview consults.
    """
    fast = _generate_variant(block, env, observed=False)
    obs = _generate_variant(block, env, observed=True)
    lines = ["def _build(_layout, _cb, _sto, _rbs, _ros, _wbs, _wos,"
             " _drb, _dro, _dwb, _dwo):"]
    lines.append("    def _run_fast(_cores, _mt, _mp, _ms, _dlast, _dtr,"
                 " _acc, _maxj):")
    lines.extend("        " + line for line in fast)
    lines.append("    def _run_obs(_cores, _mt, _mp, _ms, _dlast, _dtr,"
                 " _acc, _c0, _emit, _apm, _emm, _apd, _pdb):")
    lines.extend("        " + line for line in obs)
    lines.append("    return _run_fast, _run_obs")
    return "\n".join(lines) + "\n"


def _generate_variant(block: Block, env: tuple, observed: bool) -> list[str]:
    handlers = block.handlers
    instrs = block.instrs
    n_body = block.n_body
    live = _live_flag_bits(block)

    # Tight-loop fusion: when the terminator is a branch whose constant
    # taken-PC is the block's own start, the *fast* variant iterates the
    # whole loop inside one call while every core keeps taking it (and
    # the cycle budget holds), amortising all per-entry overhead over
    # the loop's run.  The observed variant stays single-pass: its
    # per-cycle probe payloads are synthesised by the engine per entry.
    loop = (not observed) and _self_loop_target(block) == block.start \
        and block.total > 0
    writer = _Writer()

    if loop:
        writer.add(0, "_n = len(_cores)")
        writer.add(0, "_j = 0")
        writer.add(0, "while True:")
        base = 1
    else:
        base = 0
        if any(handlers[t].preview is not None for t in range(n_body)):
            writer.add(0, "_n = len(_cores)")

    inner = _Writer()
    position = 0
    while position < n_body:
        if handlers[position].preview is None:
            segment = [position]
            position += 1
            while position < n_body and handlers[position].preview is None:
                segment.append(position)
                position += 1
            _emit_alu_segment(inner, instrs, live, segment)
        else:
            _emit_mem_step(inner, block, env, position, live[position],
                           observed, loop)
            position += 1

    _emit_terminator(inner, block, loop)
    writer.block(base, inner.lines)
    return writer.lines


def _emit_alu_segment(writer: _Writer, instrs, live, segment) -> None:
    needs_flags = any(live[t] for t in segment)
    writer.add(0, "for _c in _cores:")
    writer.add(1, "_r = _c.regs")
    if needs_flags:
        writer.add(1, "_f = _c.flags")
    for t in segment:
        writer.block(1, _semantic_lines(instrs[t], live[t]))


def _self_loop_target(block: Block):
    """The constant taken-PC of a ``BR`` terminator, or ``None``.

    Register-indirect branches resolve at run time and never self-loop
    statically.
    """
    if block.terminator != "br":
        return None
    instr = block.instrs[-1]
    branch_pc = (block.start + block.n_body) & _PC_MASK
    if instr.bmode == BranchMode.DIR:
        return instr.target & _PC_MASK
    if instr.bmode == BranchMode.REL:
        return (branch_pc + instr.target) & _PC_MASK
    return None


def _raise_fixup_lines(block: Block, offset: int, loop: bool) -> list[str]:
    """Patch committed PC/retired and record depth before a fault raise.

    Inside a self-loop the committed depth is ``_j`` full-iteration
    cycles plus the current offset; PC and the per-iteration retired
    increment stay compile-time constants because every iteration starts
    at the block head.
    """
    depth = f"_j + {offset}" if loop else str(offset)
    out = [f"_acc[6] = {depth}"]
    if offset:
        out.append("for _cx in _cores:")
        out.append(f"    _cx.pc = {(block.start + offset) & _PC_MASK}")
        out.append(f"    _cx.retired += {offset}")
    return out


def _emit_translate(writer: _Writer, indent: int, block: Block, env: tuple,
                    offset: int, kind: str, observed: bool,
                    loop: bool) -> None:
    """One address translation, engine order: count, fault, map, probe.

    ``kind`` is ``'r'`` or ``'w'``; reads use ``_ra``/``_rb``/``_ro``
    and fill ``_rbs``/``_ros``, writes likewise.
    """
    pwc, pwb, swb, shared_words, dbn, _bcast = env
    addr = f"_{kind}a"
    bank = f"_{kind}b"
    off = f"_{kind}o"
    dest_b = "_rbs" if kind == "r" else "_wbs"
    dest_o = "_ros" if kind == "r" else "_wos"
    fixup = _raise_fixup_lines(block, offset, loop)
    writer.add(indent, "_mt[_p] += 1")
    writer.add(indent, f"if {addr} >= {PRIVATE_BASE}:")
    writer.add(indent + 1, "_mp[_p] += 1")
    writer.add(indent + 1, f"_o = {addr} - {PRIVATE_BASE}")
    writer.add(indent + 1, f"if _o >= {pwc}:")
    writer.block(indent + 2, fixup)
    writer.add(indent + 2, f"_layout.translate(_p, {addr})")
    writer.add(indent + 1, f"{bank} = _cb[_p][_o // {pwb}]")
    writer.add(indent + 1, f"{off} = {swb} + _o % {pwb}")
    if observed:
        writer.add(indent + 1, "if _apm is not None:")
        writer.add(indent + 2, "_apm(True)")
    writer.add(indent, "else:")
    writer.add(indent + 1, "_ms[_p] += 1")
    writer.add(indent + 1, f"if {addr} >= {shared_words}:")
    writer.block(indent + 2, fixup)
    writer.add(indent + 2, f"_layout.translate(_p, {addr})")
    writer.add(indent + 1, f"{bank} = {addr} % {dbn}")
    writer.add(indent + 1, f"{off} = {addr} // {dbn}")
    writer.add(indent + 1, "_allp = False")
    if observed:
        writer.add(indent + 1, "if _apm is not None:")
        writer.add(indent + 2, "_apm(False)")
    writer.add(indent, f"{dest_b}[_i] = {bank}")
    writer.add(indent, f"{dest_o}[_i] = {off}")
    if observed:
        writer.add(indent, "if _emm:")
        writer.add(indent + 1, f'_emit("mmu.translate", _cy, _p, {addr}, '
                               f'{bank}, {off}, {addr} >= {PRIVATE_BASE})')


def _emit_conflict_exit(writer: _Writer, indent: int, block: Block,
                        offset: int, reads: bool, writes: bool,
                        loop: bool) -> None:
    """Fill the engine's pid-indexed prefill arrays and return depth.

    ``_acc[7]`` records the conflicting offset *within* the block so the
    engine can pick the right handler for the attempt prefill — the
    return value alone cannot distinguish a conflict from completion
    once self-loops commit more than one iteration per call.
    """
    writer.add(indent, f"_acc[7] = {offset}")
    writer.add(indent, "_x = 0")
    writer.add(indent, "for _c in _cores:")
    writer.add(indent + 1, "_q = _c.pid")
    if reads:
        writer.add(indent + 1, "_drb[_q] = _rbs[_x]")
        writer.add(indent + 1, "_dro[_q] = _ros[_x]")
    else:
        writer.add(indent + 1, "_drb[_q] = -1")
    if writes:
        writer.add(indent + 1, "_dwb[_q] = _wbs[_x]")
        writer.add(indent + 1, "_dwo[_q] = _wos[_x]")
    else:
        writer.add(indent + 1, "_dwb[_q] = -1")
    if offset:
        writer.add(indent + 1,
                   f"_c.pc = {(block.start + offset) & _PC_MASK}")
        writer.add(indent + 1, f"_c.retired += {offset}")
    writer.add(indent + 1, "_x += 1")
    writer.add(indent, f"return _j + {offset}" if loop
               else f"return {offset}")


def _emit_mem_step(writer: _Writer, block: Block, env: tuple, offset: int,
                   live: set, observed: bool, loop: bool) -> None:
    _pwc, _pwb, _swb, _shared, _dbn, bcast = env
    instr = block.instrs[offset]
    handler = block.handlers[offset]
    reads = handler.reads_mem
    writes = handler.writes_mem

    if observed:
        writer.add(0, f"_cy = _c0 + {offset}")

    # ---- phase A: addresses + translation for every core ----
    writer.add(0, "_allp = True")
    writer.add(0, "_i = 0")
    writer.add(0, "for _c in _cores:")
    writer.add(1, "_r = _c.regs")
    writer.add(1, "_p = _c.pid")
    writer.block(1, _address_lines(instr))
    if reads:
        _emit_translate(writer, 1, block, env, offset, "r", observed, loop)
    if writes:
        _emit_translate(writer, 1, block, env, offset, "w", observed, loop)
    writer.add(1, "_i += 1")

    # ---- verdict: replicate the engine's per-cycle conflict proof ----
    # Private banks are disjoint across cores and private offsets
    # (>= shared_words_per_bank) never equal shared offsets, so an
    # all-private cycle can only conflict core-locally (read bank ==
    # write bank of the same core).
    broadcast_loop = False
    if reads and writes:
        writer.add(0, "if _allp:")
        writer.add(1, "_x = 0")
        writer.add(1, "while _x < _n:")
        writer.add(2, "if _rbs[_x] == _wbs[_x]:")
        _emit_conflict_exit(writer, 3, block, offset, reads,
                            writes, loop)
        writer.add(2, "_x += 1")
        writer.add(1, "_acc[0] += 2 * _n")
        writer.add(0, "else:")
        writer.add(1, "_map = {}")
        writer.add(1, "_confl = False")
        writer.add(1, "_x = 0")
        writer.add(1, "while _x < _n:")
        writer.add(2, "_b = _rbs[_x]")
        writer.add(2, "_e = _map.get(_b)")
        writer.add(2, "if _e is None:")
        writer.add(3, "_map[_b] = [_ros[_x], 1, False]")
        if bcast:
            writer.add(2, "elif _e[2] or _e[0] != _ros[_x]:")
            writer.add(3, "_confl = True")
            writer.add(2, "else:")
            writer.add(3, "_e[1] += 1")
        else:
            writer.add(2, "else:")
            writer.add(3, "_confl = True")
        writer.add(2, "_b = _wbs[_x]")
        writer.add(2, "if _b in _map:")
        writer.add(3, "_confl = True")
        writer.add(2, "else:")
        writer.add(3, "_map[_b] = [0, 0, True]")
        writer.add(2, "_x += 1")
        writer.add(1, "if _confl:")
        _emit_conflict_exit(writer, 2, block, offset, reads,
                            writes, loop)
        writer.add(1, "_acc[0] += len(_map)")
        broadcast_loop = bcast
    elif reads:
        writer.add(0, "if _allp:")
        writer.add(1, "_acc[0] += _n")
        writer.add(0, "else:")
        writer.add(1, "_map = {}")
        writer.add(1, "_confl = False")
        writer.add(1, "_x = 0")
        writer.add(1, "while _x < _n:")
        writer.add(2, "_b = _rbs[_x]")
        writer.add(2, "_e = _map.get(_b)")
        writer.add(2, "if _e is None:")
        writer.add(3, "_map[_b] = [_ros[_x], 1]")
        if bcast:
            writer.add(2, "elif _e[0] != _ros[_x]:")
            writer.add(3, "_confl = True")
            writer.add(2, "else:")
            writer.add(3, "_e[1] += 1")
        else:
            writer.add(2, "else:")
            writer.add(3, "_confl = True")
        writer.add(2, "_x += 1")
        writer.add(1, "if _confl:")
        _emit_conflict_exit(writer, 2, block, offset, reads,
                            writes, loop)
        writer.add(1, "_acc[0] += len(_map)")
        broadcast_loop = bcast
    else:  # write-only: writes never merge, bank uniqueness decides
        writer.add(0, "if _allp:")
        writer.add(1, "_acc[0] += _n")
        writer.add(0, "else:")
        writer.add(1, "_st = set()")
        writer.add(1, "_x = 0")
        writer.add(1, "while _x < _n:")
        writer.add(2, "_st.add(_wbs[_x])")
        writer.add(2, "_x += 1")
        writer.add(1, "if len(_st) != _n:")
        _emit_conflict_exit(writer, 2, block, offset, reads,
                            writes, loop)
        writer.add(1, "_acc[0] += _n")

    if broadcast_loop:
        # Same-address read merges: broadcast counters + probe events.
        writer.add(1, "for _b2, _e in _map.items():")
        writer.add(2, "_w = _e[1]")
        writer.add(2, "if _w > 1:")
        writer.add(3, "_acc[2] += 1")
        writer.add(3, "_acc[3] += _w - 1")
        if observed:
            writer.add(3, "if _apd is not None:")
            writer.add(4, "_apd(_w)")
            writer.add(3, "elif _pdb:")
            writer.add(4, '_emit("dm.broadcast", _cy, _b2, _w)')

    # ---- phase B: commit every core ----
    writer.add(0, "_x = 0")
    writer.add(0, "for _c in _cores:")
    writer.add(1, "_r = _c.regs")
    writer.add(1, "_p = _c.pid")
    if live:
        writer.add(1, "_f = _c.flags")
    if reads:
        writer.add(1, "_b = _rbs[_x]")
        writer.add(1, "_dl = _dlast[_p]")
        writer.add(1, "if _dl is not None and _dl != _b:")
        writer.add(2, "_dtr[_p] += 1")
        writer.add(1, "_dlast[_p] = _b")
        writer.add(1, "_v = _sto[_b][_ros[_x]]")
    writer.block(1, _semantic_lines(instr, live))
    if writes:
        writer.add(1, "_b = _wbs[_x]")
        writer.add(1, "_dl = _dlast[_p]")
        writer.add(1, "if _dl is not None and _dl != _b:")
        writer.add(2, "_dtr[_p] += 1")
        writer.add(1, "_dlast[_p] = _b")
        writer.add(1, "_sto[_b][_wos[_x]] = _res")
    writer.add(1, "_x += 1")

    accesses = int(reads) + int(writes)
    writer.add(0, f"_acc[1] += {accesses} * _n")
    if reads:
        writer.add(0, "_acc[4] += _n")
    if writes:
        writer.add(0, "_acc[5] += _n")


def _emit_terminator(writer: _Writer, block: Block, loop: bool) -> None:
    n_body = block.n_body
    start = block.start
    kind = block.terminator
    if kind is None:
        writer.add(0, "for _c in _cores:")
        writer.add(1, f"_c.pc = {(start + n_body) & _PC_MASK}")
        writer.add(1, f"_c.retired += {n_body}")
        writer.add(0, f"return {n_body}")
        return
    if kind == "hlt":
        writer.add(0, "for _c in _cores:")
        if n_body:
            writer.add(1, f"_c.pc = {(start + n_body) & _PC_MASK}")
        writer.add(1, "_c.halted = True")
        writer.add(1, f"_c.retired += {n_body + 1}")
        writer.add(0, f"return {n_body + 1}")
        return
    instr = block.instrs[-1]
    branch_pc = (start + n_body) & _PC_MASK
    if instr.bmode == BranchMode.DIR:
        taken = str(instr.target & _PC_MASK)
        need_regs = False
    elif instr.bmode == BranchMode.REL:
        taken = str((branch_pc + instr.target) & _PC_MASK)
        need_regs = False
    else:  # BranchMode.IND
        taken = f"_r[{instr.target}] & {_PC_MASK}"
        need_regs = True
    not_taken = (branch_pc + 1) & _PC_MASK
    total = n_body + 1
    if loop:
        # Self-loop: keep iterating while every core takes the
        # back-branch and another full iteration fits the budget.
        if instr.cond == Cond.AL:
            writer.add(0, "for _c in _cores:")
            writer.add(1, f"_c.pc = {taken}")
            writer.add(1, f"_c.retired += {total}")
            writer.add(0, f"_j += {total}")
            writer.add(0, f"if _j + {total} > _maxj:")
            writer.add(1, "return _j")
        else:
            writer.add(0, "_tk = 0")
            writer.add(0, "for _c in _cores:")
            writer.add(1, "_f = _c.flags")
            writer.add(1, f"if {_COND_EXPR[instr.cond]}:")
            writer.add(2, f"_c.pc = {taken}")
            writer.add(2, "_tk += 1")
            writer.add(1, "else:")
            writer.add(2, f"_c.pc = {not_taken}")
            writer.add(1, f"_c.retired += {total}")
            writer.add(0, f"_j += {total}")
            writer.add(0, f"if _tk != _n or _j + {total} > _maxj:")
            writer.add(1, "return _j")
        return
    writer.add(0, "for _c in _cores:")
    if need_regs:
        writer.add(1, "_r = _c.regs")
    if instr.cond == Cond.AL:
        writer.add(1, f"_c.pc = {taken}")
    else:
        writer.add(1, "_f = _c.flags")
        writer.add(1, f"if {_COND_EXPR[instr.cond]}:")
        writer.add(2, f"_c.pc = {taken}")
        writer.add(1, "else:")
        writer.add(2, f"_c.pc = {not_taken}")
    writer.add(1, f"_c.retired += {n_body + 1}")
    writer.add(0, f"return {n_body + 1}")



# ---------------------------------------------------------------------------
# Loop traces: cyclic block-graph paths fused into one looping callable.
# ---------------------------------------------------------------------------
#
# The block layer amortises dispatch over one straight-line run, but the
# hot loops of the evaluated kernels are *cycles in the block graph*
# (short blocks chained by conditional branches), so every few cycles
# still pay one full engine entry.  A :class:`Trace` fuses one such
# cycle — anchored at a hot block, optionally *forking into the two arms
# of the anchor's branch* and rejoining at the anchor — into a single
# generated function that keeps iterating while every running core stays
# on the traced paths in lockstep.  Key properties:
#
# * per-core scalar execution: each core runs a whole iteration back to
#   back with registers, flags and the data-crossbar last-bank held in
#   scalar locals, so the interleaved per-cycle phase loops of the block
#   variant disappear;
# * two-arm support: a data-dependent branch at the anchor (the shape
#   Huffman bit loops produce) compiles both directions; each iteration
#   all cores must take the *same* arm — core 0 picks, disagreement
#   bails;
# * every branch is a *guard*: the iteration aborts the moment any core
#   leaves the traced direction, including the final back-edge.  Traces
#   therefore only ever commit whole iterations, all of them lockstep,
#   all data accesses private, provably conflict-free;
# * rollback on abort: register files are snapshotted per iteration,
#   data-memory writes kept in an undo log, flag/last-bank boundary
#   values double-buffered — a guard divergence, address fault or
#   shared-memory access restores the last committed iteration boundary
#   exactly and returns the committed cycle count (0 = decline); the
#   engine replays the rest through the per-block/per-cycle paths;
# * statistics folded at exit as compile-time constants times the
#   per-arm iteration counts (committed iterations of one arm are
#   identical by construction).
#
# Traces never raise and never handle conflicts: anything outside the
# proven iteration shape is someone else's cycle.

#: Cap on the number of instructions one trace iteration may fuse
#: (anchor plus the longer arm).
MAX_TRACE_INSTRS = 192

#: Cap on chained blocks per arm.
MAX_TRACE_BLOCKS = 8


def _scalarize(lines):
    """Rewrite ``_r[N]`` -> ``_gN`` and ``_f.x`` -> ``_fx`` in template
    output, turning the register-file/flags-object forms of the shared
    semantic generators into scalar-local forms."""
    out = []
    for line in lines:
        line = re.sub(r"_r\[(\d+)\]", r"_g\1", line)
        out.append(line.replace("_f.", "_f"))
    return out


def _sc_cond(cond: Cond) -> str:
    return _COND_EXPR[cond].replace("_f.", "_f")


def _branch_targets(instr: Instruction, branch_pc: int) -> tuple[int, int]:
    """(taken, fallthrough) PCs of a direct/relative branch."""
    if instr.bmode == BranchMode.DIR:
        taken = instr.target & _PC_MASK
    else:
        taken = (branch_pc + instr.target) & _PC_MASK
    return taken, (branch_pc + 1) & _PC_MASK


class _Arm:
    """One path from the anchor's branch back to the anchor."""

    __slots__ = ("expected", "cells", "pcs")

    def __init__(self, expected, cells, pcs):
        self.expected = expected  # anchor branch direction entering it
        self.cells = cells
        self.pcs = tuple(pcs)


class Trace:
    """One anchored loop shape plus its per-environment callables.

    ``prefix_cells`` covers the anchor block's body; ``split`` is the
    anchor's terminator (a guard for one-arm traces, a runtime arm
    select for two-arm traces); each :class:`_Arm` chains zero or more
    blocks whose terminators are all guards, the last one expected to
    return to ``start``.  Cells are ``("alu", instr)``,
    ``("read", instr)``, ``("write", instr)`` or
    ``("guard", instr, expected_taken)``.
    """

    __slots__ = ("start", "prefix_cells", "prefix_pcs", "split", "arms",
                 "percore_regs", "percore_flags",
                 "periods", "max_period", "_sources", "_codes")

    def __init__(self, start, prefix_cells, prefix_pcs, split, arms,
                 percore_regs=frozenset(), percore_flags=frozenset()):
        self.start = start
        self.prefix_cells = prefix_cells
        self.prefix_pcs = tuple(prefix_pcs)  # includes the split cycle
        self.split = split
        self.arms = arms
        self.percore_regs = frozenset(percore_regs)
        self.percore_flags = frozenset(percore_flags)
        self.periods = tuple(len(self.prefix_pcs) + len(arm.pcs)
                             for arm in arms)
        self.max_period = max(self.periods)
        self._sources: dict[tuple, str] = {}
        self._codes: dict[tuple, object] = {}

    def arm_pcs(self, index: int) -> tuple:
        """Full fetch-PC sequence of one iteration through arm ``index``."""
        return self.prefix_pcs + self.arms[index].pcs

    def arm_counts(self, index: int) -> tuple[int, int]:
        """(reads, writes) of one iteration through arm ``index``."""
        cells = list(self.prefix_cells) + list(self.arms[index].cells)
        return (sum(1 for cell in cells if cell[0] == "read"),
                sum(1 for cell in cells if cell[0] == "write"))

    def source(self, env: tuple) -> str:
        src = self._sources.get(env)
        if src is None:
            src = _generate_trace_source(self, env)
            self._sources[env] = src
        return src

    def code(self, env: tuple):
        code = self._codes.get(env)
        if code is None:
            code = _compile_cached(
                self.source(env),
                f"<trace {self.start:#x}x{self.max_period}>")
            self._codes[env] = code
        return code

    def build(self, env: tuple, layout, core_banks, storages):
        namespace: dict = {}
        exec(self.code(env), namespace)
        return namespace["_build"](layout, core_banks, storages)


def _body_cells(block: Block, base_pc: int):
    """Body cells + fetch PCs of one block, or ``None`` if unfusable."""
    cells: list[tuple] = []
    pcs: list[int] = []
    for t in range(block.n_body):
        handler = block.handlers[t]
        instr = block.instrs[t]
        if handler.preview is None:
            cells.append(("alu", instr))
        elif handler.reads_mem and handler.writes_mem:
            return None  # same-core two-port access: conflict-prone
        elif handler.reads_mem:
            cells.append(("read", instr))
        else:
            cells.append(("write", instr))
        pcs.append((base_pc + t) & _PC_MASK)
    return cells, pcs


def build_trace(anchor: Block, arms_spec, percore_regs=(),
                percore_flags=()) -> "Trace | None":
    """Fuse an anchored loop shape into a :class:`Trace`.

    ``arms_spec`` is ``[(split_expected, chain), ...]`` with one or two
    entries; each ``chain`` is ``[(block, expected_taken), ...]`` (zero
    or more blocks whose terminators are all direct/relative branches),
    the last expected direction returning to ``anchor.start``.
    ``percore_regs``/``percore_flags`` name state observed to differ
    across the lockstep cores at build time — the seed for the uniform
    specialisation's dataflow split.  Returns ``None`` on any construct
    the trace compiler rejects.
    """
    if anchor.terminator != "br" or not 1 <= len(arms_spec) <= 2:
        return None
    split = anchor.instrs[-1]
    if split.bmode == BranchMode.IND:
        return None
    if len(arms_spec) == 2:
        if {spec[0] for spec in arms_spec} != {True, False}:
            return None
        arms_spec = sorted(arms_spec, key=lambda spec: not spec[0])
    if split.cond == Cond.AL and not arms_spec[0][0]:
        return None
    prefix = _body_cells(anchor, anchor.start)
    if prefix is None:
        return None
    prefix_cells, prefix_pcs = prefix
    prefix_pcs.append((anchor.start + anchor.n_body) & _PC_MASK)
    arms = []
    for expected, chain in arms_spec:
        cells: list[tuple] = []
        pcs: list[int] = []
        for block, taken in chain:
            if block.terminator != "br":
                return None
            instr = block.instrs[-1]
            if instr.bmode == BranchMode.IND \
                    or (instr.cond == Cond.AL and not taken):
                return None
            body = _body_cells(block, block.start)
            if body is None:
                return None
            cells += body[0]
            pcs += body[1]
            cells.append(("guard", instr, taken))
            pcs.append((block.start + block.n_body) & _PC_MASK)
        if len(prefix_pcs) + len(pcs) > MAX_TRACE_INSTRS:
            return None
        arms.append(_Arm(expected, cells, pcs))
    return Trace(anchor.start, prefix_cells, prefix_pcs, split, arms,
                 percore_regs, percore_flags)


def _seq_flag_emits(cells):
    """Per-cell flag bits to store, over one linear cell sequence.

    Liveness is conservative at the sequence end (every bit may be
    observed after the iteration); inside it a store is dead when a
    later instruction overwrites the bit before any guard reads it.
    """
    live = set("cvzn")
    emits: list[set] = [set()] * len(cells)
    for t in range(len(cells) - 1, -1, -1):
        cell = cells[t]
        if cell[0] == "guard":
            if cell[1].cond != Cond.AL:
                live |= set(_COND_BITS[cell[1].cond])
        else:
            written = set(_FLAG_BITS[cell[1].op])
            emits[t] = written & live
            live -= written
    return emits


def _trace_flag_plan(trace: Trace):
    """(prefix_emits, per-arm emits, loads, stores) for one trace.

    Prefix cells take the union of their per-arm emit sets (an extra
    store of a correct value is never wrong).  ``loads`` pulls every
    stored or guard-read bit into scalars at iteration start, so the
    boundary buffers always hold current values whichever arm ran.
    """
    n_prefix = len(trace.prefix_cells)
    prefix_emits = [set() for __ in range(n_prefix)]
    arm_emits = []
    guard_bits: set = set()
    if trace.split.cond != Cond.AL:
        guard_bits |= set(_COND_BITS[trace.split.cond])
    for arm in trace.arms:
        seq = list(trace.prefix_cells) \
            + [("guard", trace.split, arm.expected)] \
            + list(arm.cells)
        emits = _seq_flag_emits(seq)
        for t in range(n_prefix):
            prefix_emits[t] |= emits[t]
        arm_emits.append(emits[n_prefix + 1:])
        for cell in arm.cells:
            if cell[0] == "guard" and cell[1].cond != Cond.AL:
                guard_bits |= set(_COND_BITS[cell[1].cond])
    stores = set().union(*prefix_emits, *(s for em in arm_emits
                                          for s in em)) \
        if (prefix_emits or arm_emits) else set()
    loads = stores | guard_bits
    return prefix_emits, arm_emits, sorted(loads), sorted(stores)




def _read_cell_lines(instr, emit, env, k: int):
    """One read cell: private fast path plus (when the crossbar can
    broadcast) a shared path requiring every core to load the *same*
    address core 0 loaded — the lockstep-broadcast shape coefficient
    and input-sample loops produce.  Anything else bails.

    ``_c{k}``/``_sa{k}`` carry core 0's verdict (shared? which address)
    to the other cores; the commit section folds the per-iteration
    statistics from the same flags.
    """
    pwc, pwb, swb, shared_words, dbn, data_broadcast = env
    lines = _scalarize(_address_lines(instr))
    lines += [
        "_o = _ra - %d" % PRIVATE_BASE,
        "if _o >= 0:",
        "    if _o >= %d:" % pwc,
        "        _bail = True",
        "        break",
    ]
    if data_broadcast:
        lines += [
            "    if _x:",
            f"        if _c{k}:",
            "            _bail = True",
            "            break",
            "    else:",
            f"        _c{k} = False",
            "    _bk = _cbp[_o // %d]" % pwb,
            "    _vo = %d + _o %% %d" % (swb, pwb),
            "else:",
            "    if _ra >= %d:" % shared_words,
            "        _bail = True",
            "        break",
            "    if _x:",
            f"        if not _c{k} or _ra != _sa{k}:",
            "            _bail = True",
            "            break",
            "    else:",
            f"        _c{k} = True",
            f"        _sa{k} = _ra",
            "    _bk = _ra %% %d" % dbn,
            "    _vo = _ra // %d" % dbn,
        ]
    else:
        lines += [
            "    _bk = _cbp[_o // %d]" % pwb,
            "    _vo = %d + _o %% %d" % (swb, pwb),
            "else:",
            "    _bail = True",
            "    break",
        ]
    lines += [
        "if _dl is not None and _dl != _bk:",
        "    _dt += 1",
        "_dl = _bk",
        "_v = _sto[_bk][_vo]",
    ]
    lines += _scalarize(_semantic_lines(instr, emit))
    return lines


def _write_cell_lines(instr, emit, env, undo: bool):
    """One write cell (private only: cross-core write-merge never
    happens, and shared writes are rare enough to bail on).  The
    address preview precedes the semantics — which apply the
    destination's pointer side effect — exactly like the engine."""
    pwc, pwb, swb = env[0], env[1], env[2]
    lines = _scalarize(_address_lines(instr))
    lines += _scalarize(_semantic_lines(instr, emit))
    lines += [
        "_o = _wa - %d" % PRIVATE_BASE,
        "if _o < 0 or _o >= %d:" % pwc,
        "    _bail = True",
        "    break",
        "_bk = _cbp[_o // %d]" % pwb,
        "if _dl is not None and _dl != _bk:",
        "    _dt += 1",
        "_dl = _bk",
        "_s2 = _sto[_bk]",
        "_o2 = %d + _o %% %d" % (swb, pwb),
    ]
    if undo:
        lines.append("_u.append((_s2, _o2, _s2[_o2]))")
    lines.append("_s2[_o2] = _res")
    return lines


def _guard_lines(instr: Instruction, expected: bool):
    if instr.cond == Cond.AL:
        return []  # always taken; build_trace rejected expected=False
    cond = _sc_cond(instr.cond)
    return [
        f"if not ({cond}):" if expected else f"if {cond}:",
        "    _bail = True",
        "    break",
    ]


def _chunk_cells(cells, emits, env, undo_writes: bool, kctr):
    """Chunks + bookkeeping for one linear cell run.

    ``undo_writes`` forces undo logging on every store: with several
    lockstep cores a *later* core's bail rolls back earlier cores'
    completed cells, so any bail point anywhere in the iteration means
    every write must be journalled.  ``kctr`` is the mutable
    dynamic-read-cell counter.  Returns ``(chunks, dyn_read_ids)``.
    """
    data_broadcast = env[5]
    chunks = []
    dyn_ids = []
    for t, cell in enumerate(cells):
        kind = cell[0]
        if kind == "guard":
            chunks.append(_guard_lines(cell[1], cell[2]))
        elif kind == "alu":
            chunks.append(_scalarize(_semantic_lines(cell[1], emits[t])))
        elif kind == "read":
            k = kctr[0]
            kctr[0] += 1
            if data_broadcast:
                dyn_ids.append(k)
            chunks.append(_read_cell_lines(cell[1], emits[t], env, k))
        else:
            chunks.append(_write_cell_lines(cell[1], emits[t], env,
                                            undo_writes))
    return chunks, dyn_ids


_REG_REF = re.compile(r"_g(\d+)")


def _trace_reg_plan(all_chunks):
    """(loads, stores): every referenced register is loaded into a
    scalar at iteration start and every assigned one written back at
    the commit — simple and arm-agnostic (a register written in one arm
    only is stored back unchanged when the other arm runs)."""
    loads: set[int] = set()
    stores: set[int] = set()
    for chunks in all_chunks:
        for lines in chunks:
            for line in lines:
                for match in _REG_REF.finditer(line):
                    loads.add(int(match.group(1)))
                stripped = line.lstrip()
                match = _REG_REF.match(stripped)
                if match and stripped[match.end():].startswith(" = "):
                    stores.add(int(match.group(1)))
    return sorted(loads), sorted(stores)


def _fold_expr(per_arm_counts, count_vars):
    """``"3 * _ia + 5 * _ib"``-style constant fold, or ``None``."""
    terms = [f"{count} * {var}"
             for count, var in zip(per_arm_counts, count_vars) if count]
    return " + ".join(terms) if terms else None


def _emit_trace_variant(w: _Writer, trace: Trace, env: tuple,
                        name: str) -> None:
    """Emit the generic (fully per-core) trace body as ``name``."""
    prefix_emits, arm_emits, flag_loads, flag_stores = \
        _trace_flag_plan(trace)
    two_arm = len(trace.arms) == 2
    split_cond = trace.split.cond != Cond.AL
    kctr = [0]
    all_cells = list(trace.prefix_cells) \
        + [cell for arm in trace.arms for cell in arm.cells]
    cells_bail = any(
        cell[0] in ("read", "write")
        or (cell[0] == "guard" and cell[1].cond != Cond.AL)
        for cell in all_cells)
    any_bail = cells_bail or split_cond or two_arm
    any_write = any(cell[0] == "write" for cell in all_cells)
    any_undo = any_bail and any_write
    prefix_chunks, prefix_dyn = _chunk_cells(
        trace.prefix_cells, prefix_emits, env, any_undo, kctr)
    arm_chunks = []
    arm_dyn = []
    for arm, emits in zip(trace.arms, arm_emits):
        chunks, dyn_ids = _chunk_cells(arm.cells, emits, env, any_undo,
                                       kctr)
        arm_chunks.append(chunks)
        arm_dyn.append(dyn_ids)
    reads = [trace.arm_counts(k)[0] for k in range(len(trace.arms))]
    writes = [trace.arm_counts(k)[1] for k in range(len(trace.arms))]
    accesses = [r + w for r, w in zip(reads, writes)]
    data_broadcast = env[5]
    any_mem = any(accesses)
    dyn = data_broadcast and any(reads)
    # Per-arm private accesses folded as constants: writes always, and
    # reads too when the crossbar cannot broadcast (those cells bail on
    # anything shared, so committed ones are private by construction).
    const_priv = list(writes) if dyn else list(accesses)
    reg_loads, reg_stores = _trace_reg_plan([prefix_chunks] + arm_chunks)
    count_vars = ("_ia", "_ib") if two_arm else ("_it",)

    def _dyn_fold(w, indent, ids):
        for k in ids:
            w.add(indent, f"if _c{k}:")
            w.add(indent + 1, "_da += 1")
            w.add(indent + 1, "_msh += 1")
            w.add(indent + 1, "if _n > 1:")
            w.add(indent + 2, "_db += 1")
            w.add(indent + 2, "_dsv += _n - 1")
            w.add(indent, "else:")
            w.add(indent + 1, "_da += _n")
            w.add(indent + 1, "_mpr += 1")

    w.add(1, "def %s(_cores, _mt, _mp, _ms, _dlast, _dtr, _acc,"
             " _maxj):" % name)
    body = 2
    w.add(body, "_n = len(_cores)")
    if any_undo:
        w.add(body, "_u = []")
    if any_bail:
        w.add(body, "_bsn = [None] * _n")
    for bit in flag_loads:
        w.add(body, f"_bf{bit} = []")
    for bit in flag_stores:
        w.add(body, f"_pf{bit} = []")
    if any_mem:
        w.add(body, "_bdl = []")
        w.add(body, "_bdt = []")
        w.add(body, "_pdl = []")
        w.add(body, "_pdt = []")
    if flag_loads or any_mem:
        w.add(body, "for _c in _cores:")
        if flag_loads:
            w.add(body + 1, "_f = _c.flags")
            for bit in flag_loads:
                w.add(body + 1, f"_bf{bit}.append(_f.{bit})")
            for bit in flag_stores:
                w.add(body + 1, f"_pf{bit}.append(False)")
        if any_mem:
            w.add(body + 1, "_bdl.append(_dlast[_c.pid])")
            w.add(body + 1, "_bdt.append(0)")
            w.add(body + 1, "_pdl.append(0)")
            w.add(body + 1, "_pdt.append(0)")
    w.add(body, "_it = 0")
    w.add(body, "_j = 0")
    if two_arm:
        w.add(body, "_ia = 0")
        w.add(body, "_ib = 0")
        w.add(body, "_la = 1")
    if dyn:
        w.add(body, "_da = 0")
        w.add(body, "_db = 0")
        w.add(body, "_dsv = 0")
        w.add(body, "_mpr = 0")
        w.add(body, "_msh = 0")
    w.add(body, "while True:")
    loop = body + 1
    if any_undo:
        w.add(loop, "del _u[:]")
    if any_bail:
        w.add(loop, "_bail = False")
    w.add(loop, "_x = 0")
    w.add(loop, "for _c in _cores:")
    core = loop + 1
    w.add(core, "_r = _c.regs")
    if any_bail:
        w.add(core, "_bsn[_x] = _r[:]")
    if any_mem:
        w.add(core, "_cbp = _cb[_c.pid]")
        w.add(core, "_dl = _bdl[_x]")
        w.add(core, "_dt = 0")
    for reg in reg_loads:
        w.add(core, f"_g{reg} = _r[{reg}]")
    for bit in flag_loads:
        w.add(core, f"_f{bit} = _bf{bit}[_x]")
    for lines in prefix_chunks:
        w.block(core, lines)
    if two_arm:
        w.add(core, f"_d = {_sc_cond(trace.split.cond)}")
        w.add(core, "if _x:")
        w.add(core + 1, "if _d != (_arm == 1):")
        w.add(core + 2, "_bail = True")
        w.add(core + 2, "break")
        w.add(core, "else:")
        w.add(core + 1, "_arm = 1 if _d else 0")
        w.add(core, "if _d:")
        for lines in arm_chunks[0]:
            w.block(core + 1, lines)
        if not any(arm_chunks[0]):
            w.add(core + 1, "pass")
        w.add(core, "else:")
        for lines in arm_chunks[1]:
            w.block(core + 1, lines)
        if not any(arm_chunks[1]):
            w.add(core + 1, "pass")
    else:
        w.block(core, _guard_lines(trace.split, trace.arms[0].expected))
        for lines in arm_chunks[0]:
            w.block(core, lines)
    for reg in reg_stores:
        w.add(core, f"_r[{reg}] = _g{reg}")
    for bit in flag_stores:
        w.add(core, f"_pf{bit}[_x] = _bf{bit}[_x]")
        w.add(core, f"_bf{bit}[_x] = _f{bit}")
    if any_mem:
        w.add(core, "_pdl[_x] = _bdl[_x]")
        w.add(core, "_bdl[_x] = _dl")
        w.add(core, "_pdt[_x] = _bdt[_x]")
        w.add(core, "_bdt[_x] += _dt")
    w.add(core, "_x += 1")
    if any_bail:
        w.add(loop, "if _bail:")
        if any_undo:
            w.add(loop + 1, "for _s2, _o2, _v2 in reversed(_u):")
            w.add(loop + 2, "_s2[_o2] = _v2")
        w.add(loop + 1, "_y = 0")
        w.add(loop + 1, "while _y < _x:")
        w.add(loop + 2, "_cores[_y].regs[:] = _bsn[_y]")
        for bit in flag_stores:
            w.add(loop + 2, f"_bf{bit}[_y] = _pf{bit}[_y]")
        if any_mem:
            w.add(loop + 2, "_bdl[_y] = _pdl[_y]")
            w.add(loop + 2, "_bdt[_y] = _pdt[_y]")
        w.add(loop + 2, "_y += 1")
        w.add(loop + 1, "break")
    w.add(loop, "_it += 1")
    if two_arm:
        w.add(loop, "if _arm:")
        w.add(loop + 1, "_ia += 1")
        w.add(loop + 1, "_la = 1")
        w.add(loop + 1, f"_j += {trace.periods[0]}")
        if dyn:
            _dyn_fold(w, loop + 1, prefix_dyn + arm_dyn[0])
        w.add(loop, "else:")
        w.add(loop + 1, "_ib += 1")
        w.add(loop + 1, "_la = 0")
        w.add(loop + 1, f"_j += {trace.periods[1]}")
        if dyn:
            _dyn_fold(w, loop + 1, prefix_dyn + arm_dyn[1])
    else:
        w.add(loop, f"_j += {trace.periods[0]}")
        if dyn:
            _dyn_fold(w, loop, prefix_dyn + arm_dyn[0])
    w.add(loop, f"if _j + {trace.max_period} > _maxj:")
    w.add(loop + 1, "break")
    # ---- epilogue: nothing committed means nothing to write back ----
    w.add(body, "if _j:")
    epi = body + 1
    cp_fold = _fold_expr(const_priv, count_vars)
    if any_mem and cp_fold:
        w.add(epi, f"_wpr = {cp_fold}")
    mt_terms = (["_mpr", "_msh"] if dyn else []) \
        + (["_wpr"] if any_mem and cp_fold else [])
    mp_terms = (["_mpr"] if dyn else []) \
        + (["_wpr"] if any_mem and cp_fold else [])
    w.add(epi, "_x = 0")
    w.add(epi, "for _c in _cores:")
    w.add(epi + 1, f"_c.pc = {trace.start}")
    w.add(epi + 1, "_c.retired += _j")
    if flag_stores:
        w.add(epi + 1, "_f = _c.flags")
        for bit in flag_stores:
            w.add(epi + 1, f"_f.{bit} = _bf{bit}[_x]")
    if any_mem:
        w.add(epi + 1, "_p = _c.pid")
        if mt_terms:
            w.add(epi + 1, f"_mt[_p] += {' + '.join(mt_terms)}")
        if mp_terms:
            w.add(epi + 1, f"_mp[_p] += {' + '.join(mp_terms)}")
        if dyn:
            w.add(epi + 1, "_ms[_p] += _msh")
        w.add(epi + 1, "_dlast[_p] = _bdl[_x]")
        w.add(epi + 1, "if _bdt[_x]:")
        w.add(epi + 2, "_dtr[_p] += _bdt[_x]")
    w.add(epi + 1, "_x += 1")
    if any_mem:
        acc0 = (["_da"] if dyn else []) \
            + ([f"_n * (_wpr)"] if cp_fold else [])
        if acc0:
            w.add(epi, f"_acc[0] += {' + '.join(acc0)}")
        del_fold = _fold_expr(accesses, count_vars)
        if del_fold:
            w.add(epi, f"_acc[1] += _n * ({del_fold})")
        if dyn:
            w.add(epi, "_acc[2] += _db")
            w.add(epi, "_acc[3] += _dsv")
        read_fold = _fold_expr(reads, count_vars)
        if read_fold:
            w.add(epi, f"_acc[4] += _n * ({read_fold})")
        write_fold = _fold_expr(writes, count_vars)
        if write_fold:
            w.add(epi, f"_acc[5] += _n * ({write_fold})")
    if two_arm:
        w.add(epi, "_acc[8] = _ia")
        w.add(epi, "_acc[9] = _ib")
        w.add(epi, "_acc[10] = _la")
    else:
        w.add(epi, "_acc[8] = _it")
        w.add(epi, "_acc[9] = 0")
        w.add(epi, "_acc[10] = 1")
    w.add(body, "return _j")

_FLAG_REF = re.compile(r"_f([czvn])\b")


def _cell_io(lines):
    """(reg_reads, reg_writes, flag_reads, flag_writes) over cell lines.

    Conservative regex-level dataflow over generated scalar code: a
    line-initial ``_gN = `` / ``_fX = `` is a write, every other
    occurrence a read.
    """
    rr: set = set()
    rw: set = set()
    fr: set = set()
    fw: set = set()
    for line in lines:
        stripped = line.lstrip()
        rhs = stripped
        match = _REG_REF.match(stripped)
        if match and stripped[match.end():].startswith(" = "):
            rw.add(int(match.group(1)))
            rhs = stripped[match.end() + 3:]
        else:
            match = _FLAG_REF.match(stripped)
            if match and stripped[match.end():].startswith(" = "):
                fw.add(match.group(1))
                rhs = stripped[match.end() + 3:]
        for ref in _REG_REF.finditer(rhs):
            rr.add(int(ref.group(1)))
        for ref in _FLAG_REF.finditer(rhs):
            fr.add(ref.group(1))
    return rr, rw, fr, fw


def _uniform_plan(trace: Trace, env: tuple):
    """Uniform-specialisation plan, or ``None`` when unsafe/unprofitable.

    The uniform variant executes each iteration's computation *once*
    with plain scalars and loops over the cores only for effects that
    genuinely differ per core: registers observed non-uniform at build
    time plus everything data-dependent on them, private-bank stores,
    and MMU bank-transition accounting.  Prerequisites, checked here:
    every control decision (split + guards) and every memory address
    must be uniform, per-core data must never leak into a loaded or
    stored flag, and reads must hit shared memory (the last one is
    enforced at run time by bailing on private reads, which the
    broadcast crossbar merges into one uniform value anyway).
    """
    data_broadcast = env[5]
    prefix_emits, arm_emits, flag_loads, flag_stores = \
        _trace_flag_plan(trace)
    seq = []
    for t, cell in enumerate(trace.prefix_cells):
        seq.append((cell, prefix_emits[t], None))
    for a, arm in enumerate(trace.arms):
        for t, cell in enumerate(arm.cells):
            seq.append((cell, arm_emits[a][t], a))
    infos = []
    for ci, (cell, emit, arm) in enumerate(seq):
        kind = cell[0]
        if kind == "guard":
            lines = _guard_lines(cell[1], cell[2])
            addr_regs: set = set()
        else:
            lines = _scalarize(_semantic_lines(cell[1], emit))
            addr_regs = _cell_io(
                _scalarize(_address_lines(cell[1])))[0] \
                if kind in ("read", "write") else set()
        srr, rw, sfr, fw = _cell_io(lines)
        infos.append({"ci": ci, "kind": kind, "arm": arm, "cell": cell,
                      "emit": emit, "lines": lines, "addr": addr_regs,
                      "srr": srr, "rr": srr | addr_regs, "rw": rw,
                      "fr": sfr, "fw": fw})
    p_regs = set(trace.percore_regs)
    p_flags = set(trace.percore_flags)
    changed = True
    while changed:
        changed = False
        for info in infos:
            if info["kind"] == "guard":
                continue
            if (info["rr"] & p_regs) or (info["fr"] & p_flags) \
                    or (info["rw"] & p_regs) or (info["fw"] & p_flags):
                if not (info["rw"] <= p_regs
                        and info["fw"] <= p_flags):
                    p_regs |= info["rw"]
                    p_flags |= info["fw"]
                    changed = True
    guard_bits: set = set()
    if trace.split.cond != Cond.AL:
        guard_bits |= set(_COND_BITS[trace.split.cond])
    for info in infos:
        if info["kind"] == "guard":
            guard_bits |= info["fr"]
        elif info["fr"] - set(flag_loads):
            # A semantic flag read outside the load plan would have no
            # entry uniformity check; refuse rather than risk it.
            return None
        if info["kind"] in ("read", "write") \
                and info["addr"] & p_regs:
            return None
    if guard_bits & p_flags:
        return None
    if (set(flag_loads) | set(flag_stores)) & p_flags:
        return None
    cls = ["p" if ((info["rr"] | info["rw"]) & p_regs
                   or (info["fr"] | info["fw"]) & p_flags) else "u"
           for info in infos]
    if "u" not in cls:
        return None
    # A uniform-dest read needs the broadcast crossbar to merge the
    # cores' shared fetches into one value.
    if not data_broadcast and any(
            info["kind"] == "read" and cls[info["ci"]] == "u"
            for info in infos):
        return None
    mctr = 0
    for info in infos:
        if info["kind"] in ("read", "write"):
            info["m"] = mctr
            mctr += 1
    return {"p_regs": p_regs, "p_flags": p_flags, "infos": infos,
            "cls": cls, "flag_loads": flag_loads,
            "flag_stores": flag_stores}


def _pc_renamed(info, lines, p_regs, p_flags):
    """Per-core emission of one cell's semantic lines.

    Uniform register/flag operands are captured into cell-unique
    scalars at the cell's position in the uniform section (so later
    uniform cells can freely overwrite them); the read value ``_v``
    becomes the cell's preloaded ``_v{m}``.

    Returns ``(captures, renamed_lines)``.
    """
    ci = info["ci"]
    captures = []
    out = list(lines)

    def _sub(pattern, repl):
        nonlocal out
        out = [re.sub(pattern, repl, line) for line in out]

    for reg in sorted(info["srr"] - p_regs):
        captures.append(f"_t{ci}r{reg} = _g{reg}")
        _sub(rf"\b_g{reg}\b", f"_t{ci}r{reg}")
    for bit in sorted(info["fr"] - p_flags):
        captures.append(f"_t{ci}f{bit} = _f{bit}")
        _sub(rf"\b_f{bit}\b", f"_t{ci}f{bit}")
    if info["kind"] == "read":
        _sub(r"\b_v\b", "_v%d" % info["m"])
    return captures, out


def _emit_uniform_variant(w: _Writer, trace: Trace, env: tuple,
                          plan: dict, name: str) -> None:
    pwc, pwb, swb, shared_words, dbn, _dbc = env
    infos = plan["infos"]
    cls = plan["cls"]
    p_regs = plan["p_regs"]
    p_flags = plan["p_flags"]
    flag_loads = plan["flag_loads"]
    flag_stores = plan["flag_stores"]
    two_arm = len(trace.arms) == 2
    read_lim = min(shared_words, PRIVATE_BASE)
    # Static shared/private split: a read whose destination is per-core
    # must be a private (per-bank) read — uniform dests mean uniform
    # values, which only a broadcast-merged shared read provides.  Each
    # path enforces its prediction with a range bail.
    sreads, preads, writes, accesses = [], [], [], []
    for k in range(len(trace.arms)):
        path = [info for info in infos if info["arm"] in (None, k)]
        pr = sum(1 for info in path if info["kind"] == "read"
                 and cls[info["ci"]] == "p")
        sr = sum(1 for info in path if info["kind"] == "read"
                 and cls[info["ci"]] == "u")
        wn = sum(1 for info in path if info["kind"] == "write")
        preads.append(pr)
        sreads.append(sr)
        writes.append(wn)
        accesses.append(pr + sr + wn)
    any_mem = any(accesses)
    any_write = any(writes)
    any_priv = any(preads)
    count_vars = ("_ia", "_ib") if two_arm else ("_it",)

    refs: set = set()
    stores_r: set = set()
    for info in infos:
        refs |= info["rr"] | info["rw"]
        stores_r |= info["rw"]
    u_loads = sorted(r for r in refs if r not in p_regs)
    u_stores = sorted(r for r in stores_r if r not in p_regs)
    p_used = sorted(r for r in refs if r in p_regs)
    p_stored = sorted(r for r in stores_r if r in p_regs)

    def emit_uniform_cell(info, indent):
        kind = info["kind"]
        percore = cls[info["ci"]] == "p"
        if kind == "guard":
            w.block(indent, info["lines"])
            return
        if kind == "alu":
            if percore:
                w.block(indent,
                        _pc_renamed(info, info["lines"],
                                    p_regs, p_flags)[0])
            else:
                w.block(indent, info["lines"])
            return
        m = info["m"]
        instr = info["cell"][1]
        w.block(indent, _scalarize(_address_lines(instr)))
        if kind == "read":
            if percore:  # private read: per-core banks, uniform offset
                w.add(indent, "_o = _ra - %d" % PRIVATE_BASE)
                w.add(indent, "if _o < 0 or _o >= %d:" % pwc)
                w.add(indent + 1, "_bail = True")
                w.add(indent + 1, "break")
                w.add(indent, "_od%d = _o // %d" % (m, pwb))
                w.add(indent, "_vo%d = %d + _o %% %d" % (m, swb, pwb))
                w.block(indent,
                        _pc_renamed(info, info["lines"],
                                    p_regs, p_flags)[0])
            else:  # shared read: fetch once, broadcast to every core
                w.add(indent, "if _ra >= %d:" % read_lim)
                w.add(indent + 1, "_bail = True")
                w.add(indent + 1, "break")
                w.add(indent, "_bk%d = _ra %% %d" % (m, dbn))
                w.add(indent, "_v%d = _sto[_bk%d][_ra // %d]"
                      % (m, m, dbn))
                w.block(indent, [re.sub(r"\b_v\b", "_v%d" % m, line)
                                 for line in info["lines"]])
            return
        # write cell: semantics first (the address was previewed), the
        # store itself happens in the per-core loop
        if percore:
            w.block(indent,
                    _pc_renamed(info, info["lines"], p_regs, p_flags)[0])
        else:
            w.block(indent, info["lines"])
            w.add(indent, "_res%d = _res" % m)
        w.add(indent, "_o = _wa - %d" % PRIVATE_BASE)
        w.add(indent, "if _o < 0 or _o >= %d:" % pwc)
        w.add(indent + 1, "_bail = True")
        w.add(indent + 1, "break")
        w.add(indent, "_od%d = _o // %d" % (m, pwb))
        w.add(indent, "_o2%d = %d + _o %% %d" % (m, swb, pwb))

    def percore_lines(arm_index):
        out: list[str] = []
        for info in infos:
            if info["arm"] not in (None, arm_index):
                continue
            kind = info["kind"]
            percore = cls[info["ci"]] == "p"
            if kind == "alu":
                if percore:
                    out += _pc_renamed(info, info["lines"],
                                       p_regs, p_flags)[1]
            elif kind == "read":
                m = info["m"]
                if percore:  # private: per-core bank fetch and replay
                    out += [f"_bk = _cbp[_od{m}]",
                            "if _dl is not None and _dl != _bk:",
                            "    _dt += 1",
                            "_dl = _bk",
                            f"_v{m} = _sto[_bk][_vo{m}]"]
                    out += _pc_renamed(info, info["lines"],
                                       p_regs, p_flags)[1]
                else:  # shared: uniform bank, per-core dlast replay
                    out += [f"if _dl is not None and _dl != _bk{m}:",
                            "    _dt += 1",
                            f"_dl = _bk{m}"]
            elif kind == "write":
                m = info["m"]
                if percore:
                    out += _pc_renamed(info, info["lines"],
                                       p_regs, p_flags)[1]
                out += [f"_bk = _cbp[_od{m}]",
                        "if _dl is not None and _dl != _bk:",
                        "    _dt += 1",
                        "_dl = _bk",
                        f"_sto[_bk][_o2{m}] = "
                        + ("_res" if percore else f"_res{m}")]
        return out

    def emit_arm_commit(arm_index, indent):
        if two_arm:
            w.add(indent, "_ia += 1" if arm_index == 0 else "_ib += 1")
            w.add(indent, "_la = %d" % (1 if arm_index == 0 else 0))
        else:
            w.add(indent, "_it += 1")
        w.add(indent, "_j += %d" % trace.periods[arm_index])
        lines = percore_lines(arm_index)
        if not lines:
            return
        path = [info for info in infos
                if info["arm"] in (None, arm_index)]
        path_mem = any(info["kind"] in ("read", "write")
                       for info in path)
        path_banked = any(
            info["kind"] == "write"
            or (info["kind"] == "read" and cls[info["ci"]] == "p")
            for info in path)
        rr, rw_, __, ___ = _cell_io(lines)
        loop_loads = sorted(r for r in rr | rw_ if r in p_regs)
        loop_stores = sorted(r for r in rw_ if r in p_regs)
        w.add(indent, "for _x in range(_n):")
        li = indent + 1
        if path_banked:
            w.add(li, "_cbp = _cbs[_x]")
        if path_mem:
            w.add(li, "_dl = _pdl[_x]")
            w.add(li, "_dt = 0")
        for reg in loop_loads:
            w.add(li, f"_g{reg} = _p{reg}[_x]")
        w.block(li, lines)
        for reg in loop_stores:
            w.add(li, f"_p{reg}[_x] = _g{reg}")
        if path_mem:
            w.add(li, "_pdl[_x] = _dl")
            w.add(li, "_pdt[_x] += _dt")

    w.add(1, "def %s(_cores, _mt, _mp, _ms, _dlast, _dtr, _acc,"
             " _maxj):" % name)
    b = 2
    w.add(b, "_n = len(_cores)")
    w.add(b, "_c0 = _cores[0]")
    if u_loads:
        w.add(b, "_r0 = _c0.regs")
        for reg in u_loads:
            w.add(b, f"_g{reg} = _r0[{reg}]")
    if flag_loads:
        w.add(b, "_f0 = _c0.flags")
        for bit in flag_loads:
            w.add(b, f"_f{bit} = _f0.{bit}")
    for reg in p_used:
        w.add(b, f"_p{reg} = [_c.regs[{reg}] for _c in _cores]")
    if any_mem:
        if any_write or any_priv:
            w.add(b, "_cbs = [_cb[_c.pid] for _c in _cores]")
        w.add(b, "_pdl = [_dlast[_c.pid] for _c in _cores]")
        w.add(b, "_pdt = [0] * _n")
    w.add(b, "_j = 0")
    if two_arm:
        w.add(b, "_ia = 0")
        w.add(b, "_ib = 0")
        w.add(b, "_la = 1")
    else:
        w.add(b, "_it = 0")
    w.add(b, "_bail = False")
    w.add(b, "while True:")
    L = b + 1
    for reg in u_stores:
        w.add(L, f"_h{reg} = _g{reg}")
    for bit in flag_stores:
        w.add(L, f"_h{bit}f = _f{bit}")
    for info in infos:
        if info["arm"] is None:
            emit_uniform_cell(info, L)
    if two_arm:
        w.add(L, f"_d = {_sc_cond(trace.split.cond)}")
        w.add(L, "if _d:")
        for info in infos:
            if info["arm"] == 0:
                emit_uniform_cell(info, L + 1)
        emit_arm_commit(0, L + 1)
        w.add(L, "else:")
        for info in infos:
            if info["arm"] == 1:
                emit_uniform_cell(info, L + 1)
        emit_arm_commit(1, L + 1)
    else:
        w.block(L, _guard_lines(trace.split, trace.arms[0].expected))
        for info in infos:
            if info["arm"] == 0:
                emit_uniform_cell(info, L)
        emit_arm_commit(0, L)
    w.add(L, f"if _j + {trace.max_period} > _maxj:")
    w.add(L + 1, "break")
    if u_stores or flag_stores:
        w.add(b, "if _bail:")
        for reg in u_stores:
            w.add(b + 1, f"_g{reg} = _h{reg}")
        for bit in flag_stores:
            w.add(b + 1, f"_f{bit} = _h{bit}f")
    # ---- epilogue ----
    w.add(b, "if _j:")
    e = b + 1
    mt_fold = _fold_expr(accesses, count_vars)
    mp_fold = _fold_expr([p + wn for p, wn in zip(preads, writes)],
                         count_vars)
    ms_fold = _fold_expr(sreads, count_vars)
    w.add(e, "_x = 0")
    w.add(e, "for _c in _cores:")
    w.add(e + 1, f"_c.pc = {trace.start}")
    w.add(e + 1, "_c.retired += _j")
    if u_stores or p_stored:
        w.add(e + 1, "_r = _c.regs")
        for reg in u_stores:
            w.add(e + 1, f"_r[{reg}] = _g{reg}")
        for reg in p_stored:
            w.add(e + 1, f"_r[{reg}] = _p{reg}[_x]")
    if flag_stores:
        w.add(e + 1, "_f = _c.flags")
        for bit in flag_stores:
            w.add(e + 1, f"_f.{bit} = _f{bit}")
    if any_mem:
        w.add(e + 1, "_p = _c.pid")
        if mt_fold:
            w.add(e + 1, f"_mt[_p] += {mt_fold}")
        if mp_fold:
            w.add(e + 1, f"_mp[_p] += {mp_fold}")
        if ms_fold:
            w.add(e + 1, f"_ms[_p] += {ms_fold}")
        w.add(e + 1, "_dlast[_p] = _pdl[_x]")
        w.add(e + 1, "if _pdt[_x]:")
        w.add(e + 2, "_dtr[_p] += _pdt[_x]")
    w.add(e + 1, "_x += 1")
    if any_mem:
        acc0 = ([f"({ms_fold})"] if ms_fold else []) \
            + ([f"_n * ({mp_fold})"] if mp_fold else [])
        if acc0:
            w.add(e, f"_acc[0] += {' + '.join(acc0)}")
        if mt_fold:
            w.add(e, f"_acc[1] += _n * ({mt_fold})")
        if ms_fold:
            w.add(e, "if _n > 1:")
            w.add(e + 1, f"_acc[2] += {ms_fold}")
            w.add(e + 1, f"_acc[3] += (_n - 1) * ({ms_fold})")
        rd_fold = _fold_expr([p + s for p, s in zip(preads, sreads)],
                             count_vars)
        if rd_fold:
            w.add(e, f"_acc[4] += _n * ({rd_fold})")
        wr_fold = _fold_expr(writes, count_vars)
        if wr_fold:
            w.add(e, f"_acc[5] += _n * ({wr_fold})")
    if two_arm:
        w.add(e, "_acc[8] = _ia")
        w.add(e, "_acc[9] = _ib")
        w.add(e, "_acc[10] = _la")
    else:
        w.add(e, "_acc[8] = _it")
        w.add(e, "_acc[9] = 0")
        w.add(e, "_acc[10] = 1")
    w.add(b, "return _j")


def _emit_dispatch(w: _Writer, trace: Trace, plan: dict) -> None:
    """``_run``: route to the uniform body when the uniform-classified
    entry state really is identical across the cores, else generic."""
    infos = plan["infos"]
    p_regs = plan["p_regs"]
    flag_loads = plan["flag_loads"]
    refs: set = set()
    for info in infos:
        refs |= info["rr"] | info["rw"]
    check_regs = sorted(r for r in refs if r not in p_regs)
    args = "_cores, _mt, _mp, _ms, _dlast, _dtr, _acc, _maxj"
    w.add(1, "def _run(%s):" % args)
    b = 2
    w.add(b, "_r0 = _cores[0].regs")
    if flag_loads:
        w.add(b, "_f0 = _cores[0].flags")
    w.add(b, "for _c in _cores:")
    if check_regs:
        w.add(b + 1, "_r = _c.regs")
        cond = " or ".join(f"_r[{r}] != _r0[{r}]" for r in check_regs)
        w.add(b + 1, f"if {cond}:")
        w.add(b + 2, "return _generic(%s)" % args)
    if flag_loads:
        w.add(b + 1, "_f = _c.flags")
        cond = " or ".join(f"_f.{bit} != _f0.{bit}"
                           for bit in flag_loads)
        w.add(b + 1, f"if {cond}:")
        w.add(b + 2, "return _generic(%s)" % args)
    w.add(b, "return _uniform(%s)" % args)


def _generate_trace_source(trace: Trace, env: tuple) -> str:
    w = _Writer()
    w.add(0, "def _build(_layout, _cb, _sto):")
    plan = _uniform_plan(trace, env)
    if plan is None:
        _emit_trace_variant(w, trace, env, "_run")
    else:
        _emit_trace_variant(w, trace, env, "_generic")
        _emit_uniform_variant(w, trace, env, plan, "_uniform")
        _emit_dispatch(w, trace, plan)
    w.add(1, "return _run")
    return "\n".join(w.lines) + "\n"
