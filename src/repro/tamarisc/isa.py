"""TamaRISC instruction-set architecture definitions.

The ISA follows Section III-A of the paper: 11 instructions total (8 ALU,
2 program-flow, 1 data-move), 16-bit data words, 24-bit single-word
instructions, 16 registers, and the addressing modes listed there.

Where the paper leaves encoding details unspecified we make the following
documented choices (they do not affect any evaluated quantity, which depends
only on instruction *counts* and memory *access patterns*):

* ``R13`` doubles as the dedicated *index register* ``XR``: the "register
  indirect with offset" addressing mode computes ``[Rn + XR]``.  A dedicated
  offset register keeps every instruction single-word as the paper requires.
* ``R14``/``R15`` are plain registers that the assembler also accepts under
  the conventional aliases ``LR`` (link) and ``SP`` (stack).
* The two program-flow instructions are ``BR`` (conditional branch, with
  direct, register-indirect and PC-relative-offset target modes and the 15
  condition modes of the paper) and ``HLT`` (halt / wait-for-event, which a
  duty-cycled biosignal node needs to sleep between sample blocks).
* ``MUL`` retires the low 16 bits of the full 16x16 product and flags
  overflow in ``V``; the benchmark kernels never need the high half.
* The data-move instruction ``MOV`` reuses the second source-operand field
  as immediate extension bits, giving an 11-bit unsigned immediate
  (``MOV rd, #imm11``).  Larger constants are built by the assembler
  pseudo-instruction ``LI`` out of single-word instructions.

Every instruction may use at most one data-memory *read* operand and at most
one data-memory *write* operand, matching the core's three memory ports
(instruction read, data read, data write — all usable in the same cycle).
``MOV [rd++], [rs++]`` is therefore a legal single-cycle memory-to-memory
copy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

# ---------------------------------------------------------------------------
# Machine parameters (paper Section III-A).
# ---------------------------------------------------------------------------

#: Number of working registers.
NUM_REGS = 16
#: Data word width in bits.
WORD_BITS = 16
#: Mask for a data word.
WORD_MASK = (1 << WORD_BITS) - 1
#: Instruction word width in bits.
INSTR_BITS = 24
#: Mask for an instruction word.
INSTR_MASK = (1 << INSTR_BITS) - 1
#: Bytes per instruction word (the paper counts program size in bytes:
#: the benchmark uses 552 B = 184 instruction words).
INSTR_BYTES = 3

#: Index register used by the ``[Rn + XR]`` addressing mode.
REG_XR = 13
#: Conventional link register (assembler alias only).
REG_LR = 14
#: Conventional stack pointer (assembler alias only).
REG_SP = 15

#: Maximum value of the 4-bit source immediate.
IMM4_MAX = 15
#: Maximum value of the 11-bit MOV immediate.
IMM11_MAX = (1 << 11) - 1
#: Width of branch target / offset field.
BRANCH_FIELD_BITS = 14
BRANCH_TARGET_MAX = (1 << BRANCH_FIELD_BITS) - 1


class Op(enum.IntEnum):
    """The 11 TamaRISC opcodes: 8 ALU + 1 data-move + 2 program-flow."""

    ADD = 0
    SUB = 1
    AND = 2
    OR = 3
    XOR = 4
    SLL = 5
    SRL = 6
    MUL = 7
    MOV = 8
    BR = 9
    HLT = 10


#: The eight ALU opcodes (3-operand, identical addressing-mode options).
ALU_OPS = frozenset(
    {Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SLL, Op.SRL, Op.MUL}
)


class SrcMode(enum.IntEnum):
    """Source-operand addressing modes (3-bit field).

    ``IND_*`` modes read data memory; the pre/post increment/decrement
    variants update the pointer register as a side effect.
    """

    REG = 0          #: register direct
    IMM = 1          #: 4-bit immediate (11-bit for MOV)
    IND = 2          #: ``[Rn]``
    IND_POSTINC = 3  #: ``[Rn++]``
    IND_POSTDEC = 4  #: ``[Rn--]``
    IND_PREINC = 5   #: ``[++Rn]``
    IND_PREDEC = 6   #: ``[--Rn]``
    IND_IDX = 7      #: ``[Rn + XR]`` — register indirect with offset


class DstMode(enum.IntEnum):
    """Destination-operand addressing modes (2-bit field)."""

    REG = 0          #: register direct
    IND = 1          #: ``[Rd]``
    IND_POSTINC = 2  #: ``[Rd++]``
    IND_IDX = 3      #: ``[Rd + XR]``


#: Source modes that perform a data-memory read.
SRC_MEM_MODES = frozenset(
    {
        SrcMode.IND,
        SrcMode.IND_POSTINC,
        SrcMode.IND_POSTDEC,
        SrcMode.IND_PREINC,
        SrcMode.IND_PREDEC,
        SrcMode.IND_IDX,
    }
)

#: Destination modes that perform a data-memory write.
DST_MEM_MODES = frozenset({DstMode.IND, DstMode.IND_POSTINC, DstMode.IND_IDX})


class Cond(enum.IntEnum):
    """Branch condition modes over the C/Z/N/V status flags.

    The paper specifies "15 different condition modes"; we provide ``AL``
    (always) plus the 14 flag-dependent modes below, i.e. 15 usable modes.
    Encoding 15 is reserved and raises on decode.
    """

    AL = 0   #: always
    EQ = 1   #: Z
    NE = 2   #: not Z
    CS = 3   #: C
    CC = 4   #: not C
    MI = 5   #: N
    PL = 6   #: not N
    VS = 7   #: V
    VC = 8   #: not V
    HI = 9   #: C and not Z (unsigned >)
    LS = 10  #: not C or Z (unsigned <=)
    GE = 11  #: N == V (signed >=)
    LT = 12  #: N != V (signed <)
    GT = 13  #: not Z and N == V (signed >)
    LE = 14  #: Z or N != V (signed <=)


class BranchMode(enum.IntEnum):
    """Branch target modes (paper: direct, register indirect, by offset)."""

    DIR = 0  #: absolute 14-bit instruction address
    REL = 1  #: signed 14-bit offset relative to the branch instruction
    IND = 2  #: target read from a register


@dataclass
class Flags:
    """Processor status flags: carry, zero, negative, overflow."""

    c: bool = False
    z: bool = False
    n: bool = False
    v: bool = False

    def copy(self) -> "Flags":
        return Flags(self.c, self.z, self.n, self.v)

    def as_tuple(self) -> tuple[bool, bool, bool, bool]:
        return (self.c, self.z, self.n, self.v)


def cond_holds(cond: int, flags: Flags) -> bool:
    """Evaluate a branch condition mode against the status flags."""
    c, z, n, v = flags.c, flags.z, flags.n, flags.v
    if cond == Cond.AL:
        return True
    if cond == Cond.EQ:
        return z
    if cond == Cond.NE:
        return not z
    if cond == Cond.CS:
        return c
    if cond == Cond.CC:
        return not c
    if cond == Cond.MI:
        return n
    if cond == Cond.PL:
        return not n
    if cond == Cond.VS:
        return v
    if cond == Cond.VC:
        return not v
    if cond == Cond.HI:
        return c and not z
    if cond == Cond.LS:
        return (not c) or z
    if cond == Cond.GE:
        return n == v
    if cond == Cond.LT:
        return n != v
    if cond == Cond.GT:
        return (not z) and n == v
    if cond == Cond.LE:
        return z or n != v
    raise ValueError(f"illegal condition mode {cond}")


@dataclass(frozen=True)
class Instruction:
    """A decoded TamaRISC instruction.

    For ALU ops and ``MOV``: ``dmode``/``dreg`` describe the destination,
    ``s1mode``/``s1val`` and ``s2mode``/``s2val`` the sources (``MOV`` only
    uses source 1; an immediate ``MOV`` stores the 11-bit value in
    ``s1val``).

    For ``BR``: ``cond`` holds the condition mode, ``bmode`` the target
    mode and ``target`` either the absolute address (``DIR``), the signed
    offset (``REL``) or the register number (``IND``).
    """

    op: Op
    dmode: DstMode = DstMode.REG
    dreg: int = 0
    s1mode: SrcMode = SrcMode.REG
    s1val: int = 0
    s2mode: SrcMode = SrcMode.REG
    s2val: int = 0
    cond: Cond = Cond.AL
    bmode: BranchMode = BranchMode.DIR
    target: int = 0

    # -- structural queries -------------------------------------------------

    def reads_mem(self) -> bool:
        """True if any source operand reads data memory."""
        if self.op == Op.BR or self.op == Op.HLT:
            return False
        if self.s1mode in SRC_MEM_MODES:
            return True
        return self.op != Op.MOV and self.s2mode in SRC_MEM_MODES

    def writes_mem(self) -> bool:
        """True if the destination operand writes data memory."""
        if self.op == Op.BR or self.op == Op.HLT:
            return False
        return self.dmode in DST_MEM_MODES

    def validate(self) -> None:
        """Check the port constraints (one D-read, one D-write).

        Raises ``ValueError`` on an instruction the hardware cannot issue.
        """
        if self.op in (Op.BR, Op.HLT):
            return
        n_reads = int(self.s1mode in SRC_MEM_MODES)
        if self.op != Op.MOV:
            n_reads += int(self.s2mode in SRC_MEM_MODES)
        if n_reads > 1:
            raise ValueError(
                "instruction needs two data-read ports; the core has one"
            )
        if self.op == Op.MOV and self.s1mode == SrcMode.IMM:
            if self.s1val > IMM11_MAX:
                raise ValueError("MOV immediate exceeds 11 bits")
        elif self.s1mode == SrcMode.IMM and self.s1val > IMM4_MAX:
            raise ValueError("source-1 immediate exceeds 4 bits")
        if self.op != Op.MOV:
            if self.s2mode == SrcMode.IMM and self.s2val > IMM4_MAX:
                raise ValueError("source-2 immediate exceeds 4 bits")


def alu_compute(op: int, a: int, b: int, flags: Flags) -> tuple[int, Flags]:
    """Evaluate one ALU operation on 16-bit operands.

    Returns ``(result, new_flags)``.  Flag semantics:

    * ``ADD``/``SUB`` update all four flags; ``SUB`` computes ``a - b`` with
      ARM-style carry-as-not-borrow.
    * ``AND``/``OR``/``XOR`` update Z/N and preserve C/V.
    * ``SLL``/``SRL`` update Z/N, set C to the last bit shifted out (0 for a
      zero shift amount) and preserve V; the shift amount is ``b & 15``.
    * ``MUL`` retires the low 16 bits, updates Z/N, sets V when the full
      product does not fit in 16 bits and preserves C.
    """
    a &= WORD_MASK
    b &= WORD_MASK
    c, z, n, v = flags.c, flags.z, flags.n, flags.v
    if op == Op.ADD:
        full = a + b
        res = full & WORD_MASK
        c = full > WORD_MASK
        v = bool(~(a ^ b) & (a ^ res) & 0x8000)
    elif op == Op.SUB:
        full = a - b
        res = full & WORD_MASK
        c = a >= b
        v = bool((a ^ b) & (a ^ res) & 0x8000)
    elif op == Op.AND:
        res = a & b
    elif op == Op.OR:
        res = a | b
    elif op == Op.XOR:
        res = a ^ b
    elif op == Op.SLL:
        sh = b & 15
        res = (a << sh) & WORD_MASK
        c = bool((a >> (WORD_BITS - sh)) & 1) if sh else False
    elif op == Op.SRL:
        sh = b & 15
        res = (a >> sh) & WORD_MASK
        c = bool((a >> (sh - 1)) & 1) if sh else False
    elif op == Op.MUL:
        full = a * b
        res = full & WORD_MASK
        v = full > WORD_MASK
    else:
        raise ValueError(f"not an ALU opcode: {op}")
    z = res == 0
    n = bool(res & 0x8000)
    return res, Flags(c, z, n, v)


def to_signed(word: int) -> int:
    """Interpret a 16-bit word as a signed integer."""
    word &= WORD_MASK
    return word - 0x10000 if word & 0x8000 else word


def to_word(value: int) -> int:
    """Truncate a Python integer to a 16-bit word."""
    return value & WORD_MASK
