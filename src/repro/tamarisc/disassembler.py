"""Disassembler for TamaRISC instruction words.

Produces text in the same syntax the assembler accepts, so that
``assemble(disassemble(word)) == word`` (round-trip property, tested with
hypothesis).
"""

from __future__ import annotations

from repro.tamarisc.encoding import decode
from repro.tamarisc.isa import (
    BranchMode,
    Cond,
    DstMode,
    Instruction,
    Op,
    SrcMode,
)
from repro.tamarisc.program import Program

_OP_MNEMONICS = {
    Op.ADD: "add",
    Op.SUB: "sub",
    Op.AND: "and",
    Op.OR: "or",
    Op.XOR: "xor",
    Op.SLL: "sll",
    Op.SRL: "srl",
    Op.MUL: "mul",
    Op.MOV: "mov",
}


def _reg(index: int) -> str:
    return f"r{index}"


def _src_text(mode: SrcMode, value: int) -> str:
    if mode == SrcMode.REG:
        return _reg(value)
    if mode == SrcMode.IMM:
        return f"#{value}"
    if mode == SrcMode.IND:
        return f"[{_reg(value)}]"
    if mode == SrcMode.IND_POSTINC:
        return f"[{_reg(value)}++]"
    if mode == SrcMode.IND_POSTDEC:
        return f"[{_reg(value)}--]"
    if mode == SrcMode.IND_PREINC:
        return f"[++{_reg(value)}]"
    if mode == SrcMode.IND_PREDEC:
        return f"[--{_reg(value)}]"
    return f"[{_reg(value)}+xr]"


def _dst_text(mode: DstMode, reg: int) -> str:
    if mode == DstMode.REG:
        return _reg(reg)
    if mode == DstMode.IND:
        return f"[{_reg(reg)}]"
    if mode == DstMode.IND_POSTINC:
        return f"[{_reg(reg)}++]"
    return f"[{_reg(reg)}+xr]"


def disassemble_instruction(instr: Instruction) -> str:
    """Render one decoded instruction as assembler text."""
    if instr.op == Op.HLT:
        return "hlt"
    if instr.op == Op.BR:
        cond = instr.cond.name.lower()
        if instr.bmode == BranchMode.DIR:
            return f"br {cond}, {instr.target}"
        if instr.bmode == BranchMode.REL:
            sign = "+" if instr.target >= 0 else "-"
            return f"br {cond}, pc{sign}{abs(instr.target)}"
        return f"br {cond}, {_reg(instr.target)}"
    mnemonic = _OP_MNEMONICS[instr.op]
    dst = _dst_text(instr.dmode, instr.dreg)
    src1 = _src_text(instr.s1mode, instr.s1val)
    if instr.op == Op.MOV:
        return f"{mnemonic} {dst}, {src1}"
    src2 = _src_text(instr.s2mode, instr.s2val)
    return f"{mnemonic} {dst}, {src1}, {src2}"


def disassemble(word: int) -> str:
    """Disassemble a 24-bit instruction word."""
    return disassemble_instruction(decode(word))


def disassemble_program(program: Program) -> str:
    """Produce a listing of a whole program with addresses and labels."""
    labels_at: dict[int, list[str]] = {}
    for name, address in sorted(program.symbols.items()):
        labels_at.setdefault(address, []).append(name)
    lines = []
    for address, word in enumerate(program.words):
        for label in labels_at.get(address, []):
            lines.append(f"{label}:")
        text = disassemble(word)
        lines.append(f"    {address:#06x}: {word:06x}  {text}")
    return "\n".join(lines)
