"""Decode-cached dispatch table: one specialised handler per instruction.

The cycle-stepped executors (:mod:`repro.tamarisc.iss` and
:mod:`repro.platform.multicore`) interpret every instruction through the
generic operand walk of :class:`~repro.tamarisc.cpu.Core` — a scratch
register copy, per-operand mode dispatch and a :class:`Flags` allocation
per ALU result.  That genericity costs microseconds per retired
instruction and dominates simulator wall-clock.

This module compiles a decoded program once into a list of
:class:`CompiledInstruction` handlers.  Each handler carries two
closures specialised at compile time on the instruction's opcode,
addressing modes and register numbers:

* ``preview(regs) -> (dread_addr, dwrite_addr)`` — the effective
  data-memory addresses the instruction will use, *without* mutating
  architectural state (the fast-path analogue of
  :meth:`Core.data_requests`);
* ``commit(core, dread_value) -> store`` — retire the instruction
  exactly like :meth:`Core.execute`: operand side effects, ALU result,
  flags, PC and the ``(addr, value)`` store tuple (or ``None``).

Semantic equivalence with the generic walk is the load-bearing property:
the differential suites in ``tests/platform`` and ``tests/tamarisc``
assert bit-identical architectural outcomes between the dispatch path
and the reference interpreters over the ECG workload and a
constrained-random program corpus.  Instructions outside the
single-read/single-write port contract (never produced by the assembler)
fall back to the generic :class:`Core` methods rather than guessing.
"""

from __future__ import annotations

from repro.tamarisc.cpu import Core, PC_MASK
from repro.tamarisc.isa import (
    ALU_OPS,
    BranchMode,
    Cond,
    DstMode,
    Instruction,
    Op,
    REG_XR,
    SRC_MEM_MODES,
    SrcMode,
    WORD_MASK,
)

_M = WORD_MASK

#: Pointer delta applied by each memory source mode (compile-time).
_SRC_DELTA = {
    SrcMode.IND: 0,
    SrcMode.IND_POSTINC: 1,
    SrcMode.IND_POSTDEC: -1,
    SrcMode.IND_PREINC: 1,
    SrcMode.IND_PREDEC: -1,
    SrcMode.IND_IDX: 0,
}
_SRC_PRE = frozenset({SrcMode.IND_PREINC, SrcMode.IND_PREDEC})


class CompiledInstruction:
    """One instruction's specialised fast-path handlers.

    ``preview`` is ``None`` when the instruction touches no data memory
    (pure ALU/branch/halt), letting callers skip the data-port phase
    entirely.  ``reads_mem``/``writes_mem`` mirror
    :meth:`Instruction.reads_mem`/:meth:`Instruction.writes_mem`.
    """

    __slots__ = ("instr", "preview", "commit", "reads_mem", "writes_mem")

    def __init__(self, instr: Instruction, preview, commit,
                 reads_mem: bool, writes_mem: bool):
        self.instr = instr
        self.preview = preview
        self.commit = commit
        self.reads_mem = reads_mem
        self.writes_mem = writes_mem


def compile_program(decoded: list[Instruction]) -> list[CompiledInstruction]:
    """Compile a decoded program into its dispatch table."""
    return [compile_instruction(instr) for instr in decoded]


def compile_instruction(instr: Instruction) -> CompiledInstruction:
    """Build the specialised handlers for one decoded instruction."""
    op = instr.op
    if op == Op.HLT:
        return CompiledInstruction(instr, None, _commit_hlt, False, False)
    if op == Op.BR:
        return CompiledInstruction(instr, None, _compile_branch(instr),
                                   False, False)

    reads = instr.reads_mem()
    writes = instr.writes_mem()
    n_reads = int(instr.s1mode in SRC_MEM_MODES)
    if op != Op.MOV:
        n_reads += int(instr.s2mode in SRC_MEM_MODES)
    if n_reads > 1:
        # Illegal dual-read instruction: defer to the generic core, which
        # raises the same diagnostics the cycle-stepped path would.
        return CompiledInstruction(instr, _generic_preview(instr),
                                   _generic_commit(instr), reads, writes)

    preview = _compile_preview(instr) if (reads or writes) else None
    commit = _compile_commit(instr)
    return CompiledInstruction(instr, preview, commit, reads, writes)


# ---------------------------------------------------------------------------
# Program flow.
# ---------------------------------------------------------------------------

def _commit_hlt(core, value):
    core.halted = True
    core.retired += 1
    return None


def _compile_branch(instr: Instruction):
    cond = instr.cond
    bmode = instr.bmode
    target = instr.target
    if bmode == BranchMode.DIR:
        taken_pc = target & PC_MASK

        def taken(core):
            core.pc = taken_pc
    elif bmode == BranchMode.REL:
        def taken(core):
            core.pc = (core.pc + target) & PC_MASK
    else:  # BranchMode.IND
        def taken(core):
            core.pc = core.regs[target] & PC_MASK

    if cond == Cond.AL:
        def commit(core, value):
            taken(core)
            core.retired += 1
            return None
        return commit

    holds = _COND_FNS[cond]

    def commit(core, value):
        if holds(core.flags):
            taken(core)
        else:
            core.pc = (core.pc + 1) & PC_MASK
        core.retired += 1
        return None
    return commit


#: One closure per flag-dependent condition mode (Cond.AL handled above).
_COND_FNS = {
    Cond.EQ: lambda f: f.z,
    Cond.NE: lambda f: not f.z,
    Cond.CS: lambda f: f.c,
    Cond.CC: lambda f: not f.c,
    Cond.MI: lambda f: f.n,
    Cond.PL: lambda f: not f.n,
    Cond.VS: lambda f: f.v,
    Cond.VC: lambda f: not f.v,
    Cond.HI: lambda f: f.c and not f.z,
    Cond.LS: lambda f: (not f.c) or f.z,
    Cond.GE: lambda f: f.n == f.v,
    Cond.LT: lambda f: f.n != f.v,
    Cond.GT: lambda f: (not f.z) and f.n == f.v,
    Cond.LE: lambda f: f.z or f.n != f.v,
}


# ---------------------------------------------------------------------------
# Operand access closures.
# ---------------------------------------------------------------------------

def _compile_source(mode: SrcMode, val: int):
    """Value getter ``get(regs, dread_value)`` with pointer side effects.

    Mirrors :meth:`Core._source_value`: memory modes apply their pointer
    update and then consume the loaded word.
    """
    if mode == SrcMode.REG:
        return lambda regs, value: regs[val]
    if mode == SrcMode.IMM:
        return lambda regs, value: val
    if mode in (SrcMode.IND, SrcMode.IND_IDX):
        return lambda regs, value: value & _M
    if mode in (SrcMode.IND_POSTINC, SrcMode.IND_PREINC):
        def get(regs, value):
            regs[val] = (regs[val] + 1) & _M
            return value & _M
        return get

    # IND_POSTDEC / IND_PREDEC
    def get(regs, value):
        regs[val] = (regs[val] - 1) & _M
        return value & _M
    return get


def _compile_dest(instr: Instruction):
    """Result writer ``put(regs, result) -> store`` (after side effects)."""
    dreg = instr.dreg
    dmode = instr.dmode
    if dmode == DstMode.REG:
        def put(regs, result):
            regs[dreg] = result
            return None
    elif dmode == DstMode.IND:
        def put(regs, result):
            return (regs[dreg], result)
    elif dmode == DstMode.IND_POSTINC:
        def put(regs, result):
            addr = regs[dreg]
            regs[dreg] = (addr + 1) & _M
            return (addr, result)
    else:  # DstMode.IND_IDX
        def put(regs, result):
            return ((regs[dreg] + regs[REG_XR]) & _M, result)
    return put


# ---------------------------------------------------------------------------
# Commit compilation.
# ---------------------------------------------------------------------------

def _compile_commit(instr: Instruction):
    op = instr.op
    get1 = _compile_source(instr.s1mode, instr.s1val)
    put = _compile_dest(instr)

    if op == Op.MOV:
        def commit(core, value):
            regs = core.regs
            store = put(regs, get1(regs, value))
            core.pc = (core.pc + 1) & PC_MASK
            core.retired += 1
            return store
        return commit

    get2 = _compile_source(instr.s2mode, instr.s2val)
    if op == Op.ADD:
        def commit(core, value):
            regs = core.regs
            a = get1(regs, value)
            b = get2(regs, value)
            full = a + b
            res = full & _M
            flags = core.flags
            flags.c = full > _M
            flags.v = ~(a ^ b) & (a ^ res) & 0x8000 != 0
            flags.z = res == 0
            flags.n = res & 0x8000 != 0
            store = put(regs, res)
            core.pc = (core.pc + 1) & PC_MASK
            core.retired += 1
            return store
    elif op == Op.SUB:
        def commit(core, value):
            regs = core.regs
            a = get1(regs, value)
            b = get2(regs, value)
            res = (a - b) & _M
            flags = core.flags
            flags.c = a >= b
            flags.v = (a ^ b) & (a ^ res) & 0x8000 != 0
            flags.z = res == 0
            flags.n = res & 0x8000 != 0
            store = put(regs, res)
            core.pc = (core.pc + 1) & PC_MASK
            core.retired += 1
            return store
    elif op in (Op.AND, Op.OR, Op.XOR):
        combine = {Op.AND: lambda a, b: a & b,
                   Op.OR: lambda a, b: a | b,
                   Op.XOR: lambda a, b: a ^ b}[op]

        def commit(core, value):
            regs = core.regs
            res = combine(get1(regs, value), get2(regs, value))
            flags = core.flags
            flags.z = res == 0
            flags.n = res & 0x8000 != 0
            store = put(regs, res)
            core.pc = (core.pc + 1) & PC_MASK
            core.retired += 1
            return store
    elif op == Op.SLL:
        def commit(core, value):
            regs = core.regs
            a = get1(regs, value)
            sh = get2(regs, value) & 15
            res = (a << sh) & _M
            flags = core.flags
            flags.c = bool((a >> (16 - sh)) & 1) if sh else False
            flags.z = res == 0
            flags.n = res & 0x8000 != 0
            store = put(regs, res)
            core.pc = (core.pc + 1) & PC_MASK
            core.retired += 1
            return store
    elif op == Op.SRL:
        def commit(core, value):
            regs = core.regs
            a = get1(regs, value)
            sh = get2(regs, value) & 15
            res = (a >> sh) & _M
            flags = core.flags
            flags.c = bool((a >> (sh - 1)) & 1) if sh else False
            flags.z = res == 0
            flags.n = res & 0x8000 != 0
            store = put(regs, res)
            core.pc = (core.pc + 1) & PC_MASK
            core.retired += 1
            return store
    elif op == Op.MUL:
        def commit(core, value):
            regs = core.regs
            full = get1(regs, value) * get2(regs, value)
            res = full & _M
            flags = core.flags
            flags.v = full > _M
            flags.z = res == 0
            flags.n = res & 0x8000 != 0
            store = put(regs, res)
            core.pc = (core.pc + 1) & PC_MASK
            core.retired += 1
            return store
    else:
        raise ValueError(f"cannot compile opcode {op!r}")
    return commit


# ---------------------------------------------------------------------------
# Preview compilation.
# ---------------------------------------------------------------------------

def _compile_preview(instr: Instruction):
    """Build ``preview(regs) -> (dread_addr, dwrite_addr)``.

    The returned closure replicates :meth:`Core._walk_addresses` without
    a scratch register copy: operand evaluation order is source 1,
    source 2, destination, with pointer side effects of earlier operands
    *virtually* visible to later ones (``MOV`` skips source 2).
    """
    op = instr.op
    src_mode, src_reg = None, None
    if instr.s1mode in SRC_MEM_MODES:
        src_mode, src_reg = instr.s1mode, instr.s1val
    elif op != Op.MOV and instr.s2mode in SRC_MEM_MODES:
        src_mode, src_reg = instr.s2mode, instr.s2val
    dst_mem = instr.dmode != DstMode.REG
    dmode, dreg = instr.dmode, instr.dreg

    if src_mode is None:
        # Write-only preview: no earlier side effects to account for.
        if dmode == DstMode.IND_IDX:
            return lambda regs: (None, (regs[dreg] + regs[REG_XR]) & _M)
        return lambda regs: (None, regs[dreg])

    delta = _SRC_DELTA[src_mode]
    pre = src_mode in _SRC_PRE
    idx = src_mode == SrcMode.IND_IDX
    p = src_reg

    if not dst_mem:
        # Read-only preview.
        if idx:
            return lambda regs: ((regs[p] + regs[REG_XR]) & _M, None)
        if pre:
            return lambda regs: ((regs[p] + delta) & _M, None)
        return lambda regs: (regs[p], None)

    # Read + write: the source's pointer update is visible to the
    # destination's address computation when the registers alias.
    def preview(regs):
        vp = regs[p]
        if pre:
            vp = (vp + delta) & _M
            dread = vp
        elif idx:
            dread = (vp + regs[REG_XR]) & _M
        else:
            dread = vp
            if delta:
                vp = (vp + delta) & _M
        base = vp if dreg == p else regs[dreg]
        if dmode == DstMode.IND_IDX:
            xr = vp if p == REG_XR else regs[REG_XR]
            return dread, (base + xr) & _M
        return dread, base
    return preview


# ---------------------------------------------------------------------------
# Generic fallbacks (illegal dual-read instructions only).
# ---------------------------------------------------------------------------

def _generic_preview(instr: Instruction):
    def preview(regs):
        scratch = list(regs)
        dread = None
        addr = Core._source_address(instr.s1mode, instr.s1val, scratch)
        if addr is not None:
            dread = addr
        if instr.op != Op.MOV:
            addr = Core._source_address(instr.s2mode, instr.s2val, scratch)
            if addr is not None:
                dread = addr
        return dread, Core._dest_address(instr, scratch)
    return preview


def _generic_commit(instr: Instruction):
    return lambda core, value: core.execute(instr, value)


#: ALU opcodes, re-exported for the engine's compile-time sanity checks.
COMPILED_ALU_OPS = ALU_OPS
