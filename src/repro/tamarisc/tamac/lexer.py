"""TamaC lexer."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.errors import ReproError


class CompileError(ReproError):
    """TamaC source is malformed or uses unsupported constructs."""

    def __init__(self, message, line=None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class TokenKind(enum.Enum):
    NUMBER = "number"
    IDENT = "ident"
    KEYWORD = "keyword"
    OP = "op"
    END = "end"


KEYWORDS = frozenset({"var", "func", "if", "else", "while", "return"})

#: Multi-character operators first so maximal munch works.
_OPERATORS = ("<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
              "+", "-", "*", "/", "%", "&", "|", "^", "~", "!",
              "<", ">", "=", "(", ")", "{", "}", "[", "]", ";", ",")

_TOKEN_RE = re.compile(
    r"\s*(?:(//[^\n]*|/\*.*?\*/)"
    r"|(0[xX][0-9a-fA-F]+|0[bB][01]+|\d+)"
    r"|'(\\?.)'"
    r"|([A-Za-z_][A-Za-z0-9_]*)"
    r"|(" + "|".join(re.escape(op) for op in _OPERATORS) + r"))",
    re.DOTALL,
)

_CHAR_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: object
    line: int

    def __repr__(self):
        return f"Token({self.kind.value}, {self.value!r}, line {self.line})"


def tokenize(source: str) -> list[Token]:
    """Tokenise TamaC source; raises :class:`CompileError` on bad input."""
    tokens: list[Token] = []
    index = 0
    while index < len(source):
        match = _TOKEN_RE.match(source, index)
        if not match or match.end() == index:
            remainder = source[index:]
            if not remainder.strip():
                break
            bad = remainder.lstrip()[0]
            raise CompileError(
                f"unexpected character {bad!r}",
                source.count("\n", 0, index + len(remainder)
                             - len(remainder.lstrip())) + 1)
        comment, number, char, ident, operator = match.groups()
        group = next(i for i, g in enumerate(match.groups(), start=1)
                     if g is not None)
        token_line = source.count("\n", 0, match.start(group)) + 1
        if comment:
            pass
        elif number is not None:
            tokens.append(Token(TokenKind.NUMBER, int(number, 0),
                                token_line))
        elif char is not None:
            if char.startswith("\\"):
                value = _CHAR_ESCAPES.get(char[1], ord(char[1]))
            else:
                value = ord(char)
            tokens.append(Token(TokenKind.NUMBER, value, token_line))
        elif ident is not None:
            kind = TokenKind.KEYWORD if ident in KEYWORDS \
                else TokenKind.IDENT
            tokens.append(Token(kind, ident, token_line))
        else:
            if operator in ("/", "%"):
                raise CompileError(
                    f"operator {operator!r} unsupported: TamaRISC has no "
                    "divider (use shifts)", token_line)
            tokens.append(Token(TokenKind.OP, operator, token_line))
        index = match.end()
    tokens.append(Token(TokenKind.END, None,
                        source.count("\n") + 1))
    return tokens
