"""TamaC — the custom C-like compiler of the paper's toolchain.

The paper's flow (Fig. 4) extends the Processor Designer tool chain "by a
custom C compiler ... [which] allows for easier benchmark development".
TamaC is that component for this reproduction: a small, fully tested
compiler from a C-like language to TamaRISC assembly, layered on the
assembler of :mod:`repro.tamarisc.assembler`.

Language summary (details in :mod:`repro.tamarisc.tamac.parser`)::

    var threshold = 40;          // 16-bit global (optional initialiser)
    var hist[16];                // 16-bit global array

    func clamp(x, lo, hi) {
        if (x < lo) { return lo; }
        if (x > hi) { return hi; }
        return x;
    }

    func main() {
        var i;
        i = 0;
        while (i < 16) {
            hist[i] = clamp(i * 3 - 8, 0, threshold);
            i = i + 1;
        }
        return;
    }

Semantics:

* every value is a 16-bit word; arithmetic wraps; comparisons are
  *signed* (they compile to the SUB-and-condition-mode idiom);
* operators: ``+ - * & | ^ << >>``, unary ``- ~ !``, comparisons,
  ``&&``/``||`` (evaluated without short-circuit, both sides normalised
  to 0/1 — documented deviation from C);
* there is no division operator: TamaRISC has no divider (the ISA's 8
  ALU ops are the paper's add/sub/shift/and/or/xor/multiply);
* functions are non-recursive (statically allocated frames — the core
  has no hardware stack and the target applications need none); the
  compiler rejects recursion, including mutual recursion, at compile
  time;
* globals and frames live in the core-private data window, so one
  compiled image runs on all eight cores with per-PID working data,
  exactly like the hand-written benchmark.

Use :func:`compile_source` for assembly text or :func:`compile_program`
for a loadable :class:`~repro.tamarisc.program.Program`.
"""

from repro.tamarisc.tamac.lexer import Token, TokenKind, tokenize
from repro.tamarisc.tamac.parser import parse
from repro.tamarisc.tamac.codegen import compile_program, compile_source

__all__ = [
    "Token",
    "TokenKind",
    "tokenize",
    "parse",
    "compile_source",
    "compile_program",
]
