"""TamaC parser: recursive descent to a small AST."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tamarisc.tamac.lexer import CompileError, Token, TokenKind, \
    tokenize


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Num:
    value: int
    line: int = 0


@dataclass(frozen=True)
class Var:
    name: str
    line: int = 0


@dataclass(frozen=True)
class Index:
    name: str
    index: object
    line: int = 0


@dataclass(frozen=True)
class Unary:
    op: str
    operand: object
    line: int = 0


@dataclass(frozen=True)
class Binary:
    op: str
    lhs: object
    rhs: object
    line: int = 0


@dataclass(frozen=True)
class Call:
    name: str
    args: tuple
    line: int = 0


@dataclass(frozen=True)
class Assign:
    target: object  # Var or Index
    expr: object
    line: int = 0


@dataclass(frozen=True)
class If:
    cond: object
    then: tuple
    orelse: tuple
    line: int = 0


@dataclass(frozen=True)
class While:
    cond: object
    body: tuple
    line: int = 0


@dataclass(frozen=True)
class Return:
    expr: object  # or None
    line: int = 0


@dataclass(frozen=True)
class ExprStmt:
    expr: object
    line: int = 0


@dataclass(frozen=True)
class VarDecl:
    name: str
    size: int | None  # None = scalar; int = array length
    init: object      # expression or None (globals: Num or None)
    line: int = 0


@dataclass(frozen=True)
class Function:
    name: str
    params: tuple
    body: tuple
    line: int = 0


@dataclass
class Module:
    globals: list[VarDecl] = field(default_factory=list)
    functions: dict[str, Function] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

#: Binary operators by precedence level, loosest first.
_PRECEDENCE = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*",),
)


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != TokenKind.END:
            self.pos += 1
        return token

    def accept_op(self, op: str) -> bool:
        token = self.peek()
        if token.kind == TokenKind.OP and token.value == op:
            self.next()
            return True
        return False

    def expect_op(self, op: str) -> None:
        token = self.next()
        if token.kind != TokenKind.OP or token.value != op:
            raise CompileError(f"expected {op!r}, found {token.value!r}",
                               token.line)

    def expect_ident(self) -> Token:
        token = self.next()
        if token.kind != TokenKind.IDENT:
            raise CompileError(f"expected identifier, found "
                               f"{token.value!r}", token.line)
        return token

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return token.kind == TokenKind.KEYWORD and token.value == word

    # -- grammar -------------------------------------------------------------

    def module(self) -> Module:
        module = Module()
        while self.peek().kind != TokenKind.END:
            if self.at_keyword("var"):
                module.globals.append(self.var_decl(top_level=True))
            elif self.at_keyword("func"):
                function = self.function()
                if function.name in module.functions:
                    raise CompileError(
                        f"duplicate function {function.name!r}",
                        function.line)
                module.functions[function.name] = function
            else:
                token = self.peek()
                raise CompileError(
                    f"expected 'var' or 'func', found {token.value!r}",
                    token.line)
        return module

    def var_decl(self, top_level: bool) -> VarDecl:
        line = self.next().line  # 'var'
        name = self.expect_ident().value
        size = None
        init = None
        if self.accept_op("["):
            size_token = self.next()
            if size_token.kind != TokenKind.NUMBER or size_token.value <= 0:
                raise CompileError("array size must be a positive literal",
                                   size_token.line)
            size = size_token.value
            self.expect_op("]")
        if self.accept_op("="):
            if size is not None:
                raise CompileError("array initialisers are not supported",
                                   line)
            init = self.expression()
            if top_level and not isinstance(init, Num):
                raise CompileError(
                    "global initialisers must be constants", line)
        self.expect_op(";")
        return VarDecl(name=name, size=size, init=init, line=line)

    def function(self) -> Function:
        line = self.next().line  # 'func'
        name = self.expect_ident().value
        self.expect_op("(")
        params = []
        if not self.accept_op(")"):
            while True:
                params.append(self.expect_ident().value)
                if self.accept_op(")"):
                    break
                self.expect_op(",")
        if len(set(params)) != len(params):
            raise CompileError(f"duplicate parameter in {name!r}", line)
        body = self.block()
        return Function(name=name, params=tuple(params), body=body,
                        line=line)

    def block(self) -> tuple:
        self.expect_op("{")
        statements = []
        while not self.accept_op("}"):
            if self.peek().kind == TokenKind.END:
                raise CompileError("unterminated block", self.peek().line)
            statements.append(self.statement())
        return tuple(statements)

    def statement(self):
        token = self.peek()
        if self.at_keyword("var"):
            return self.var_decl(top_level=False)
        if self.at_keyword("if"):
            self.next()
            self.expect_op("(")
            cond = self.expression()
            self.expect_op(")")
            then = self.block()
            orelse = ()
            if self.at_keyword("else"):
                self.next()
                orelse = self.block()
            return If(cond=cond, then=then, orelse=orelse, line=token.line)
        if self.at_keyword("while"):
            self.next()
            self.expect_op("(")
            cond = self.expression()
            self.expect_op(")")
            return While(cond=cond, body=self.block(), line=token.line)
        if self.at_keyword("return"):
            self.next()
            expr = None
            if not (self.peek().kind == TokenKind.OP
                    and self.peek().value == ";"):
                expr = self.expression()
            self.expect_op(";")
            return Return(expr=expr, line=token.line)
        # assignment or expression statement
        expr = self.expression()
        if self.accept_op("="):
            if not isinstance(expr, (Var, Index)):
                raise CompileError("assignment target must be a variable "
                                   "or array element", token.line)
            value = self.expression()
            self.expect_op(";")
            return Assign(target=expr, expr=value, line=token.line)
        self.expect_op(";")
        if not isinstance(expr, Call):
            raise CompileError(
                "expression statement must be a function call", token.line)
        return ExprStmt(expr=expr, line=token.line)

    # -- expressions ---------------------------------------------------------

    def expression(self, level: int = 0):
        if level >= len(_PRECEDENCE):
            return self.unary()
        expr = self.expression(level + 1)
        while True:
            token = self.peek()
            if token.kind == TokenKind.OP \
                    and token.value in _PRECEDENCE[level]:
                self.next()
                rhs = self.expression(level + 1)
                expr = Binary(op=token.value, lhs=expr, rhs=rhs,
                              line=token.line)
            else:
                return expr

    def unary(self):
        token = self.peek()
        if token.kind == TokenKind.OP and token.value in ("-", "~", "!"):
            self.next()
            return Unary(op=token.value, operand=self.unary(),
                         line=token.line)
        return self.primary()

    def primary(self):
        token = self.next()
        if token.kind == TokenKind.NUMBER:
            return Num(value=token.value, line=token.line)
        if token.kind == TokenKind.OP and token.value == "(":
            expr = self.expression()
            self.expect_op(")")
            return expr
        if token.kind == TokenKind.IDENT:
            if self.accept_op("("):
                args = []
                if not self.accept_op(")"):
                    while True:
                        args.append(self.expression())
                        if self.accept_op(")"):
                            break
                        self.expect_op(",")
                return Call(name=token.value, args=tuple(args),
                            line=token.line)
            if self.accept_op("["):
                index = self.expression()
                self.expect_op("]")
                return Index(name=token.value, index=index,
                             line=token.line)
            return Var(name=token.value, line=token.line)
        raise CompileError(f"unexpected token {token.value!r}", token.line)


def parse(source: str) -> Module:
    """Parse TamaC source into a :class:`Module`."""
    return _Parser(tokenize(source)).module()
