"""Program and data images for the TamaRISC platforms.

A :class:`Program` is an ordered list of 24-bit instruction words plus a
symbol table, as produced by the assembler.  The paper counts program size
in bytes at 3 bytes per 24-bit word (the reference benchmark occupies
552 B = 184 words).

A :class:`DataImage` is the initial data-memory content in the *logical*
(pre-MMU) address space: one map for the shared section (identical for all
cores, e.g. the CS random vector and Huffman LUTs) and one map per core for
the private window (e.g. each lead's input samples).  The platform loader
translates logical addresses through the MMU of the target architecture to
fill the physical banks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.tamarisc.encoding import decode
from repro.tamarisc.isa import INSTR_BYTES, INSTR_MASK, WORD_MASK, Instruction


@dataclass
class Program:
    """An assembled TamaRISC program.

    Attributes:
        words: the 24-bit instruction words, index = instruction address.
        symbols: label name -> instruction address.
        source_map: instruction address -> source line number (1-based),
            when the program came from assembly text.
        entry: initial program counter.
    """

    words: list[int]
    symbols: dict[str, int] = field(default_factory=dict)
    source_map: dict[int, int] = field(default_factory=dict)
    entry: int = 0

    def __post_init__(self) -> None:
        for index, word in enumerate(self.words):
            if not 0 <= word <= INSTR_MASK:
                raise SimulationError(
                    f"program word {index} = {word:#x} exceeds 24 bits"
                )

    def __len__(self) -> int:
        return len(self.words)

    @property
    def size_bytes(self) -> int:
        """Program footprint in bytes (3 bytes per instruction word)."""
        return len(self.words) * INSTR_BYTES

    def decoded(self) -> list[Instruction]:
        """Decode every word once (the simulators cache this list)."""
        return [decode(word) for word in self.words]

    def symbol(self, name: str) -> int:
        if name not in self.symbols:
            raise KeyError(f"unknown symbol {name!r}")
        return self.symbols[name]


@dataclass
class DataImage:
    """Initial data-memory content in logical (pre-MMU) addresses.

    Attributes:
        shared: logical shared-section word address -> 16-bit value; loaded
            once, visible identically to all cores.
        private: core id -> (logical private-window word address -> value);
            loaded through that core's MMU mapping.
    """

    shared: dict[int, int] = field(default_factory=dict)
    private: dict[int, dict[int, int]] = field(default_factory=dict)

    def set_shared_block(self, base: int, values) -> None:
        """Place consecutive 16-bit words at ``base`` in the shared section."""
        for offset, value in enumerate(values):
            self.shared[base + offset] = value & WORD_MASK

    def set_private_block(self, core: int, base: int, values) -> None:
        """Place consecutive words at ``base`` in ``core``'s private window."""
        store = self.private.setdefault(core, {})
        for offset, value in enumerate(values):
            store[base + offset] = value & WORD_MASK

    @property
    def shared_bytes(self) -> int:
        """Footprint of the shared section in bytes (2 bytes per word)."""
        return 2 * len(self.shared)

    def private_bytes(self, core: int) -> int:
        """Footprint of one core's initialised private words in bytes."""
        return 2 * len(self.private.get(core, {}))
