"""repro — reproduction of Dogan et al., *Multi-Core Architecture Design for
Ultra-Low-Power Wearable Health Monitoring Systems* (DATE 2012).

The package provides, built from scratch:

* :mod:`repro.tamarisc` — the TamaRISC custom 16-bit RISC core: ISA,
  24-bit instruction encoding, assembler/disassembler, and a cycle-accurate
  core model with three memory ports.
* :mod:`repro.memory` — multi-banked instruction/data memories, power
  gating, and the PID-based MMU of the proposed architecture.
* :mod:`repro.interconnect` — Mesh-of-Trees crossbar interconnects with
  round-robin arbitration and read broadcast.
* :mod:`repro.platform` — the three evaluated 8-core platforms
  (``mc-ref``, ``ulpmc-int``, ``ulpmc-bank``) and the cycle-stepped
  multi-core simulator.
* :mod:`repro.power` — the calibrated 90 nm low-leakage technology,
  power, area and DVFS models used for all paper figures.
* :mod:`repro.biosignal` — synthetic multi-lead ECG, sparse-binary
  compressed sensing (with OMP reconstruction) and canonical Huffman coding.
* :mod:`repro.kernels` — the actual TamaRISC assembly benchmark (CS +
  Huffman, one ECG lead per core) executed on the simulated platforms.
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro.platform import build_platform
    from repro.kernels import build_benchmark

    bench = build_benchmark(seed=1)
    result = build_platform("ulpmc-bank").run(bench)
    print(result.stats.total_cycles)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
