"""Voltage/frequency scaling policy (paper Section IV-C2).

"Both voltage and frequency scaling are applied for workloads higher than
10 MOps/s, however for workloads lower than this, only frequency scaling
is used and the supply voltages are kept at the minimum level."

With the technology model this policy is simply: run at the lowest clock
that meets the workload, at the lowest supply that meets that clock — the
supply saturates at ``v_min`` exactly at the ~10 MOps/s knee.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.power.technology import TechnologyModel

#: The paper's energy-efficient synthesis constraint (Section IV-B).
NOMINAL_PERIOD_NS = 12.0


@dataclass(frozen=True)
class OperatingPoint:
    """One (workload, frequency, voltage) solution."""

    workload_ops: float
    frequency_hz: float
    voltage: float

    @property
    def period_ns(self) -> float:
        return 1e9 / self.frequency_hz


class DVFSPolicy:
    """Minimum-power operating points for one synthesised design."""

    def __init__(self, technology: TechnologyModel,
                 period_ns: float = NOMINAL_PERIOD_NS):
        if period_ns <= 0:
            raise ConfigurationError("clock period must be positive")
        self.technology = technology
        self.period_ns = period_ns
        self.f_nominal_hz = 1e9 / period_ns

    @property
    def f_min_voltage_hz(self) -> float:
        """Maximum clock at the minimum supply (the DVFS knee)."""
        return self.f_nominal_hz * self.technology.min_speed_factor

    def max_workload_ops(self, ops_per_cycle: float) -> float:
        """Peak throughput at nominal voltage."""
        return self.f_nominal_hz * ops_per_cycle

    def operating_point(self, workload_ops: float,
                        ops_per_cycle: float) -> OperatingPoint:
        """Lowest (V, f) meeting ``workload_ops`` useful operations/s.

        ``ops_per_cycle`` is the architecture's delivered operations per
        clock cycle for the target application (mc-ref reference
        operations divided by this architecture's cycles).  Raises
        :class:`~repro.errors.ConfigurationError` if the design cannot
        reach the workload even at nominal supply.
        """
        if workload_ops <= 0:
            raise ConfigurationError("workload must be positive")
        f_required = workload_ops / ops_per_cycle
        speed = f_required / self.f_nominal_hz
        if speed > 1.0 + 1e-9:
            raise ConfigurationError(
                f"workload {workload_ops:.3g} Ops/s exceeds the design's "
                f"peak {self.max_workload_ops(ops_per_cycle):.3g} Ops/s")
        voltage = self.technology.voltage_for_speed(min(speed, 1.0))
        return OperatingPoint(workload_ops=workload_ops,
                              frequency_hz=f_required, voltage=voltage)
