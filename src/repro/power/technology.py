"""90 nm low-leakage technology model: delay, dynamic and leakage scaling.

Anchors (paper Section IV):

* nominal supply 1.2 V; voltage scaling is limited to the transistor
  threshold "to avoid performance variability and functional failure
  issues occurring mainly at sub-threshold voltages" — we stop at
  ``v_min = 0.5 V`` with a device threshold ``v_t = 0.4 V``;
* "the power values at scaled voltages are calculated regarding the fact
  that the power decreases with the square of the supply voltage" —
  ``dynamic_scale(V) = (V / 1.2)**2`` is the paper's own rule;
* at nominal voltage the designs reach 664.5 MOps/s, and "when the
  supply voltages reach the threshold level [they] still accomplish
  around 10 MOps/s" — the alpha-power-law exponent is solved so the
  frequency ratio at ``v_min`` is exactly 10 / 664.5.

Delay follows the alpha-power law (Sakurai-Newton):
``f(V) ∝ (V - v_t)**alpha / V``.  Leakage current grows with supply
(DIBL); we use the same quadratic scaling the paper applies to power,
``leakage_scale(V) = (V / 1.2)**2``, which keeps the Fig. 7/8 low-
workload ratios exact by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy.optimize import brentq

from repro.errors import CalibrationError

#: Paper anchor: throughput ratio between threshold and nominal supply.
THRESHOLD_SPEED_RATIO = 10.0 / 664.5


@dataclass(frozen=True)
class TechNode:
    """ITRS-style constant-field scaling factors relative to 90 nm.

    The paper's platform is synthesised in a 90 nm low-leakage library;
    the design-space explorer projects the same netlist onto smaller
    nodes with the classic scaling rules: cell area shrinks roughly with
    the square of the feature-size ratio, dynamic energy with the
    capacitance and supply reduction, and gate delay improves — while
    *leakage density worsens* below 65 nm (thinner oxides, lower V_t),
    which is exactly the trade-off that makes node choice a real axis
    for an always-on wearable instead of a free win.
    """

    node_nm: int
    area_scale: float       #: total area relative to 90 nm (same netlist)
    dynamic_scale: float    #: dynamic energy per event relative to 90 nm
    leakage_scale: float    #: leakage power relative to 90 nm
    speed_scale: float      #: maximum clock relative to 90 nm

    def __post_init__(self):
        for name in ("area_scale", "dynamic_scale", "leakage_scale",
                     "speed_scale"):
            if getattr(self, name) <= 0:
                raise CalibrationError(
                    f"{name} must be positive for a {self.node_nm} nm node")


#: Scaling table for the nodes the sweep may project onto.  Smaller
#: nodes never increase area or dynamic energy and never lose speed;
#: leakage density grows below 65 nm (the ITRS low-power projections).
TECH_NODES = {
    90: TechNode(90, area_scale=1.0, dynamic_scale=1.0,
                 leakage_scale=1.0, speed_scale=1.0),
    65: TechNode(65, area_scale=0.52, dynamic_scale=0.70,
                 leakage_scale=1.00, speed_scale=1.25),
    45: TechNode(45, area_scale=0.26, dynamic_scale=0.49,
                 leakage_scale=1.15, speed_scale=1.50),
    32: TechNode(32, area_scale=0.13, dynamic_scale=0.35,
                 leakage_scale=1.30, speed_scale=1.80),
}


def tech_node(node_nm: int) -> TechNode:
    """Scaling factors for one technology node (90/65/45/32 nm)."""
    try:
        return TECH_NODES[node_nm]
    except KeyError:
        raise CalibrationError(
            f"unknown technology node {node_nm} nm; scaling tables exist "
            f"for {sorted(TECH_NODES)}") from None


@dataclass(frozen=True)
class TechnologyModel:
    """Voltage-dependent speed and power scaling for 90 nm LL."""

    v_nom: float = 1.2
    v_min: float = 0.5
    v_t: float = 0.4
    alpha: float = 2.0

    def __post_init__(self):
        if not self.v_t < self.v_min < self.v_nom:
            raise CalibrationError(
                "need v_t < v_min < v_nom for a meaningful scaling range")

    # -- delay ------------------------------------------------------------------

    def speed_factor(self, v: float) -> float:
        """Maximum clock frequency at supply ``v``, relative to ``v_nom``."""
        if v <= self.v_t:
            return 0.0
        drive = (v - self.v_t) ** self.alpha / v
        nominal = (self.v_nom - self.v_t) ** self.alpha / self.v_nom
        return drive / nominal

    @property
    def min_speed_factor(self) -> float:
        """Speed at the lowest allowed supply (the threshold knee)."""
        return self.speed_factor(self.v_min)

    def voltage_for_speed(self, speed: float) -> float:
        """Lowest supply achieving a relative speed ``speed``.

        Speeds at or below the threshold knee return ``v_min`` (below the
        knee the paper scales frequency only); speeds above 1 raise.
        """
        if speed > 1.0 + 1e-12:
            raise CalibrationError(
                f"speed {speed} exceeds the design's nominal frequency")
        if speed <= self.min_speed_factor:
            return self.v_min
        if speed >= 1.0:
            return self.v_nom
        return brentq(lambda v: self.speed_factor(v) - speed,
                      self.v_min, self.v_nom, xtol=1e-9)

    # -- power scaling -------------------------------------------------------------

    def dynamic_scale(self, v: float) -> float:
        """Dynamic energy per event relative to nominal supply (V² rule)."""
        return (v / self.v_nom) ** 2

    def leakage_scale(self, v: float) -> float:
        """Leakage power relative to nominal supply."""
        return (v / self.v_nom) ** 2


def make_technology(threshold_speed_ratio: float = THRESHOLD_SPEED_RATIO,
                    v_nom: float = 1.2, v_min: float = 0.5,
                    v_t: float = 0.4) -> TechnologyModel:
    """Build the technology model, solving ``alpha`` for the paper anchor.

    ``alpha`` is chosen so that ``speed_factor(v_min)`` equals
    ``threshold_speed_ratio`` (10 MOps/s out of 664.5 MOps/s).
    """
    if not 0.0 < threshold_speed_ratio < 1.0:
        raise CalibrationError("threshold speed ratio must be in (0, 1)")

    def mismatch(alpha: float) -> float:
        model = TechnologyModel(v_nom=v_nom, v_min=v_min, v_t=v_t,
                                alpha=alpha)
        return model.speed_factor(v_min) - threshold_speed_ratio

    try:
        alpha = brentq(mismatch, 0.5, 6.0, xtol=1e-10)
    except ValueError as exc:
        raise CalibrationError(
            "could not solve the alpha-power exponent for the requested "
            f"threshold speed ratio {threshold_speed_ratio}") from exc
    return TechnologyModel(v_nom=v_nom, v_min=v_min, v_t=v_t, alpha=alpha)
