"""Per-event energies and the leakage budget, calibrated to the paper.

Dynamic energies (Table II domain)
----------------------------------

Table II gives the dynamic power of every component at 8 MOps/s and 1.2 V
(i.e. a 1 MHz clock on 8 cores).  Dividing each component's power by the
*simulated* per-cycle activity of that component yields a per-event energy:

* ``core_instr`` comes out at 22.5 pJ — exactly the paper's Section IV-C1
  "15.6 pJ/Op at 1.0 V" after V² scaling to 1.2 V, which cross-validates
  the whole procedure;
* ``im_access`` / ``dm_access`` are bank-access energies (the IM power of
  the proposed design is then *predicted*, not fitted: the simulator's
  broadcast-merged access count times ``im_access`` reproduces the
  0.05 mW of Table II);
* the proposed design's higher core power ("signal activity increase
  caused by the I-Xbar") is modelled as a per-instruction fetch-path
  energy with a component proportional to the I-Xbar's output-bank
  transition rate — this is what makes ulpmc-bank cheaper than ulpmc-int
  (single live bank, fewer output-net toggles), reproducing the paper's
  Table II discussion;
* the same transition term calibrates the I-Xbar energies (0.03 mW int vs
  0.01 mW bank).

Post-layout factor
------------------

The paper's Table II / Section IV-C1 numbers (80 pJ per operation,
system-level) and its Figs. 5-8 (about 620 pJ per operation, e.g.
397.4 mW at 636.9 MOps/s) differ by a constant factor of about eight.
This is consistent with Table II reporting cell-level dynamic power and
the figures reporting full post-layout power including the clock and
signal wiring at speed.  We therefore carry one calibrated
``post_layout_factor`` applied uniformly when reproducing the figures; it
cancels from every ratio, saving percentage and crossover the paper
reports.  See EXPERIMENTS.md for the discussion.

Leakage budget (Fig. 8 domain)
------------------------------

* ulpmc-bank gates 7 of its 8 IM banks and leaks 38.8 % less than mc-ref
  (paper abstract and Fig. 8) → the IM's share of total leakage is
  0.388 / (7/8) = 44.3 %;
* logic leaks in proportion to its gate count (Table I areas), about 9 %;
  the data memory takes the remainder;
* the absolute level is set by the paper's statement that leakage and
  dynamic power cross "at around 50 kOps/s" at the minimum voltage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CalibrationError

# Table II targets, in mW at 8 MOps/s (1 MHz clock) and 1.2 V.
TABLE2_MCREF = {"cores": 0.18, "im": 0.36, "dm": 0.07, "dxbar": 0.02,
                "clock": 0.03}
TABLE2_INT = {"cores": 0.25, "im": 0.05, "dm": 0.06, "dxbar": 0.03,
              "ixbar": 0.03, "clock": 0.04}
TABLE2_BANK = {"cores": 0.21, "im": 0.05, "dm": 0.06, "dxbar": 0.02,
               "ixbar": 0.01, "clock": 0.04}

#: Clock frequency of the Table II operating point (8 MOps/s / 8 cores).
TABLE2_FREQUENCY_HZ = 1.0e6

#: Leakage share of the instruction memory in mc-ref, from the 38.8 %
#: saving obtained by gating 7 of 8 banks: 0.388 / (7/8).
IM_LEAKAGE_SHARE = 0.388 / (7.0 / 8.0)

#: Workload at which leakage equals dynamic power at v_min (paper Fig. 8:
#: "comparable ... at around 50 kOps/s").
LEAKAGE_CROSSOVER_OPS = 50e3


@dataclass(frozen=True)
class ComponentEnergies:
    """Dynamic energy per event, in joules, at nominal supply.

    Events are the activity counters of
    :meth:`repro.platform.stats.SimulationStats.activity_rates`.
    """

    core_instr: float          #: per committed instruction
    core_path_base: float      #: extra per instruction when fetching via I-Xbar
    core_path_transition: float  #: extra per fetch whose IM bank changed
    im_access: float           #: per (broadcast-merged) IM bank access
    dm_access: float           #: per (broadcast-merged) DM bank access
    dxbar_delivery: float      #: per word through the D-Xbar
    ixbar_delivery: float      #: per fetch delivered through the I-Xbar
    ixbar_transition: float    #: per delivered fetch with an IM bank change
    clock_core: float          #: clock tree, per active (non-gated) core cycle
    clock_xbar: float          #: clock tree, per cycle, I-Xbar register load

    def validate(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise CalibrationError(f"negative energy {name} = {value}")


@dataclass(frozen=True)
class LeakageBudget:
    """Leakage power, in watts at nominal supply."""

    im_per_bank: float
    dm_per_bank: float
    logic_per_kge: float       #: cores + crossbars + clock tree

    def validate(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise CalibrationError(f"negative leakage {name} = {value}")


def calibrate_energies(rates_mcref: dict, rates_int: dict,
                       rates_bank: dict) -> ComponentEnergies:
    """Solve the per-event energies from Table II and simulated activity.

    ``rates_*`` are the per-cycle activity dictionaries of the three
    reference runs (full paper geometry).
    """
    f = TABLE2_FREQUENCY_HZ

    def per_event(power_mw: float, rate: float) -> float:
        if rate <= 0:
            raise CalibrationError("zero activity for a powered component")
        return power_mw * 1e-3 / (rate * f)

    core_instr = per_event(TABLE2_MCREF["cores"], rates_mcref["core_active"])
    im_access = per_event(TABLE2_MCREF["im"], rates_mcref["im_access"])
    dm_access = per_event(TABLE2_MCREF["dm"], rates_mcref["dm_access"])
    dxbar_delivery = per_event(TABLE2_MCREF["dxbar"],
                               rates_mcref["dm_delivery"])
    clock_core = per_event(TABLE2_MCREF["clock"], rates_mcref["core_active"])

    # Proposed-design extras.  The transition rates differ strongly between
    # the interleaved (one bank change per fetch) and banked (almost none)
    # organisations, which is what identifies the two path terms.
    t_int = rates_int["im_bank_transition"] / rates_int["core_active"]
    t_bank = rates_bank["im_bank_transition"] / rates_bank["core_active"]
    if abs(t_int - t_bank) < 1e-6:
        raise CalibrationError(
            "interleaved and banked transition rates coincide; cannot "
            "separate the fetch-path energy terms")
    extra_int = (TABLE2_INT["cores"] * 1e-3 / f
                 - core_instr * rates_int["core_active"]) \
        / rates_int["core_active"]
    extra_bank = (TABLE2_BANK["cores"] * 1e-3 / f
                  - core_instr * rates_bank["core_active"]) \
        / rates_bank["core_active"]
    core_path_transition = (extra_int - extra_bank) / (t_int - t_bank)
    core_path_base = extra_bank - core_path_transition * t_bank

    # I-Xbar: delivery term from the banked row (almost no transitions),
    # transition term from the interleaved row.
    p_ix_int = TABLE2_INT["ixbar"] * 1e-3 / f
    p_ix_bank = TABLE2_BANK["ixbar"] * 1e-3 / f
    ixbar_delivery = (p_ix_bank
                      - 0.0 * rates_bank["im_bank_transition"]) \
        / rates_bank["im_delivery"]
    ixbar_transition = (p_ix_int
                        - ixbar_delivery * rates_int["im_delivery"]) \
        / max(rates_int["im_bank_transition"], 1e-12)

    # Clock tree: the proposed design adds the I-Xbar register load.
    clock_xbar = (TABLE2_INT["clock"] * 1e-3 / f
                  - clock_core * rates_int["core_active"])

    energies = ComponentEnergies(
        core_instr=core_instr,
        core_path_base=max(core_path_base, 0.0),
        core_path_transition=max(core_path_transition, 0.0),
        im_access=im_access,
        dm_access=dm_access,
        dxbar_delivery=dxbar_delivery,
        ixbar_delivery=ixbar_delivery,
        ixbar_transition=max(ixbar_transition, 0.0),
        clock_core=clock_core,
        clock_xbar=max(clock_xbar, 0.0),
    )
    energies.validate()
    return energies


def calibrate_leakage(total_leakage_nominal_w: float,
                      logic_kge_mcref: float,
                      im_banks: int = 8,
                      dm_banks: int = 16,
                      logic_share: float | None = None) -> LeakageBudget:
    """Split the mc-ref leakage budget across IM banks, DM banks and logic.

    ``total_leakage_nominal_w`` is the mc-ref total at nominal supply.
    The IM share is pinned by the paper's 38.8 % gating saving; the logic
    share defaults to the logic area fraction of Table I (~9.2 %); the
    data memory takes the rest.
    """
    if logic_share is None:
        logic_share = 0.092
    dm_share = 1.0 - IM_LEAKAGE_SHARE - logic_share
    if dm_share <= 0:
        raise CalibrationError("leakage shares exceed 100 %")
    budget = LeakageBudget(
        im_per_bank=total_leakage_nominal_w * IM_LEAKAGE_SHARE / im_banks,
        dm_per_bank=total_leakage_nominal_w * dm_share / dm_banks,
        logic_per_kge=total_leakage_nominal_w * logic_share
        / logic_kge_mcref,
    )
    budget.validate()
    return budget
