"""Synthesis clock-constraint model (Figs. 5 and 6).

The paper synthesises both architectures at several clock constraints:
speed-optimised (7.1 ns for mc-ref; 8.9 ns for the proposed design — the
I-Xbar adds ~1.8 ns to the critical path through the direct-branch/DM
path), the chosen 12 ns point, 16 ns, and the area-optimised 20 ns.
Tighter constraints force larger, leakier cells, raising energy per
operation.

Calibration: each curve's published power label sits in the
threshold-voltage region around the 10 MOps/s knee.  For each constraint
we solve the energy per operation that reproduces the label at the
reference workload, honouring the DVFS rule (designs whose knee is below
the reference workload need a supply above ``v_min`` there).  The solved
energies recover the paper's statements: the 12 ns design saves 15.5 %
(mc-ref) / 24.1 % (proposed) against the speed-optimised designs at
threshold voltage, and "consumes slightly more energy than the
corresponding slower designs".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CalibrationError, ConfigurationError
from repro.power.technology import TechnologyModel

#: Synthesis constraints per family (ns).  Both architectures close
#: timing at ~20 ns when optimised for area.
DESIGN_POINTS_NS = {
    "mc-ref": (7.1, 12.0, 16.0, 20.0),
    "proposed": (8.9, 12.0, 16.0, 20.0),
}

#: Extra critical-path delay contributed by the I-Xbar (Section IV-B).
IXBAR_PATH_DELAY_NS = 8.9 - 7.1

#: Published power labels (mW) in the threshold region of Figs. 5 and 6.
KNEE_LABELS_MW = {
    "mc-ref": {7.1: 1.03, 12.0: 0.87, 16.0: 0.86, 20.0: 0.85},
    "proposed": {8.9: 0.54, 12.0: 0.41, 16.0: 0.39, 20.0: 0.38},
}

#: Workload at which the labels are read (the threshold knee region).
REFERENCE_WORKLOAD_OPS = 10e6

#: Useful operations per cycle for the 8-core platforms.
OPS_PER_CYCLE = 8.0


@dataclass(frozen=True)
class DesignPoint:
    """One synthesised implementation of one architecture family."""

    family: str
    period_ns: float
    energy_per_op: float  # J/Op at v_nom, post-layout (figure) domain


class SynthesisModel:
    """Energy-per-op versus synthesis clock constraint, per family."""

    def __init__(self, technology: TechnologyModel,
                 leakage_nominal_w: float = 0.0):
        self.technology = technology
        self.leakage_nominal_w = leakage_nominal_w
        self._points: dict[tuple[str, float], DesignPoint] = {}
        for family, periods in DESIGN_POINTS_NS.items():
            self._calibrate_family(family, periods)

    # -- calibration ---------------------------------------------------------------

    def _calibrate_family(self, family: str, periods) -> None:
        """Solve every design point's energy per op from its label.

        The leakage of a design scales with the same constraint
        multiplier as its dynamic energy (bigger, leakier cells), and the
        multiplier is defined relative to the 12 ns design — a small
        fixed-point iteration resolves the circularity (leakage is a sub-
        percent correction, so it converges in two or three rounds).
        """
        energies = {period: 0.0 for period in periods}
        for __ in range(8):
            previous = dict(energies)
            reference = energies[12.0]
            for period in periods:
                label_w = KNEE_LABELS_MW[family][period] * 1e-3
                frequency, voltage = self._operating_point(
                    REFERENCE_WORKLOAD_OPS, period)
                del frequency
                multiplier = energies[period] / reference if reference \
                    else 1.0
                leak = self.leakage_nominal_w * multiplier \
                    * self.technology.leakage_scale(voltage)
                dynamic = label_w - leak
                if dynamic <= 0:
                    raise CalibrationError(
                        f"leakage exceeds the {family}@{period}ns label")
                energies[period] = dynamic / (
                    REFERENCE_WORKLOAD_OPS
                    * self.technology.dynamic_scale(voltage))
            if all(abs(energies[p] - previous[p])
                   <= 1e-9 * energies[p] for p in periods):
                break
        for period in periods:
            self._points[(family, period)] = DesignPoint(
                family=family, period_ns=period,
                energy_per_op=energies[period])

    def _operating_point(self, workload_ops: float,
                         period_ns: float) -> tuple[float, float]:
        """(frequency, voltage) meeting a workload on a given design."""
        f_required = workload_ops / OPS_PER_CYCLE
        f_nominal = 1e9 / period_ns
        speed = f_required / f_nominal
        if speed > 1.0 + 1e-9:
            raise ConfigurationError(
                f"workload beyond the {period_ns} ns design's peak")
        voltage = self.technology.voltage_for_speed(min(speed, 1.0))
        return f_required, voltage

    # -- queries -------------------------------------------------------------------

    def design_point(self, family: str, period_ns: float) -> DesignPoint:
        key = (family, period_ns)
        if key not in self._points:
            raise ConfigurationError(
                f"no synthesised design {family} @ {period_ns} ns")
        return self._points[key]

    def energy_multiplier(self, family: str, period_ns: float) -> float:
        """Energy per op relative to the family's 12 ns design."""
        return self.design_point(family, period_ns).energy_per_op \
            / self.design_point(family, 12.0).energy_per_op

    def max_workload(self, family: str, period_ns: float) -> float:
        """Peak throughput at nominal supply (Ops/s)."""
        self.design_point(family, period_ns)
        return OPS_PER_CYCLE * 1e9 / period_ns

    def power(self, family: str, period_ns: float,
              workload_ops: float) -> float:
        """Total power (W) of one design at one workload under DVFS."""
        point = self.design_point(family, period_ns)
        frequency, voltage = self._operating_point(workload_ops, period_ns)
        del frequency
        dynamic = point.energy_per_op * workload_ops \
            * self.technology.dynamic_scale(voltage)
        leak = self.leakage_nominal_w \
            * self.energy_multiplier(family, period_ns) \
            * self.technology.leakage_scale(voltage)
        return dynamic + leak

    def power_curve(self, family: str, period_ns: float,
                    workloads) -> list[tuple[float, float]]:
        """(workload, power) series for one design (a Fig. 5/6 curve)."""
        return [(w, self.power(family, period_ns, w)) for w in workloads]

    def threshold_knee_power(self, family: str, period_ns: float) -> float:
        """Power at the reference workload (the published label)."""
        return self.power(family, period_ns, REFERENCE_WORKLOAD_OPS)

    def saving_vs_speed_optimised(self, family: str) -> float:
        """Fractional saving of the 12 ns design at the threshold region.

        Paper: 15.5 % for mc-ref, 24.1 % for the proposed design.
        """
        fastest = min(DESIGN_POINTS_NS[family])
        return 1.0 - self.threshold_knee_power(family, 12.0) \
            / self.threshold_knee_power(family, fastest)
