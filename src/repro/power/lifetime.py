"""Battery-lifetime estimation — the paper's motivating metric.

"To extend the lifetime of health monitoring systems, we propose a
near-threshold ultra-low-power multi-core architecture" (abstract).  The
paper reports power; a product team asks *days on a coin cell*.  This
module converts the calibrated power model into exactly that, so the
38.8 % power saving can be read as a lifetime extension.

The battery model is deliberately simple (ideal capacity, constant
converter efficiency, optional self-discharge) — the architecture
comparison only needs the powers to be on a common, plausible scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Typical coin/pouch cells used in wearable sensor nodes.
CR2032 = ("CR2032 coin cell", 225.0, 3.0)
CR2477 = ("CR2477 coin cell", 1000.0, 3.0)
LIPO_150 = ("150 mAh Li-Po", 150.0, 3.7)


@dataclass(frozen=True)
class Battery:
    """An energy source for the node."""

    name: str
    capacity_mah: float
    voltage: float
    converter_efficiency: float = 0.85
    self_discharge_per_year: float = 0.02

    def __post_init__(self):
        if self.capacity_mah <= 0 or self.voltage <= 0:
            raise ConfigurationError("battery needs positive ratings")
        if not 0 < self.converter_efficiency <= 1:
            raise ConfigurationError("efficiency must be in (0, 1]")

    @classmethod
    def from_preset(cls, preset) -> "Battery":
        name, capacity, voltage = preset
        return cls(name=name, capacity_mah=capacity, voltage=voltage)

    @property
    def energy_joules(self) -> float:
        return self.capacity_mah * 1e-3 * 3600.0 * self.voltage \
            * self.converter_efficiency


def lifetime_hours(load_power_w: float, battery: Battery) -> float:
    """Hours of operation at a constant load power.

    Accounts for the battery's own self-discharge, which matters at the
    microwatt loads where the paper's architectures operate.
    """
    if load_power_w <= 0:
        raise ConfigurationError("load power must be positive")
    self_discharge_w = battery.energy_joules \
        * battery.self_discharge_per_year / (365.0 * 24 * 3600)
    return battery.energy_joules / (load_power_w + self_discharge_w) \
        / 3600.0


def lifetime_days(load_power_w: float, battery: Battery) -> float:
    return lifetime_hours(load_power_w, battery) / 24.0
