"""Activity x energy power model with per-component breakdowns.

One :class:`PowerModel` binds an architecture configuration, the activity
statistics of a simulated benchmark run, the calibrated per-event energies
and leakage budget, and the technology scaling.  It answers the questions
behind every paper figure:

* component dynamic powers at an (f, V) operating point (Table II, Fig 3);
* leakage with IM power gating (Fig 8);
* totals across DVFS operating points (Figs 5-7).

Dynamic powers exist in two domains (see ``repro.power.components``): the
cell-level Table II domain, and the post-layout figure domain obtained by
the uniform ``post_layout_factor``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platform.config import ArchConfig
from repro.platform.stats import SimulationStats
from repro.power.area import AreaModel
from repro.power.components import ComponentEnergies, LeakageBudget
from repro.power.technology import TechnologyModel


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-component power in watts."""

    cores: float
    im: float
    dm: float
    dxbar: float
    ixbar: float
    clock: float

    @property
    def total(self) -> float:
        return (self.cores + self.im + self.dm + self.dxbar + self.ixbar
                + self.clock)

    def as_dict(self) -> dict[str, float]:
        return {
            "cores": self.cores,
            "im": self.im,
            "dm": self.dm,
            "dxbar": self.dxbar,
            "ixbar": self.ixbar,
            "clock": self.clock,
        }

    def shares(self) -> dict[str, float]:
        total = self.total
        return {name: value / total for name, value
                in self.as_dict().items()}


class PowerModel:
    """Power of one architecture running one profiled benchmark."""

    def __init__(self, config: ArchConfig, stats: SimulationStats,
                 energies: ComponentEnergies, leakage: LeakageBudget,
                 technology: TechnologyModel,
                 post_layout_factor: float = 1.0):
        self.config = config
        self.stats = stats
        self.energies = energies
        self.leakage = leakage
        self.technology = technology
        self.post_layout_factor = post_layout_factor
        self.area = AreaModel(config)

    # -- dynamic ---------------------------------------------------------------

    def cycle_energy(self) -> PowerBreakdown:
        """Per-component dynamic energy per clock cycle (J) at v_nom,
        Table II domain."""
        rates = self.stats.activity_rates()
        energies = self.energies
        has_ixbar = self.config.has_ixbar
        cores = energies.core_instr * rates["core_active"]
        ixbar = 0.0
        clock = energies.clock_core * rates["core_active"]
        if has_ixbar:
            cores += (energies.core_path_base * rates["core_active"]
                      + energies.core_path_transition
                      * rates["im_bank_transition"])
            ixbar = (energies.ixbar_delivery * rates["im_delivery"]
                     + energies.ixbar_transition
                     * rates["im_bank_transition"])
            clock += energies.clock_xbar
        return PowerBreakdown(
            cores=cores,
            im=energies.im_access * rates["im_access"],
            dm=energies.dm_access * rates["dm_access"],
            dxbar=energies.dxbar_delivery * rates["dm_delivery"],
            ixbar=ixbar,
            clock=clock,
        )

    def dynamic_power(self, frequency_hz: float, voltage: float,
                      post_layout: bool = True) -> PowerBreakdown:
        """Component dynamic powers (W) at an operating point."""
        scale = frequency_hz * self.technology.dynamic_scale(voltage)
        if post_layout:
            scale *= self.post_layout_factor
        cycle = self.cycle_energy()
        return PowerBreakdown(**{name: value * scale for name, value
                                 in cycle.as_dict().items()})

    # -- leakage ------------------------------------------------------------------

    def leakage_power(self, voltage: float) -> dict[str, float]:
        """Leakage (W) split into memories and logic, with IM gating."""
        scale = self.technology.leakage_scale(voltage)
        live_im_banks = self.config.im_banks - self.stats.im_banks_gated
        return {
            "im": self.leakage.im_per_bank * live_im_banks * scale,
            "dm": self.leakage.dm_per_bank * self.config.dm_banks * scale,
            "logic": self.leakage.logic_per_kge * self.area.logic_kge()
            * scale,
        }

    def total_leakage(self, voltage: float) -> float:
        return sum(self.leakage_power(voltage).values())

    # -- totals -----------------------------------------------------------------------

    def total_power(self, frequency_hz: float, voltage: float,
                    post_layout: bool = True) -> float:
        """Dynamic + leakage (W)."""
        return (self.dynamic_power(frequency_hz, voltage,
                                   post_layout=post_layout).total
                + self.total_leakage(voltage))

    def energy_per_op(self, voltage: float | None = None,
                      post_layout: bool = False) -> float:
        """Dynamic energy per retired operation (J).

        Defaults to nominal supply and the Table II domain, where the
        mc-ref system lands at 80 pJ/Op and the core alone at 22.5 pJ/Op
        (15.6 pJ/Op at 1.0 V — Section IV-C1).
        """
        voltage = self.technology.v_nom if voltage is None else voltage
        cycle = self.cycle_energy().total \
            * self.technology.dynamic_scale(voltage)
        if post_layout:
            cycle *= self.post_layout_factor
        ops_per_cycle = self.stats.total_retired / self.stats.total_cycles
        return cycle / ops_per_cycle
