"""Area model reproducing Table I (kGE, 1 GE = 3.136 um²).

The memories dominate (~90 % of area).  Their model is
``bank_area = fixed + per_byte * bytes``: solving the two Table I
observations —

* IM: 8 banks x 12288 B = 429.4 kGE
* DM: 16 banks x 4096 B = 576.7 kGE

— yields the per-bank periphery (sense amps, decoders, control) and the
cell-array density.  The DM costs more area than the larger IM because
sixteen small banks pay sixteen peripheries; that is also exactly why the
paper's designs pay for banking only where conflict-freedom needs it.

Crossbars are Mesh-of-Trees networks: area scales with the internal node
count (M routing trees of B-1 nodes + B arbitration trees of M-1 nodes)
times an effective datapath width; broadcast support adds a calibrated
overhead fraction.  Cores: 8 x 10.19 kGE for TamaRISC, plus
0.725 kGE/core of MMU and broadcast-fetch logic in the proposed design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.interconnect.mot import MeshOfTrees
from repro.memory.layout import IMOrganization
from repro.platform.config import ArchConfig

#: Square micrometres per gate equivalent in the 90 nm library (Table I).
UM2_PER_GE = 3.136

# Table I observations used as calibration anchors (kGE).
_TABLE1_IM_KGE = 429.4
_TABLE1_DM_KGE = 576.7
_TABLE1_CORES_MCREF_KGE = 81.5
_TABLE1_CORES_PROPOSED_KGE = 87.3
_TABLE1_DXBAR_MCREF_KGE = 20.5
_TABLE1_DXBAR_PROPOSED_KGE = 23.0
_TABLE1_IXBAR_KGE = 12.4

# Memory geometry behind the anchors.
_IM_BANKS, _IM_BANK_BYTES = 8, 12288
_DM_BANKS, _DM_BANK_BYTES = 16, 4096


def _solve_memory_constants() -> tuple[float, float]:
    """Solve bank_fixed (GE) and per_byte (GE/B) from the two anchors."""
    # 8 * (F + 12288 a) = 429400 ; 16 * (F + 4096 a) = 576700
    lhs_im = _TABLE1_IM_KGE * 1e3 / _IM_BANKS
    lhs_dm = _TABLE1_DM_KGE * 1e3 / _DM_BANKS
    per_byte = (lhs_im - lhs_dm) / (_IM_BANK_BYTES - _DM_BANK_BYTES)
    fixed = lhs_im - per_byte * _IM_BANK_BYTES
    if per_byte <= 0 or fixed <= 0:
        raise ConfigurationError("memory area anchors are inconsistent")
    return fixed, per_byte

_MEM_FIXED_GE, _MEM_GE_PER_BYTE = _solve_memory_constants()

#: TamaRISC core area (Table I cores / 8).
CORE_KGE = _TABLE1_CORES_MCREF_KGE / 8
#: MMU + broadcast-fetch logic per core in the proposed design.
MMU_KGE = (_TABLE1_CORES_PROPOSED_KGE - _TABLE1_CORES_MCREF_KGE) / 8

#: Broadcast support overhead on a crossbar (23.0 / 20.5 - 1).
BROADCAST_AREA_OVERHEAD = _TABLE1_DXBAR_PROPOSED_KGE \
    / _TABLE1_DXBAR_MCREF_KGE - 1.0


def _mot_nodes(masters: int, banks: int) -> int:
    return MeshOfTrees(masters, banks).total_nodes


# Effective per-node area (GE) for the two crossbars, absorbed widths and
# control: calibrated so the Table I entries are exact.
_DXBAR_GE_PER_NODE = _TABLE1_DXBAR_MCREF_KGE * 1e3 / _mot_nodes(8, 16)
_IXBAR_GE_PER_NODE = _TABLE1_IXBAR_KGE * 1e3 \
    / (_mot_nodes(8, 8) * (1.0 + BROADCAST_AREA_OVERHEAD))


@dataclass(frozen=True)
class AreaModel:
    """Computes per-component areas (kGE) for a platform configuration."""

    config: ArchConfig

    def memory_bank_kge(self, bank_bytes: int) -> float:
        return (_MEM_FIXED_GE + _MEM_GE_PER_BYTE * bank_bytes) / 1e3

    def cores_kge(self) -> float:
        per_core = CORE_KGE + (MMU_KGE if self.config.has_ixbar else 0.0)
        return per_core * self.config.n_cores

    def im_kge(self) -> float:
        return self.config.im_banks \
            * self.memory_bank_kge(self.config.im_bank_words * 3)

    def dm_kge(self) -> float:
        return self.config.dm_banks \
            * self.memory_bank_kge(self.config.dm_bank_words * 2)

    def dxbar_kge(self) -> float:
        nodes = _mot_nodes(self.config.n_cores, self.config.dm_banks)
        overhead = BROADCAST_AREA_OVERHEAD if self.config.data_broadcast \
            and self.config.has_ixbar else 0.0
        return _DXBAR_GE_PER_NODE * nodes * (1.0 + overhead) / 1e3

    def ixbar_kge(self) -> float:
        if not self.config.has_ixbar:
            return 0.0
        nodes = _mot_nodes(self.config.n_cores, self.config.im_banks)
        overhead = BROADCAST_AREA_OVERHEAD if self.config.instr_broadcast \
            else 0.0
        return _IXBAR_GE_PER_NODE * nodes * (1.0 + overhead) / 1e3

    def logic_kge(self) -> float:
        """Non-memory area: cores plus crossbars (leakage model input)."""
        return self.cores_kge() + self.dxbar_kge() + self.ixbar_kge()

    def total_kge(self) -> float:
        return self.logic_kge() + self.im_kge() + self.dm_kge()

    def report(self) -> dict[str, float]:
        """Component areas in kGE, Table I rows."""
        return {
            "total": self.total_kge(),
            "cores": self.cores_kge(),
            "im": self.im_kge(),
            "dm": self.dm_kge(),
            "dxbar": self.dxbar_kge(),
            "ixbar": self.ixbar_kge(),
        }

    def total_mm2(self) -> float:
        return self.total_kge() * 1e3 * UM2_PER_GE / 1e6


def area_report(config: ArchConfig) -> dict[str, float]:
    """Table I row for one architecture (kGE per component)."""
    return AreaModel(config).report()
