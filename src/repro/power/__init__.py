"""Calibrated 90 nm low-leakage power, area and timing models.

The paper evaluates post-layout netlists in a 90 nm low-leakage process
with voltage/frequency scaling down to the transistor threshold.  This
package replaces that flow with analytical models whose constants are
calibrated against the paper's own published anchors (DESIGN.md §6):

* :mod:`repro.power.technology` — delay-vs-voltage (alpha-power law),
  V² dynamic scaling, leakage scaling, threshold-limited DVFS;
* :mod:`repro.power.components` — per-event energies from Table II and
  the leakage budget from Fig. 8;
* :mod:`repro.power.area` — the kGE area model of Table I;
* :mod:`repro.power.synthesis` — the effect of the synthesis clock
  constraint (Figs. 5 and 6);
* :mod:`repro.power.power_model` — activity x energy + leakage, with
  per-component breakdowns;
* :mod:`repro.power.dvfs` — the workload -> (voltage, frequency) policy;
* :mod:`repro.power.calibration` — runs the reference benchmark on the
  three platforms (the paper's "power characterization framework",
  Fig. 4) and produces the calibrated model set.
"""

from repro.power.technology import TechnologyModel, make_technology
from repro.power.components import ComponentEnergies, LeakageBudget
from repro.power.area import AreaModel, area_report
from repro.power.synthesis import SynthesisModel, DESIGN_POINTS_NS
from repro.power.power_model import PowerModel
from repro.power.dvfs import DVFSPolicy, OperatingPoint
from repro.power.calibration import CalibratedSet, calibrated_set, \
    reference_results
from repro.power.lifetime import Battery, lifetime_days, lifetime_hours

__all__ = [
    "Battery",
    "lifetime_days",
    "lifetime_hours",
    "TechnologyModel",
    "make_technology",
    "ComponentEnergies",
    "LeakageBudget",
    "AreaModel",
    "area_report",
    "SynthesisModel",
    "DESIGN_POINTS_NS",
    "PowerModel",
    "DVFSPolicy",
    "OperatingPoint",
    "CalibratedSet",
    "calibrated_set",
    "reference_results",
]
