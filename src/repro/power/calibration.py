"""The power characterisation framework (paper Fig. 4).

The paper's flow generates the design, runs the benchmark post-layout and
feeds the activity trace into power analysis.  Ours runs the reference
CS + Huffman benchmark on the three simulated platforms, then calibrates:

1. per-event energies from Table II and the simulated activity rates;
2. the post-layout factor from the Fig. 7 anchor (mc-ref consumes
   397.4 mW at the 636.9 MOps/s workload every design can reach);
3. the leakage budget from the Fig. 8 crossover (leakage == dynamic
   around 50 kOps/s at minimum supply) and the 38.8 % gating saving.

Everything downstream (experiments, benchmarks) consumes one cached
:class:`CalibratedSet`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.kernels.benchmark import BenchmarkSpec, BuiltBenchmark, \
    build_benchmark, verify_result
from repro.platform.config import ARCH_NAMES, build_config
from repro.platform.multicore import MultiCoreSystem, SimulationResult
from repro.power.area import AreaModel
from repro.power.components import (
    ComponentEnergies,
    LEAKAGE_CROSSOVER_OPS,
    LeakageBudget,
    calibrate_energies,
    calibrate_leakage,
)
from repro.power.dvfs import DVFSPolicy, NOMINAL_PERIOD_NS
from repro.power.power_model import PowerModel
from repro.power.technology import TechnologyModel, make_technology

#: Fig. 7 absolute anchor: mc-ref power at the highest workload reachable
#: by all three designs (636.9 MOps/s).
FIG7_ANCHOR_WORKLOAD_OPS = 636.9e6
FIG7_ANCHOR_POWER_W = 397.4e-3


def reference_results(huffman_private: bool = True,
                      data_broadcast: bool = True,
                      instr_broadcast: bool = True):
    """Run the full-geometry benchmark on the three platforms (cached).

    Returns ``(built_benchmark, {arch_name: SimulationResult})``.  Every
    run is verified bit-exactly against the golden Python models before
    being returned.  The wrapper normalises the arguments so
    ``reference_results()`` and ``reference_results(huffman_private=True)``
    share one cache entry — ``lru_cache`` alone would key them
    separately and simulate the references twice.
    """
    return _reference_results(bool(huffman_private), bool(data_broadcast),
                              bool(instr_broadcast))


@lru_cache(maxsize=8)
def _reference_results(huffman_private: bool, data_broadcast: bool,
                       instr_broadcast: bool):
    built = build_benchmark(BenchmarkSpec(huffman_private=huffman_private))
    results: dict[str, SimulationResult] = {}
    for name in ARCH_NAMES:
        overrides = {}
        if not data_broadcast:
            overrides["data_broadcast"] = False
        if not instr_broadcast and name != "mc-ref":
            overrides["instr_broadcast"] = False
        system = MultiCoreSystem(build_config(name, **overrides))
        result = system.run(built.benchmark)
        verify_result(built, result)
        results[name] = result
    return built, results


# Callers (test fixtures) invalidate through the public name.
reference_results.cache_clear = _reference_results.cache_clear
reference_results.cache_info = _reference_results.cache_info


@dataclass(frozen=True)
class CalibratedSet:
    """Everything the experiments need, calibrated and cross-checked."""

    technology: TechnologyModel
    energies: ComponentEnergies
    leakage: LeakageBudget
    post_layout_factor: float
    built: BuiltBenchmark
    results: dict[str, SimulationResult]

    # -- benchmark-level quantities ------------------------------------------------

    @property
    def ops_per_block(self) -> int:
        """Useful operations per block: the mc-ref instruction count."""
        return self.results["mc-ref"].stats.total_retired

    def cycles(self, arch: str) -> int:
        return self.results[arch].stats.total_cycles

    def ops_per_cycle(self, arch: str) -> float:
        """Delivered useful operations per cycle on one architecture."""
        return self.ops_per_block / self.cycles(arch)

    def max_workload(self, arch: str,
                     period_ns: float = NOMINAL_PERIOD_NS) -> float:
        """Peak throughput at nominal supply (paper: 664.5 / 662.3 /
        636.9 MOps/s)."""
        return self.ops_per_cycle(arch) * 1e9 / period_ns

    # -- models ---------------------------------------------------------------------

    def power_model(self, arch: str) -> PowerModel:
        result = self.results[arch]
        return PowerModel(
            config=result.system.config,
            stats=result.stats,
            energies=self.energies,
            leakage=self.leakage,
            technology=self.technology,
            post_layout_factor=self.post_layout_factor,
        )

    def dvfs(self, period_ns: float = NOMINAL_PERIOD_NS) -> DVFSPolicy:
        return DVFSPolicy(self.technology, period_ns=period_ns)

    def workload_power(self, arch: str, workload_ops: float,
                       post_layout: bool = True) -> float:
        """Total power (W) of one architecture at one workload (Fig. 7)."""
        policy = self.dvfs()
        point = policy.operating_point(workload_ops,
                                       self.ops_per_cycle(arch))
        return self.power_model(arch).total_power(
            point.frequency_hz, point.voltage, post_layout=post_layout)


@lru_cache(maxsize=1)
def calibrated_set() -> CalibratedSet:
    """Build the default calibrated model set (cached)."""
    built, results = reference_results()
    technology = make_technology()
    energies = calibrate_energies(
        results["mc-ref"].stats.activity_rates(),
        results["ulpmc-int"].stats.activity_rates(),
        results["ulpmc-bank"].stats.activity_rates(),
    )

    # Post-layout factor: match the Fig. 7 anchor with the mc-ref model.
    interim = CalibratedSet(
        technology=technology, energies=energies,
        leakage=LeakageBudget(0.0, 0.0, 0.0), post_layout_factor=1.0,
        built=built, results=results)
    policy = interim.dvfs()
    point = policy.operating_point(FIG7_ANCHOR_WORKLOAD_OPS,
                                   interim.ops_per_cycle("mc-ref"))
    table_domain = interim.power_model("mc-ref").dynamic_power(
        point.frequency_hz, point.voltage, post_layout=False).total
    post_layout_factor = FIG7_ANCHOR_POWER_W / table_domain

    # Leakage: equal to dynamic power at the 50 kOps/s crossover, v_min.
    crossover = policy.operating_point(LEAKAGE_CROSSOVER_OPS,
                                       interim.ops_per_cycle("mc-ref"))
    dynamic_at_crossover = interim.power_model("mc-ref").dynamic_power(
        crossover.frequency_hz, crossover.voltage,
        post_layout=False).total * post_layout_factor
    leak_nominal = dynamic_at_crossover \
        / technology.leakage_scale(technology.v_min)
    mcref_area = AreaModel(results["mc-ref"].system.config)
    leakage = calibrate_leakage(leak_nominal,
                                logic_kge_mcref=mcref_area.logic_kge())

    return CalibratedSet(
        technology=technology,
        energies=energies,
        leakage=leakage,
        post_layout_factor=post_layout_factor,
        built=built,
        results=results,
    )
