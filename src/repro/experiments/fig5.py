"""Fig. 5 — mc-ref power vs throughput for various clock constraints.

Four synthesis points (7.1 / 12 / 16 / 20 ns); each curve runs from its
nominal-voltage peak down through voltage scaling to the threshold knee
and then frequency-only scaling.  Published threshold-region labels:
1.03 / 0.87 / 0.86 / 0.85 mW; the 12 ns design saves 15.5 % against the
speed-optimised design at threshold voltage.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import Comparison, ExperimentResult
from repro.power.calibration import calibrated_set
from repro.power.synthesis import (
    DESIGN_POINTS_NS,
    KNEE_LABELS_MW,
    SynthesisModel,
)

FAMILY = "mc-ref"
PAPER_SAVING_PCT = 15.5


def _build_model(arch: str) -> SynthesisModel:
    cal = calibrated_set()
    leak_nominal = cal.power_model(arch).total_leakage(cal.technology.v_nom)
    return SynthesisModel(cal.technology, leakage_nominal_w=leak_nominal)


def _run_family(exp_id: str, title: str, family: str, arch: str,
                paper_saving_pct: float) -> ExperimentResult:
    model = _build_model(arch)
    periods = DESIGN_POINTS_NS[family]
    result = ExperimentResult(
        exp_id=exp_id,
        title=title,
        headers=["throughput [GOps/s]"] + [f"{p} ns [mW]" for p in periods],
    )
    workloads = np.logspace(6, np.log10(8e9 / min(periods)), 25)
    for workload in workloads:
        row = [round(workload / 1e9, 6)]
        for period in periods:
            if workload > model.max_workload(family, period) + 1e-3:
                row.append("-")
            else:
                row.append(round(model.power(family, period, workload)
                                 * 1e3, 4))
        result.rows.append(row)
    for period in periods:
        result.comparisons.append(Comparison(
            metric=f"{family} {period} ns power near the threshold knee",
            paper=KNEE_LABELS_MW[family][period],
            measured=model.threshold_knee_power(family, period) * 1e3,
            unit="mW"))
    result.comparisons.append(Comparison(
        metric=f"{family} 12 ns saving vs speed-optimised at threshold",
        paper=paper_saving_pct,
        measured=100 * model.saving_vs_speed_optimised(family),
        unit="%"))
    result.notes.append(
        "all designs operate around 20 ns when optimised for area; the "
        "speed-optimised proposed design is 1.8 ns slower than mc-ref "
        "because of the I-Xbar on the direct-branch path (Section IV-B)")
    return result


def run() -> ExperimentResult:
    return _run_family(
        exp_id="fig5",
        title="mc-ref: power vs throughput for various clock constraints",
        family=FAMILY,
        arch="mc-ref",
        paper_saving_pct=PAPER_SAVING_PCT,
    )
