"""Fig. 8 — dynamic vs leakage power at low workloads.

For workloads below 100 kOps/s the paper splits each design's power into
logic/memory dynamic and logic/memory leakage: mc-ref and ulpmc-int leak
the same, ulpmc-bank leaks 38.8 % less thanks to the gated IM banks, and
leakage becomes comparable to dynamic power around 50 kOps/s.
"""

from __future__ import annotations

from repro.experiments.common import ARCHES, Comparison, ExperimentResult
from repro.power.calibration import calibrated_set

#: Fig. 8 y-axis ticks (kOps/s).
WORKLOADS_KOPS = (40, 50, 70, 100)


def run() -> ExperimentResult:
    cal = calibrated_set()
    technology = cal.technology
    v_min = technology.v_min

    result = ExperimentResult(
        exp_id="fig8",
        title="Dynamic vs leakage power at low workloads (uW)",
        headers=["arch", "workload [kOps/s]", "logic dyn", "mem dyn",
                 "logic leak", "mem leak", "total"],
    )
    leak_totals = {}
    crossover_ratio = None
    for arch in ARCHES:
        model = cal.power_model(arch)
        leak = model.leakage_power(v_min)
        leak_logic = leak["logic"]
        leak_mem = leak["im"] + leak["dm"]
        leak_totals[arch] = leak_logic + leak_mem
        for kops in WORKLOADS_KOPS:
            workload = kops * 1e3
            point = cal.dvfs().operating_point(workload,
                                               cal.ops_per_cycle(arch))
            dyn = model.dynamic_power(point.frequency_hz, point.voltage)
            dyn_logic = dyn.cores + dyn.dxbar + dyn.ixbar + dyn.clock
            dyn_mem = dyn.im + dyn.dm
            total = dyn_logic + dyn_mem + leak_logic + leak_mem
            result.rows.append([
                arch, kops,
                round(dyn_logic * 1e6, 4), round(dyn_mem * 1e6, 4),
                round(leak_logic * 1e6, 4), round(leak_mem * 1e6, 4),
                round(total * 1e6, 4),
            ])
            if arch == "mc-ref" and kops == 50:
                crossover_ratio = (dyn_logic + dyn_mem) \
                    / (leak_logic + leak_mem)

    result.comparisons.append(Comparison(
        metric="ulpmc-bank leakage saving vs mc-ref",
        paper=38.8,
        measured=100 * (1 - leak_totals["ulpmc-bank"]
                        / leak_totals["mc-ref"]),
        unit="%"))
    result.comparisons.append(Comparison(
        metric="ulpmc-int leakage relative to mc-ref",
        paper=1.0,
        measured=leak_totals["ulpmc-int"] / leak_totals["mc-ref"],
        note="paper: 'the mc-ref and the ulpmc-int designs leak almost "
             "the same amount of power'"))
    result.comparisons.append(Comparison(
        metric="dynamic/leakage ratio at 50 kOps/s (mc-ref)",
        paper=1.0, measured=crossover_ratio,
        note="paper: leakage 'become[s] comparable with ... dynamic ... "
             "at around 50 kOps/s'"))
    result.notes.append(
        "memory leakage dominates logic leakage, as in the paper's "
        "bar chart: the memories hold ~90% of the gates")
    return result
