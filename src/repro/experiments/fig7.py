"""Fig. 7 — normalised power consumption at various workloads.

The paper's headline result: across workloads from 5 kOps/s to
637 MOps/s the proposed ulpmc-bank design consumes the least power —
39.5 % savings at the top (where dynamic power dominates) and ~38.8 % at
the bottom (where the circuits "almost only leak" and the IM power gating
carries the saving).  ulpmc-int matches mc-ref at ~5 kOps/s because it
cannot gate banks: its dynamic advantage vanishes under leakage.

DVFS policy as in the paper: voltage + frequency scaling above the
~10 MOps/s knee, frequency-only below it.
"""

from __future__ import annotations

from repro.experiments.common import ARCHES, Comparison, ExperimentResult
from repro.power.calibration import calibrated_set

#: The paper's x-axis ticks (Ops/s); the top point is the largest
#: workload all three designs reach (636.9 MOps/s in the paper).
WORKLOADS = (5e3, 50e3, 100e3, 500e3, 5e6, 50e6, 500e6)

PAPER_CHECKS = (
    # (workload, arch, paper mW)
    (636.9e6, "mc-ref", 397.4),
    (636.9e6, "ulpmc-int", 279.8),
    (636.9e6, "ulpmc-bank", 240.4),
    (10e6, "mc-ref", 1.11),
    (10e6, "ulpmc-int", 0.79),
    (10e6, "ulpmc-bank", 0.66),
)


def run() -> ExperimentResult:
    cal = calibrated_set()
    top = min(cal.max_workload(arch) for arch in ARCHES)
    workloads = list(WORKLOADS) + [top]

    result = ExperimentResult(
        exp_id="fig7",
        title="Normalised power consumption at various workloads",
        headers=["workload [Ops/s]", "mc-ref [mW]", "ulpmc-int norm",
                 "ulpmc-bank norm", "int saving %", "bank saving %"],
    )
    for workload in workloads:
        powers = {arch: cal.workload_power(arch, workload)
                  for arch in ARCHES}
        base = powers["mc-ref"]
        result.rows.append([
            round(workload, 1),
            round(base * 1e3, 4),
            round(powers["ulpmc-int"] / base, 4),
            round(powers["ulpmc-bank"] / base, 4),
            round(100 * (1 - powers["ulpmc-int"] / base), 1),
            round(100 * (1 - powers["ulpmc-bank"] / base), 1),
        ])

    top_powers = {arch: cal.workload_power(arch, top) for arch in ARCHES}
    result.comparisons.append(Comparison(
        metric="ulpmc-bank saving at the highest common workload",
        paper=39.5,
        measured=100 * (1 - top_powers["ulpmc-bank"]
                        / top_powers["mc-ref"]),
        unit="%"))
    result.comparisons.append(Comparison(
        metric="ulpmc-int saving at the highest common workload",
        paper=29.6,
        measured=100 * (1 - top_powers["ulpmc-int"]
                        / top_powers["mc-ref"]),
        unit="%"))
    low_powers = {arch: cal.workload_power(arch, 5e3) for arch in ARCHES}
    result.comparisons.append(Comparison(
        metric="ulpmc-bank saving at 5 kOps/s (leakage-dominated)",
        paper=38.8,
        measured=100 * (1 - low_powers["ulpmc-bank"]
                        / low_powers["mc-ref"]),
        unit="%"))
    result.comparisons.append(Comparison(
        metric="ulpmc-int saving at 5 kOps/s (falters: no gating)",
        paper=0.0,
        measured=100 * (1 - low_powers["ulpmc-int"]
                        / low_powers["mc-ref"]),
        unit="%",
        note="paper: 'the power consumption of the ulpmc-int becomes "
             "almost equal with the mc-ref's around 5 kOps/s'"))
    ten_m = {arch: cal.workload_power(arch, 10e6) for arch in ARCHES}
    for (workload, arch, paper_mw) in PAPER_CHECKS:
        measured = top_powers[arch] if workload > 1e8 else ten_m[arch]
        result.comparisons.append(Comparison(
            metric=f"{arch} absolute power at "
                   f"{'637 MOps/s' if workload > 1e8 else '10 MOps/s'}",
            paper=paper_mw, measured=measured * 1e3, unit="mW"))
    result.comparisons.append(Comparison(
        metric="ulpmc-bank saving at 10 MOps/s",
        paper=40.5,
        measured=100 * (1 - ten_m["ulpmc-bank"] / ten_m["mc-ref"]),
        unit="%"))
    return result
