"""Shared experiment plumbing: result containers and text rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

#: The three architectures in paper order.
ARCHES = ("mc-ref", "ulpmc-int", "ulpmc-bank")


@dataclass(frozen=True)
class Comparison:
    """One paper-value-vs-measured-value check."""

    metric: str
    paper: float
    measured: float
    unit: str = ""
    note: str = ""

    @property
    def relative_error(self) -> float:
        if self.paper == 0:
            return abs(self.measured)
        return abs(self.measured - self.paper) / abs(self.paper)

    def render(self) -> str:
        text = (f"{self.metric:<46s} paper {self.paper:>10.4g} "
                f"ours {self.measured:>10.4g} {self.unit:<8s}"
                f" ({100 * self.relative_error:5.1f}% off)")
        if self.note:
            text += f"  [{self.note}]"
        return text


@dataclass
class ExperimentResult:
    """Outcome of one experiment: a table plus paper comparisons."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    comparisons: list[Comparison] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def _format_cell(self, value) -> str:
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value)

    def to_text(self) -> str:
        lines = [f"== {self.exp_id}: {self.title} =="]
        if self.rows:
            table = [self.headers] + [[self._format_cell(cell)
                                       for cell in row]
                                      for row in self.rows]
            widths = [max(len(row[col]) for row in table)
                      for col in range(len(self.headers))]
            for index, row in enumerate(table):
                lines.append("  " + "  ".join(
                    cell.rjust(width) for cell, width in zip(row, widths)))
                if index == 0:
                    lines.append("  " + "  ".join("-" * w for w in widths))
        if self.comparisons:
            lines.append("")
            lines.append("  paper vs measured:")
            lines.extend("    " + comparison.render()
                         for comparison in self.comparisons)
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        out = [",".join(self.headers)]
        out.extend(",".join(self._format_cell(cell) for cell in row)
                   for row in self.rows)
        return "\n".join(out)

    def max_relative_error(self) -> float:
        if not self.comparisons:
            return 0.0
        return max(c.relative_error for c in self.comparisons)


def fmt_power(watts: float) -> str:
    """Human-readable power."""
    if watts >= 1e-1:
        return f"{watts:.3g} W"
    if watts >= 1e-4:
        return f"{watts * 1e3:.3g} mW"
    return f"{watts * 1e6:.3g} uW"
