"""Fig. 6 — proposed design power vs throughput for clock constraints.

Same experiment as Fig. 5 on the proposed architecture: synthesis points
8.9 / 12 / 16 / 20 ns with threshold-region labels 0.54 / 0.41 / 0.39 /
0.38 mW; the 12 ns design saves 24.1 % against the speed-optimised one.
"""

from __future__ import annotations

from repro.experiments.fig5 import _run_family

PAPER_SAVING_PCT = 24.1


def run():
    return _run_family(
        exp_id="fig6",
        title="Proposed design: power vs throughput for various clock "
              "constraints",
        family="proposed",
        arch="ulpmc-int",
        paper_saving_pct=PAPER_SAVING_PCT,
    )
