"""Feature ablations — DESIGN.md §8 extension study.

The paper's mechanism chain (Sections III-C/D, IV-C2) is: the DM
organisation plus data broadcast keep the cores synchronised; only then
does instruction broadcast collapse eight fetches into one IM access; and
only the banked IM organisation can power-gate.  This experiment switches
each mechanism off in turn on the full-geometry benchmark and measures
what each contributes to cycles, IM activity and IM dynamic power.
"""

from __future__ import annotations

from repro.experiments.common import Comparison, ExperimentResult
from repro.power.calibration import calibrated_set, reference_results

#: (label, reference_results kwargs)
CONFIGS = (
    ("full design, private Huffman LUTs",
     {"huffman_private": True}),
    ("Huffman LUTs in the shared section",
     {"huffman_private": False}),
    ("no data broadcast",
     {"huffman_private": False, "data_broadcast": False}),
    ("no instruction broadcast",
     {"huffman_private": False, "instr_broadcast": False}),
    ("no broadcast at all",
     {"huffman_private": False, "data_broadcast": False,
      "instr_broadcast": False}),
)


def run() -> ExperimentResult:
    cal = calibrated_set()
    im_energy = cal.energies.im_access

    result = ExperimentResult(
        exp_id="ablations",
        title="Mechanism ablations on ulpmc-bank (extension study)",
        headers=["configuration", "cycles", "IM accesses", "sync %",
                 "IM power @8MOps [mW]", "vs full design"],
    )
    baseline_cycles = None
    im_power = {}
    for label, kwargs in CONFIGS:
        __, results = reference_results(**kwargs)
        stats = results["ulpmc-bank"].stats
        frequency = 8e6 / (cal.ops_per_block / stats.total_cycles)
        power_mw = im_energy * stats.im_bank_accesses \
            / stats.total_cycles * frequency * 1e3
        im_power[label] = power_mw
        if baseline_cycles is None:
            baseline_cycles = stats.total_cycles
        result.rows.append([
            label, stats.total_cycles, stats.im_bank_accesses,
            round(100 * stats.sync_fraction, 1),
            round(power_mw, 4),
            round(stats.total_cycles / baseline_cycles, 3),
        ])

    full = im_power[CONFIGS[0][0]]
    none = im_power[CONFIGS[3][0]]
    result.comparisons.append(Comparison(
        metric="IM power reduction, full design vs no instr broadcast",
        paper=86.0, measured=100 * (1 - full / none), unit="%",
        note="paper Table II: 86% IM power reduction"))
    result.notes.append(
        "extension beyond the paper: only the 86% endpoint is published; "
        "the intermediate rows quantify each mechanism's contribution")
    return result
