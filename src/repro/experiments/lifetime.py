"""Battery lifetime — quantifying the paper's motivation (extension).

The abstract promises to "extend the lifetime of health monitoring
systems"; this study converts the Fig. 7 operating points into days on
typical wearable batteries.  The real-time 8-lead compression mission
needs ~261 kOps/s sustained; the 5 kOps/s point is the paper's
leakage-dominated idle.
"""

from __future__ import annotations

from repro.experiments.common import ARCHES, Comparison, ExperimentResult
from repro.power.calibration import calibrated_set
from repro.power.lifetime import Battery, CR2032, CR2477, lifetime_days

#: (label, workload Ops/s)
MISSIONS = (
    ("idle monitoring (5 kOps/s)", 5e3),
    ("8-lead real-time compression (261 kOps/s)", 261e3),
    ("compression + on-node analytics (5 MOps/s)", 5e6),
)


def run() -> ExperimentResult:
    cal = calibrated_set()
    batteries = [Battery.from_preset(CR2032), Battery.from_preset(CR2477)]

    result = ExperimentResult(
        exp_id="lifetime",
        title="Battery lifetime of the digital subsystem (extension study)",
        headers=["mission", "arch", "power [uW]"]
        + [f"{battery.name} [days]" for battery in batteries],
    )
    lifetimes = {}
    for label, workload in MISSIONS:
        for arch in ARCHES:
            power = cal.workload_power(arch, workload)
            days = [lifetime_days(power, battery)
                    for battery in batteries]
            lifetimes[(label, arch)] = days[0]
            result.rows.append([label, arch, round(power * 1e6, 3)]
                               + [round(d, 1) for d in days])

    mission = MISSIONS[1][0]
    extension = lifetimes[(mission, "ulpmc-bank")] \
        / lifetimes[(mission, "mc-ref")]
    result.comparisons.append(Comparison(
        metric="lifetime extension of ulpmc-bank vs mc-ref (real-time "
               "mission)",
        paper=1.0 / (1.0 - 0.388), measured=extension,
        note="a ~38.8% power saving reads as a ~1.6x lifetime extension "
             "when the digital subsystem dominates"))
    result.notes.append(
        "digital subsystem only — a real node adds the analog front-end "
        "and radio, which dilute the saving (extension beyond the paper)")
    return result
