"""Fig. 3 — power distribution in the mc-ref architecture.

The paper motivates instruction-memory sharing with this pie chart: the
dedicated per-core IM banks burn 54 % of mc-ref's power while executing
the benchmark (cores 27 %, DM 11 %, D-Xbar 3 %, clock 5 %).
"""

from __future__ import annotations

from repro.experiments.common import Comparison, ExperimentResult
from repro.power.calibration import calibrated_set

#: Paper shares, in percent.
PAPER_SHARES = {"cores": 27.0, "dm": 11.0, "dxbar": 3.0, "im": 54.0,
                "clock": 5.0}


def run() -> ExperimentResult:
    cal = calibrated_set()
    model = cal.power_model("mc-ref")
    # The distribution is frequency- and voltage-independent (all
    # components scale together); evaluate at the Table II point.
    frequency = 8e6 / cal.ops_per_cycle("mc-ref")
    breakdown = model.dynamic_power(frequency, cal.technology.v_nom,
                                    post_layout=False)
    shares = breakdown.shares()

    result = ExperimentResult(
        exp_id="fig3",
        title="Power distribution in the mc-ref architecture",
        headers=["component", "paper %", "measured %"],
    )
    for component, paper_share in PAPER_SHARES.items():
        measured = 100.0 * shares[component]
        result.rows.append([component, paper_share, round(measured, 2)])
        result.comparisons.append(Comparison(
            metric=f"{component} share of mc-ref power",
            paper=paper_share, measured=measured, unit="%"))
    result.notes.append(
        "the dominant IM share is what motivates the proposed I-Xbar "
        "with instruction broadcast (paper Section III-C)")
    return result
