"""Table I — area of the architectures in kGE (1 GE = 3.136 um²)."""

from __future__ import annotations

from repro.experiments.common import Comparison, ExperimentResult
from repro.platform.config import build_config
from repro.power.area import area_report

#: Paper values, kGE.
PAPER = {
    "mc-ref": {"total": 1108.1, "cores": 81.5, "im": 429.4, "dm": 576.7,
               "dxbar": 20.5, "ixbar": 0.0},
    "ulpmc-int": {"total": 1128.8, "cores": 87.3, "im": 429.4, "dm": 576.7,
                  "dxbar": 23.0, "ixbar": 12.4},
}


def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="table1",
        title="Area of the architectures (kGE)",
        headers=["component", "mc-ref paper", "mc-ref ours",
                 "proposed paper", "proposed ours"],
    )
    reports = {name: area_report(build_config(name))
               for name in ("mc-ref", "ulpmc-int")}
    for component in ("total", "cores", "im", "dm", "dxbar", "ixbar"):
        result.rows.append([
            component,
            PAPER["mc-ref"][component],
            round(reports["mc-ref"][component], 1),
            PAPER["ulpmc-int"][component],
            round(reports["ulpmc-int"][component], 1),
        ])
        for arch in ("mc-ref", "ulpmc-int"):
            label = "proposed" if arch == "ulpmc-int" else arch
            if PAPER[arch][component] == 0.0:
                continue
            result.comparisons.append(Comparison(
                metric=f"{label} {component} area",
                paper=PAPER[arch][component],
                measured=reports[arch][component],
                unit="kGE"))
    overhead = reports["ulpmc-int"]["total"] / reports["mc-ref"]["total"] - 1
    result.comparisons.append(Comparison(
        metric="total area overhead of the proposed design",
        paper=2.0, measured=100 * overhead, unit="%",
        note="paper: 'less than 2%, since the memories occupy ... almost "
             "90% of the total area'"))
    memory_share = (reports["mc-ref"]["im"] + reports["mc-ref"]["dm"]) \
        / reports["mc-ref"]["total"]
    result.comparisons.append(Comparison(
        metric="memory share of total area",
        paper=90.0, measured=100 * memory_share, unit="%"))
    result.notes.append(
        "ulpmc-int and ulpmc-bank differ only in IM bank-select bits, so "
        "their areas are identical (paper Table I lists one proposed "
        "column)")
    return result
