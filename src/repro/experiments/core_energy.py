"""Section IV-C1 — energy efficiency of the TamaRISC core.

The paper: "TamaRISC ... consumes only 15.6 pJ/Ops at 1.0 V", against
Kwong et al. (47 pJ/cycle at 1.0 V, 130 nm, >1 cycle/instruction) and
Ickes et al. (19.7–27.0 pJ/Op estimated at 1.0 V, 65 nm, 32-bit).
"""

from __future__ import annotations

from repro.experiments.common import Comparison, ExperimentResult
from repro.power.calibration import calibrated_set

#: Literature comparison points quoted by the paper (pJ/op at 1.0 V).
LITERATURE = (
    ("TamaRISC (this work, 90 nm, 16-bit)", 15.6),
    ("Kwong et al. [15] (130 nm, 16-bit, pJ/cycle)", 47.0),
    ("Ickes et al. [16] (65 nm, 32-bit, low estimate)", 19.7),
    ("Ickes et al. [16] (65 nm, 32-bit, high estimate)", 27.0),
)


def run() -> ExperimentResult:
    cal = calibrated_set()
    model = cal.power_model("mc-ref")
    technology = cal.technology
    # Core-only dynamic energy per retired instruction at 1.0 V.
    rates = cal.results["mc-ref"].stats.activity_rates()
    per_instr_nominal = model.cycle_energy().cores / rates["core_active"]
    per_instr_1v0 = per_instr_nominal * (1.0 / technology.v_nom) ** 2

    result = ExperimentResult(
        exp_id="core",
        title="Energy efficiency of the TamaRISC core (Section IV-C1)",
        headers=["core", "pJ/op at 1.0 V"],
    )
    for name, value in LITERATURE:
        result.rows.append([name, value])
    result.rows.append(["TamaRISC (measured, this reproduction)",
                        round(per_instr_1v0 * 1e12, 2)])
    result.comparisons.append(Comparison(
        metric="TamaRISC energy per operation at 1.0 V",
        paper=15.6, measured=per_instr_1v0 * 1e12, unit="pJ/op"))
    ratio = per_instr_1v0 * 1e12 / 47.0
    result.comparisons.append(Comparison(
        metric="TamaRISC vs Kwong et al. energy ratio",
        paper=15.6 / 47.0, measured=ratio,
        note="TamaRISC additionally retires one instruction per cycle"))
    return result
