"""One experiment module per paper table/figure.

Every module exposes ``run() -> ExperimentResult`` and registers itself in
:data:`EXPERIMENTS`; ``repro.cli`` and the pytest benchmarks drive them.

=========  ==========================================================
id         reproduces
=========  ==========================================================
fig3       power distribution in the mc-ref architecture
fig5       mc-ref power vs throughput across clock constraints
fig6       proposed power vs throughput across clock constraints
table1     area of the architectures (kGE)
table2     dynamic power distributions at 8 MOps/s and 1.2 V
fig7       normalised power at workloads from 5 kOps/s to 637 MOps/s
fig8       dynamic vs leakage power at low workloads
core       TamaRISC energy/op vs state-of-the-art cores (Sec. IV-C1)
cycles     cycle counts, IM accesses, broadcast ablations (Sec. IV-C2)
ablations  per-mechanism feature ablations (extension, DESIGN.md §8)
scaling    core-count scaling under real time (extension, PATMOS'11)
lifetime   battery lifetime of the digital subsystem (extension)
=========  ==========================================================
"""

from repro.experiments.common import Comparison, ExperimentResult
from repro.experiments import (
    ablations,
    fig3,
    fig5,
    fig6,
    fig7,
    fig8,
    lifetime,
    scaling,
    table1,
    table2,
    core_energy,
    cycles,
)

#: Registry: experiment id -> module with a ``run()`` entry point.
EXPERIMENTS = {
    "fig3": fig3,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "table1": table1,
    "table2": table2,
    "core": core_energy,
    "cycles": cycles,
    "ablations": ablations,
    "scaling": scaling,
    "lifetime": lifetime,
}

__all__ = ["Comparison", "ExperimentResult", "EXPERIMENTS"]
