"""Section IV-C2 — cycle counts, IM accesses and broadcast ablations.

Paper numbers reproduced here (all for one benchmark execution):

* cycle counts with the Huffman LUTs in the *shared* section:
  90.20 k (mc-ref) / 90.40 k (ulpmc-int) / 101.8 k (ulpmc-bank) —
  the banked organisation suffers IM conflicts once the data-dependent
  Huffman flow desynchronises the cores;
* with the LUTs moved to the *private* sections: 90.20 k / ~90.20 k /
  94.00 k (+4 %);
* IM bank accesses: 720 800 for mc-ref (one per fetch per core);
  428 740 with only the I-Xbar broadcast (−40 %); 90 220 once the DM
  organisation and data broadcast keep the cores synchronised (−87 %);
* maximum throughputs at 1.2 V: 664.5 / 662.3 / 636.9 MOps/s.

Because our kernel is a re-implementation (267 B vs the paper's 552 B),
absolute cycle counts differ; the comparisons therefore target the
*ratios*, which are what the paper's conclusions rest on.
"""

from __future__ import annotations

from repro.experiments.common import ARCHES, Comparison, ExperimentResult
from repro.power.calibration import calibrated_set, reference_results

PAPER_KCYCLES_SHARED = {"mc-ref": 90.20, "ulpmc-int": 90.40,
                        "ulpmc-bank": 101.8}
PAPER_KCYCLES_PRIVATE = {"mc-ref": 90.20, "ulpmc-int": 90.20,
                         "ulpmc-bank": 94.00}
PAPER_MAX_MOPS = {"mc-ref": 664.5, "ulpmc-int": 662.3,
                  "ulpmc-bank": 636.9}


def run() -> ExperimentResult:
    cal = calibrated_set()
    __, shared = reference_results(huffman_private=False)
    __, private = reference_results(huffman_private=True)
    __, ablation = reference_results(huffman_private=False,
                                     data_broadcast=False)

    result = ExperimentResult(
        exp_id="cycles",
        title="Cycle counts and IM accesses (Section IV-C2)",
        headers=["arch", "variant", "cycles", "vs mc-ref", "IM accesses",
                 "IM access reduction %", "sync %"],
    )

    for label, runs in (("shared-LUT", shared), ("private-LUT", private),
                        ("no-data-broadcast", ablation)):
        base = runs["mc-ref"].stats.total_cycles
        for arch in ARCHES:
            stats = runs[arch].stats
            reduction = 100 * (1 - stats.im_bank_accesses
                               / stats.im_fetches)
            result.rows.append([
                arch, label, stats.total_cycles,
                round(stats.total_cycles / base, 4),
                stats.im_bank_accesses,
                round(reduction, 1),
                round(100 * stats.sync_fraction, 1),
            ])

    # --- ratio comparisons against the paper -----------------------------------
    for paper, runs, label in (
            (PAPER_KCYCLES_SHARED, shared, "shared LUTs"),
            (PAPER_KCYCLES_PRIVATE, private, "private LUTs")):
        base = runs["mc-ref"].stats.total_cycles
        for arch in ("ulpmc-int", "ulpmc-bank"):
            result.comparisons.append(Comparison(
                metric=f"{arch} cycle overhead vs mc-ref ({label})",
                paper=paper[arch] / paper["mc-ref"],
                measured=runs[arch].stats.total_cycles / base))

    mcref = private["mc-ref"].stats
    bank = private["ulpmc-bank"].stats
    result.comparisons.append(Comparison(
        metric="IM accesses per fetch, mc-ref (one per core fetch)",
        paper=1.0,
        measured=mcref.im_bank_accesses / mcref.im_fetches))
    result.comparisons.append(Comparison(
        metric="IM access reduction with DM organisation + broadcasts",
        paper=87.0,
        measured=100 * (1 - bank.im_bank_accesses / bank.im_fetches),
        unit="%"))
    abl = ablation["ulpmc-bank"].stats
    result.comparisons.append(Comparison(
        metric="IM access reduction with I-Xbar broadcast only",
        paper=40.0,
        measured=100 * (1 - abl.im_bank_accesses / abl.im_fetches),
        unit="%",
        note="without the DM organisation the cores desynchronise and "
             "instruction broadcast loses most of its effect"))

    for arch in ARCHES:
        result.comparisons.append(Comparison(
            metric=f"{arch} maximum throughput at 1.2 V",
            paper=PAPER_MAX_MOPS[arch],
            measured=cal.max_workload(arch) / 1e6,
            unit="MOps/s"))

    spec_stats = private["mc-ref"].stats
    result.comparisons.append(Comparison(
        metric="private fraction of data accesses",
        paper=76.0,
        measured=100 * spec_stats.private_access_fraction,
        unit="%",
        note="paper Section III-D profiles 76% private / 24% shared"))
    result.notes.append(
        "absolute cycle counts differ from the paper (re-implemented "
        "267 B kernel vs the original 552 B); the conclusions rest on "
        "the ratios compared above")
    return result
