"""Table II — dynamic power distributions at 8 MOps/s and 1.2 V.

The headline of this table is the *active power saving* of the proposed
architecture: 29.7 % (ulpmc-int) and 40.6 % (ulpmc-bank), driven by the
86 % IM power reduction from instruction broadcasting, partly offset by
higher core power (I-Xbar signal activity on the instruction path) — with
ulpmc-bank cheaper than ulpmc-int on both cores and I-Xbar because a
single live IM bank toggles fewer output nets.
"""

from __future__ import annotations

from repro.experiments.common import ARCHES, Comparison, ExperimentResult
from repro.power.calibration import calibrated_set
from repro.power.components import TABLE2_BANK, TABLE2_INT, TABLE2_MCREF

_PAPER_ROWS = {
    "mc-ref": dict(TABLE2_MCREF, ixbar=0.0, total=0.64),
    "ulpmc-int": dict(TABLE2_INT, total=0.45),
    "ulpmc-bank": dict(TABLE2_BANK, total=0.38),
}
_PAPER_SAVINGS = {"ulpmc-int": 29.7, "ulpmc-bank": 40.6}
_COMPONENTS = ("cores", "im", "dm", "dxbar", "ixbar", "clock")


def run() -> ExperimentResult:
    cal = calibrated_set()
    result = ExperimentResult(
        exp_id="table2",
        title="Dynamic power distributions at 8 MOps/s and 1.2 V (mW)",
        headers=["architecture", "total", "cores", "im", "dm", "dxbar",
                 "ixbar", "clock", "saving %"],
    )
    totals = {}
    breakdowns = {}
    for arch in ARCHES:
        model = cal.power_model(arch)
        frequency = 8e6 / cal.ops_per_cycle(arch)
        breakdown = model.dynamic_power(frequency, cal.technology.v_nom,
                                        post_layout=False)
        breakdowns[arch] = breakdown
        totals[arch] = breakdown.total
    for arch in ARCHES:
        breakdown = breakdowns[arch]
        saving = 100 * (1 - totals[arch] / totals["mc-ref"])
        cells = breakdown.as_dict()
        result.rows.append(
            [arch, round(totals[arch] * 1e3, 3)]
            + [round(cells[c] * 1e3, 3) for c in _COMPONENTS]
            + [round(saving, 1)])
        paper = _PAPER_ROWS[arch]
        result.comparisons.append(Comparison(
            metric=f"{arch} total dynamic power",
            paper=paper["total"], measured=totals[arch] * 1e3, unit="mW"))
        for component in _COMPONENTS:
            if paper.get(component, 0.0) == 0.0:
                continue
            result.comparisons.append(Comparison(
                metric=f"{arch} {component} power",
                paper=paper[component],
                measured=cells[component] * 1e3, unit="mW"))
        if arch in _PAPER_SAVINGS:
            result.comparisons.append(Comparison(
                metric=f"{arch} active power saving",
                paper=_PAPER_SAVINGS[arch], measured=saving, unit="%"))
    result.notes.append(
        "mc-ref component powers calibrate the per-event energies; the "
        "proposed-architecture IM/DM rows are *predicted* from simulated "
        "broadcast-merged access counts (see repro.power.components)")
    return result
