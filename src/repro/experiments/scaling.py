"""Core-count scaling — the PATMOS 2011 trade-off behind the paper.

The paper's premise (Section I, citing Dogan et al. PATMOS 2011) is that
parallelism buys back the performance lost to voltage scaling: N cores
at a low voltage replace one core at a high voltage.  This extension
study re-derives that trade-off on our platform: 1/2/4/8 cores each
process their share of the 8-lead workload in real time (2.048 s per
512-sample block), so the per-core clock — and with it the minimum
supply and the energy per operation — falls with the core count.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.experiments.common import Comparison, ExperimentResult
from repro.kernels.benchmark import BenchmarkSpec, build_benchmark, \
    verify_result
from repro.platform.config import build_config
from repro.platform.multicore import MultiCoreSystem
from repro.power.calibration import calibrated_set

#: Total leads of the reference application.
TOTAL_LEADS = 8
#: Seconds per 512-sample block at 250 Hz.
BLOCK_PERIOD_S = 512 / 250.0

CORE_COUNTS = (1, 2, 4, 8)

#: Burst scenario: blocks of backlog to digest within one block period
#: (e.g. catching up after a radio outage).  Chosen so a single core must
#: run near nominal voltage while eight cores stay near threshold — the
#: near-threshold-parallelism trade-off of the PATMOS'11 baseline.
BURST_BLOCKS = 256


def _simulate(n_cores: int):
    spec = BenchmarkSpec(n_leads=n_cores, huffman_private=True)
    built = build_benchmark(spec)
    config = build_config("ulpmc-bank", n_cores=n_cores)
    system = MultiCoreSystem(config)
    result = system.run(built.benchmark)
    verify_result(built, result)
    return result.stats


def run() -> ExperimentResult:
    cal = calibrated_set()
    technology = cal.technology
    energies = cal.energies

    result = ExperimentResult(
        exp_id="scaling",
        title="Core-count scaling under the real-time constraint "
              "(extension study)",
        headers=["cores", "scenario", "cycles/block", "clock [MHz]",
                 "supply [V]", "dynamic power [uW]", "vs 1 core"],
    )
    powers: dict[tuple[str, int], float] = {}
    for n_cores in CORE_COUNTS:
        stats = _simulate(n_cores)
        rates = stats.activity_rates()
        cycle_energy = (
            energies.core_instr * rates["core_active"]
            + energies.core_path_base * rates["core_active"]
            + energies.core_path_transition * rates["im_bank_transition"]
            + energies.im_access * rates["im_access"]
            + energies.dm_access * rates["dm_access"]
            + energies.dxbar_delivery * rates["dm_delivery"]
            + energies.ixbar_delivery * rates["im_delivery"]
            + energies.ixbar_transition * rates["im_bank_transition"]
            + energies.clock_core * rates["core_active"]
            + energies.clock_xbar
        )
        for scenario, blocks in (("continuous", 1), ("burst", BURST_BLOCKS)):
            # Each core handles TOTAL_LEADS / n_cores leads per period.
            blocks_per_period = blocks * TOTAL_LEADS / n_cores
            frequency = stats.total_cycles * blocks_per_period \
                / BLOCK_PERIOD_S
            speed = frequency / (1e9 / 12.0)
            if speed > 1.0:
                raise ConfigurationError(
                    "real-time infeasible at this size")
            voltage = technology.voltage_for_speed(speed)
            power = cycle_energy * frequency \
                * technology.dynamic_scale(voltage) \
                * cal.post_layout_factor
            powers[(scenario, n_cores)] = power
            result.rows.append([
                n_cores, scenario, stats.total_cycles,
                round(frequency / 1e6, 3), round(voltage, 3),
                round(power * 1e6, 3),
                round(power / powers[(scenario, CORE_COUNTS[0])], 3),
            ])

    burst_gain = powers[("burst", 8)] / powers[("burst", 1)]
    result.comparisons.append(Comparison(
        metric="8-core vs 1-core dynamic power, burst scenario",
        paper=1.0, measured=burst_gain,
        note="extension (PATMOS'11 premise): eight near-threshold cores "
             "must beat one near-nominal core; expect well below 1.0"))
    result.comparisons.append(Comparison(
        metric="8-core vs 1-core dynamic power, continuous scenario",
        paper=1.0, measured=powers[("continuous", 8)]
        / powers[("continuous", 1)],
        note="extension: below the DVFS knee every size runs at v_min, "
             "so the ratio isolates the memory-sharing overheads"))
    result.notes.append(
        "all configurations keep the full 96 kB IM / 64 kB DM, so "
        "leakage is constant across the row — the dynamic column is the "
        "architecture signal")
    return result
