"""Cycle-level crossbar with read broadcast and per-bank round-robin.

The crossbar arbitrates one cycle's worth of requests: every bank serves at
most one *access* per cycle, but a read access can be **broadcast** — all
masters reading the same (bank, offset) are granted together at the cost of
a single bank access and with no extra cycles (paper Section III-B).
Masters that lose arbitration stall (they are clock-gated by the platform)
and reissue next cycle.

The same class models both crossbars:

* I-Xbar — all requests are instruction reads; broadcast is the paper's
  instruction-broadcast mechanism.
* D-Xbar — read and write requests; writes never merge.  A core has
  separate data-read and data-write ports (the TamaRISC three-port
  interface), so one master may place one read *and* one write per cycle;
  they arbitrate independently, and a read and a write of the same core
  landing in the same single-ported bank serialise like any other
  conflict.

Statistics collected here feed the power model directly (bank accesses,
broadcast savings, and per-master bank-transition counts that model
output-net switching activity on the instruction path, which is why the
ulpmc-bank organisation spends less crossbar and core power than
ulpmc-int — Table II's last paragraph).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.interconnect.arbiter import RoundRobinArbiter


@dataclass(frozen=True)
class Request:
    """One master port's request for this cycle.

    ``grant_key`` (``(master, write)``) identifies the port across the
    arbitration result.
    """

    master: int
    bank: int
    offset: int
    write: bool = False

    @property
    def grant_key(self) -> tuple[int, bool]:
        return (self.master, self.write)


@dataclass
class XbarStats:
    """Aggregate crossbar activity."""

    #: bank accesses actually performed (after broadcast merging)
    bank_accesses: int = 0
    #: words transferred for masters (= granted requests)
    deliveries: int = 0
    #: accesses saved by broadcast (granted requests minus bank accesses)
    broadcast_savings: int = 0
    #: bank-cycles in which a broadcast (>=2-way merge) happened
    broadcasts: int = 0
    #: requests stalled by losing arbitration
    stalls: int = 0
    #: bank-cycles with conflicting (non-mergeable) requests
    conflict_events: int = 0
    #: per-master count of granted accesses whose bank differs from the
    #: master's previously granted bank (output-net switching proxy)
    bank_transitions: dict[int, int] = field(default_factory=dict)

    @property
    def total_bank_transitions(self) -> int:
        return sum(self.bank_transitions.values())


class Crossbar:
    """N-master, B-bank single-cycle crossbar."""

    def __init__(self, masters: int, banks: int, broadcast: bool = True,
                 name: str = "xbar"):
        self.name = name
        self.masters = masters
        self.banks = banks
        self.broadcast = broadcast
        self.arbiters = [RoundRobinArbiter(masters) for _ in range(banks)]
        self.stats = XbarStats()
        self._last_bank = [None] * masters
        #: Observability hooks, wired by the platform's run loop while a
        #: probe subscriber is attached (``None`` otherwise; the checks
        #: sit on the rare conflict/broadcast paths, not per request).
        #: ``probe_conflict(bank, masters)`` fires per conflicting
        #: bank-cycle, ``probe_broadcast(bank, width)`` per >=2-way merge.
        self.probe_conflict = None
        self.probe_broadcast = None

    def arbitrate(self, requests: list[Request]) -> set[tuple[int, bool]]:
        """Arbitrate one cycle of requests.

        Returns the granted ``(master, write)`` port keys.  A master may
        issue at most one read and one write per cycle; duplicates raise.
        """
        if not requests:
            return set()
        seen: set[tuple[int, bool]] = set()
        by_bank: dict[int, list[Request]] = {}
        for request in requests:
            key = request.grant_key
            if key in seen:
                raise ValueError(
                    f"master {request.master} issued two "
                    f"{'writes' if request.write else 'reads'} to "
                    f"{self.name} in one cycle")
            seen.add(key)
            by_bank.setdefault(request.bank, []).append(request)

        granted: set[tuple[int, bool]] = set()
        stats = self.stats
        for bank, bank_requests in by_bank.items():
            winners = self._arbitrate_bank(bank, bank_requests)
            for request in winners:
                granted.add(request.grant_key)
                last = self._last_bank[request.master]
                if last is not None and last != bank:
                    transitions = stats.bank_transitions
                    transitions[request.master] = \
                        transitions.get(request.master, 0) + 1
                self._last_bank[request.master] = bank
            stats.deliveries += len(winners)
            stats.bank_accesses += 1
            if len(winners) > 1:
                stats.broadcasts += 1
                stats.broadcast_savings += len(winners) - 1
                if self.probe_broadcast is not None:
                    self.probe_broadcast(bank, len(winners))
            stats.stalls += len(bank_requests) - len(winners)
        return granted

    def _arbitrate_bank(self, bank: int, bank_requests: list[Request]):
        """Pick this cycle's winners for one bank (one access, maybe merged)."""
        if len(bank_requests) == 1:
            return bank_requests
        # Group mergeable reads: same offset, read, broadcast enabled.
        groups: dict[tuple, list[Request]] = {}
        for request in bank_requests:
            if self.broadcast and not request.write:
                key = (False, request.offset)
            else:
                key = (True, request.master, request.write)
            groups.setdefault(key, []).append(request)
        if len(groups) == 1:
            return bank_requests
        self.stats.conflict_events += 1
        if self.probe_conflict is not None:
            self.probe_conflict(
                bank, sorted({request.master for request in bank_requests}))
        winner = self.arbiters[bank].grant(
            {request.master for request in bank_requests})
        # The winning master may have both a read and a write here; serve
        # the read first (the instruction cannot commit without it anyway).
        candidates = [group for group in groups.values()
                      if any(r.master == winner for r in group)]
        candidates.sort(key=lambda group: any(r.write and r.master == winner
                                              for r in group))
        return candidates[0]

    def reset(self) -> None:
        for arbiter in self.arbiters:
            arbiter.reset()
        self.stats = XbarStats()
        self._last_bank = [None] * self.masters
