"""Mesh-of-Trees (MoT) interconnection network structure.

The crossbars of the paper are MoT networks after Rahimi et al., "A
fully-synthesizable single-cycle interconnection network for Shared-L1
processor clusters" (DATE 2011): for M masters and B slaves (banks) the
network consists of

* one binary **routing tree** per master fanning out to the B banks
  (B - 1 internal routing nodes each), and
* one binary **arbitration tree** per bank collecting the M masters
  (M - 1 internal arbitration nodes each).

This module builds that topology explicitly (networkx), because the area
model (paper Table I) and the delay model (the I-Xbar adds about 1.8 ns to
the critical path, Section IV-B) are both derived from node counts and
tree depths rather than from calibrated magic totals.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.errors import ConfigurationError


class MeshOfTrees:
    """Structural model of an M-master x B-bank Mesh-of-Trees network."""

    def __init__(self, masters: int, banks: int, broadcast: bool = False,
                 name: str = "mot"):
        if masters <= 0 or banks <= 0:
            raise ConfigurationError("MoT needs masters and banks >= 1")
        if masters & (masters - 1) or banks & (banks - 1):
            raise ConfigurationError(
                "MoT model assumes power-of-two master/bank counts")
        self.name = name
        self.masters = masters
        self.banks = banks
        self.broadcast = broadcast
        self.graph = self._build()

    # -- structure -------------------------------------------------------------

    def _build(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        for master in range(self.masters):
            graph.add_node(("master", master), kind="master")
        for bank in range(self.banks):
            graph.add_node(("bank", bank), kind="bank")
        # Routing tree of each master: binary fan-out over the banks.
        for master in range(self.masters):
            self._add_tree(graph, ("master", master),
                           [("bank", bank) for bank in range(self.banks)],
                           kind="route", owner=master)
        # Arbitration tree of each bank: binary fan-in from the masters.
        for bank in range(self.banks):
            self._add_tree(graph, ("bank", bank),
                           [("master", master)
                            for master in range(self.masters)],
                           kind="arb", owner=bank)
        return graph

    def _add_tree(self, graph, root, leaves, kind, owner):
        """Add a binary tree between ``root`` and ``leaves``."""
        level = list(leaves)
        depth = 0
        while len(level) > 1:
            depth += 1
            next_level = []
            for index in range(0, len(level), 2):
                node = (kind, owner, depth, index // 2)
                graph.add_node(node, kind=kind)
                graph.add_edge(node, level[index])
                if index + 1 < len(level):
                    graph.add_edge(node, level[index + 1])
                next_level.append(node)
            level = next_level
        graph.add_edge(root, level[0])

    # -- derived quantities ------------------------------------------------------

    @property
    def routing_nodes(self) -> int:
        """Total internal routing-tree nodes: M * (B - 1)."""
        return self.masters * (self.banks - 1)

    @property
    def arbitration_nodes(self) -> int:
        """Total internal arbitration-tree nodes: B * (M - 1)."""
        return self.banks * (self.masters - 1)

    @property
    def total_nodes(self) -> int:
        return self.routing_nodes + self.arbitration_nodes

    @property
    def depth(self) -> int:
        """Logic levels on the master->bank path: log2(B) + log2(M)."""
        return int(math.log2(self.banks)) + int(math.log2(self.masters))

    def validate_structure(self) -> None:
        """Cross-check the explicit graph against the closed-form counts."""
        kinds = nx.get_node_attributes(self.graph, "kind")
        routing = sum(1 for kind in kinds.values() if kind == "route")
        arbitration = sum(1 for kind in kinds.values() if kind == "arb")
        if routing != self.routing_nodes:
            raise ConfigurationError(
                f"routing nodes {routing} != closed form "
                f"{self.routing_nodes}")
        if arbitration != self.arbitration_nodes:
            raise ConfigurationError(
                f"arbitration nodes {arbitration} != closed form "
                f"{self.arbitration_nodes}")
