"""Round-robin arbitration (paper: "for fair access to memory banks, a
round-robin scheduler arbitrates access").

One arbiter instance guards one memory bank.  The pointer advances past
each winner, so under a persistent N-way conflict every requester is served
exactly once per N cycles (fairness property, tested with hypothesis).
"""

from __future__ import annotations


class RoundRobinArbiter:
    """Fair single-winner arbiter over ``n`` requesters."""

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("arbiter needs at least one requester")
        self.n = n
        self.pointer = 0
        self.grants = 0

    def grant(self, requesters) -> int:
        """Pick the winner among ``requesters`` (iterable of ids).

        The requester at or first after the pointer wins; the pointer then
        moves just past the winner.
        """
        candidates = set(requesters)
        if not candidates:
            raise ValueError("grant called with no requesters")
        for step in range(self.n):
            candidate = (self.pointer + step) % self.n
            if candidate in candidates:
                self.pointer = (candidate + 1) % self.n
                self.grants += 1
                return candidate
        raise ValueError(f"requester ids must be < {self.n}: {candidates}")

    def reset(self) -> None:
        self.pointer = 0
        self.grants = 0
