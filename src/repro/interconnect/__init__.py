"""Crossbar interconnects (paper Section III-B).

Both the data crossbar (D-Xbar, 8 cores x 16 banks) and the instruction
crossbar (I-Xbar, 8 cores x 8 banks) are Mesh-of-Trees networks after
Rahimi et al. (DATE 2011): single-cycle access, per-bank round-robin
arbitration on conflicts, and a read-broadcast mechanism that serves all
same-address readers of a bank in one access.
"""

from repro.interconnect.arbiter import RoundRobinArbiter
from repro.interconnect.xbar import Crossbar, Request, XbarStats
from repro.interconnect.mot import MeshOfTrees

__all__ = [
    "RoundRobinArbiter",
    "Crossbar",
    "Request",
    "XbarStats",
    "MeshOfTrees",
]
