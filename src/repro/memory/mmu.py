"""Per-core memory-management unit (paper Fig. 2 and Section III-D).

Each core owns one MMU instance holding its PID.  The MMU classifies every
decoded data address as *shared* (pass-through, word-interleaved across the
banks) or *private* (translated so that each PID's working data lands in
banks owned by that core alone).  This is what lets a single compiled
program image serve all eight cores — the proposed architecture's
precondition for instruction broadcasting.

*mc-ref* has no MMU hardware; its per-core program copies reach the same
placement through link-time constants.  Functionally the mapping is
identical, so the simulator uses this class for both and the architectural
difference shows up only in the area/power constants.
"""

from __future__ import annotations

from repro.memory.layout import DataMemoryLayout


class MMU:
    """Translates one core's logical data addresses to (bank, offset)."""

    def __init__(self, pid: int, layout: DataMemoryLayout):
        self.pid = pid
        self.layout = layout
        self.translations = 0
        self.private_accesses = 0
        self.shared_accesses = 0
        #: Observability hook (``probe(pid, logical, bank, offset,
        #: private)``), wired by the platform's run loop while a
        #: ``mmu.translate`` subscriber is attached; ``None`` otherwise.
        self.probe = None
        #: Batched observability fast path: the ``mmu.translate`` ring
        #: buffer's flat data list, wired by the run loop when only
        #: batch subscribers listen.  One ``append(private)`` per
        #: translation replaces the full ``probe`` callback.
        self.probe_ring = None

    def translate(self, logical: int) -> tuple[int, int]:
        """Physical (bank, offset) for ``logical``; counts the access mix."""
        self.translations += 1
        private = self.layout.is_private(logical)
        if private:
            self.private_accesses += 1
        else:
            self.shared_accesses += 1
        bank, offset = self.layout.translate(self.pid, logical)
        ring = self.probe_ring
        if ring is not None:
            ring.append(private)
        elif self.probe is not None:
            self.probe(self.pid, logical, bank, offset, private)
        return bank, offset

    def translate_quiet(self, logical: int) -> tuple[int, int]:
        """Translate without statistics (used by loaders and inspectors)."""
        return self.layout.translate(self.pid, logical)

    @property
    def private_fraction(self) -> float:
        """Fraction of translated accesses that hit the private window.

        The paper profiles the benchmark at 76 % private vs 24 % shared
        accesses (Section III-D); tests compare against this ratio.
        """
        if not self.translations:
            return 0.0
        return self.private_accesses / self.translations
