"""A multi-banked memory: a row of :class:`MemoryBank` plus bulk helpers."""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.memory.bank import MemoryBank


class BankedMemory:
    """N single-ported banks; addressing policy lives in the layout objects."""

    def __init__(self, banks: int, bank_words: int, name: str = "mem",
                 word_mask: int = 0xFFFF):
        if banks <= 0:
            raise ConfigurationError("need at least one bank")
        self.name = name
        self.bank_words = bank_words
        self.banks = [
            MemoryBank(bank_words, name=f"{name}[{index}]",
                       word_mask=word_mask)
            for index in range(banks)
        ]

    def __len__(self) -> int:
        return len(self.banks)

    def read(self, bank: int, offset: int) -> int:
        return self.banks[bank].read(offset)

    def write(self, bank: int, offset: int, value: int) -> None:
        self.banks[bank].write(offset, value)

    def load(self, bank: int, offset: int, values) -> None:
        self.banks[bank].load(offset, values)

    def peek(self, bank: int, offset: int) -> int:
        """Read without counting an access (for result inspection)."""
        return self.banks[bank].storage[offset]

    def gate_unused(self, used: set[int]) -> list[int]:
        """Power-gate every bank not in ``used``; returns the gated list."""
        gated = []
        for index, bank in enumerate(self.banks):
            if index not in used:
                bank.gate()
                gated.append(index)
        return gated

    @property
    def gated_banks(self) -> list[int]:
        return [i for i, bank in enumerate(self.banks) if bank.gated]

    @property
    def total_reads(self) -> int:
        return sum(bank.reads for bank in self.banks)

    @property
    def total_writes(self) -> int:
        return sum(bank.writes for bank in self.banks)

    @property
    def total_accesses(self) -> int:
        return self.total_reads + self.total_writes

    def reset_counters(self) -> None:
        for bank in self.banks:
            bank.reset_counters()
