"""A single SRAM bank with access counting and power gating.

Power gating (paper Section III-C) is modelled as a boolean state: a gated
bank retains no content, contributes no leakage in the power model, and any
access to it is a simulation error (the ulpmc-bank mapping guarantees gated
banks are never addressed).
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.tamarisc.isa import WORD_MASK


class MemoryBank:
    """One single-ported memory bank of 16-bit (data) or 24-bit (instr) words."""

    def __init__(self, words: int, name: str = "bank", word_mask: int = WORD_MASK):
        if words <= 0:
            raise ValueError("bank size must be positive")
        self.name = name
        self.size = words
        self.word_mask = word_mask
        self.storage = [0] * words
        self.reads = 0
        self.writes = 0
        self.gated = False

    # -- power gating ---------------------------------------------------------

    def gate(self) -> None:
        """Power-gate the bank: contents lost, accesses become errors."""
        self.gated = True
        self.storage = [0] * self.size

    def ungate(self) -> None:
        self.gated = False

    # -- accesses ---------------------------------------------------------------

    def read(self, offset: int) -> int:
        if self.gated:
            raise SimulationError(f"read from power-gated bank {self.name}")
        if not 0 <= offset < self.size:
            raise SimulationError(
                f"offset {offset:#x} outside bank {self.name} "
                f"({self.size} words)")
        self.reads += 1
        return self.storage[offset]

    def write(self, offset: int, value: int) -> None:
        if self.gated:
            raise SimulationError(f"write to power-gated bank {self.name}")
        if not 0 <= offset < self.size:
            raise SimulationError(
                f"offset {offset:#x} outside bank {self.name} "
                f"({self.size} words)")
        self.writes += 1
        self.storage[offset] = value & self.word_mask

    def load(self, offset: int, values) -> None:
        """Initialise contents without touching the access counters."""
        if self.gated:
            raise SimulationError(f"load into power-gated bank {self.name}")
        for index, value in enumerate(values):
            position = offset + index
            if not 0 <= position < self.size:
                raise SimulationError(
                    f"load beyond bank {self.name} at {position:#x}")
            self.storage[position] = value & self.word_mask

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    def reset_counters(self) -> None:
        self.reads = 0
        self.writes = 0
