"""Multi-banked memories, address layouts and the PID-based MMU.

The data memory of both evaluated architectures is 64 kB in 16 banks behind
the data crossbar; the instruction memory is 96 kB in 8 banks (private
per-core banks in *mc-ref*, shared behind the instruction crossbar in the
proposed architecture).  Section III-C/D of the paper defines the
interleaved vs banked instruction mappings and the shared/private data
sections reproduced here.
"""

from repro.memory.bank import MemoryBank
from repro.memory.banked_memory import BankedMemory
from repro.memory.layout import (
    DataMemoryLayout,
    InstructionMemoryLayout,
    IMOrganization,
)
from repro.memory.mmu import MMU

__all__ = [
    "MemoryBank",
    "BankedMemory",
    "DataMemoryLayout",
    "InstructionMemoryLayout",
    "IMOrganization",
    "MMU",
]
