"""Address layouts: instruction-memory organisations and the data-memory map.

Instruction memory (paper Section III-C)
---------------------------------------

96 kB of instruction memory in 8 banks of 4096 24-bit words each.  Three
organisations:

* ``PRIVATE`` (*mc-ref*): each core fetches from its own bank; every bank
  holds a copy of the program.
* ``INTERLEAVED`` (*ulpmc-int*): shared IM, bank selected by the **least**
  significant PC bits — consecutive instructions rotate across banks, so
  desynchronised cores usually hit different banks.
* ``BANKED`` (*ulpmc-bank*): shared IM, bank selected by the **most**
  significant PC bits — the program packs into the fewest banks and the
  unused banks can be power-gated.

Data memory (paper Section III-D)
---------------------------------

64 kB in 16 banks of 2048 16-bit words.  The *logical* (pre-MMU) address
space seen by software has two windows whose sizes are configurable at
"compile" time:

* **shared** window at logical 0: word-interleaved across all banks
  (logical ``a`` -> bank ``a % 16``); read-only data (CS random vector,
  Huffman LUTs) lives here, so a linear sweep by synchronised cores
  broadcasts, and desynchronised sweeps spread over different banks.
* **private** window at logical ``PRIVATE_BASE``: each core's window maps,
  via its PID, onto banks owned by that core alone (16 banks / 8 cores =
  2 banks per core), so private accesses never conflict.

Physically each bank is split: the low ``shared_words_per_bank`` offsets
hold the interleaved shared section, the remaining offsets the private
sections.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError, SimulationError

#: Logical word address where every core's private window starts.
PRIVATE_BASE = 0x4000


class IMOrganization(enum.Enum):
    """The three instruction-memory organisations evaluated in the paper."""

    PRIVATE = "private"
    INTERLEAVED = "interleaved"
    BANKED = "banked"


@dataclass(frozen=True)
class InstructionMemoryLayout:
    """Maps (core, PC) to an instruction-memory (bank, offset)."""

    organization: IMOrganization
    banks: int = 8
    bank_words: int = 4096

    def __post_init__(self):
        if self.banks & (self.banks - 1):
            raise ConfigurationError("IM bank count must be a power of two")

    @property
    def total_words(self) -> int:
        return self.banks * self.bank_words

    def locate(self, core: int, pc: int) -> tuple[int, int]:
        """Physical (bank, offset) of instruction address ``pc``."""
        if self.organization == IMOrganization.PRIVATE:
            if pc >= self.bank_words:
                raise SimulationError(
                    f"PC {pc:#x} outside core {core}'s private IM bank")
            return core, pc
        if pc >= self.total_words:
            raise SimulationError(f"PC {pc:#x} outside instruction memory")
        if self.organization == IMOrganization.INTERLEAVED:
            return pc % self.banks, pc // self.banks
        return pc // self.bank_words, pc % self.bank_words

    def banks_used(self, program_words: int, n_cores: int) -> int:
        """How many IM banks hold live content for a given program size.

        Determines power gating: only the ``BANKED`` organisation
        concentrates the program into few banks (paper Section III-C).
        """
        if program_words <= 0:
            return 0
        if self.organization == IMOrganization.PRIVATE:
            return n_cores
        if self.organization == IMOrganization.INTERLEAVED:
            return min(self.banks, program_words)
        return -(-program_words // self.bank_words)  # ceil division


@dataclass(frozen=True)
class DataMemoryLayout:
    """Logical->physical data-memory map shared by all three platforms.

    ``shared_words_per_bank`` is the compile-time split of each physical
    bank between the interleaved shared section and the private sections
    (paper: "the size of the private and shared sections are configurable
    and determined during compilation").
    """

    banks: int = 16
    bank_words: int = 2048
    n_cores: int = 8
    shared_words_per_bank: int = 768

    def __post_init__(self):
        if self.banks % self.n_cores:
            raise ConfigurationError(
                "data banks must divide evenly among cores")
        if not 0 < self.shared_words_per_bank < self.bank_words:
            raise ConfigurationError(
                "shared/private split must leave room for both sections")

    # -- derived geometry --------------------------------------------------------

    @property
    def banks_per_core(self) -> int:
        return self.banks // self.n_cores

    @property
    def shared_words(self) -> int:
        """Physical capacity of the shared sections in words.

        The *addressable* shared window is additionally bounded by
        ``PRIVATE_BASE``: logical addresses at or above it are private
        by definition, so on geometries whose physical shared capacity
        exceeds ``PRIVATE_BASE`` (e.g. many small banks with the default
        split) the excess words exist but cannot be reached.
        """
        return self.banks * self.shared_words_per_bank

    @property
    def private_words_per_bank(self) -> int:
        return self.bank_words - self.shared_words_per_bank

    @property
    def private_words_per_core(self) -> int:
        """Capacity of one core's logical private window in words."""
        return self.banks_per_core * self.private_words_per_bank

    @property
    def private_base(self) -> int:
        return PRIVATE_BASE

    @property
    def total_words(self) -> int:
        return self.banks * self.bank_words

    def core_banks(self, core: int) -> tuple[int, ...]:
        """The physical banks owning ``core``'s private section."""
        if not 0 <= core < self.n_cores:
            raise ConfigurationError(f"core {core} out of range")
        first = core * self.banks_per_core
        return tuple(range(first, first + self.banks_per_core))

    # -- translation -----------------------------------------------------------

    def is_private(self, logical: int) -> bool:
        return logical >= PRIVATE_BASE

    def translate(self, core: int, logical: int) -> tuple[int, int]:
        """Translate a logical word address to physical (bank, offset).

        Shared-window addresses pass through untranslated (interleaved);
        private-window addresses are placed according to the core's PID —
        this is the MMU function of paper Fig. 2.
        """
        if logical < 0:
            raise SimulationError(f"negative address {logical}")
        if logical < PRIVATE_BASE:
            if logical >= self.shared_words:
                raise SimulationError(
                    f"shared address {logical:#x} beyond the "
                    f"{self.shared_words}-word shared section")
            return logical % self.banks, logical // self.banks
        offset = logical - PRIVATE_BASE
        if offset >= self.private_words_per_core:
            raise SimulationError(
                f"private address {logical:#x} beyond core {core}'s "
                f"{self.private_words_per_core}-word window")
        per_bank = self.private_words_per_bank
        bank = self.core_banks(core)[offset // per_bank]
        return bank, self.shared_words_per_bank + offset % per_bank
