"""Length-limited canonical Huffman coding.

The paper's Huffman stage encodes the (quantised) CS measurements for
wireless transmission through two data-dependent 1024-byte LUTs — with a
512-symbol alphabet that is one 16-bit *code* word and one 16-bit *length*
word per symbol, which is exactly what this module emits for the kernel.

Code lengths are limited to 15 bits (codes must fit a 16-bit LUT entry and
the core's 16-bit bit-packing register) using the package-merge algorithm,
then assigned canonically.  Every symbol receives a code even with zero
training frequency (add-one smoothing), because the alphabet is
data-dependent at run time.

The encoder mirrors the TamaRISC kernel bit for bit: codes are emitted
MSB-first and packed big-endian into 16-bit words; the final partial word
is left-aligned; the stream is described by its total bit count.
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass

from repro.biosignal.quantize import NUM_SYMBOLS, dequantize_symbol, \
    quantize_measurement
from repro.errors import ConfigurationError

#: Maximum code length: codes live in 16-bit LUT entries.
MAX_CODE_LENGTH = 15


def package_merge(frequencies, max_length: int = MAX_CODE_LENGTH) -> list[int]:
    """Optimal length-limited code lengths (package-merge algorithm).

    ``frequencies``: positive weight per symbol.  Returns one code length
    per symbol with every length <= ``max_length`` and Kraft sum <= 1.
    """
    n = len(frequencies)
    if n == 0:
        raise ConfigurationError("no symbols")
    if any(f <= 0 for f in frequencies):
        raise ConfigurationError("frequencies must be positive")
    if n == 1:
        return [1]
    if (1 << max_length) < n:
        raise ConfigurationError(
            f"{max_length}-bit codes cannot cover {n} symbols")

    # Items are (weight, symbol-count-vector as dict).  Level 1 is the raw
    # symbol list; level k merges pairs of level k-1 into "packages".
    originals = sorted(((float(f), {s: 1})
                        for s, f in enumerate(frequencies)),
                       key=lambda item: item[0])
    level = list(originals)
    for _ in range(max_length - 1):
        packages = []
        for index in range(0, len(level) - 1, 2):
            weight = level[index][0] + level[index + 1][0]
            contents = Counter(level[index][1])
            contents.update(level[index + 1][1])
            packages.append((weight, dict(contents)))
        level = sorted(originals + packages, key=lambda item: item[0])
    lengths = [0] * n
    for weight, contents in level[: 2 * (n - 1)]:
        for symbol, count in contents.items():
            lengths[symbol] += count
    return lengths


def canonical_codes(lengths) -> list[int]:
    """Canonical code values for the given lengths (MSB-first semantics)."""
    order = sorted(range(len(lengths)), key=lambda s: (lengths[s], s))
    codes = [0] * len(lengths)
    code = 0
    previous_length = lengths[order[0]]
    for symbol in order:
        code <<= lengths[symbol] - previous_length
        codes[symbol] = code
        previous_length = lengths[symbol]
        code += 1
    return codes


@dataclass(frozen=True)
class HuffmanCode:
    """A canonical, length-limited Huffman code over 512 symbols."""

    lengths: tuple
    codes: tuple

    @classmethod
    def from_frequencies(cls, frequencies,
                         max_length: int = MAX_CODE_LENGTH) -> "HuffmanCode":
        lengths = package_merge(list(frequencies), max_length)
        return cls(lengths=tuple(lengths),
                   codes=tuple(canonical_codes(lengths)))

    @classmethod
    def from_training_symbols(cls, symbols,
                              alphabet: int = NUM_SYMBOLS) -> "HuffmanCode":
        """Build from observed symbols with add-one smoothing.

        Smoothing guarantees a code for every symbol: the Huffman LUTs are
        indexed by *runtime* data, so unseen symbols must still encode.
        """
        counts = Counter(symbols)
        frequencies = [counts.get(s, 0) + 1 for s in range(alphabet)]
        return cls.from_frequencies(frequencies)

    def __post_init__(self):
        if len(self.lengths) != len(self.codes):
            raise ConfigurationError("lengths/codes size mismatch")
        kraft = sum(2.0 ** -length for length in self.lengths)
        if kraft > 1.0 + 1e-9:
            raise ConfigurationError(f"Kraft inequality violated: {kraft}")
        if any(not 1 <= length <= 16 for length in self.lengths):
            raise ConfigurationError("code length outside 1..16")

    # -- LUTs for the kernel ------------------------------------------------

    def code_lut_words(self) -> list[int]:
        """Per-symbol 16-bit entries, code left-aligned (MSB-first emit)."""
        return [(code << (16 - length)) & 0xFFFF
                for code, length in zip(self.codes, self.lengths)]

    def length_lut_words(self) -> list[int]:
        return list(self.lengths)

    @property
    def lut_bytes(self) -> int:
        """1024 B per LUT for the 512-symbol alphabet."""
        return 2 * len(self.lengths)

    def expected_length(self, frequencies) -> float:
        """Mean code length in bits under the given symbol distribution."""
        total = float(sum(frequencies))
        return sum(f * length for f, length in
                   zip(frequencies, self.lengths)) / total


class HuffmanEncoder:
    """Bit-exact mirror of the TamaRISC Huffman kernel."""

    def __init__(self, code: HuffmanCode):
        self.code = code

    def encode_symbols(self, symbols) -> tuple[int, list[int]]:
        """Encode symbols; returns (total_bits, 16-bit words, MSB-first)."""
        accumulator = 0
        bits_in_accumulator = 0
        total_bits = 0
        words: list[int] = []
        lengths, codes = self.code.lengths, self.code.codes
        for symbol in symbols:
            length = lengths[symbol]
            code = codes[symbol]
            total_bits += length
            for position in range(length - 1, -1, -1):
                accumulator = ((accumulator << 1) |
                               ((code >> position) & 1)) & 0xFFFF
                bits_in_accumulator += 1
                if bits_in_accumulator == 16:
                    words.append(accumulator)
                    accumulator = 0
                    bits_in_accumulator = 0
        if bits_in_accumulator:
            words.append((accumulator << (16 - bits_in_accumulator))
                         & 0xFFFF)
        return total_bits, words

    def encode_measurements(self, measurements) -> tuple[int, list[int]]:
        """Quantise 16-bit CS measurements and encode them."""
        return self.encode_symbols(
            quantize_measurement(y) for y in measurements)


class HuffmanDecoder:
    """Canonical decoder (receiver side; validates round trips)."""

    def __init__(self, code: HuffmanCode):
        self.code = code
        self._table = {(length, value): symbol
                       for symbol, (length, value)
                       in enumerate(zip(code.lengths, code.codes))}
        self._max_length = max(code.lengths)

    def decode_bits(self, total_bits: int, words) -> list[int]:
        """Decode a packed stream back into symbols."""
        symbols = []
        value = 0
        length = 0
        for index in range(total_bits):
            word = words[index >> 4]
            bit = (word >> (15 - (index & 15))) & 1
            value = (value << 1) | bit
            length += 1
            if length > self._max_length:
                raise ConfigurationError("undecodable prefix in stream")
            symbol = self._table.get((length, value))
            if symbol is not None:
                symbols.append(symbol)
                value = 0
                length = 0
        if length:
            raise ConfigurationError(
                f"{length} dangling bits at end of stream")
        return symbols

    def decode_measurements(self, total_bits: int, words) -> list[int]:
        """Decode and dequantise back to measurement estimates."""
        return [dequantize_symbol(symbol)
                for symbol in self.decode_bits(total_bits, words)]
