"""Compressed sensing with a sparse binary sensing matrix.

The paper's CS stage (after Mamaghanian et al., TBME 2011) compresses a
512-sample ECG block to 256 measurements (50 %) using a random sensing
matrix stored as a 12288-byte read-only vector with a **linear access
pattern** and a program flow independent of the input data.

We realise this as the sparse binary ±1 matrices standard for embedded CS:
every input sample contributes to exactly ``entries_per_column = 12``
measurement rows with a random sign.  The matrix is stored *packed* as one
16-bit LUT entry per (row, sign) pair::

    entry = (row << 1) | sign        # sign 1 means subtract

laid out column-major, so the kernel streams it strictly linearly:
512 columns x 12 entries = 6144 words = 12288 bytes — exactly the paper's
CS random vector footprint.

Because the TamaRISC datapath is 16-bit, the golden model accumulates with
16-bit wrap-around, bit-identical to the kernel.  (With 12-bit ECG inputs
and 12 entries per column, overflow is statistically negligible; the
reconstruction demo measures its effect end to end.)

For end-to-end validation the module also provides Orthogonal Matching
Pursuit reconstruction in a DCT sparsity basis and the PRD
(percentage-RMS-difference) quality metric used in the ECG compression
literature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.fft import idct

from repro.errors import ConfigurationError

#: Paper block geometry: 512 samples in, 256 measurements out (50 %).
BLOCK_SAMPLES = 512
BLOCK_MEASUREMENTS = 256
#: Non-zeros per input column; chosen so the packed LUT is exactly
#: 512 * 12 * 2 B = 12288 B, the paper's CS random-vector size.
ENTRIES_PER_COLUMN = 12


@dataclass(frozen=True)
class SensingMatrix:
    """A packed sparse-binary sensing matrix."""

    n_input: int
    n_output: int
    entries_per_column: int
    lut: tuple  # packed (row << 1 | sign) entries, column-major

    @classmethod
    def generate(cls, n_input: int = BLOCK_SAMPLES,
                 n_output: int = BLOCK_MEASUREMENTS,
                 entries_per_column: int = ENTRIES_PER_COLUMN,
                 seed: int = 0) -> "SensingMatrix":
        """Draw a random matrix: distinct rows per column, random signs."""
        if entries_per_column > n_output:
            raise ConfigurationError(
                "cannot place more entries than measurement rows")
        rng = np.random.default_rng(seed)
        lut = []
        for _ in range(n_input):
            rows = rng.choice(n_output, size=entries_per_column,
                              replace=False)
            signs = rng.integers(0, 2, size=entries_per_column)
            lut.extend(int(row) << 1 | int(sign)
                       for row, sign in zip(np.sort(rows), signs))
        return cls(n_input=n_input, n_output=n_output,
                   entries_per_column=entries_per_column, lut=tuple(lut))

    # -- geometry -----------------------------------------------------------

    @property
    def lut_words(self) -> int:
        return len(self.lut)

    @property
    def lut_bytes(self) -> int:
        """12288 B for the paper's geometry."""
        return 2 * self.lut_words

    def to_dense(self) -> np.ndarray:
        """The equivalent dense ±1/0 matrix, shape (n_output, n_input)."""
        phi = np.zeros((self.n_output, self.n_input))
        for column in range(self.n_input):
            base = column * self.entries_per_column
            for entry in self.lut[base:base + self.entries_per_column]:
                row, sign = entry >> 1, entry & 1
                phi[row, column] = -1.0 if sign else 1.0
        return phi


def cs_compress(matrix: SensingMatrix, samples) -> list[int]:
    """Golden-model compression, bit-identical to the TamaRISC kernel.

    ``samples``: ``n_input`` integers (two's-complement 16-bit range).
    Returns ``n_output`` 16-bit measurement words (wrap-around
    accumulation, like the 16-bit core).
    """
    if len(samples) != matrix.n_input:
        raise ValueError(
            f"expected {matrix.n_input} samples, got {len(samples)}")
    y = [0] * matrix.n_output
    lut = matrix.lut
    k = matrix.entries_per_column
    for column, sample in enumerate(samples):
        value = int(sample) & 0xFFFF
        for entry in lut[column * k:(column + 1) * k]:
            row, sign = entry >> 1, entry & 1
            if sign:
                y[row] = (y[row] - value) & 0xFFFF
            else:
                y[row] = (y[row] + value) & 0xFFFF
    return y


def measurements_to_signed(y_words) -> np.ndarray:
    """Interpret 16-bit measurement words as signed integers."""
    y = np.asarray(y_words, dtype=np.int64) & 0xFFFF
    return np.where(y >= 0x8000, y - 0x10000, y)


def omp_reconstruct(y, matrix: SensingMatrix, sparsity: int = 48,
                    tol: float = 1e-9) -> np.ndarray:
    """Orthogonal Matching Pursuit reconstruction in a DCT basis.

    Solves ``y ~ Phi Psi s`` for a ``sparsity``-sparse coefficient vector
    ``s`` and returns ``x_hat = Psi s``.  This is the off-node
    reconstruction counterpart of the on-node compression — the paper's
    node only compresses; reconstruction happens at the receiver.
    """
    y = np.asarray(y, dtype=float)
    phi = matrix.to_dense()
    # Psi: orthonormal inverse-DCT basis (columns are basis vectors).
    psi = idct(np.eye(matrix.n_input), norm="ortho", axis=0)
    sensing = phi @ psi
    norms = np.linalg.norm(sensing, axis=0)
    norms[norms == 0] = 1.0

    residual = y.copy()
    support: list[int] = []
    for _ in range(min(sparsity, matrix.n_output)):
        correlations = np.abs(sensing.T @ residual) / norms
        if support:
            correlations[support] = -1.0
        atom = int(np.argmax(correlations))
        support.append(atom)
        subset = sensing[:, support]
        coefficients, *_ = np.linalg.lstsq(subset, y, rcond=None)
        residual = y - subset @ coefficients
        if np.linalg.norm(residual) <= tol * max(np.linalg.norm(y), 1.0):
            break
    s = np.zeros(matrix.n_input)
    s[support] = coefficients
    return psi @ s


def percent_rms_difference(original, reconstructed) -> float:
    """PRD: the standard ECG compression quality metric, in percent."""
    original = np.asarray(original, dtype=float)
    reconstructed = np.asarray(reconstructed, dtype=float)
    denom = np.linalg.norm(original)
    if denom == 0:
        raise ValueError("original signal is identically zero")
    return 100.0 * np.linalg.norm(original - reconstructed) / denom
