"""Measurement quantiser shared by the golden model and the kernel.

The Huffman stage encodes CS measurements through a 512-symbol alphabet
(the paper's two 1024-byte LUTs hold 512 16-bit entries each).  The
quantiser below is exactly what the TamaRISC kernel computes, bit for bit:

    s = clamp(((y XOR 0x8000) >> 4) - 1792, 0, 511)

``y XOR 0x8000`` rebiases a two's-complement 16-bit value into unsigned
order (the core has no arithmetic right shift), the logical ``>> 4``
quantises to 16-count steps, and the subtraction centres symbol 256 on
``y == 0``.  Measurements outside ±4096 saturate to the edge symbols.
"""

from __future__ import annotations

#: Size of the Huffman alphabet (two 512-entry LUTs -> 1024 B each).
NUM_SYMBOLS = 512

#: Quantisation step in measurement counts.
STEP = 16


def quantize_measurement(y: int) -> int:
    """Map a 16-bit CS measurement (two's complement) to a symbol 0..511."""
    biased = (y & 0xFFFF) ^ 0x8000
    symbol = (biased >> 4) - 1792
    if symbol < 0:
        return 0
    if symbol >= NUM_SYMBOLS:
        return NUM_SYMBOLS - 1
    return symbol


def dequantize_symbol(symbol: int) -> int:
    """Mid-tread reconstruction of a measurement from its symbol."""
    if not 0 <= symbol < NUM_SYMBOLS:
        raise ValueError(f"symbol {symbol} outside 0..{NUM_SYMBOLS - 1}")
    return (symbol - 256) * STEP + STEP // 2
