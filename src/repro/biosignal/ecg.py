"""Synthetic multi-lead ECG generation.

The paper's benchmark operates on 8 ECG leads sampled at 250 Hz.  Clinical
recordings are not redistributable, so this module synthesises ECG with a
sum-of-Gaussians morphology model (the static form of the McSharry/ECGSYN
dynamical model): every beat is P, Q, R, S and T waves placed around the R
peak, with per-lead projection gains (leads see the same cardiac events
under different electrode angles), beat-to-beat RR-interval variability,
baseline wander and additive measurement noise.

Samples are returned as integers in a signed 12-bit ADC range, which is
what the 16-bit TamaRISC kernel consumes.  The substitution is behaviour-
preserving for the paper's evaluation: the benchmark's control flow
depends only on signal statistics (Huffman symbol distribution, CS input
magnitudes), not on clinical content.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Sampling rate used throughout the paper.
SAMPLE_RATE_HZ = 250

#: Full-scale amplitude of the simulated ADC (signed 12-bit).
ADC_FULL_SCALE = 2047

#: (amplitude [mV], offset from R peak [s], width [s]) of each wave in a
#: canonical lead-II-like beat.
_WAVES = (
    ("P", 0.12, -0.20, 0.028),
    ("Q", -0.14, -0.046, 0.011),
    ("R", 1.20, 0.0, 0.016),
    ("S", -0.22, 0.040, 0.012),
    ("T", 0.32, 0.28, 0.060),
)


@dataclass
class ECGGenerator:
    """Deterministic multi-lead ECG source.

    Attributes:
        n_leads: number of simultaneously generated leads.
        heart_rate_bpm: mean heart rate.
        hrv_std: standard deviation of the RR interval in seconds.
        noise_uv: RMS of the additive noise, in ADC counts.
        baseline_uv: amplitude of the respiratory baseline wander, counts.
        seed: RNG seed; the same seed always yields the same recording.
    """

    n_leads: int = 8
    heart_rate_bpm: float = 72.0
    hrv_std: float = 0.04
    noise_counts: float = 8.0
    baseline_counts: float = 30.0
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self):
        if self.n_leads <= 0:
            raise ValueError("need at least one lead")
        if not 20 <= self.heart_rate_bpm <= 250:
            raise ValueError("implausible heart rate")
        self._rng = np.random.default_rng(self.seed)
        # Per-lead projection gains: each lead sees the same beats scaled
        # and slightly reshaped, like distinct electrode placements.
        self._gains = 0.45 + 0.9 * self._rng.random(self.n_leads)
        self._polarity = np.where(self._rng.random(self.n_leads) < 0.15,
                                  -1.0, 1.0)
        self._t_scale = 0.9 + 0.2 * self._rng.random(self.n_leads)

    # -- waveform synthesis ---------------------------------------------------

    def _beat_times(self, duration_s: float) -> np.ndarray:
        """R-peak instants covering ``duration_s`` seconds."""
        mean_rr = 60.0 / self.heart_rate_bpm
        count = int(duration_s / mean_rr) + 4
        jitter = self._rng.normal(0.0, self.hrv_std, size=count)
        rr = np.clip(mean_rr + jitter, 0.35, 2.0)
        times = np.cumsum(rr) - rr[0] * 0.5
        return times[times < duration_s + 1.0]

    def generate(self, n_samples: int) -> np.ndarray:
        """Generate ``(n_leads, n_samples)`` int16 samples at 250 Hz."""
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        duration = n_samples / SAMPLE_RATE_HZ
        t = np.arange(n_samples) / SAMPLE_RATE_HZ
        beats = self._beat_times(duration)
        mv_scale = ADC_FULL_SCALE / 2.5  # counts per millivolt
        leads = np.zeros((self.n_leads, n_samples))
        for lead in range(self.n_leads):
            signal = np.zeros(n_samples)
            for _, amplitude, offset, width in _WAVES:
                scaled_width = width * self._t_scale[lead]
                for beat in beats:
                    centre = beat + offset * self._t_scale[lead]
                    if centre < -0.5 or centre > duration + 0.5:
                        continue
                    signal += amplitude * np.exp(
                        -0.5 * ((t - centre) / scaled_width) ** 2)
            signal *= self._gains[lead] * self._polarity[lead] * mv_scale
            # Respiratory baseline wander (~0.25 Hz) and sensor noise.
            phase = 2 * np.pi * self._rng.random()
            signal += self.baseline_counts * np.sin(
                2 * np.pi * 0.25 * t + phase)
            signal += self._rng.normal(0.0, self.noise_counts, n_samples)
            leads[lead] = signal
        clipped = np.clip(np.round(leads), -ADC_FULL_SCALE - 1,
                          ADC_FULL_SCALE)
        return clipped.astype(np.int16)

    def generate_block(self, block_samples: int = 512) -> np.ndarray:
        """One CS block per lead: the paper's unit of work (512 samples)."""
        return self.generate(block_samples)


def generate_leads(n_leads: int = 8, n_samples: int = 512,
                   seed: int = 0) -> np.ndarray:
    """Convenience wrapper: ``(n_leads, n_samples)`` int16 ECG at 250 Hz."""
    return ECGGenerator(n_leads=n_leads, seed=seed).generate(n_samples)
