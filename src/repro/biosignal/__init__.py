"""Biosignal processing: the application domain of the paper.

The reference benchmark is real-time multi-lead ECG compression:
compressed sensing (50 % compression of 512-sample blocks sampled at
250 Hz) followed by Huffman coding, running one lead per core.

* :mod:`repro.biosignal.ecg` — synthetic multi-lead ECG generator (the
  clinical recordings of the paper are proprietary; see DESIGN.md §5).
* :mod:`repro.biosignal.compressed_sensing` — sparse-binary compressed
  sensing with the paper's 12288-byte linearly-accessed random vector,
  plus OMP reconstruction for end-to-end validation.
* :mod:`repro.biosignal.huffman` — length-limited canonical Huffman
  coding with the paper's two 1024-byte lookup tables.
* :mod:`repro.biosignal.quantize` — the measurement quantiser that maps
  CS outputs onto the 512-symbol Huffman alphabet.
"""

from repro.biosignal.ecg import ECGGenerator, generate_leads
from repro.biosignal.compressed_sensing import (
    SensingMatrix,
    cs_compress,
    omp_reconstruct,
    percent_rms_difference,
)
from repro.biosignal.huffman import HuffmanCode, HuffmanEncoder, HuffmanDecoder
from repro.biosignal.quantize import (
    quantize_measurement,
    dequantize_symbol,
    NUM_SYMBOLS,
)

__all__ = [
    "ECGGenerator",
    "generate_leads",
    "SensingMatrix",
    "cs_compress",
    "omp_reconstruct",
    "percent_rms_difference",
    "HuffmanCode",
    "HuffmanEncoder",
    "HuffmanDecoder",
    "quantize_measurement",
    "dequantize_symbol",
    "NUM_SYMBOLS",
]
