"""The design space: candidate points, feasibility rules, default axes.

A :class:`DesignPoint` is one complete configuration the explorer can
rank: an architecture family (the paper's three), a core count, an
IM/DM banking geometry, a per-lead Huffman-LUT mapping, a technology
node and a supply voltage.  The *structural* part (everything except
node and voltage) determines a simulation; node and voltage only scale
the analytical power model, which is why escalation de-duplicates on
:meth:`DesignPoint.structural_key`.

Feasibility encodes the platform's hard rules rather than discovering
them by exception later:

* core and bank counts are powers of two (Mesh-of-Trees crossbars) and
  the DM banks divide evenly among cores (private-section ownership);
* mc-ref replicates the program per core, so its IM geometry is pinned
  to one 4096-word bank per core; the shared-IM designs keep the
  paper's total 96 kB and redistribute it across the swept bank count;
* the shared/private split of each DM bank is chosen canonically: the
  paper's 768-word split when the benchmark fits it, otherwise the
  smallest split that holds the shared read-only data — and the point
  is rejected when no split can satisfy both windows;
* the lead mapping must divide the paper's 8-lead ECG evenly across
  cores.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.kernels.memmap import BenchmarkMemoryMap
from repro.memory.layout import DataMemoryLayout
from repro.platform.config import ARCH_NAMES, ArchConfig, build_config
from repro.power.technology import TECH_NODES, make_technology

#: The paper's ECG workload: 8 leads sampled at 250 Hz.
TOTAL_LEADS = 8

#: Total shared-design memory capacities the sweep preserves (words).
IM_TOTAL_WORDS = 8 * 4096     # 96 kB of 24-bit instructions
DM_TOTAL_WORDS = 16 * 2048    # 64 kB of 16-bit data

#: mc-ref replicates the program: one paper-sized bank per core.
MCREF_IM_BANK_WORDS = 4096

#: The paper's shared/private split of each data bank, preferred
#: whenever the benchmark fits it (keeps the seed points bit-identical
#: to the golden geometry).
CANONICAL_DM_SPLIT = 768

#: Huffman-LUT mappings (paper Section IV-C2).
MAPPINGS = ("private-lut", "shared-lut")

# Default sweep axes: ~168 structural configurations x 5 voltages.
DEFAULT_ARCHES = ARCH_NAMES
DEFAULT_CORES = (1, 2, 4, 8)
DEFAULT_IM_BANKS = (4, 8, 16)
DEFAULT_DM_BANKS = (8, 16, 32)
DEFAULT_MAPPINGS = MAPPINGS
#: 90 nm only by default: the smaller nodes dominate every objective at
#: once (same netlist, less area, less energy, more speed), so sweeping
#: them by default would evict every 90 nm point — including the paper's
#: own designs — from the front.  ``--nodes`` opts into the projection.
DEFAULT_NODES = (90,)
DEFAULT_VOLTAGES = (1.2, 1.0, 0.8, 0.65, 0.5)

_TECHNOLOGY = make_technology()


@dataclass(frozen=True)
class DesignPoint:
    """One fully-specified candidate configuration."""

    arch: str
    n_cores: int
    im_banks: int
    im_bank_words: int
    dm_banks: int
    dm_bank_words: int
    dm_shared_words_per_bank: int
    mapping: str
    tech_nm: int = 90
    voltage: float = 1.2

    @property
    def huffman_private(self) -> bool:
        return self.mapping == "private-lut"

    def arch_config(self) -> ArchConfig:
        """The platform configuration this point simulates."""
        overrides = dict(
            n_cores=self.n_cores,
            im_banks=self.im_banks,
            im_bank_words=self.im_bank_words,
            dm_banks=self.dm_banks,
            dm_bank_words=self.dm_bank_words,
            dm_shared_words_per_bank=self.dm_shared_words_per_bank,
        )
        return build_config(self.arch, **overrides)

    def structural_key(self) -> tuple:
        """Identity of the *simulation* behind this point (no V, no node)."""
        return (self.arch, self.n_cores, self.im_banks, self.im_bank_words,
                self.dm_banks, self.dm_bank_words,
                self.dm_shared_words_per_bank, self.mapping)

    def structural_payload(self) -> dict:
        return {
            "arch": self.arch,
            "n_cores": self.n_cores,
            "im_banks": self.im_banks,
            "im_bank_words": self.im_bank_words,
            "dm_banks": self.dm_banks,
            "dm_bank_words": self.dm_bank_words,
            "dm_shared_words_per_bank": self.dm_shared_words_per_bank,
            "mapping": self.mapping,
        }

    def payload(self) -> dict:
        """JSON-friendly dump (hashing, artifacts)."""
        payload = self.structural_payload()
        payload.update(tech_nm=self.tech_nm, voltage=self.voltage)
        return payload

    def label(self) -> str:
        return (f"{self.arch}/c{self.n_cores}"
                f"/im{self.im_banks}x{self.im_bank_words}"
                f"/dm{self.dm_banks}x{self.dm_bank_words}"
                f"/{self.mapping}/{self.tech_nm}nm/{self.voltage:g}V")


def _power_of_two(n: int) -> bool:
    return n > 0 and not n & (n - 1)


def _choose_split(dm_banks: int, dm_bank_words: int, n_cores: int,
                  memmap: BenchmarkMemoryMap) -> int | None:
    """Smallest workable shared/private split, preferring the paper's."""
    candidates = [CANONICAL_DM_SPLIT]
    minimal = -(-memmap.shared_words_used // dm_banks)  # ceil division
    candidates.append(minimal)
    for split in candidates:
        if not 0 < split < dm_bank_words:
            continue
        try:
            layout = DataMemoryLayout(
                banks=dm_banks, bank_words=dm_bank_words, n_cores=n_cores,
                shared_words_per_bank=split)
            memmap.validate(layout)
        except ConfigurationError:
            continue
        return split
    return None


def make_point(arch: str, n_cores: int, im_banks: int, dm_banks: int,
               mapping: str, tech_nm: int = 90, voltage: float = 1.2,
               n_samples: int = 512,
               n_measurements: int = 256) -> DesignPoint:
    """Resolve one axis combination into a feasible :class:`DesignPoint`.

    Raises :class:`~repro.errors.ConfigurationError` with the violated
    rule when the combination is infeasible.
    """
    if mapping not in MAPPINGS:
        raise ConfigurationError(
            f"unknown mapping {mapping!r}; expected one of {MAPPINGS}")
    if tech_nm not in TECH_NODES:
        raise ConfigurationError(
            f"no scaling table for {tech_nm} nm "
            f"(have {sorted(TECH_NODES)})")
    if not _TECHNOLOGY.v_min <= voltage <= _TECHNOLOGY.v_nom:
        raise ConfigurationError(
            f"supply {voltage} V outside the technology's "
            f"[{_TECHNOLOGY.v_min}, {_TECHNOLOGY.v_nom}] V range")
    if not _power_of_two(n_cores) or TOTAL_LEADS % n_cores:
        raise ConfigurationError(
            f"{n_cores} cores cannot split {TOTAL_LEADS} ECG leads "
            f"evenly (need a power-of-two divisor)")
    if not _power_of_two(im_banks):
        raise ConfigurationError("IM bank count must be a power of two")
    if not _power_of_two(dm_banks):
        raise ConfigurationError(
            "DM bank count must be a power of two (MoT crossbar)")
    if dm_banks % n_cores:
        raise ConfigurationError(
            f"{dm_banks} DM banks do not divide evenly among "
            f"{n_cores} cores")

    if arch == "mc-ref":
        # Private IM: one program copy per core, paper-sized banks.
        im_banks = n_cores
        im_bank_words = MCREF_IM_BANK_WORDS
    else:
        im_bank_words = IM_TOTAL_WORDS // im_banks

    dm_bank_words = DM_TOTAL_WORDS // dm_banks
    memmap = BenchmarkMemoryMap(n_samples=n_samples,
                                n_measurements=n_measurements,
                                huffman_private=(mapping == "private-lut"))
    split = _choose_split(dm_banks, dm_bank_words, n_cores, memmap)
    if split is None:
        raise ConfigurationError(
            f"no shared/private split of {dm_banks}x{dm_bank_words}-word "
            f"DM banks holds the benchmark on {n_cores} cores")

    point = DesignPoint(
        arch=arch, n_cores=n_cores, im_banks=im_banks,
        im_bank_words=im_bank_words, dm_banks=dm_banks,
        dm_bank_words=dm_bank_words, dm_shared_words_per_bank=split,
        mapping=mapping, tech_nm=tech_nm, voltage=voltage)
    point.arch_config()  # final authority on structural validity
    return point


def build_space(arches=DEFAULT_ARCHES, cores=DEFAULT_CORES,
                im_banks=DEFAULT_IM_BANKS, dm_banks=DEFAULT_DM_BANKS,
                mappings=DEFAULT_MAPPINGS, nodes=DEFAULT_NODES,
                voltages=DEFAULT_VOLTAGES, n_samples: int = 512,
                n_measurements: int = 256):
    """Cross the axes into feasible, de-duplicated design points.

    Returns ``(points, rejected)`` where ``rejected`` is a list of
    ``{"axes": ..., "reason": ...}`` dicts — the sweep reports what it
    refused to evaluate instead of silently shrinking the space.
    """
    points = []
    rejected = []
    seen = set()
    for arch, c, im_b, dm_b, mapping, node, voltage in itertools.product(
            arches, cores, im_banks, dm_banks, mappings, nodes, voltages):
        axes = {"arch": arch, "n_cores": c, "im_banks": im_b,
                "dm_banks": dm_b, "mapping": mapping, "tech_nm": node,
                "voltage": voltage}
        try:
            point = make_point(arch, c, im_b, dm_b, mapping,
                               tech_nm=node, voltage=voltage,
                               n_samples=n_samples,
                               n_measurements=n_measurements)
        except ConfigurationError as exc:
            rejected.append({"axes": axes, "reason": str(exc)})
            continue
        key = point.payload()
        key = tuple(sorted(key.items()))
        if key in seen:  # mc-ref collapses the IM-bank axis
            continue
        seen.add(key)
        points.append(point)
    return points, rejected


def seed_points(mapping: str = "private-lut") -> tuple[DesignPoint, ...]:
    """The paper's two evaluated design points (8-core, paper geometry).

    mc-ref (Dogan et al., PATMOS 2011) and the proposed interleaved
    ulpmc design, both at 90 nm and nominal supply — the two rows of
    Tables I/II.  The sweep's acceptance bar is that both survive on
    the default front.
    """
    return tuple(
        make_point(arch, 8, 8, 16, mapping)
        for arch in ("mc-ref", "ulpmc-int"))
