"""The sweep driver: rank analytically, escalate the front, record it.

One :func:`run_dse` call

1. evaluates every design point with the analytical model — cache
   first, so a re-run over an unchanged space computes nothing;
2. extracts the Pareto front over (energy/sample, -throughput, area);
3. escalates the front's *structural families* (node/voltage variants
   share one simulation) to cycle-accurate runs on the farm scheduler,
   within an explicit budget (default 15 % of the sweep — the
   acceptance bar for "only the frontier simulates");
4. measures analytical-vs-simulated fidelity (cycle error per family,
   Spearman rank agreement of the energy ordering);
5. reduces everything to a deterministic front payload whose digest
   lands in a ``dse`` manifest record, and a ``pareto_front.json``
   artifact for humans and `repro regress`.

The digested payload excludes wall times and cache counters by
construction: a cold sweep and a fully-cached re-run must produce the
same digest, or the regression gate could never consume dse records.
"""

from __future__ import annotations

import dataclasses
import pathlib
import time

from repro.dse.cache import (SweepCache, canonical_hash, point_key,
                             simulation_key)
from repro.dse.escalate import (SIM_VERSION, run_escalations, spec_for,
                                stats_from_canonical)
from repro.dse.model import MODEL_VERSION, AnalyticalModel, objectives
from repro.dse.pareto import pareto_front
from repro.dse.space import DesignPoint

#: Schema tag of the Pareto-front artifact / digested payload.
FRONT_SCHEMA = "repro-dse-front/1"

#: Default escalation budget as a fraction of the sweep size.
ESCALATION_BUDGET = 0.15

ARTIFACT_NAME = "pareto_front.json"


@dataclasses.dataclass
class DseResult:
    """Everything one sweep produced."""

    sweep: dict                  #: deterministic sweep identity
    records: list                #: one dict per point (metrics, flags)
    front: list                  #: the non-dominated records
    escalations: dict            #: structural_hash -> escalation dict
    fidelity: dict
    counters: dict
    wall_time_s: float = 0.0

    def front_payload(self) -> dict:
        """The digested, run-independent description of the outcome."""
        return {
            "schema": FRONT_SCHEMA,
            "sweep": self.sweep,
            "front": [
                {"point": record["point"],
                 "metrics": record["metrics"],
                 "objectives": list(record["objectives"])}
                for record in self.front],
            "escalations": [
                {"structure": esc["structure"],
                 "sim_digest": esc["sim_digest"],
                 "total_cycles": esc["total_cycles"],
                 "predicted_cycles": esc["predicted_cycles"],
                 "cycle_rel_error": esc["cycle_rel_error"]}
                for esc in sorted(self.escalations.values(),
                                  key=lambda esc: esc["sim_digest"])],
            "fidelity": self.fidelity,
        }

    def digest(self) -> str:
        return canonical_hash(self.front_payload())

    def artifact(self) -> dict:
        """The ``pareto_front.json`` document (payload + provenance)."""
        document = self.front_payload()
        document.update(
            digest=self.digest(),
            counters=self.counters,
            wall_time_s=self.wall_time_s,
        )
        return document


def _ranks(values) -> list[float]:
    """Average ranks (1-based) of ``values``, ties shared."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) \
                and values[order[j + 1]] == values[order[i]]:
            j += 1
        for k in range(i, j + 1):
            ranks[order[k]] = (i + j) / 2 + 1
        i = j + 1
    return ranks


def rank_correlation(xs, ys) -> float | None:
    """Spearman rank correlation; ``None`` when undefined (< 2 points
    or a constant side)."""
    if len(xs) != len(ys):
        raise ValueError("rank correlation needs paired samples")
    n = len(xs)
    if n < 2:
        return None
    rx, ry = _ranks(list(xs)), _ranks(list(ys))
    mx = sum(rx) / n
    my = sum(ry) / n
    cov = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    vx = sum((a - mx) ** 2 for a in rx)
    vy = sum((b - my) ** 2 for b in ry)
    if vx == 0 or vy == 0:
        return None
    return cov / (vx * vy) ** 0.5


def sweep_identity(points) -> dict:
    """The stable identity of a sweep: space digest + model versions.

    This is what lands in the manifest's ``config`` slot, so reruns of
    the same space at any later time fall into the same regress group.
    """
    return {
        "schema": FRONT_SCHEMA,
        "model": MODEL_VERSION,
        "sim": SIM_VERSION,
        "points": len(points),
        "space_digest": canonical_hash(
            [point.payload() for point in points]),
    }


def run_dse(points, *, cache_dir=None, escalate: bool = True,
            escalate_policy: str = "front", max_escalations=None,
            workers: int = 1, fast_forward: bool = True,
            translation_blocks: bool = True, model=None,
            log=None) -> DseResult:
    """Sweep ``points``; see the module docstring for the pipeline."""
    if escalate_policy not in ("front", "all"):
        raise ValueError(
            f"unknown escalation policy {escalate_policy!r}")
    log = log if log is not None else (lambda message: None)
    started = time.perf_counter()
    model = model if model is not None else AnalyticalModel()
    cache = SweepCache(cache_dir)

    # 1. analytical pass, cache first ---------------------------------------
    records = []
    evaluated = 0
    for point in points:
        payload = point.payload()
        key = point_key(MODEL_VERSION, payload)
        metrics = cache.get(key)
        cached = metrics is not None
        if not cached:
            metrics = model.evaluate(point)
            cache.put(key, metrics)
            evaluated += 1
        records.append({
            "point": payload,
            "point_hash": key,
            "structural_hash": simulation_key(
                SIM_VERSION, point.structural_payload()),
            "_point": point,
            "metrics": metrics,
            "objectives": objectives(metrics),
            "cached": cached,
        })
    analytical_hits = cache.hits
    log(f"analytical pass: {len(records)} points, "
        f"{evaluated} evaluated, {analytical_hits} cached")

    # 2. Pareto front -------------------------------------------------------
    front = pareto_front(records, key=lambda record: record["objectives"])
    front_keys = {record["point_hash"] for record in front}
    for record in records:
        record["on_front"] = record["point_hash"] in front_keys

    # 3. escalation ---------------------------------------------------------
    candidates = records if escalate_policy == "all" else front
    families: dict[str, dict] = {}
    for record in sorted(candidates,
                         key=lambda r: (r["objectives"],
                                        r["structural_hash"])):
        families.setdefault(record["structural_hash"], record)
    budget = max_escalations if max_escalations is not None \
        else max(1, int(ESCALATION_BUDGET * len(points)))
    selected = dict(list(families.items())[:budget])
    dropped = len(families) - len(selected)
    if dropped:
        log(f"escalation budget {budget}: dropping {dropped} of "
            f"{len(families)} frontier families (best-energy first)")

    escalations: dict[str, dict] = {}
    escalations_run = 0
    escalation_hits = 0
    if escalate and selected:
        to_run = {}
        for structural_hash, record in selected.items():
            cached = cache.get(structural_hash)
            if cached is not None:
                escalation_hits += 1
                escalations[structural_hash] = dict(cached, cached=True)
            else:
                to_run[structural_hash] = record
        if to_run:
            log(f"escalating {len(to_run)} structural families to "
                f"cycle-accurate simulation ({workers} worker(s))")
            specs = {
                structural_hash: spec_for(
                    record["_point"], fast_forward=fast_forward,
                    translation_blocks=translation_blocks)
                for structural_hash, record in to_run.items()}
            results = run_escalations(specs, workers=workers)
            escalations_run = len(results)
            for structural_hash, sim in results.items():
                record = to_run[structural_hash]
                entry = {
                    "structure": record["_point"].structural_payload(),
                    "sim_digest": sim.stats_digest,
                    "total_cycles": sim.total_cycles,
                    "stats": sim.stats,
                    "wall_time_s": sim.wall_time_s,
                    "cached": False,
                }
                cache.put(structural_hash,
                          {key: value for key, value in entry.items()
                           if key not in ("cached", "wall_time_s")})
                escalations[structural_hash] = entry

    # 4. fidelity -----------------------------------------------------------
    predicted_energy = []
    simulated_energy = []
    cycle_errors = []
    for structural_hash, esc in escalations.items():
        record = families[structural_hash]
        reference = dataclasses.replace(record["_point"],
                                        tech_nm=90, voltage=1.2)
        predicted = model.evaluate(reference)
        sim_stats = stats_from_canonical(esc["stats"])
        simulated = model.metrics_from_stats(reference, sim_stats,
                                             source="simulated")
        esc["predicted_cycles"] = predicted["cycles_per_block"]
        esc["cycle_rel_error"] = abs(
            predicted["cycles_per_block"] - esc["total_cycles"]) \
            / esc["total_cycles"]
        esc["simulated_metrics"] = simulated
        predicted_energy.append(predicted["energy_per_sample_nj"])
        simulated_energy.append(simulated["energy_per_sample_nj"])
        cycle_errors.append(esc["cycle_rel_error"])
    fidelity = {
        "escalated_families": len(escalations),
        "rank_correlation": rank_correlation(predicted_energy,
                                             simulated_energy),
        "cycle_accuracy": 1.0 - (sum(cycle_errors) / len(cycle_errors)
                                 if cycle_errors else 0.0),
        "max_cycle_rel_error": max(cycle_errors, default=0.0),
    }

    counters = {
        "points": len(records),
        "structural_families": len({record["structural_hash"]
                                    for record in records}),
        "analytical_evaluated": evaluated,
        "analytical_cache_hits": analytical_hits,
        "front_size": len(front),
        "front_families": len(families) if escalate_policy == "front"
        else len({record["structural_hash"] for record in front}),
        "escalations_selected": len(selected) if escalate else 0,
        "escalations_run": escalations_run,
        "escalation_cache_hits": escalation_hits,
        "escalation_budget": budget,
        "cache": cache.counters(),
    }

    return DseResult(
        sweep=sweep_identity(points),
        records=records,
        front=front,
        escalations=escalations,
        fidelity=fidelity,
        counters=counters,
        wall_time_s=time.perf_counter() - started,
    )


def write_artifact(result: DseResult, path) -> pathlib.Path:
    """Write the ``pareto_front.json`` artifact; returns its path."""
    import json

    from repro.obs.manifest import _canonical

    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(_canonical(result.artifact()), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")
    return path


def dse_manifest_record(result: DseResult, name: str = "sweep") -> dict:
    """The ``dse`` manifest record for one sweep."""
    from repro.obs.manifest import manifest_record

    return manifest_record(
        "dse", name,
        config=result.sweep,
        stats_digest_value=result.digest(),
        stats_summary={
            "points": result.counters["points"],
            "front_size": result.counters["front_size"],
            "escalated_families":
                result.fidelity["escalated_families"],
        },
        wall_time_s=result.wall_time_s,
        extra={"counters": result.counters,
               "fidelity": result.fidelity},
    )
