"""Escalation: cycle-accurate simulation of Pareto-frontier candidates.

The analytical fast path ranks every sweep point; only the survivors
earn a real simulation.  Escalation rides the existing farm scheduler —
a :class:`DseSimSpec` is just another job spec, except it carries its
own ``run_in_worker`` payload (custom geometry, custom lead mapping)
instead of the patient-stream semantics of
:class:`repro.farm.jobs.FarmJobSpec`.  The worker runtime dispatches on
that attribute, so crash respawn, retries and fail-fast all transfer
unchanged.

``farm_warm = False`` opts out of the worker's ECG warm-up run: an
escalated geometry compiles its own program image anyway, and the warm
probe would simulate the *default* geometry for nothing.

Results come home as pickle-friendly canonical dicts (plus the stats
digest computed in the worker) so the driver can cache them verbatim
and tests can rebuild a :class:`SimulationStats` for the power model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.obs.manifest import _canonical, stats_digest
from repro.platform.stats import CoreStats, SimulationStats
from repro.dse.space import DesignPoint

#: Cache-key fingerprint for escalated simulations (independent of the
#: analytical MODEL_VERSION: a formula change must not invalidate
#: cached cycle-accurate truth).
SIM_VERSION = "dse-sim/1"


@dataclass(frozen=True)
class DseSimResult:
    """One escalated simulation, reduced to picklable facts."""

    job_id: int
    worker_id: int
    arch: str
    stats: dict                #: canonical SimulationStats dump
    stats_digest: str
    total_cycles: int
    wall_time_s: float


@dataclass(frozen=True)
class DseSimSpec:
    """Cycle-accurate simulation of one structural design point."""

    arch: str
    n_cores: int
    im_banks: int
    im_bank_words: int
    dm_banks: int
    dm_bank_words: int
    dm_shared_words_per_bank: int
    huffman_private: bool
    n_samples: int = 512
    n_measurements: int = 256
    fast_forward: bool = True
    translation_blocks: bool = True

    #: Worker protocol: skip the default-geometry warm-up run.
    farm_warm = False

    def config(self):
        from repro.platform.config import build_config
        return build_config(
            self.arch, n_cores=self.n_cores, im_banks=self.im_banks,
            im_bank_words=self.im_bank_words, dm_banks=self.dm_banks,
            dm_bank_words=self.dm_bank_words,
            dm_shared_words_per_bank=self.dm_shared_words_per_bank)

    def run_in_worker(self, job_id: int, worker_id: int = 0) -> DseSimResult:
        """Build, simulate and verify this geometry (worker payload)."""
        from repro.kernels.benchmark import BenchmarkSpec, \
            build_benchmark, verify_result
        from repro.platform.multicore import MultiCoreSystem

        started = time.perf_counter()
        built = build_benchmark(BenchmarkSpec(
            n_leads=self.n_cores, n_samples=self.n_samples,
            n_measurements=self.n_measurements,
            huffman_private=self.huffman_private))
        system = MultiCoreSystem(self.config(),
                                 fast_forward=self.fast_forward,
                                 translation_blocks=self.translation_blocks)
        result = system.run(built.benchmark)
        verify_result(built, result)
        return DseSimResult(
            job_id=job_id,
            worker_id=worker_id,
            arch=self.arch,
            stats=_canonical(result.stats),
            stats_digest=stats_digest(result.stats),
            total_cycles=result.stats.total_cycles,
            wall_time_s=time.perf_counter() - started,
        )


def spec_for(point: DesignPoint, *, fast_forward: bool = True,
             translation_blocks: bool = True, n_samples: int = 512,
             n_measurements: int = 256) -> DseSimSpec:
    """The simulation spec behind one design point's structural family."""
    return DseSimSpec(
        arch=point.arch, n_cores=point.n_cores, im_banks=point.im_banks,
        im_bank_words=point.im_bank_words, dm_banks=point.dm_banks,
        dm_bank_words=point.dm_bank_words,
        dm_shared_words_per_bank=point.dm_shared_words_per_bank,
        huffman_private=point.huffman_private,
        n_samples=n_samples, n_measurements=n_measurements,
        fast_forward=fast_forward, translation_blocks=translation_blocks)


def stats_from_canonical(payload: dict) -> SimulationStats:
    """Rebuild a :class:`SimulationStats` from its canonical dump."""
    cores = [CoreStats(**core) for core in payload.get("cores", [])]
    fields = {key: value for key, value in payload.items()
              if key != "cores"}
    return SimulationStats(cores=cores, **fields)


def run_escalations(specs: dict, workers: int = 1,
                    on_progress=None) -> dict:
    """Simulate ``{key: DseSimSpec}`` on the farm; ``{key: DseSimResult}``.

    Raises :class:`RuntimeError` listing every job that stayed failed
    after the scheduler's retries — a partial front is worse than a
    loud stop, because downstream fidelity numbers would silently
    compare against holes.
    """
    from repro.farm.jobs import FarmScheduler, JobState

    if not specs:
        return {}
    with FarmScheduler(workers=workers, warm=True) as farm:
        by_job = {farm.submit(spec): key for key, spec in specs.items()}
        done = 0
        results = {}
        failures = []
        while farm.outstanding:
            for job in farm.poll(timeout=0.05):
                key = by_job[job.job_id]
                if job.state is JobState.DONE:
                    results[key] = job.result
                else:
                    failures.append(
                        f"{key}: {job.state.value}"
                        + (f" ({job.error.strip().splitlines()[-1]})"
                           if job.error else ""))
                done += 1
                if on_progress is not None:
                    on_progress(done, len(specs), key)
    if failures:
        raise RuntimeError(
            "escalation failed for "
            + "; ".join(str(failure) for failure in failures))
    return results
