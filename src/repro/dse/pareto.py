"""Pareto dominance and front extraction for the design-space explorer.

All objectives are *minimised*: a sweep record carries an ``objectives``
tuple such as ``(energy_per_sample, -throughput, area)`` where
higher-is-better axes are negated by the caller.  The functions here are
deliberately pure and container-agnostic — ``tests/dse/
test_pareto_properties.py`` pins their algebra (irreflexivity,
transitivity, permutation/duplicate invariance, merge-of-fronts ==
front-of-union) with hypothesis, and the sweep driver trusts exactly
those properties when it escalates only frontier candidates.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when objective vector ``a`` Pareto-dominates ``b``.

    ``a`` dominates ``b`` iff it is no worse on every axis and strictly
    better on at least one (all objectives minimised).  Equal vectors do
    not dominate each other, which makes the relation irreflexive.
    """
    if len(a) != len(b):
        raise ValueError(
            f"objective vectors differ in arity: {len(a)} vs {len(b)}")
    no_worse = all(x <= y for x, y in zip(a, b))
    return no_worse and any(x < y for x, y in zip(a, b))


def pareto_front(items: Iterable, key: Callable = None) -> list:
    """The non-dominated subset of ``items``, in canonical order.

    ``key`` maps an item to its objective vector (default: the item
    itself).  The result is sorted by objective vector (ties broken
    stably by first appearance) and de-duplicated on the objective
    vector, so the front is invariant under permutation and duplication
    of the input — the properties the sweep cache relies on.
    """
    key = key if key is not None else lambda item: item
    keyed = [(tuple(key(item)), index, item)
             for index, item in enumerate(items)]
    front = []
    seen = set()
    for vector, index, item in keyed:
        if vector in seen:
            continue
        if any(dominates(other, vector) for other, _, _ in keyed):
            continue
        seen.add(vector)
        front.append((vector, index, item))
    front.sort(key=lambda entry: (entry[0], entry[1]))
    return [item for _, _, item in front]


def merge_fronts(*fronts: Iterable, key: Callable = None) -> list:
    """Pareto front of the union of several (partial) fronts.

    Sound for incremental sweeps because dominance is transitive: a
    point dominated within its own batch can never re-enter the merged
    front.
    """
    combined = [item for front in fronts for item in front]
    return pareto_front(combined, key=key)
