"""Analytical ranking model: calibrated power x first-order cycle scaling.

The explorer must rank hundreds of configurations without simulating
them.  It anchors on the *measured* full-geometry reference runs (one
per architecture and LUT mapping, the same runs that calibrate the
power model) and perturbs them along each axis with first-order
scaling laws:

* **Cores** — per-core work is a property of the program, so event
  counters scale with ``n_cores / 8``; broadcast savings scale with the
  number of *other* cores a merge can absorb (``(c-1)/7``).
* **Bank conflicts** — stalls grow with the number of contending peers
  (``(c-1)/7``) and shrink with the number of effective banks the
  accesses spread over (inverse proportionality, the classic balls-in-
  bins first-order term).  Predicted cycles are the anchor cycles plus
  the per-core stall delta.
* **Bank geometry** — per-access energies and per-bank leakage scale
  with the modelled bank area (periphery + cells); crossbar delivery
  energies scale with the Mesh-of-Trees node count.
* **Node and voltage** — the :mod:`repro.power.technology` tables.

By construction the prediction is *exact* at the anchors: an 8-core
paper-geometry point reproduces its reference simulation bit-for-bit,
which is what the differential suite pins.  Everything else is an
estimate whose fidelity ``benchmarks/bench_dse.py`` measures against
escalated cycle-accurate runs and gates in CI.

``MODEL_VERSION`` participates in the sweep-cache key: bump it whenever
a formula changes so stale cached rankings can never leak into a new
front.
"""

from __future__ import annotations

from dataclasses import replace

from repro.platform.config import ArchConfig
from repro.platform.stats import CoreStats, SimulationStats
from repro.power.area import AreaModel
from repro.power.dvfs import NOMINAL_PERIOD_NS
from repro.power.power_model import PowerModel
from repro.power.technology import tech_node
from repro.dse.space import DesignPoint, TOTAL_LEADS

#: Cache-key fingerprint of the analytical formulas below.
MODEL_VERSION = "dse-analytical/1"

#: Core count of the calibration anchors (the paper geometry).
ANCHOR_CORES = 8

#: ECG sampling rate: one 8-lead sample tuple every 4 ms.
SAMPLE_RATE_HZ = 250.0


def _mot_nodes(masters: int, banks: int) -> int:
    """Closed-form Mesh-of-Trees node count: M(B-1) + B(M-1)."""
    return masters * (banks - 1) + banks * (masters - 1)


def _effective_im_banks(config: ArchConfig, program_words: int) -> int:
    """Banks the instruction stream actually spreads over."""
    return config.im_layout().banks_used(program_words, config.n_cores)


class AnalyticalModel:
    """Predicts metrics for any :class:`DesignPoint` from the anchors.

    Construction is free; the calibrated reference simulations load
    lazily on first use, so a fully-cached sweep never simulates.
    """

    def __init__(self):
        self._cal = None
        self._anchors: dict[bool, tuple] = {}
        self._stats_cache: dict[tuple, SimulationStats] = {}

    # -- anchors ----------------------------------------------------------------

    @property
    def cal(self):
        if self._cal is None:
            from repro.power.calibration import calibrated_set
            self._cal = calibrated_set()
        return self._cal

    def _anchor(self, huffman_private: bool):
        """(built benchmark, reference results) for one LUT mapping."""
        if huffman_private not in self._anchors:
            from repro.power.calibration import reference_results
            self._anchors[huffman_private] = reference_results(
                huffman_private=huffman_private)
        return self._anchors[huffman_private]

    def _program_words(self, huffman_private: bool) -> int:
        built, _ = self._anchor(huffman_private)
        return built.benchmark.program.size_bytes // 3

    def _useful_ops_per_core(self, huffman_private: bool) -> float:
        """Per-core useful work: the mc-ref reference instruction count."""
        _, results = self._anchor(huffman_private)
        return results["mc-ref"].stats.total_retired / ANCHOR_CORES

    def _block_samples(self, huffman_private: bool) -> int:
        built, _ = self._anchor(huffman_private)
        return built.spec.n_samples

    # -- cycle / activity prediction --------------------------------------------

    def predicted_stats(self, point: DesignPoint) -> SimulationStats:
        """Synthetic :class:`SimulationStats` for one structural config.

        Exact at the 8-core paper geometry; first-order everywhere else.
        Cached per structural key (voltage and node do not change it).
        """
        key = point.structural_key()
        if key in self._stats_cache:
            return self._stats_cache[key]

        config = point.arch_config()
        _, results = self._anchor(point.huffman_private)
        anchor = results[point.arch].stats
        anchor_config = results[point.arch].system.config
        program_words = self._program_words(point.huffman_private)
        c = point.n_cores
        share = c / ANCHOR_CORES

        def per_core(total):
            return total / ANCHOR_CORES

        # Broadcast savings: merges absorb up to c-1 peer requests.
        peer_ratio = (c - 1) / (ANCHOR_CORES - 1)
        im_fetches = anchor.im_fetches * share
        im_savings = anchor.im_broadcast_savings * peer_ratio
        im_accesses = anchor.im_bank_accesses \
            + (im_fetches - anchor.im_fetches) \
            - (im_savings - anchor.im_broadcast_savings)
        dm_deliveries = anchor.dm_deliveries * share
        dm_savings = anchor.dm_broadcast_savings * peer_ratio
        dm_accesses = anchor.dm_bank_accesses \
            + (dm_deliveries - anchor.dm_deliveries) \
            - (dm_savings - anchor.dm_broadcast_savings)

        # Conflict stalls: ~ (contending peers) / (effective banks).
        if config.has_ixbar:
            im_eff_anchor = _effective_im_banks(anchor_config,
                                                program_words)
            im_eff = _effective_im_banks(config, program_words)
            im_stall_pc = per_core(anchor.im_stalled_requests) \
                * peer_ratio * (im_eff_anchor / im_eff)
            im_conflicts = anchor.im_conflict_events * peer_ratio \
                * (im_eff_anchor / im_eff)
        else:
            im_stall_pc = 0.0
            im_conflicts = 0.0
        dm_ratio = anchor_config.dm_banks / config.dm_banks
        dm_stall_pc = per_core(anchor.dm_stalled_requests) \
            * peer_ratio * dm_ratio
        dm_conflicts = anchor.dm_conflict_events * peer_ratio * dm_ratio

        stall_delta_pc = (im_stall_pc - per_core(anchor.im_stalled_requests)
                          + dm_stall_pc
                          - per_core(anchor.dm_stalled_requests))
        retired_pc = per_core(anchor.total_retired)
        cycles = max(anchor.total_cycles + stall_delta_pc, retired_pc)
        stall_pc = max(per_core(anchor.total_stall_cycles)
                       + stall_delta_pc, 0.0)

        banks_used = _effective_im_banks(config, program_words)
        gated = config.im_banks - banks_used if config.im_power_gating \
            else 0

        stats = SimulationStats(
            arch=point.arch,
            total_cycles=cycles,
            cores=[CoreStats(retired=retired_pc, stall_cycles=stall_pc)
                   for _ in range(c)],
            im_bank_accesses=im_accesses,
            im_fetches=im_fetches,
            im_broadcasts=anchor.im_broadcasts,
            im_broadcast_savings=im_savings,
            im_conflict_events=im_conflicts,
            im_stalled_requests=im_stall_pc * c,
            im_bank_transitions=anchor.im_bank_transitions * share,
            im_banks_used=banks_used,
            im_banks_gated=gated,
            dm_bank_accesses=dm_accesses,
            dm_reads_delivered=anchor.dm_reads_delivered * share,
            dm_writes_delivered=anchor.dm_writes_delivered * share,
            dm_broadcasts=anchor.dm_broadcasts,
            dm_broadcast_savings=dm_savings,
            dm_conflict_events=dm_conflicts,
            dm_stalled_requests=dm_stall_pc * c,
            dm_private_accesses=anchor.dm_private_accesses * share,
            dm_shared_accesses=anchor.dm_shared_accesses * share,
            sync_cycles=anchor.sync_cycles,
        )
        self._stats_cache[key] = stats
        return stats

    # -- component scaling -------------------------------------------------------

    def _scaled_components(self, config: ArchConfig):
        """Per-event energies and leakage rescaled to this geometry."""
        cal = self.cal
        area = AreaModel(config)
        s_im = area.memory_bank_kge(config.im_bank_words * 3) \
            / area.memory_bank_kge(4096 * 3)
        s_dm = area.memory_bank_kge(config.dm_bank_words * 2) \
            / area.memory_bank_kge(2048 * 2)
        s_dx = _mot_nodes(config.n_cores, config.dm_banks) \
            / _mot_nodes(ANCHOR_CORES, 16)
        s_ix = _mot_nodes(config.n_cores, config.im_banks) \
            / _mot_nodes(ANCHOR_CORES, 8) if config.has_ixbar else 1.0
        energies = replace(
            cal.energies,
            im_access=cal.energies.im_access * s_im,
            dm_access=cal.energies.dm_access * s_dm,
            dxbar_delivery=cal.energies.dxbar_delivery * s_dx,
            ixbar_delivery=cal.energies.ixbar_delivery * s_ix,
            ixbar_transition=cal.energies.ixbar_transition * s_ix,
        )
        leakage = replace(
            cal.leakage,
            im_per_bank=cal.leakage.im_per_bank * s_im,
            dm_per_bank=cal.leakage.dm_per_bank * s_dm,
        )
        return energies, leakage

    # -- metrics -----------------------------------------------------------------

    def metrics_from_stats(self, point: DesignPoint,
                           stats: SimulationStats,
                           source: str) -> dict:
        """Objective metrics for ``point`` given (predicted or simulated)
        activity statistics — one formula for both fidelity sides."""
        cal = self.cal
        config = point.arch_config()
        node = tech_node(point.tech_nm)
        tech = cal.technology
        energies, leakage = self._scaled_components(config)
        model = PowerModel(config, stats, energies, leakage, tech,
                           post_layout_factor=cal.post_layout_factor)

        frequency_hz = (1e9 / NOMINAL_PERIOD_NS) \
            * tech.speed_factor(point.voltage) * node.speed_scale
        useful_per_block = self._useful_ops_per_core(
            point.huffman_private) * point.n_cores
        ops_per_cycle = useful_per_block / stats.total_cycles
        throughput_mops = frequency_hz * ops_per_cycle / 1e6

        dynamic_w = model.dynamic_power(
            frequency_hz, point.voltage).total * node.dynamic_scale
        leakage_w = model.total_leakage(point.voltage) * node.leakage_scale
        total_w = dynamic_w + leakage_w

        # One simulated block covers n_cores leads; a full 8-lead sample
        # tuple therefore costs (8 / n_cores) blocks.
        n_samples = self._block_samples(point.huffman_private)
        blocks_per_s = frequency_hz / stats.total_cycles
        sample_tuples_per_s = blocks_per_s * n_samples \
            * point.n_cores / TOTAL_LEADS
        energy_per_sample_nj = total_w / sample_tuples_per_s * 1e9

        area = AreaModel(config)
        area_mm2 = area.total_mm2() * node.area_scale

        return {
            "source": source,
            "cycles_per_block": stats.total_cycles,
            "ops_per_cycle": ops_per_cycle,
            "frequency_mhz": frequency_hz / 1e6,
            "throughput_mops": throughput_mops,
            "dynamic_mw": dynamic_w * 1e3,
            "leakage_mw": leakage_w * 1e3,
            "total_mw": total_w * 1e3,
            "energy_per_sample_nj": energy_per_sample_nj,
            "area_kge": area.total_kge() * node.area_scale,
            "area_mm2": area_mm2,
            "im_banks_used": stats.im_banks_used,
            "im_banks_gated": stats.im_banks_gated,
            "real_time_ok": sample_tuples_per_s >= SAMPLE_RATE_HZ,
        }

    def evaluate(self, point: DesignPoint) -> dict:
        """Analytical metrics for one design point."""
        return self.metrics_from_stats(point, self.predicted_stats(point),
                                       source="analytical")


def objectives(metrics: dict) -> tuple[float, float, float]:
    """Minimisation vector: (energy/sample, -throughput, area)."""
    return (metrics["energy_per_sample_nj"],
            -metrics["throughput_mops"],
            metrics["area_mm2"])
