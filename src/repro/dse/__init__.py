"""Design-space exploration: analytical ranking, Pareto fronts,
escalation of frontier candidates to cycle-accurate simulation."""

from repro.dse.cache import SweepCache, canonical_hash
from repro.dse.driver import (DseResult, dse_manifest_record,
                              rank_correlation, run_dse, sweep_identity,
                              write_artifact)
from repro.dse.model import MODEL_VERSION, AnalyticalModel, objectives
from repro.dse.pareto import dominates, merge_fronts, pareto_front
from repro.dse.space import (DEFAULT_VOLTAGES, DesignPoint, build_space,
                             make_point, seed_points)

__all__ = [
    "AnalyticalModel",
    "DEFAULT_VOLTAGES",
    "DesignPoint",
    "DseResult",
    "MODEL_VERSION",
    "SweepCache",
    "build_space",
    "canonical_hash",
    "dominates",
    "dse_manifest_record",
    "make_point",
    "merge_fronts",
    "objectives",
    "pareto_front",
    "rank_correlation",
    "run_dse",
    "seed_points",
    "sweep_identity",
    "write_artifact",
]
