"""Deterministic sweep-point cache: hash the config, skip the rerun.

Every sweep point is keyed by a sha256 over the *canonical* JSON of its
identity — sorted dict keys, deterministic set ordering, no floats ever
re-derived — via the same :func:`repro.obs.manifest._canonical` pipeline
the run manifests use.  The hash is therefore stable across process
restarts, ``PYTHONHASHSEED`` values and dict construction orders
(``tests/dse/test_cache_determinism.py`` asserts this across two
interpreter invocations), which is what makes "a cached rerun
re-evaluates zero points" a checkable guarantee instead of a hope.

Storage is an append-only JSONL file (one ``{"key", "record"}`` object
per line) written with the same single-``os.write``/``O_APPEND``
discipline as the manifests, so concurrent sweeps sharing a cache
directory interleave at line granularity.  Loads are tolerant: corrupt
lines are dropped (the entry is simply recomputed), and a duplicated
key keeps the newest record.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys

from repro.obs.manifest import _canonical, _digest

#: Bump when the cache line format changes.
CACHE_SCHEMA = "repro-dse-cache/1"

CACHE_NAME = "cache.jsonl"


def canonical_hash(payload) -> str:
    """Deterministic sha256 over the canonical JSON of ``payload``."""
    return _digest(payload)


def point_key(model_version: str, point_payload: dict) -> str:
    """Cache key of one analytical evaluation."""
    return canonical_hash({"kind": "analytical", "model": model_version,
                           "point": point_payload})


def simulation_key(sim_version: str, structural_payload: dict) -> str:
    """Cache key of one escalated cycle-accurate simulation."""
    return canonical_hash({"kind": "sim", "model": sim_version,
                           "structure": structural_payload})


class SweepCache:
    """JSONL-backed key/record store with hit/miss accounting.

    ``directory=None`` disables persistence but keeps the counters, so
    the driver's bookkeeping is uniform.
    """

    def __init__(self, directory=None):
        self.path = None if directory is None \
            else pathlib.Path(directory) / CACHE_NAME
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.skipped = 0  # corrupt lines ignored (interrupted writer)
        self._entries: dict[str, dict] = {}
        if self.path is not None and self.path.is_file():
            for line in self.path.read_text(
                    encoding="utf-8").splitlines():
                if not line.strip():
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # Truncated tail from a killed writer: the append
                    # is a single os.write, so at most one line is
                    # affected — skip it, never poison later sweeps.
                    self.skipped += 1
                    continue
                if not isinstance(entry, dict) \
                        or entry.get("schema") != CACHE_SCHEMA:
                    continue
                key = entry.get("key")
                if isinstance(key, str) and "record" in entry:
                    self._entries[key] = entry["record"]
            if self.skipped:
                print(f"warning: skipped {self.skipped} corrupt cache "
                      f"line(s) in {self.path} (interrupted writer)",
                      file=sys.stderr)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str):
        """The cached record for ``key``, counting the hit or miss."""
        record = self._entries.get(key)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record) -> None:
        """Install and (when persistent) append one cache entry."""
        record = _canonical(record)
        self._entries[key] = record
        self.writes += 1
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(_canonical({"schema": CACHE_SCHEMA, "key": key,
                                      "record": record}),
                          sort_keys=True) + "\n"
        fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                     0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)

    def counters(self) -> dict:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses, "writes": self.writes,
                "skipped": self.skipped}
