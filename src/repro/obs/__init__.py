"""Platform-wide observability: probe bus, metrics, traces, manifests.

The paper's methodology (Fig. 4) feeds *trace files* from the routed
design into power analysis; this package is the simulator's equivalent
measurement substrate.  It has four layers, each usable on its own:

* :mod:`repro.obs.probes` — a lightweight **probe bus** of named event
  hooks (``core.retire``, ``ixbar.conflict``, ``ff.enter`` ...) emitted
  by the platform simulator, the fast-forward engine and the streaming
  driver.  With no subscriber attached the emission sites compile down
  to a handful of pre-hoisted boolean checks (<2 % overhead, enforced by
  ``benchmarks/bench_obs_overhead.py``).
* :mod:`repro.obs.metrics` — a **metrics registry** of counters, gauges
  and histograms, plus :class:`~repro.obs.metrics.ProbeMetrics`, a bus
  subscriber that derives conflict-burst-length and sync-group-size
  histograms and reconciles its counters against
  :class:`~repro.platform.stats.SimulationStats`.
* :mod:`repro.obs.perfetto` — **Chrome trace-event / Perfetto JSON
  export**: one track per core (run/stall/halted slices), per-IM-bank
  power-gate state and fast-forward spans; the file opens directly in
  ``ui.perfetto.dev``.
* :mod:`repro.obs.manifest` — **run manifests**: append-only JSONL
  records (config hash, git revision, stats digest, wall time, event
  summary) written to ``runs/`` by the CLI and the benchmarks, giving
  every reported number a provenance trail.
* :mod:`repro.obs.regress` — **regression detection** over those
  manifests: group records by run identity, compare stats digests
  across git revisions (and within one revision, for nondeterminism)
  and render a pass/fail report — the engine behind ``repro regress``.
* :mod:`repro.obs.telemetry` — **streaming telemetry**: a
  :class:`~repro.obs.telemetry.WindowedAggregator` folds the probe
  stream into fixed-cycle-window rolling summaries (per-core IPC,
  stall/conflict/broadcast rates, lockstep fraction, deadline misses)
  live during a run, with a merge operation combining N aggregators
  into one fleet view — the engine behind ``repro watch`` and the
  manifest ``telemetry`` block.

Nothing in this package imports :mod:`repro.platform`, so the platform
modules can import the probe bus without cycles.
"""

from repro.errors import ConfigurationError
from repro.obs.manifest import (
    config_digest,
    git_revision,
    manifest_record,
    read_manifests,
    stats_digest,
    write_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ProbeMetrics,
)
from repro.obs.perfetto import TraceRecorder
from repro.obs.probes import (
    EVENTS,
    PC_BITS,
    PC_MASK,
    EventRing,
    ProbeBus,
    pack_cycle_pc,
    unpack_cycle_pc,
)
from repro.obs.regress import (
    Finding,
    RegressionReport,
    run_regression,
)
from repro.obs.telemetry import (
    WindowedAggregator,
    WindowSummary,
    merge_window_lists,
    summaries_digest,
)

__all__ = [
    "EVENTS",
    "PC_BITS",
    "PC_MASK",
    "ConfigurationError",
    "EventRing",
    "Finding",
    "ProbeBus",
    "RegressionReport",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProbeMetrics",
    "TraceRecorder",
    "WindowSummary",
    "WindowedAggregator",
    "config_digest",
    "git_revision",
    "manifest_record",
    "merge_window_lists",
    "pack_cycle_pc",
    "read_manifests",
    "run_regression",
    "stats_digest",
    "summaries_digest",
    "unpack_cycle_pc",
    "write_manifest",
]
