"""Cross-revision regression detection over run manifests.

The manifests under ``runs/`` (see :mod:`repro.obs.manifest`) give every
simulation a stable identity — ``(kind, name, arch, config_hash)`` — and
a ``stats_digest`` over its full canonical output.  The simulator is
deterministic, so two runs of the same identity must produce the same
digest *regardless of when or on which git revision they ran*; the paper
pipeline has no tolerated drift.  This module turns that invariant into
a gate:

* **history mode** (default) — scan one manifest directory, group the
  records by identity, and flag every group whose digest changed, either
  across git revisions (*drift*: a code change altered the simulated
  numbers) or within a single revision (*nondeterminism*: the same code
  produced two different outputs, which is always a bug).
* **baseline mode** (``--baseline DIR``) — compare the newest record of
  each identity in the current directory against the newest matching
  record in a baseline directory (e.g. a CI artifact from ``main``).

Benchmark records are excluded by default: their payloads are wall-clock
timings, which legitimately differ between runs.

Reports render as text, JSON, or markdown; :func:`run_regression`
returns a :class:`RegressionReport` whose :attr:`~RegressionReport.ok`
drives the CLI exit code (``repro regress`` exits non-zero on drift).

Corrupt manifest lines — truncated writes, merge-conflict residue — are
skipped with a warning instead of aborting: a provenance trail that can
only be read when perfect would rot immediately.
"""

from __future__ import annotations

import json
import pathlib
import sys
from dataclasses import dataclass, field

from repro.obs.manifest import (DEFAULT_DIRECTORY, MANIFEST_NAME,
                                SCHEMA_VERSION, schema_version)

#: Record kinds whose digests are expected to be reproducible.
#: ``benchmark`` records digest timing payloads and are excluded.
#: ``farm`` (one record per fleet shard) and ``fleet`` (the merged
#: farm record) digest simulated outputs only, so they gate like any
#: other run.  ``dse`` records digest the Pareto-front payload (points,
#: metrics, escalated cycle counts — never wall times or cache
#: counters), so a drifted front or fidelity number gates exactly like
#: a drifted simulation.  ``fault`` records digest the per-trial
#: outcome rows of a fault-injection campaign; their identity excludes
#: the execution engine, so regress enforces campaign determinism
#: across exact/fast-forward runs, worker counts and resume state.
DEFAULT_KINDS = ("experiment", "trace", "profile", "farm", "fleet",
                 "dse", "fault")

#: ``stats_summary`` fields shown with before/after values when a group
#: drifts, in display order.
SUMMARY_FIELDS = ("total_cycles", "total_retired", "total_stall_cycles",
                  "im_bank_accesses", "dm_bank_accesses", "sync_cycles")


def load_records(directory) -> tuple[list[dict], int]:
    """Read ``manifest.jsonl`` tolerantly.

    Returns ``(records, skipped)`` where ``skipped`` counts lines that
    were not valid JSON objects; each one is reported on stderr and
    dropped rather than failing the whole scan.
    """
    path = pathlib.Path(directory) / MANIFEST_NAME
    if not path.is_file():
        return [], 0
    records = []
    skipped = 0
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            record = None
        if not isinstance(record, dict):
            print(f"warning: {path}:{lineno}: skipping corrupt manifest "
                  f"line", file=sys.stderr)
            skipped += 1
            continue
        records.append(record)
    return records, skipped


def filter_schema(records, where) -> tuple[list[dict], int]:
    """Drop records whose manifest schema this checkout cannot read.

    A newer checkout may have written ``runs/`` with a schema version
    this parser does not know (the reverse of the corrupt-line case:
    the record is perfectly valid, just from the future).  Those are a
    skip-with-warning finding, never a hard error — an old release must
    survive a newer CI artifact.  Returns ``(kept, skipped)``.
    """
    kept = []
    skipped = 0
    for record in records:
        version = schema_version(record)
        if version is not None and version <= SCHEMA_VERSION:
            kept.append(record)
            continue
        tag = record.get("schema")
        print(f"warning: {where}: skipping record "
              f"{record.get('kind')}/{record.get('name')} with "
              f"unsupported manifest schema {tag!r} (this checkout "
              f"reads up to repro-manifest/{SCHEMA_VERSION})",
              file=sys.stderr)
        skipped += 1
    return kept, skipped


def group_key(record: dict) -> tuple:
    """Identity under which digests must agree."""
    return (record.get("kind"), record.get("name"), record.get("arch"),
            record.get("config_hash"))


def group_records(records, kinds=DEFAULT_KINDS) -> dict[tuple, list[dict]]:
    """Group comparable records by identity, oldest first.

    Records without a ``stats_digest`` carry nothing to compare and are
    dropped, as are kinds outside ``kinds``.
    """
    groups: dict[tuple, list[dict]] = {}
    for record in records:
        if record.get("kind") not in kinds:
            continue
        if not record.get("stats_digest"):
            continue
        groups.setdefault(group_key(record), []).append(record)
    for members in groups.values():
        members.sort(key=lambda record: record.get("created") or 0.0)
    return groups


def _summary_delta(old: dict | None, new: dict | None) -> dict:
    """Changed ``stats_summary`` fields as ``name -> (old, new)``."""
    old = old or {}
    new = new or {}
    delta = {}
    for name in SUMMARY_FIELDS:
        if old.get(name) != new.get(name):
            delta[name] = (old.get(name), new.get(name))
    for name in sorted(set(old) | set(new)):
        if name not in SUMMARY_FIELDS and old.get(name) != new.get(name):
            delta[name] = (old.get(name), new.get(name))
    return delta


@dataclass
class Finding:
    """One detected digest disagreement within a group."""

    severity: str  # "drift" (across revisions) | "nondeterministic"
    key: tuple     # (kind, name, arch, config_hash)
    baseline_rev: str
    current_rev: str
    baseline_digest: str
    current_digest: str
    summary_delta: dict = field(default_factory=dict)

    @property
    def label(self) -> str:
        kind, name, arch, config_hash = self.key
        where = f"{kind}/{name}"
        if arch:
            where += f" [{arch}]"
        if config_hash:
            where += f" cfg={config_hash[:10]}"
        return where

    def describe(self) -> str:
        if self.severity == "nondeterministic":
            head = (f"NONDETERMINISTIC {self.label}: two runs at rev "
                    f"{self.current_rev[:10]} disagree")
        else:
            head = (f"DRIFT {self.label}: {self.baseline_rev[:10]} -> "
                    f"{self.current_rev[:10]}")
        head += (f" (digest {self.baseline_digest[:10]} != "
                 f"{self.current_digest[:10]})")
        for name, (old, new) in self.summary_delta.items():
            head += f"\n    {name}: {old} -> {new}"
        return head

    def to_json(self) -> dict:
        kind, name, arch, config_hash = self.key
        return {
            "severity": self.severity,
            "kind": kind,
            "name": name,
            "arch": arch,
            "config_hash": config_hash,
            "baseline_rev": self.baseline_rev,
            "current_rev": self.current_rev,
            "baseline_digest": self.baseline_digest,
            "current_digest": self.current_digest,
            "summary_delta": {key: list(value) for key, value
                              in self.summary_delta.items()},
        }


@dataclass
class RegressionReport:
    """Outcome of one regression scan."""

    mode: str                   # "history" | "baseline"
    runs_dir: str
    baseline_dir: str | None
    groups_checked: int         # identities seen
    groups_compared: int        # identities with >= 2 records to diff
    findings: list[Finding]
    skipped_lines: int
    min_groups: int = 0
    #: Valid records dropped for carrying a manifest schema newer than
    #: this checkout understands (see :func:`filter_schema`).
    skipped_schema: int = 0

    @property
    def ok(self) -> bool:
        return (not self.findings
                and self.groups_compared >= self.min_groups)

    def to_text(self) -> str:
        lines = [f"regression scan ({self.mode}): "
                 f"{self.groups_checked} group(s), "
                 f"{self.groups_compared} compared, "
                 f"{len(self.findings)} finding(s)"]
        if self.skipped_lines:
            lines.append(f"  {self.skipped_lines} corrupt manifest "
                         f"line(s) skipped")
        if self.skipped_schema:
            lines.append(f"  {self.skipped_schema} record(s) with an "
                         f"unsupported newer schema skipped")
        for finding in self.findings:
            lines.append(finding.describe())
        if self.groups_compared < self.min_groups:
            lines.append(f"FAIL: only {self.groups_compared} comparable "
                         f"group(s), --min-groups {self.min_groups} "
                         f"required")
        lines.append("PASS: no digest drift detected" if self.ok
                     else "FAIL: regression gate did not pass")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({
            "mode": self.mode,
            "runs_dir": self.runs_dir,
            "baseline_dir": self.baseline_dir,
            "groups_checked": self.groups_checked,
            "groups_compared": self.groups_compared,
            "skipped_lines": self.skipped_lines,
            "skipped_schema": self.skipped_schema,
            "min_groups": self.min_groups,
            "ok": self.ok,
            "findings": [finding.to_json() for finding in self.findings],
        }, indent=2, sort_keys=True)

    def to_markdown(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        lines = [
            f"## Regression scan: {status}",
            "",
            f"- mode: `{self.mode}`",
            f"- groups checked / compared: {self.groups_checked} / "
            f"{self.groups_compared}",
            f"- corrupt lines skipped: {self.skipped_lines}",
            f"- unsupported-schema records skipped: "
            f"{self.skipped_schema}",
            "",
        ]
        if self.findings:
            lines += ["| severity | run | baseline rev | current rev | "
                      "changed fields |",
                      "|---|---|---|---|---|"]
            for finding in self.findings:
                changed = ", ".join(
                    f"{name} {old}→{new}" for name, (old, new)
                    in finding.summary_delta.items()) or "(digest only)"
                lines.append(
                    f"| {finding.severity} | {finding.label} | "
                    f"`{finding.baseline_rev[:10]}` | "
                    f"`{finding.current_rev[:10]}` | {changed} |")
        else:
            lines.append("No digest drift detected.")
        return "\n".join(lines)

    def render(self, fmt: str = "text") -> str:
        return {"text": self.to_text, "json": self.to_json,
                "markdown": self.to_markdown}[fmt]()


def _compare_history(groups) -> tuple[int, list[Finding]]:
    """Chronological digest check within each identity group."""
    compared = 0
    findings = []
    for key, members in groups.items():
        if len(members) < 2:
            continue
        compared += 1
        # Each run is compared to its chronological predecessor: a
        # mismatch at the same revision is nondeterminism (always a
        # bug), across revisions it is drift (a code change moved the
        # numbers).
        for reference, record in zip(members, members[1:]):
            if record["stats_digest"] == reference["stats_digest"]:
                continue
            ref_rev = reference.get("git_rev") or "unknown"
            rev = record.get("git_rev") or "unknown"
            severity = "nondeterministic" if rev == ref_rev else "drift"
            findings.append(Finding(
                severity, key, ref_rev, rev,
                reference["stats_digest"], record["stats_digest"],
                _summary_delta(reference.get("stats_summary"),
                               record.get("stats_summary"))))
    return compared, findings


def _compare_baseline(base_groups, cur_groups) -> tuple[int, list[Finding]]:
    """Newest record per identity, baseline directory vs current."""
    compared = 0
    findings = []
    for key, members in cur_groups.items():
        base_members = base_groups.get(key)
        if not base_members:
            continue  # new identity: nothing to regress against
        compared += 1
        base = base_members[-1]
        current = members[-1]
        if base["stats_digest"] != current["stats_digest"]:
            findings.append(Finding(
                "drift", key,
                base.get("git_rev") or "unknown",
                current.get("git_rev") or "unknown",
                base["stats_digest"], current["stats_digest"],
                _summary_delta(base.get("stats_summary"),
                               current.get("stats_summary"))))
    return compared, findings


def run_regression(runs_dir=DEFAULT_DIRECTORY, baseline_dir=None,
                   kinds=DEFAULT_KINDS,
                   min_groups: int = 0) -> RegressionReport:
    """Scan manifests and return the pass/fail report."""
    records, skipped = load_records(runs_dir)
    records, schema_skipped = filter_schema(records, str(runs_dir))
    groups = group_records(records, kinds=kinds)
    if baseline_dir is not None:
        base_records, base_skipped = load_records(baseline_dir)
        base_records, base_schema = filter_schema(base_records,
                                                  str(baseline_dir))
        base_groups = group_records(base_records, kinds=kinds)
        compared, findings = _compare_baseline(base_groups, groups)
        return RegressionReport(
            "baseline", str(runs_dir), str(baseline_dir),
            len(groups), compared, findings, skipped + base_skipped,
            min_groups, schema_skipped + base_schema)
    compared, findings = _compare_history(groups)
    return RegressionReport(
        "history", str(runs_dir), None, len(groups), compared, findings,
        skipped, min_groups, schema_skipped)
