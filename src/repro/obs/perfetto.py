"""Chrome trace-event / Perfetto JSON export of a simulated run.

:class:`TraceRecorder` subscribes to a :class:`~repro.obs.probes.ProbeBus`
and coalesces the per-cycle ``core.retire``/``core.stall`` events into
*slices* — maximal stretches of consecutive cycles in which a core stayed
in one state.  :meth:`TraceRecorder.to_perfetto` lays them out in the
Chrome trace-event JSON format (one "thread" track per core, one
"process" per subsystem), which ``ui.perfetto.dev`` and
``chrome://tracing`` open directly.  One simulated cycle is rendered as
one microsecond (``ts``/``dur`` are in µs in the trace-event format).

Tracks:

* process ``cores`` — per-core ``run``/``stall`` slices, plus a closing
  ``halted`` slice from the core's ``HLT`` to the end of the run.
* process ``fast-forward`` — one slice per batch-committed stretch of
  the fast-forward engine (absent in pure cycle-stepped runs).
* process ``IM banks`` — one full-length ``gated``/``active`` slice per
  instruction-memory bank (the power-gate state is fixed at load time).

Exactness: the summed ``run`` slice durations per core equal that core's
``retired`` instruction count, and ``stall`` durations its
``stall_cycles``, in both execution modes — the schema test in
``tests/obs`` asserts this against :class:`SimulationStats`.
"""

from __future__ import annotations

import json
import pathlib


class TraceRecorder:
    """Records per-core activity slices and fast-forward spans."""

    def __init__(self, n_cores: int, arch: str = ""):
        self.n_cores = n_cores
        self.arch = arch
        #: closed slices: (core, state, start_cycle, n_cycles)
        self.slices: list[tuple[int, str, int, int]] = []
        #: fast-forward stretches: (start_cycle, n_cycles)
        self.ff_spans: list[tuple[int, int]] = []
        self._open: dict[int, list] = {}  # core -> [state, start, length]
        self._gated_banks: set[int] = set()
        self._im_banks = 0
        self._bus = None
        self._system = None

    # -- wiring ------------------------------------------------------------

    @classmethod
    def attach(cls, system) -> "TraceRecorder":
        """Create a recorder wired to ``system``'s probe bus.

        The IM power-gate state (static once a benchmark is loaded) is
        snapshotted from the system at :meth:`finish` time.  Call
        :meth:`detach` (or just let the recorder be garbage-collected
        with the system) when done.
        """
        recorder = cls(n_cores=system.config.n_cores,
                       arch=system.config.name)
        recorder._system = system
        recorder._im_banks = system.config.im_banks
        recorder.subscribe(system.probe_bus())
        return recorder

    def subscribe(self, bus) -> None:
        self._bus = bus
        self._handlers = {
            "core.retire": self._on_retire,
            "core.stall": self._on_stall,
            "ff.exit": self._on_ff_exit,
        }
        for event, handler in self._handlers.items():
            bus.subscribe(event, handler)

    def detach(self) -> None:
        if self._bus is not None:
            for event, handler in self._handlers.items():
                self._bus.unsubscribe(event, handler)
            self._bus = None

    # -- event handlers ----------------------------------------------------

    def _mark(self, core: int, cycle: int, state: str) -> None:
        open_slice = self._open.get(core)
        if open_slice is not None and open_slice[0] == state \
                and open_slice[1] + open_slice[2] == cycle:
            open_slice[2] += 1
            return
        if open_slice is not None:
            self.slices.append((core, open_slice[0], open_slice[1],
                                open_slice[2]))
        self._open[core] = [state, cycle, 1]

    def _on_retire(self, cycle, pid, pc) -> None:
        self._mark(pid, cycle, "run")

    def _on_stall(self, cycle, pid, pc) -> None:
        self._mark(pid, cycle, "stall")

    def _on_ff_exit(self, cycle, fast_cycles) -> None:
        if fast_cycles:
            self.ff_spans.append((cycle - fast_cycles, fast_cycles))

    # -- results -----------------------------------------------------------

    def finish(self) -> "TraceRecorder":
        """Close all open slices; call once the run has ended."""
        if self._system is not None:
            self._gated_banks = set(self._system.imem.gated_banks)
        for core, open_slice in sorted(self._open.items()):
            self.slices.append((core, open_slice[0], open_slice[1],
                                open_slice[2]))
        self._open.clear()
        return self

    @property
    def end_cycle(self) -> int:
        """One past the last recorded cycle."""
        end = 0
        for _, _, start, length in self.slices:
            end = max(end, start + length)
        for open_slice in self._open.values():
            end = max(end, open_slice[1] + open_slice[2])
        for start, length in self.ff_spans:
            end = max(end, start + length)
        return end

    def slice_totals(self) -> dict[int, dict[str, int]]:
        """Per-core summed slice durations, keyed by state.

        ``totals[pid]["run"]`` equals the core's retired instruction
        count and ``totals[pid]["stall"]`` its stall cycles.
        """
        totals: dict[int, dict[str, int]] = {
            core: {} for core in range(self.n_cores)}
        for core, state, _, length in self.slices:
            per_core = totals.setdefault(core, {})
            per_core[state] = per_core.get(state, 0) + length
        for core, open_slice in self._open.items():
            per_core = totals.setdefault(core, {})
            per_core[open_slice[0]] = \
                per_core.get(open_slice[0], 0) + open_slice[2]
        return totals

    def to_perfetto(self) -> dict:
        """Chrome trace-event JSON object (open in ui.perfetto.dev)."""
        self.finish()
        end = self.end_cycle
        events = []
        label = f"cores ({self.arch})" if self.arch else "cores"
        events.append({"ph": "M", "name": "process_name", "pid": 1,
                       "args": {"name": label}})
        for core in range(self.n_cores):
            events.append({"ph": "M", "name": "thread_name", "pid": 1,
                           "tid": core, "args": {"name": f"core {core}"}})
            events.append({"ph": "M", "name": "thread_sort_index", "pid": 1,
                           "tid": core, "args": {"sort_index": core}})
        last_activity = {core: 0 for core in range(self.n_cores)}
        for core, state, start, length in sorted(self.slices,
                                                 key=lambda s: (s[0], s[2])):
            events.append({"ph": "X", "cat": "core", "name": state,
                           "pid": 1, "tid": core, "ts": start,
                           "dur": length})
            last_activity[core] = max(last_activity[core], start + length)
        for core, stop in last_activity.items():
            if stop < end:
                events.append({"ph": "X", "cat": "core", "name": "halted",
                               "pid": 1, "tid": core, "ts": stop,
                               "dur": end - stop})
        if self.ff_spans:
            events.append({"ph": "M", "name": "process_name", "pid": 2,
                           "args": {"name": "fast-forward engine"}})
            events.append({"ph": "M", "name": "thread_name", "pid": 2,
                           "tid": 0, "args": {"name": "batch commits"}})
            for start, length in self.ff_spans:
                events.append({"ph": "X", "cat": "ff",
                               "name": "fast-forward", "pid": 2, "tid": 0,
                               "ts": start, "dur": length})
        if self._im_banks:
            events.append({"ph": "M", "name": "process_name", "pid": 3,
                           "args": {"name": "IM banks (power gate)"}})
            for bank in range(self._im_banks):
                state = "gated" if bank in self._gated_banks else "active"
                events.append({"ph": "M", "name": "thread_name", "pid": 3,
                               "tid": bank,
                               "args": {"name": f"IM bank {bank}"}})
                events.append({"ph": "X", "cat": "im", "name": state,
                               "pid": 3, "tid": bank, "ts": 0,
                               "dur": max(end, 1)})
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "arch": self.arch,
                "cycles": end,
                "unit": "1 cycle = 1 us",
            },
        }

    def save(self, path) -> pathlib.Path:
        """Write the Perfetto JSON to ``path`` and return it."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_perfetto()), encoding="utf-8")
        return path
