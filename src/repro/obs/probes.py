"""The probe bus: named event hooks emitted by the platform simulator.

A :class:`ProbeBus` is a tiny publish/subscribe hub.  The simulator
(:mod:`repro.platform.multicore`), the fast-forward engine
(:mod:`repro.platform.fast_forward`) and the streaming driver
(:mod:`repro.platform.streaming`) emit the events below; subscribers —
the trace recorder, the metrics collector, ad-hoc lambdas in tests —
receive them synchronously, in emission order.

Performance contract: emission sites hoist ``bus.wants(event)`` into a
local boolean *once per run* (or once per fast-forward stretch), so an
unsubscribed event costs a single local-variable truth test per
occurrence and an unattached bus costs one ``None`` check per run.  The
guard ``benchmarks/bench_obs_overhead.py`` measures the end-to-end cost
of an attached-but-idle bus and fails above 5 %.

Event catalogue (all cycle numbers are 0-based simulation cycles):

=================  ============================================================
event              callback signature
=================  ============================================================
``core.retire``    ``(cycle, pid, pc)`` — core ``pid`` committed the
                   instruction fetched from ``pc`` (includes ``HLT``)
``core.stall``     ``(cycle, pid, pc)`` — core lost arbitration and is
                   clock-gated for this cycle
``ixbar.conflict`` ``(cycle, bank, masters)`` — non-mergeable instruction
                   fetches met in ``bank``; ``masters`` is the sorted
                   contender list
``dxbar.conflict`` ``(cycle, bank, masters)`` — same, data side
``im.broadcast``   ``(cycle, bank, width)`` — one IM access served
                   ``width`` >= 2 cores
``dm.broadcast``   ``(cycle, bank, width)`` — same, data side
``mmu.translate``  ``(cycle, pid, logical, bank, offset, private)`` — one
                   data-address translation (once per instruction attempt)
``ff.enter``       ``(cycle)`` — the fast-forward engine takes over at
                   ``cycle``
``ff.exit``        ``(cycle, fast_cycles)`` — the engine hands back after
                   batch-committing ``fast_cycles`` cycles (0 = immediate
                   fallback)
``block.done``     ``(index, stats)`` — the streaming driver finished and
                   verified block ``index``
=================  ============================================================
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.errors import ConfigurationError

#: Every event name the platform can emit.  Subscribing to anything else
#: raises, catching typos at subscription time rather than silently
#: observing nothing.
EVENTS = frozenset({
    "core.retire",
    "core.stall",
    "ixbar.conflict",
    "dxbar.conflict",
    "im.broadcast",
    "dm.broadcast",
    "mmu.translate",
    "ff.enter",
    "ff.exit",
    "block.done",
})


class ProbeBus:
    """Synchronous pub/sub hub for the platform's named probe events."""

    __slots__ = ("_subscribers", "now")

    def __init__(self):
        self._subscribers: dict[str, list] = {}
        #: Current 0-based cycle, maintained by the emitting run loop
        #: while any subscriber is attached.  Lets hooks that fire from
        #: deeper components (crossbars, MMUs) timestamp their events
        #: without threading the cycle through every call.
        self.now = 0

    # -- subscription ------------------------------------------------------

    @property
    def active(self) -> bool:
        """True when at least one subscriber is attached."""
        return bool(self._subscribers)

    def wants(self, event: str) -> bool:
        """True when ``event`` has at least one subscriber."""
        return event in self._subscribers

    def subscribe(self, event: str, callback):
        """Attach ``callback`` to ``event``; returns ``callback``."""
        if event not in EVENTS:
            raise ConfigurationError(
                f"unknown probe event {event!r}; expected one of "
                f"{sorted(EVENTS)}")
        self._subscribers.setdefault(event, []).append(callback)
        return callback

    def unsubscribe(self, event: str, callback) -> None:
        """Detach ``callback`` from ``event`` (no-op if absent)."""
        subscribers = self._subscribers.get(event)
        if subscribers and callback in subscribers:
            subscribers.remove(callback)
            if not subscribers:
                del self._subscribers[event]

    def clear(self) -> None:
        """Detach every subscriber."""
        self._subscribers.clear()

    @contextmanager
    def subscribed(self, handlers: dict):
        """Temporarily attach ``{event: callback}`` pairs.

        >>> with bus.subscribed({"core.retire": on_retire}):
        ...     system.run(benchmark)                   # doctest: +SKIP
        """
        for event, callback in handlers.items():
            self.subscribe(event, callback)
        try:
            yield self
        finally:
            for event, callback in handlers.items():
                self.unsubscribe(event, callback)

    # -- emission ----------------------------------------------------------

    def emit(self, event: str, *args) -> None:
        """Deliver ``event`` to its subscribers, in subscription order.

        Emitters are expected to guard this call with a pre-hoisted
        ``wants`` flag; calling it for an unsubscribed event is still
        correct, just not free.
        """
        for callback in self._subscribers.get(event, ()):
            callback(*args)
