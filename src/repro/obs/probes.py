"""The probe bus: named event hooks emitted by the platform simulator.

A :class:`ProbeBus` is a tiny publish/subscribe hub.  The simulator
(:mod:`repro.platform.multicore`), the fast-forward engine
(:mod:`repro.platform.fast_forward`) and the streaming driver
(:mod:`repro.platform.streaming`) emit the events below; subscribers —
the trace recorder, the metrics collector, ad-hoc lambdas in tests —
receive them synchronously, in emission order.

Performance contract: emission sites hoist ``bus.wants(event)`` into a
local boolean *once per run* (or once per fast-forward stretch), so an
unsubscribed event costs a single local-variable truth test per
occurrence and an unattached bus costs one ``None`` check per run.  The
guard ``benchmarks/bench_obs_overhead.py`` measures the end-to-end cost
of an attached-but-idle bus and fails above 5 %.

Delivery modes
--------------

Per-event delivery (:meth:`ProbeBus.subscribe` + :meth:`ProbeBus.emit`)
calls every subscriber synchronously per occurrence — flexible, but a
full metrics collector costs 10-60 % end to end.  For the hot events the
bus therefore also offers **batched delivery**: a subscriber registers a
*drain* with :meth:`ProbeBus.subscribe_batch`, occurrences accumulate
into a typed ring buffer (:class:`EventRing`, one flat Python list of
integers, convertible to a NumPy array in one call), and the drain
consumes whole batches at :meth:`ProbeBus.flush` time.  When an event
has *only* batch subscribers (no per-event subscriber, no sampling) the
emission site fetches the ring via :meth:`ProbeBus.batch` and appends
raw scalars directly — a single bound ``list.append`` per occurrence —
which keeps the fully-subscribed metrics overhead below 10 %
(``bench_obs_overhead.py`` gates this).  Both delivery modes produce
bit-identical aggregate metrics (``tests/obs/test_probe_properties.py``).

Each hot event has a fixed batch schema (:data:`BATCH_COLUMNS`): the
ring carries only the columns aggregate metrics need.  For
``core.retire``/``core.stall`` the ring stores the raw ``pc`` object per
occurrence (appending an existing int allocates nothing) plus one
``(cycle, start_offset)`` pair per cycle in a side ``marks`` list;
:meth:`EventRing.as_array` reconstructs the packed ``(cycle, pc)``
encoding (:func:`pack_cycle_pc`) vectorised at drain time, so the hot
path stays a single bound ``list.append``.

Sampling (:meth:`ProbeBus.set_sampling`) decimates *delivery* of an
event to every Nth occurrence for long-horizon traces while the bus
keeps an exact occurrence count (:meth:`ProbeBus.occurrences`), so
event-derived counters stay exact even under heavy decimation.

Event catalogue (all cycle numbers are 0-based simulation cycles):

=================  ============================================================
event              callback signature
=================  ============================================================
``core.retire``    ``(cycle, pid, pc)`` — core ``pid`` committed the
                   instruction fetched from ``pc`` (includes ``HLT``)
``core.stall``     ``(cycle, pid, pc)`` — core lost arbitration and is
                   clock-gated for this cycle
``ixbar.conflict`` ``(cycle, bank, masters)`` — non-mergeable instruction
                   fetches met in ``bank``; ``masters`` is the sorted
                   contender list
``dxbar.conflict`` ``(cycle, bank, masters)`` — same, data side
``im.broadcast``   ``(cycle, bank, width)`` — one IM access served
                   ``width`` >= 2 cores
``dm.broadcast``   ``(cycle, bank, width)`` — same, data side
``mmu.translate``  ``(cycle, pid, logical, bank, offset, private)`` — one
                   data-address translation (once per instruction attempt)
``ff.enter``       ``(cycle)`` — the fast-forward engine takes over at
                   ``cycle``
``ff.exit``        ``(cycle, fast_cycles)`` — the engine hands back after
                   batch-committing ``fast_cycles`` cycles (0 = immediate
                   fallback)
``ff.block``       ``(cycle, entries, compiled, block_cycles)`` — one
                   fast-forward stretch used the translation-block layer:
                   ``entries`` block executions (``compiled`` of them
                   newly translated) covering ``block_cycles`` cycles
``block.done``     ``(index, stats)`` — the streaming driver finished and
                   verified block ``index``
``telemetry.window`` ``(end_cycle, final, sync_cycles, retired, stalls)`` —
                   the run loop crossed a fixed-cycle telemetry window
                   boundary (see :attr:`ProbeBus.window_cycles`).
                   ``end_cycle`` counts committed cycles, ``retired`` and
                   ``stalls`` are per-core *cumulative* tuples and
                   ``sync_cycles`` the cumulative lockstep-cycle count at
                   the boundary; ``final`` marks the end-of-run flush
                   (possibly a partial window).  Both execution paths
                   ``flush()`` the bus immediately before emitting it, so
                   no batched ring ever spans a window boundary — the
                   invariant :mod:`repro.obs.telemetry` builds on.
=================  ============================================================
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.errors import ConfigurationError

#: Every event name the platform can emit.  Subscribing to anything else
#: raises, catching typos at subscription time rather than silently
#: observing nothing.
EVENTS = frozenset({
    "core.retire",
    "core.stall",
    "ixbar.conflict",
    "dxbar.conflict",
    "im.broadcast",
    "dm.broadcast",
    "mmu.translate",
    "ff.enter",
    "ff.exit",
    "ff.block",
    "block.done",
    "telemetry.window",
})

#: Bits reserved for the PC in the packed ``(cycle, pc)`` encoding of
#: the ``core.retire``/``core.stall`` ring buffers.  26 bits cover any
#: realistic program (the largest IM holds 2^15 words) while cycle
#: counts up to 2^37 stay exactly representable in an int64.
PC_BITS = 26
PC_MASK = (1 << PC_BITS) - 1


def pack_cycle_pc(cycle: int, pc: int) -> int:
    """One-integer encoding of a retire/stall occurrence."""
    return (cycle << PC_BITS) | pc


def unpack_cycle_pc(packed: int) -> tuple[int, int]:
    """Inverse of :func:`pack_cycle_pc`."""
    return packed >> PC_BITS, packed & PC_MASK


#: Batch schema: the typed ring columns each hot event accumulates.
#: Cold events (``ff.*``, ``block.done``) carry rich payloads at low
#: rates and stay on per-event delivery.
BATCH_COLUMNS = {
    "core.retire": ("cycle_pc",),
    "core.stall": ("cycle_pc",),
    "ixbar.conflict": ("cycle",),
    "dxbar.conflict": ("cycle",),
    "im.broadcast": ("width",),
    "dm.broadcast": ("width",),
    "mmu.translate": ("private",),
}

#: Reduce a full per-event argument tuple to the ring scalar, used when
#: ``emit`` has to feed a ring (mixed per-event + batch subscribers).
#: ``cycle_pc`` events reduce to the bare ``pc``; ``emit`` maintains the
#: cycle ``marks`` separately.
_BATCH_PACK = {
    "core.retire": lambda args: args[2],
    "core.stall": lambda args: args[2],
    "ixbar.conflict": lambda args: args[0],
    "dxbar.conflict": lambda args: args[0],
    "im.broadcast": lambda args: args[2],
    "dm.broadcast": lambda args: args[2],
    "mmu.translate": lambda args: args[5],
}


class EventRing:
    """Typed ring buffer accumulating one hot event between flushes.

    ``data`` is a flat list of integers, one scalar per occurrence (the
    column layout is :data:`BATCH_COLUMNS`).  Hot emission sites append
    to it directly via the bound ``data.append``; drains consume the
    whole batch and the bus clears it in place afterwards, so the bound
    append stays valid across flushes.

    ``cycle_pc`` events additionally keep ``marks``, a flat list of
    ``cycle, start_offset, stride`` triples written by the run loops
    *before* the appends they describe.  ``stride == 0`` means every
    event from ``start_offset`` up to the next mark belongs to
    ``cycle`` (the cycle-stepped loop writes one such mark per cycle);
    ``stride == k > 0`` means the events partition into groups of ``k``
    with consecutive cycles starting at ``cycle`` (the fast-forward
    engine writes one such mark per stretch segment, since every
    committed cycle retires exactly its ``k`` running cores); and
    ``stride == -r < 0`` is the run-length form for lockstep segments —
    each stored item is the single pc shared by all ``r`` running cores
    of one cycle, cycles consecutive from ``cycle``, so one committed
    lockstep cycle costs one append instead of ``r`` (writers of such
    marks must also set :attr:`rle`).  Storing
    the bare ``pc`` per occurrence (an object that already exists)
    instead of a packed ``(cycle << PC_BITS) | pc`` integer avoids one
    heap allocation per event, which is what keeps the hot path at
    bound-``list.append`` cost.  Segment start cycles are strictly
    increasing; zero-event marks are tolerated by the reconstruction
    (their count diff is simply zero).
    """

    __slots__ = ("event", "columns", "data", "marks", "pack", "rle")

    def __init__(self, event: str):
        self.event = event
        self.columns = BATCH_COLUMNS[event]
        self.data: list[int] = []
        self.marks: list[int] | None = \
            [] if self.columns == ("cycle_pc",) else None
        self.pack = _BATCH_PACK[event]
        #: True while ``marks`` holds at least one run-length segment,
        #: i.e. item count != occurrence count.  Set by the emitting
        #: loop, reset on :meth:`clear`.
        self.rle = False

    def __len__(self) -> int:
        """Number of pending *occurrences* (expanding RLE segments)."""
        return self.occurrence_count()

    def occurrence_count(self) -> int:
        """Exact pending occurrences, without touching NumPy.

        For non-RLE rings this is just ``len(data)``.  With run-length
        segments each stored item of a ``stride == -r`` segment stands
        for ``r`` occurrences; the marks are few (one triple per
        segment), so walking them in pure Python is cheaper than the
        vectorised expansion when only the count is needed (the
        windowed-telemetry drains call this once per flush).
        """
        if not self.rle:
            return len(self.data)
        marks = self.marks
        total = 0
        n_marks = len(marks)
        data_len = len(self.data)
        for index in range(0, n_marks, 3):
            start = marks[index + 1]
            stride = marks[index + 2]
            end = marks[index + 4] if index + 4 < n_marks else data_len
            items = end - start
            total += items * -stride if stride < 0 else items
        return total

    def _packed_items(self):
        """Packed value and repeat count per stored item, vectorised."""
        import numpy
        values = numpy.asarray(self.data, dtype=numpy.int64)
        starts = numpy.asarray(self.marks[0::3], dtype=numpy.int64)
        bounds = numpy.asarray(self.marks[1::3] + [len(self.data)],
                               dtype=numpy.int64)
        counts = numpy.diff(bounds)
        strides = numpy.asarray(self.marks[2::3], dtype=numpy.int64)
        cycles = numpy.repeat(starts, counts)
        reps = None
        if strides.size and (strides.min() < 0 or strides.max() > 0):
            # Stride segments: event i belongs to cycle start + i // k.
            # RLE segments: item i IS cycle start + i, repeated r times.
            within = numpy.arange(values.size, dtype=numpy.int64) \
                - numpy.repeat(bounds[:-1], counts)
            seg = numpy.repeat(strides, counts)
            cycles = cycles + numpy.where(
                seg > 0, within // numpy.maximum(seg, 1),
                numpy.where(seg < 0, within, 0))
            if self.rle:
                reps = numpy.where(seg < 0, -seg, 1)
        return (cycles << PC_BITS) | values, reps

    def as_array(self):
        """The pending batch as a NumPy ``int64`` array (one C call).

        For ``cycle_pc`` events this reconstructs the packed
        ``(cycle << PC_BITS) | pc`` values from ``data`` + ``marks``,
        fully vectorised, in emission order — one entry per
        *occurrence* (RLE segments are expanded).
        """
        import numpy
        if self.marks is None:
            return numpy.asarray(self.data, dtype=numpy.int64)
        packed, reps = self._packed_items()
        if reps is not None:
            packed = numpy.repeat(packed, reps)
        return packed

    def compact(self):
        """``(packed, occurrences)`` without RLE expansion.

        ``packed`` covers every distinct ``(cycle, pc)`` pair of the
        batch (possibly with duplicates, never expanding RLE runs), so
        any reduction that dedups per cycle — the sync-group
        consolidation — gets a bit-identical result from this cheaper
        form.  ``occurrences`` is the exact event count.
        """
        if self.marks is None:
            return self.as_array(), len(self.data)
        packed, reps = self._packed_items()
        count = len(self.data) if reps is None else int(reps.sum())
        return packed, count

    def clear(self) -> None:
        """Empty the ring in place (bound appends stay valid)."""
        self.data.clear()
        if self.marks is not None:
            self.marks.clear()
        self.rle = False


class ProbeBus:
    """Synchronous pub/sub hub for the platform's named probe events."""

    __slots__ = ("_subscribers", "_batch_subscribers", "_rings",
                 "_flush_hooks", "_sample_every", "_sample_seen", "now",
                 "window_cycles")

    def __init__(self):
        self._subscribers: dict[str, list] = {}
        self._batch_subscribers: dict[str, list] = {}
        self._rings: dict[str, EventRing] = {}
        self._flush_hooks: list = []
        self._sample_every: dict[str, int] = {}
        self._sample_seen: dict[str, int] = {}
        #: Telemetry window length in cycles (0 = windowing off).  Set
        #: by a :class:`~repro.obs.telemetry.WindowedAggregator` before
        #: the run; the run loops emit ``telemetry.window`` (preceded by
        #: a :meth:`flush`) every time the committed-cycle count crosses
        #: a multiple of this value, and once more at the end of a run.
        self.window_cycles = 0
        #: Current 0-based cycle, maintained by the emitting run loop
        #: while any subscriber is attached.  Lets hooks that fire from
        #: deeper components (crossbars, MMUs) timestamp their events
        #: without threading the cycle through every call.
        self.now = 0

    # -- subscription ------------------------------------------------------

    @property
    def active(self) -> bool:
        """True when at least one subscriber is attached."""
        return bool(self._subscribers) or bool(self._batch_subscribers)

    def wants(self, event: str) -> bool:
        """True when ``event`` has at least one subscriber."""
        return event in self._subscribers or event in self._batch_subscribers

    def subscribe(self, event: str, callback):
        """Attach ``callback`` to ``event``; returns ``callback``."""
        if event not in EVENTS:
            raise ConfigurationError(
                f"unknown probe event {event!r}; expected one of "
                f"{sorted(EVENTS)}")
        self._subscribers.setdefault(event, []).append(callback)
        return callback

    def unsubscribe(self, event: str, callback) -> None:
        """Detach ``callback`` from ``event`` (no-op if absent)."""
        subscribers = self._subscribers.get(event)
        if subscribers and callback in subscribers:
            subscribers.remove(callback)
            if not subscribers:
                del self._subscribers[event]

    def subscribe_batch(self, event: str, drain):
        """Attach a batched subscriber; ``drain(ring)`` runs per flush.

        Only the hot events with a :data:`BATCH_COLUMNS` schema support
        batched delivery; subscribing a cold event raises.  Returns
        ``drain``.
        """
        if event not in EVENTS:
            raise ConfigurationError(
                f"unknown probe event {event!r}; expected one of "
                f"{sorted(EVENTS)}")
        if event not in BATCH_COLUMNS:
            raise ConfigurationError(
                f"event {event!r} has no batch schema; use per-event "
                f"subscription (batched events: {sorted(BATCH_COLUMNS)})")
        self._batch_subscribers.setdefault(event, []).append(drain)
        if event not in self._rings:
            self._rings[event] = EventRing(event)
        return drain

    def unsubscribe_batch(self, event: str, drain) -> None:
        """Detach a batched subscriber (flushes its last batch first)."""
        drains = self._batch_subscribers.get(event)
        if drains and drain in drains:
            self.flush()
            drains.remove(drain)
            if not drains:
                del self._batch_subscribers[event]
                del self._rings[event]

    def subscribe_flush(self, hook):
        """Call ``hook()`` after every flush that delivered a batch."""
        self._flush_hooks.append(hook)
        return hook

    def unsubscribe_flush(self, hook) -> None:
        if hook in self._flush_hooks:
            self._flush_hooks.remove(hook)

    def clear(self) -> None:
        """Detach every subscriber (per-event, batched and flush hooks)
        and drop sampling policies."""
        self._subscribers.clear()
        self._batch_subscribers.clear()
        self._rings.clear()
        self._flush_hooks.clear()
        self._sample_every.clear()
        self._sample_seen.clear()
        self.window_cycles = 0

    # -- sampling ----------------------------------------------------------

    def set_sampling(self, event: str, every: int) -> None:
        """Deliver only every ``every``-th occurrence of ``event``.

        The first occurrence is always delivered, then one per ``every``.
        The bus counts *all* occurrences routed through :meth:`emit`
        (see :meth:`occurrences`), so counters derived from a sampled
        event remain exact.  ``every=1`` removes the policy.  Emission
        sites route sampled events through :meth:`emit` (the raw-ring
        fast path is disabled by :meth:`batch`), so policies must be set
        before the run starts, like subscriptions.
        """
        if event not in EVENTS:
            raise ConfigurationError(
                f"unknown probe event {event!r}; expected one of "
                f"{sorted(EVENTS)}")
        if not isinstance(every, int) or every < 1:
            raise ConfigurationError(
                f"sampling rate must be a positive integer, got {every!r}")
        if every == 1:
            self._sample_every.pop(event, None)
            self._sample_seen.pop(event, None)
        else:
            self._sample_every[event] = every
            self._sample_seen.setdefault(event, 0)

    def sampling(self, event: str) -> int:
        """The active sampling rate for ``event`` (1 = every occurrence)."""
        return self._sample_every.get(event, 1)

    def occurrences(self, event: str) -> int:
        """Exact occurrences of a *sampled* event since its policy was
        set (0 for unsampled events — those deliver everything anyway)."""
        return self._sample_seen.get(event, 0)

    @contextmanager
    def subscribed(self, handlers: dict):
        """Temporarily attach ``{event: callback}`` pairs.

        >>> with bus.subscribed({"core.retire": on_retire}):
        ...     system.run(benchmark)                   # doctest: +SKIP
        """
        for event, callback in handlers.items():
            self.subscribe(event, callback)
        try:
            yield self
        finally:
            for event, callback in handlers.items():
                self.unsubscribe(event, callback)

    # -- emission ----------------------------------------------------------

    def batch(self, event: str):
        """The :class:`EventRing` for a raw-append fast path, or ``None``.

        The fast path applies only when every delivery obligation is a
        batch drain: at least one batch subscriber, no per-event
        subscriber and no sampling policy.  Emission sites that get a
        ring append the event's :data:`BATCH_COLUMNS` scalars straight
        to ``ring.data``; otherwise they fall back to :meth:`emit`,
        which still feeds the ring (packed from the full argument
        tuple) alongside per-event subscribers and sampling.
        """
        if event in self._subscribers or event in self._sample_every:
            return None
        return self._rings.get(event)

    def emit(self, event: str, *args) -> None:
        """Deliver ``event`` to its subscribers, in subscription order.

        Emitters are expected to guard this call with a pre-hoisted
        ``wants`` flag; calling it for an unsubscribed event is still
        correct, just not free.  Batch subscribers receive the event at
        the next :meth:`flush`; a sampling policy decimates delivery to
        both kinds of subscriber while counting every occurrence.
        """
        every = self._sample_every.get(event)
        if every is not None:
            seen = self._sample_seen[event]
            self._sample_seen[event] = seen + 1
            if seen % every:
                return
        for callback in self._subscribers.get(event, ()):
            callback(*args)
        ring = self._rings.get(event)
        if ring is not None:
            marks = ring.marks
            if marks is not None:
                cycle = args[0]
                if not marks or marks[-3] != cycle or marks[-1]:
                    marks.append(cycle)
                    marks.append(len(ring.data))
                    marks.append(0)
            ring.data.append(ring.pack(args))

    def flush(self) -> None:
        """Drain every non-empty ring through its batch subscribers.

        Run loops call this periodically (bounding ring memory) and once
        at the end of every run; collectors call it from ``finish()``.
        After all drains ran, registered flush hooks fire once — the
        point where a collector may consolidate columns that span
        several rings (e.g. retire + stall into the sync-group
        histogram).  A flush with nothing pending is a cheap no-op.
        """
        delivered = False
        for event, ring in self._rings.items():
            if ring.data:
                for drain in self._batch_subscribers[event]:
                    drain(ring)
                ring.clear()
                delivered = True
        if delivered:
            for hook in self._flush_hooks:
                hook()
