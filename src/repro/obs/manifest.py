"""Run manifests: an append-only JSONL provenance trail under ``runs/``.

Every CLI invocation and benchmark appends one JSON record per run to
``runs/manifest.jsonl``: what ran (kind, name, architecture), against
which code (git revision) and configuration (stable config hash), what
came out (a digest of the full ``SimulationStats``/CSV payload, plus a
compact summary), and how long it took.  Two runs with equal
``config_hash`` and ``git_rev`` but different ``stats_digest`` are a
reproducibility bug; equal digests let CI artifacts and local reruns be
compared without shipping the full outputs around.

Record schema ``repro-manifest/2`` (all fields always present, ``null``
when inapplicable)::

    {
      "schema":        "repro-manifest/2",
      "kind":          "experiment" | "trace" | "profile" | "benchmark"
                       | "watch" | "farm" | "fleet" | "dse",
      "name":          str,            # experiment id / benchmark name
      "arch":          str | null,     # platform name
      "config":        object | null,  # full ArchConfig dump
      "config_hash":   str | null,     # sha256 over the canonical config
      "git_rev":       str,            # HEAD revision or "unknown"
      "stats_digest":  str | null,     # sha256 over the canonical payload
      "stats_summary": object | null,  # small human-scannable excerpt
      "event_summary": object | null,  # probe/metric counts, if observed
      "telemetry":     object | null,  # windowed-telemetry block
                                       # (repro.obs.telemetry), with
                                       # per-window summary digests
      "wall_time_s":   float | null,   # non-null at every write site
      "speedup_vs_exact": float | null,  # wall-time ratio exact/this run
      "created":       float,          # unix timestamp
      "extra":         object          # free-form
    }

Version history: ``repro-manifest/1`` records carry no ``schema`` field
(readers treat its absence as v1) and lack ``telemetry`` /
``speedup_vs_exact``.  Readers must skip records whose major version
they do not know (``repro regress`` warns and counts them) so old
checkouts survive newer ``runs/`` artifacts.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pathlib
import subprocess
import sys
import time

#: Default manifest location, relative to the current working directory.
DEFAULT_DIRECTORY = "runs"
MANIFEST_NAME = "manifest.jsonl"

#: Schema tag written into every new record, and the highest major
#: version this checkout knows how to read.
SCHEMA = "repro-manifest/2"
SCHEMA_VERSION = 2


def schema_version(record: dict):
    """The major schema version of a manifest ``record``.

    Records predating the ``schema`` field are version 1.  Returns
    ``None`` for tags this parser cannot even split (foreign files) —
    callers should treat those like unknown newer versions: skip, don't
    raise.
    """
    tag = record.get("schema")
    if tag is None:
        return 1
    if isinstance(tag, str):
        prefix, _, version = tag.rpartition("/")
        if prefix == "repro-manifest" and version.isdigit():
            return int(version)
    return None


def _canonical(obj):
    """Reduce ``obj`` to JSON-serialisable primitives, deterministically."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: _canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, enum.Enum):
        return str(obj)
    if isinstance(obj, dict):
        return {str(key): _canonical(value)
                for key, value in sorted(obj.items(), key=lambda kv:
                                         str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canonical(value) for value in obj]
    if isinstance(obj, (set, frozenset)):
        # Iteration order of a set depends on insertion history and (for
        # strings) on PYTHONHASHSEED, so it must never leak into a
        # digest: canonicalise the elements first, then sort by their
        # JSON encoding, which totally orders mixed element types.
        return sorted((_canonical(value) for value in obj),
                      key=lambda value: json.dumps(value, sort_keys=True))
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def _digest(obj) -> str:
    payload = json.dumps(_canonical(obj), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def config_digest(config) -> str:
    """Stable sha256 over an :class:`ArchConfig` (or any dataclass/dict)."""
    return _digest(config)


def stats_digest(stats) -> str:
    """Stable sha256 over a full :class:`SimulationStats` (or payload)."""
    return _digest(stats)


def git_revision(cwd=None) -> str:
    """Best-effort ``HEAD`` revision; ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def manifest_record(kind: str, name: str, *, arch=None, config=None,
                    stats=None, payload=None, event_summary=None,
                    wall_time_s=None, speedup_vs_exact=None,
                    telemetry=None, extra=None, stats_digest_value=None,
                    stats_summary=None) -> dict:
    """Build one manifest record (schema :data:`SCHEMA`).

    ``stats`` (a ``SimulationStats``) contributes both the digest and a
    compact summary; ``payload`` digests arbitrary output (e.g. an
    experiment's CSV) when there is no single stats object.
    ``stats_digest_value``/``stats_summary`` install a digest and
    summary computed elsewhere (farm workers digest in their own
    process and ship only the hash home) and are mutually exclusive
    with ``stats``/``payload``.  ``telemetry`` takes the dict of
    :meth:`~repro.obs.telemetry.WindowedAggregator.telemetry_block`;
    ``speedup_vs_exact`` is the wall-time ratio of an exact-mode
    reference run to this run (``None`` when no reference ran).
    """
    digest = None
    summary = None
    if stats_digest_value is not None:
        if stats is not None or payload is not None:
            raise ValueError(
                "pass either a precomputed stats_digest_value or "
                "stats/payload to digest here, not both")
        digest = stats_digest_value
        summary = stats_summary
    elif stats is not None:
        digest = stats_digest(stats)
        summary = {
            "total_cycles": stats.total_cycles,
            "total_retired": stats.total_retired,
            "total_stall_cycles": stats.total_stall_cycles,
            "im_bank_accesses": stats.im_bank_accesses,
            "dm_bank_accesses": stats.dm_bank_accesses,
            "sync_cycles": stats.sync_cycles,
        }
    elif payload is not None:
        digest = _digest(payload)
    return {
        "schema": SCHEMA,
        "kind": kind,
        "name": name,
        "arch": arch,
        "config": _canonical(config) if config is not None else None,
        "config_hash": config_digest(config) if config is not None else None,
        "git_rev": git_revision(),
        "stats_digest": digest,
        "stats_summary": summary,
        "event_summary": _canonical(event_summary)
        if event_summary is not None else None,
        "telemetry": _canonical(telemetry)
        if telemetry is not None else None,
        "wall_time_s": wall_time_s,
        "speedup_vs_exact": speedup_vs_exact,
        "created": time.time(),
        "extra": _canonical(extra) if extra is not None else {},
    }


def write_manifest(record: dict, directory=None) -> pathlib.Path:
    """Append ``record`` as one JSONL line; returns the manifest path.

    The append is concurrency-safe: the whole line (payload plus
    newline) goes through a single :func:`os.write` on a descriptor
    opened with ``O_APPEND``, so simultaneous writers — parallel farm
    invocations, a benchmark racing a watch session — interleave at
    line granularity only, never inside a record.  A buffered
    ``open("a")`` could split one line across several syscalls and
    corrupt the trail (``tests/obs/test_manifest.py`` hammers this from
    multiple processes).
    """
    directory = pathlib.Path(directory if directory is not None
                             else DEFAULT_DIRECTORY)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / MANIFEST_NAME
    line = json.dumps(_canonical(record), sort_keys=True) + "\n"
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, line.encode("utf-8"))
    finally:
        os.close(fd)
    return path


def read_manifests(directory=None) -> list[dict]:
    """All intact records in a manifest file (empty list if absent).

    A writer killed mid-append (SIGKILL, power loss) can leave at most
    one truncated trailing line — the append is a single ``os.write``.
    Such corrupt lines are skipped with a counted warning rather than
    raised, so a crashed run never poisons later reads.
    """
    directory = pathlib.Path(directory if directory is not None
                             else DEFAULT_DIRECTORY)
    path = directory / MANIFEST_NAME
    if not path.is_file():
        return []
    records = []
    skipped = 0
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            skipped += 1
    if skipped:
        print(f"warning: skipped {skipped} corrupt manifest line(s) in "
              f"{path} (interrupted writer)", file=sys.stderr)
    return records
