"""Streaming telemetry: rolling fixed-cycle-window summaries of a run.

The probe bus (:mod:`repro.obs.probes`) made instrumentation cheap
enough to leave on, but every consumer so far is post-hoc: metrics,
traces and manifests are inspected after a run ends.  This module adds
the *live* layer: a :class:`WindowedAggregator` folds the probe stream
into fixed-cycle-window rolling summaries (:class:`WindowSummary`) while
the simulation runs — per-core IPC and stall counts, fleet retire /
stall / crossbar-conflict / broadcast / MMU-mix rates, lockstep
fraction, plus streaming-mode block throughput and deadline misses.
``repro watch`` renders these live; run manifests embed them as the
``telemetry`` block (schema ``repro-manifest/2``); and
:meth:`WindowedAggregator.merge` combines the per-window summaries of N
aggregators (future simulation-farm shards) into one fleet view.

Determinism contract (test-enforced in ``tests/obs/test_telemetry.py``):
window summaries are **bit-identical** across the exact, fast-forward
and translation-block execution modes and across batched / per-event
probe delivery.  Two mechanisms make that hold:

* Both run loops emit ``telemetry.window`` exactly when the
  committed-cycle count crosses a multiple of
  :attr:`ProbeBus.window_cycles` (and once more, flagged ``final``, at
  the end of the run), carrying cumulative per-core retired/stall
  snapshots and the cumulative lockstep-cycle count — architectural
  quantities that are identical across modes after every cycle.  The
  fast-forward engine declines to enter a translation block that would
  commit past the next boundary (the per-cycle path covers the
  remainder), so boundaries are always hit exactly.
* Every boundary emission is preceded by a bus ``flush()``, so no
  batched ring ever spans a boundary.  The aggregator can therefore
  attribute *everything* — including the width/private ring columns
  that carry no cycle number — to the currently open window, in both
  delivery modes, without unpacking cycles at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields

from repro.errors import ConfigurationError
from repro.obs.manifest import stats_digest

#: Default telemetry window length.  Small enough for a responsive live
#: view of the ECG workload (dozens of windows per block), large enough
#: that every translation block fits inside one window and the
#: per-boundary flush cost vanishes.
DEFAULT_WINDOW_CYCLES = 8192

#: Schema tag of the ``telemetry`` manifest block.
TELEMETRY_SCHEMA = "telemetry/1"

#: Integer counter fields of :class:`WindowSummary`, in declaration
#: order — the fields :meth:`WindowSummary.combine` sums and
#: :meth:`WindowedAggregator.totals` accumulates.
COUNTER_FIELDS = (
    "retired", "stalls", "ixbar_conflicts", "dxbar_conflicts",
    "im_broadcasts", "dm_broadcasts", "im_broadcast_savings",
    "dm_broadcast_savings", "mmu_private", "mmu_shared", "sync_cycles",
)


def percentile(values, fraction: float):
    """Smallest value covering ``fraction`` of ``values`` (None if empty).

    Matches :meth:`repro.obs.metrics.Histogram.percentile` semantics so
    window-derived and histogram-derived percentiles agree.
    """
    if not values:
        return None
    ordered = sorted(values)
    rank = max(0, math.ceil(fraction * len(ordered)) - 1)
    return ordered[rank]


@dataclass(frozen=True)
class WindowSummary:
    """One closed telemetry window: pure integer counters plus geometry.

    ``start_cycle``/``end_cycle`` are *stream* cycles: across a
    multi-block streaming run the aggregator keeps accumulating, adding
    each finished run's cycle count as an offset, so windows of block N
    do not alias windows of block N+1.  All counters are exact event
    counts within ``[start_cycle, end_cycle)``; per-core tuples come
    from the boundary snapshots the run loops emit.
    """

    index: int
    start_cycle: int
    end_cycle: int
    final: bool
    retired: int
    stalls: int
    ixbar_conflicts: int
    dxbar_conflicts: int
    im_broadcasts: int
    dm_broadcasts: int
    im_broadcast_savings: int
    dm_broadcast_savings: int
    mmu_private: int
    mmu_shared: int
    sync_cycles: int
    core_retired: tuple
    core_stalls: tuple

    # -- derived rates -----------------------------------------------------

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    @property
    def ipc(self) -> float:
        """Fleet instructions per cycle (all cores summed)."""
        return self.retired / self.cycles if self.cycles else 0.0

    @property
    def stall_rate(self) -> float:
        """Stall events per cycle (all cores summed)."""
        return self.stalls / self.cycles if self.cycles else 0.0

    @property
    def conflicts(self) -> int:
        return self.ixbar_conflicts + self.dxbar_conflicts

    @property
    def conflicts_per_kcycle(self) -> float:
        return 1000.0 * self.conflicts / self.cycles if self.cycles else 0.0

    @property
    def broadcasts_per_kcycle(self) -> float:
        total = self.im_broadcasts + self.dm_broadcasts
        return 1000.0 * total / self.cycles if self.cycles else 0.0

    @property
    def lockstep_fraction(self) -> float:
        return self.sync_cycles / self.cycles if self.cycles else 0.0

    @property
    def mmu_private_fraction(self) -> float:
        total = self.mmu_private + self.mmu_shared
        return self.mmu_private / total if total else 0.0

    @property
    def core_ipc(self) -> tuple:
        cycles = self.cycles
        if not cycles:
            return tuple(0.0 for _ in self.core_retired)
        return tuple(retired / cycles for retired in self.core_retired)

    def to_dict(self) -> dict:
        """JSON-friendly dump (integers only — digestable bit-exactly)."""
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "WindowSummary":
        """Rebuild a summary from :meth:`to_dict` output.

        The farm ships window lists across process boundaries as plain
        dicts (JSON/pickle-safe); this is the inverse, with the digest
        contract preserved: ``from_dict(w.to_dict()).to_dict() ==
        w.to_dict()`` bit-for-bit.
        """
        try:
            kwargs = {f.name: payload[f.name] for f in fields(cls)}
        except KeyError as exc:
            raise ConfigurationError(
                f"window-summary dict is missing field {exc.args[0]!r}") \
                from None
        kwargs["core_retired"] = tuple(kwargs["core_retired"])
        kwargs["core_stalls"] = tuple(kwargs["core_stalls"])
        return cls(**kwargs)

    @classmethod
    def combine(cls, summaries) -> "WindowSummary":
        """Merge same-index windows from several shards into one.

        Integer counters sum; per-core tuples concatenate (the fleet's
        cores are the union of the shards' cores); the window geometry
        spans the shards.
        """
        summaries = list(summaries)
        if not summaries:
            raise ConfigurationError("cannot combine zero window summaries")
        first = summaries[0]
        if any(s.index != first.index for s in summaries):
            raise ConfigurationError(
                "combine() merges same-index windows across shards; got "
                f"indices {sorted({s.index for s in summaries})}")
        merged = {name: sum(getattr(s, name) for s in summaries)
                  for name in COUNTER_FIELDS}
        core_retired = []
        core_stalls = []
        for summary in summaries:
            core_retired.extend(summary.core_retired)
            core_stalls.extend(summary.core_stalls)
        return cls(
            index=first.index,
            start_cycle=min(s.start_cycle for s in summaries),
            end_cycle=max(s.end_cycle for s in summaries),
            final=all(s.final for s in summaries),
            core_retired=tuple(core_retired),
            core_stalls=tuple(core_stalls),
            **merged)


def merge_window_lists(*shards) -> list[WindowSummary]:
    """Fleet view over plain window lists (one per shard).

    Windows are aligned by index and combined via
    :meth:`WindowSummary.combine`; shards with fewer windows simply
    stop contributing after their last one (a short patient run ends,
    the rest of the fleet keeps going), and empty shards are no-ops.
    The operation is associative — merging merges gives the same
    windows as one flat merge — which lets the farm fold results in
    completion order.  Accepts :class:`WindowSummary` objects or their
    :meth:`~WindowSummary.to_dict` dumps.
    """
    by_index: dict[int, list] = {}
    for windows in shards:
        for window in windows:
            if isinstance(window, dict):
                window = WindowSummary.from_dict(window)
            by_index.setdefault(window.index, []).append(window)
    return [WindowSummary.combine(by_index[index])
            for index in sorted(by_index)]


def summaries_digest(summaries) -> str:
    """Stable sha256 over a window-summary sequence.

    Identical runs — regardless of execution mode or probe delivery
    mode — produce identical digests; the regression machinery compares
    them exactly like ``stats_digest``.
    """
    return stats_digest([summary.to_dict() for summary in summaries])


class WindowedAggregator:
    """Bus subscriber folding probe events into rolling window summaries.

    Usage mirrors :class:`~repro.obs.metrics.ProbeMetrics`::

        telemetry = WindowedAggregator.attach(system.probe_bus())
        system.run(benchmark)
        windows = telemetry.finish()      # list[WindowSummary]
        print(telemetry.fleet_summary())

    ``batched=True`` (default) consumes the typed ring buffers in bulk —
    each drain costs one length/sum per flush, keeping the
    watch-subscribed overhead inside the subscribed-cost CI budget
    (``bench_obs_overhead.py`` gates it).  ``batched=False`` counts one
    callback per occurrence; both modes produce bit-identical windows.

    Live consumers append a callback to :attr:`listeners`; it fires with
    each :class:`WindowSummary` the moment its window closes (from
    inside the simulation loop — keep it cheap).

    ``deadline_budget_cycles`` arms streaming-mode accounting: every
    ``block.done`` event whose block exceeded the budget counts as a
    deadline miss (:attr:`deadline_misses`).
    """

    def __init__(self, window_cycles: int = DEFAULT_WINDOW_CYCLES,
                 deadline_budget_cycles: float | None = None):
        if not isinstance(window_cycles, int) or window_cycles < 1:
            raise ConfigurationError(
                f"window_cycles must be a positive integer, "
                f"got {window_cycles!r}")
        self.window_cycles = window_cycles
        self.deadline_budget_cycles = deadline_budget_cycles
        self.windows: list[WindowSummary] = []
        self.listeners: list = []
        # streaming-mode accounting
        self.blocks_done = 0
        self.block_cycles: list[int] = []
        self.deadline_misses = 0
        # open-window accumulators (reset on every window close)
        self._w = dict.fromkeys(COUNTER_FIELDS[:-1], 0)  # sync via snapshot
        # boundary-snapshot bases (cumulative values at the last boundary)
        self._base_retired: tuple | None = None
        self._base_stalls: tuple | None = None
        self._base_sync = 0
        self._prev_end = 0      # run-relative cycle of the last boundary
        self._offset = 0        # stream offset of finished runs
        self._bus = None
        self._batched = False

    # -- wiring ------------------------------------------------------------

    @classmethod
    def attach(cls, bus, window_cycles: int = DEFAULT_WINDOW_CYCLES,
               batched: bool = True,
               deadline_budget_cycles: float | None = None) \
            -> "WindowedAggregator":
        aggregator = cls(window_cycles,
                         deadline_budget_cycles=deadline_budget_cycles)
        aggregator.subscribe(bus, batched=batched)
        return aggregator

    def subscribe(self, bus, batched: bool = True) -> None:
        self._bus = bus
        self._batched = batched
        bus.window_cycles = self.window_cycles
        self._handlers = {
            "telemetry.window": self._on_window,
            "block.done": self._on_block,
        }
        if batched:
            self._batch_handlers = {
                "core.retire": self._drain_retired,
                "core.stall": self._drain_stalls,
                "ixbar.conflict": self._drain_ixbar,
                "dxbar.conflict": self._drain_dxbar,
                "im.broadcast": self._drain_im_broadcast,
                "dm.broadcast": self._drain_dm_broadcast,
                "mmu.translate": self._drain_translate,
            }
            for event, drain in self._batch_handlers.items():
                bus.subscribe_batch(event, drain)
        else:
            self._batch_handlers = {}
            self._handlers.update({
                "core.retire": self._on_retire,
                "core.stall": self._on_stall,
                "ixbar.conflict": self._on_ixbar,
                "dxbar.conflict": self._on_dxbar,
                "im.broadcast": self._on_im_broadcast,
                "dm.broadcast": self._on_dm_broadcast,
                "mmu.translate": self._on_translate,
            })
        for event, handler in self._handlers.items():
            bus.subscribe(event, handler)

    def detach(self) -> None:
        if self._bus is None:
            return
        for event, handler in self._handlers.items():
            self._bus.unsubscribe(event, handler)
        for event, drain in self._batch_handlers.items():
            self._bus.unsubscribe_batch(event, drain)
        self._bus.window_cycles = 0
        self._bus = None

    def finish(self) -> list[WindowSummary]:
        """The closed windows (the run loops close the final partial
        window themselves via the ``final`` boundary, so unlike
        :meth:`ProbeMetrics.finish` there is usually nothing left to
        fold — this exists for symmetry and for aborted runs)."""
        if self._batched and self._bus is not None:
            self._bus.flush()
        return self.windows

    # -- batched drains ----------------------------------------------------

    def _drain_retired(self, ring) -> None:
        self._w["retired"] += ring.occurrence_count()

    def _drain_stalls(self, ring) -> None:
        self._w["stalls"] += ring.occurrence_count()

    def _drain_ixbar(self, ring) -> None:
        self._w["ixbar_conflicts"] += len(ring.data)

    def _drain_dxbar(self, ring) -> None:
        self._w["dxbar_conflicts"] += len(ring.data)

    def _drain_im_broadcast(self, ring) -> None:
        count = len(ring.data)
        self._w["im_broadcasts"] += count
        self._w["im_broadcast_savings"] += sum(ring.data) - count

    def _drain_dm_broadcast(self, ring) -> None:
        count = len(ring.data)
        self._w["dm_broadcasts"] += count
        self._w["dm_broadcast_savings"] += sum(ring.data) - count

    def _drain_translate(self, ring) -> None:
        private = sum(ring.data)
        self._w["mmu_private"] += private
        self._w["mmu_shared"] += len(ring.data) - private

    # -- per-event handlers (batched=False) --------------------------------

    def _on_retire(self, cycle, pid, pc) -> None:
        self._w["retired"] += 1

    def _on_stall(self, cycle, pid, pc) -> None:
        self._w["stalls"] += 1

    def _on_ixbar(self, cycle, bank, masters) -> None:
        self._w["ixbar_conflicts"] += 1

    def _on_dxbar(self, cycle, bank, masters) -> None:
        self._w["dxbar_conflicts"] += 1

    def _on_im_broadcast(self, cycle, bank, width) -> None:
        self._w["im_broadcasts"] += 1
        self._w["im_broadcast_savings"] += width - 1

    def _on_dm_broadcast(self, cycle, bank, width) -> None:
        self._w["dm_broadcasts"] += 1
        self._w["dm_broadcast_savings"] += width - 1

    def _on_translate(self, cycle, pid, logical, bank, offset,
                      private) -> None:
        key = "mmu_private" if private else "mmu_shared"
        self._w[key] += 1

    def _on_block(self, index, stats) -> None:
        self.blocks_done += 1
        self.block_cycles.append(stats.total_cycles)
        budget = self.deadline_budget_cycles
        if budget is not None and stats.total_cycles > budget:
            self.deadline_misses += 1

    # -- window boundaries -------------------------------------------------

    def _on_window(self, end_cycle, final, sync_cycles, retired,
                   stalls) -> None:
        start = self._prev_end
        if end_cycle > start:
            base_retired = self._base_retired or (0,) * len(retired)
            base_stalls = self._base_stalls or (0,) * len(stalls)
            summary = WindowSummary(
                index=len(self.windows),
                start_cycle=self._offset + start,
                end_cycle=self._offset + end_cycle,
                final=final,
                core_retired=tuple(
                    now - base for now, base in zip(retired, base_retired)),
                core_stalls=tuple(
                    now - base for now, base in zip(stalls, base_stalls)),
                sync_cycles=sync_cycles - self._base_sync,
                **self._w)
            self.windows.append(summary)
            self._w = dict.fromkeys(self._w, 0)
            for listener in self.listeners:
                listener(summary)
        if final:
            # End of one run: the next run's cycle count and cumulative
            # snapshots restart from zero (streaming re-loads the
            # machine), so shift the stream offset and drop the bases.
            self._offset += end_cycle
            self._prev_end = 0
            self._base_retired = None
            self._base_stalls = None
            self._base_sync = 0
        else:
            self._prev_end = end_cycle
            self._base_retired = tuple(retired)
            self._base_stalls = tuple(stalls)
            self._base_sync = sync_cycles

    # -- reductions --------------------------------------------------------

    def totals(self) -> dict:
        """Whole-stream sums over all closed windows.

        Bit-equal to the corresponding whole-run metrics-registry
        counters (the telemetry property suite asserts this): windowing
        partitions the event stream, it never resamples it.
        """
        out = dict.fromkeys(COUNTER_FIELDS, 0)
        for window in self.windows:
            for name in COUNTER_FIELDS:
                out[name] += getattr(window, name)
        out["cycles"] = sum(window.cycles for window in self.windows)
        return out

    def merge(self, *others) -> list[WindowSummary]:
        """Fleet view: combine this aggregator's windows with others'.

        Accepts aggregators or plain window lists.  Windows are aligned
        by index (farm shards running the same workload close windows at
        the same boundaries); see :meth:`WindowSummary.combine` and
        :func:`merge_window_lists`.
        """
        groups = [self.windows]
        for other in others:
            groups.append(other.windows
                          if isinstance(other, WindowedAggregator)
                          else list(other))
        return merge_window_lists(*groups)

    def fleet_summary(self, recent: int = 16) -> dict:
        """Rolling fleet digest: totals plus last/mean/p50/p99 of the
        per-window rates over the ``recent`` most recent windows."""
        windows = self.windows[-recent:] if recent else list(self.windows)
        rates = {
            "ipc": [w.ipc for w in windows],
            "stall_rate": [w.stall_rate for w in windows],
            "conflicts_per_kcycle": [w.conflicts_per_kcycle
                                     for w in windows],
            "broadcasts_per_kcycle": [w.broadcasts_per_kcycle
                                      for w in windows],
            "lockstep_fraction": [w.lockstep_fraction for w in windows],
        }
        summary = {
            "windows": len(self.windows),
            "window_cycles": self.window_cycles,
            "stream_cycles": self.windows[-1].end_cycle
            if self.windows else 0,
            "totals": self.totals(),
            "rates": {
                name: {
                    "last": values[-1] if values else None,
                    "mean": sum(values) / len(values) if values else None,
                    "p50": percentile(values, 0.50),
                    "p99": percentile(values, 0.99),
                } for name, values in rates.items()
            },
        }
        if self.blocks_done:
            summary["streaming"] = {
                "blocks_done": self.blocks_done,
                "deadline_budget_cycles": self.deadline_budget_cycles,
                "deadline_misses": self.deadline_misses,
                "worst_block_cycles": max(self.block_cycles),
                "p50_block_cycles": percentile(self.block_cycles, 0.50),
            }
        return summary

    def digest(self) -> str:
        """Stable sha256 over every closed window (see
        :func:`summaries_digest`)."""
        return summaries_digest(self.windows)

    def telemetry_block(self) -> dict:
        """The ``telemetry`` block a ``repro-manifest/2`` record embeds."""
        return {
            "schema": TELEMETRY_SCHEMA,
            "window_cycles": self.window_cycles,
            "windows": len(self.windows),
            "digest": self.digest(),
            "window_digests": [summaries_digest([window])
                               for window in self.windows],
            "fleet": self.fleet_summary(),
        }
