"""Metrics registry: counters, gauges and histograms over probe events.

:class:`MetricsRegistry` is a small name-spaced store of metric
primitives.  :class:`ProbeMetrics` subscribes a registry to a
:class:`~repro.obs.probes.ProbeBus` and derives the quantities the
aggregate :class:`~repro.platform.stats.SimulationStats` cannot express:

* ``sync_group_size`` — per-cycle number of distinct PCs among active
  cores (1 = full lockstep, the precondition for instruction broadcast);
* ``conflict_burst_length`` — lengths of runs of consecutive cycles that
  contained at least one crossbar conflict (clustered conflicts starve
  the same cores repeatedly; uniformly sprinkled ones are benign);
* ``im_broadcast_width`` / ``dm_broadcast_width`` — how many cores each
  broadcast actually served.

The registry *subsumes* ``SimulationStats``:
:meth:`MetricsRegistry.update_from_stats` imports every scalar field as
a counter, and :meth:`ProbeMetrics.verify_against` cross-checks the
probe-derived counters against the simulator's own accounting — the
reconciliation the test-suite and ``repro profile`` rely on.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.obs.probes import PC_BITS, PC_MASK, pack_cycle_pc


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    help: str = ""
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


@dataclass
class Gauge:
    """Last-written value."""

    name: str
    help: str = ""
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Exact integer-valued histogram (one bucket per observed value)."""

    name: str
    help: str = ""
    counts: dict = field(default_factory=dict)

    def observe(self, value: int, weight: int = 1) -> None:
        self.counts[value] = self.counts.get(value, 0) + weight

    @property
    def count(self) -> int:
        return sum(self.counts.values())

    @property
    def total(self) -> int:
        return sum(value * count for value, count in self.counts.items())

    @property
    def mean(self) -> float:
        count = self.count
        return self.total / count if count else 0.0

    @property
    def min(self):
        return min(self.counts) if self.counts else None

    @property
    def max(self):
        return max(self.counts) if self.counts else None

    def percentile(self, fraction: float):
        """Smallest observed value covering ``fraction`` of observations."""
        count = self.count
        if not count:
            return None
        threshold = fraction * count
        seen = 0
        for value in sorted(self.counts):
            seen += self.counts[value]
            if seen >= threshold:
                return value
        return max(self.counts)

    def buckets(self) -> list[tuple[int, int]]:
        return sorted(self.counts.items())


class MetricsRegistry:
    """Get-or-create store of named metrics."""

    def __init__(self):
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, name: str, cls, help: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name=name, help=help)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(name, Histogram, help)

    def get(self, name: str):
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return list(self._metrics)

    def update_from_stats(self, stats, prefix: str = "sim.") -> None:
        """Import every scalar ``SimulationStats`` field as a counter.

        Derived totals (``total_retired``, ``total_stall_cycles``) come
        in too, so the registry alone carries everything the power model
        reads from the stats object.
        """
        for f in dataclasses.fields(stats):
            value = getattr(stats, f.name)
            if isinstance(value, int):
                counter = self.counter(prefix + f.name)
                counter.value = value
        self.counter(prefix + "total_retired").value = stats.total_retired
        self.counter(prefix + "total_stall_cycles").value = \
            stats.total_stall_cycles

    def snapshot(self) -> dict:
        """JSON-friendly dump: name -> value (histograms -> summary)."""
        out = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                out[name] = {
                    "count": metric.count,
                    "total": metric.total,
                    "mean": metric.mean,
                    "min": metric.min,
                    "max": metric.max,
                    "buckets": {str(value): count
                                for value, count in metric.buckets()},
                }
            else:
                out[name] = metric.value
        return out

    def render(self) -> str:
        """Human-readable multi-line dump, histograms as bucket bars."""
        lines = []
        scalars = [(name, metric) for name, metric in self._metrics.items()
                   if not isinstance(metric, Histogram)]
        histograms = [(name, metric) for name, metric
                      in self._metrics.items()
                      if isinstance(metric, Histogram)]
        if scalars:
            width = max(len(name) for name, _ in scalars)
            for name, metric in scalars:
                lines.append(f"{name:<{width}} : {metric.value}")
        for name, metric in histograms:
            lines.append(f"{name} (n={metric.count}, mean={metric.mean:.2f},"
                         f" max={metric.max}):")
            peak = max(metric.counts.values()) if metric.counts else 1
            for value, count in metric.buckets():
                bar = "#" * max(1, round(40 * count / peak))
                lines.append(f"  {value:>6} | {count:>8} {bar}")
        return "\n".join(lines)


class ProbeMetrics:
    """Bus subscriber deriving histograms and cross-checkable counters.

    Subscribe with :meth:`attach` (or construct and call
    :meth:`subscribe`), run the workload, then call :meth:`finish` to
    flush the trailing cycle/burst before reading the registry.

    Two delivery modes, bit-identical in every metric they produce (the
    property suite in ``tests/obs/test_probe_properties.py`` asserts
    this over random event schedules):

    * ``batched=True`` (default) — the hot events accumulate in the
      bus's typed ring buffers and are consumed by bulk drains: counters
      advance by batch length, histograms by tallied batches, and the
      sync-group/conflict-burst reductions run vectorised over NumPy
      arrays.  This is what keeps always-on profiling under the 10 %
      budget of ``bench_obs_overhead.py``.
    * ``batched=False`` — one callback per occurrence, the fully
      general (and slower) path; also the reference the property tests
      compare against.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        reg = self.registry
        self.retired = reg.counter(
            "probe.retired", "core.retire events observed")
        self.stalls = reg.counter(
            "probe.stall_cycles", "core.stall events observed")
        self.ixbar_conflicts = reg.counter(
            "probe.ixbar_conflicts", "I-Xbar bank-cycles with a conflict")
        self.dxbar_conflicts = reg.counter(
            "probe.dxbar_conflicts", "D-Xbar bank-cycles with a conflict")
        self.im_broadcasts = reg.counter(
            "probe.im_broadcasts", "IM accesses serving >= 2 cores")
        self.dm_broadcasts = reg.counter(
            "probe.dm_broadcasts", "DM accesses serving >= 2 cores")
        self.mmu_private = reg.counter(
            "probe.mmu_private", "private-window translations")
        self.mmu_shared = reg.counter(
            "probe.mmu_shared", "shared-window translations")
        self.ff_stretches = reg.counter(
            "probe.ff_stretches", "fast-forward stretches (>= 1 cycle)")
        self.ff_cycles = reg.counter(
            "probe.ff_cycles", "cycles batch-committed by fast-forward")
        self.ff_block_entries = reg.counter(
            "probe.ff_block_entries", "translation-block executions")
        self.ff_block_compiles = reg.counter(
            "probe.ff_block_compiles", "translation blocks compiled")
        self.ff_block_cycles = reg.counter(
            "probe.ff_block_cycles",
            "cycles committed via translation blocks")
        self.blocks = reg.counter(
            "probe.blocks_done", "streamed blocks completed")
        self.sync_groups = reg.histogram(
            "sync_group_size",
            "per-cycle distinct PCs among active cores (1 = lockstep)")
        self.conflict_bursts = reg.histogram(
            "conflict_burst_length",
            "lengths of consecutive-cycle conflict runs")
        self.im_bc_width = reg.histogram(
            "im_broadcast_width", "cores served per IM broadcast")
        self.dm_bc_width = reg.histogram(
            "dm_broadcast_width", "cores served per DM broadcast")
        # per-cycle reduction state (carry across batches in batched
        # mode: _cycle/_cycle_pcs is the still-open sync group,
        # _burst_last/_burst_len the still-open conflict run)
        self._cycle = None
        self._cycle_pcs: set[int] = set()
        self._burst_last = None
        self._burst_len = 0
        # batched-mode staging: packed (cycle, pc) and conflict-cycle
        # arrays parked by drains until the post-flush consolidation
        self._pending_active: list = []
        self._pending_conflicts: list = []
        self._bus = None
        self._batched = False

    # -- wiring ------------------------------------------------------------

    @classmethod
    def attach(cls, bus, registry: MetricsRegistry | None = None,
               batched: bool = True) -> "ProbeMetrics":
        collector = cls(registry)
        collector.subscribe(bus, batched=batched)
        return collector

    def subscribe(self, bus, batched: bool = True) -> None:
        self._bus = bus
        self._batched = batched
        if batched:
            self._handlers = {
                "ff.exit": self._on_ff_exit,
                "ff.block": self._on_ff_block,
                "block.done": self._on_block,
            }
            self._batch_handlers = {
                "core.retire": self._drain_retire,
                "core.stall": self._drain_stall,
                "ixbar.conflict": self._drain_ixbar_conflict,
                "dxbar.conflict": self._drain_dxbar_conflict,
                "im.broadcast": self._drain_im_broadcast,
                "dm.broadcast": self._drain_dm_broadcast,
                "mmu.translate": self._drain_translate,
            }
            for event, drain in self._batch_handlers.items():
                bus.subscribe_batch(event, drain)
            bus.subscribe_flush(self._consolidate)
        else:
            self._handlers = {
                "core.retire": self._on_retire,
                "core.stall": self._on_stall,
                "ixbar.conflict": self._on_ixbar_conflict,
                "dxbar.conflict": self._on_dxbar_conflict,
                "im.broadcast": self._on_im_broadcast,
                "dm.broadcast": self._on_dm_broadcast,
                "mmu.translate": self._on_translate,
                "ff.exit": self._on_ff_exit,
                "ff.block": self._on_ff_block,
                "block.done": self._on_block,
            }
            self._batch_handlers = {}
        for event, handler in self._handlers.items():
            bus.subscribe(event, handler)

    def detach(self) -> None:
        if self._bus is not None:
            for event, handler in self._handlers.items():
                self._bus.unsubscribe(event, handler)
            for event, drain in self._batch_handlers.items():
                self._bus.unsubscribe_batch(event, drain)
            if self._batched:
                self._bus.unsubscribe_flush(self._consolidate)
            self._bus = None

    def finish(self) -> MetricsRegistry:
        """Flush the trailing cycle group and conflict burst."""
        if self._batched and self._bus is not None:
            self._bus.flush()
        self._consolidate()
        if self._cycle is not None:
            self.sync_groups.observe(len(self._cycle_pcs))
            self._cycle = None
            self._cycle_pcs = set()
        if self._burst_len:
            self.conflict_bursts.observe(self._burst_len)
            self._burst_last = None
            self._burst_len = 0
        return self.registry

    # -- handlers ----------------------------------------------------------

    def _on_active(self, cycle, pc) -> None:
        if cycle != self._cycle:
            if self._cycle is not None:
                self.sync_groups.observe(len(self._cycle_pcs))
            self._cycle = cycle
            self._cycle_pcs = {pc}
        else:
            self._cycle_pcs.add(pc)

    def _on_retire(self, cycle, pid, pc) -> None:
        self.retired.inc()
        self._on_active(cycle, pc)

    def _on_stall(self, cycle, pid, pc) -> None:
        self.stalls.inc()
        self._on_active(cycle, pc)

    def _on_conflict(self, cycle) -> None:
        last = self._burst_last
        if last == cycle:
            return  # several banks conflicting in one cycle: one burst cycle
        if last is not None and cycle == last + 1:
            self._burst_len += 1
        else:
            if self._burst_len:
                self.conflict_bursts.observe(self._burst_len)
            self._burst_len = 1
        self._burst_last = cycle

    def _on_ixbar_conflict(self, cycle, bank, masters) -> None:
        self.ixbar_conflicts.inc()
        self._on_conflict(cycle)

    def _on_dxbar_conflict(self, cycle, bank, masters) -> None:
        self.dxbar_conflicts.inc()
        self._on_conflict(cycle)

    def _on_im_broadcast(self, cycle, bank, width) -> None:
        self.im_broadcasts.inc()
        self.im_bc_width.observe(width)

    def _on_dm_broadcast(self, cycle, bank, width) -> None:
        self.dm_broadcasts.inc()
        self.dm_bc_width.observe(width)

    def _on_translate(self, cycle, pid, logical, bank, offset,
                      private) -> None:
        (self.mmu_private if private else self.mmu_shared).inc()

    def _on_ff_exit(self, cycle, fast_cycles) -> None:
        if fast_cycles:
            self.ff_stretches.inc()
            self.ff_cycles.inc(fast_cycles)

    def _on_ff_block(self, cycle, entries, compiled, block_cycles) -> None:
        self.ff_block_entries.inc(entries)
        self.ff_block_compiles.inc(compiled)
        self.ff_block_cycles.inc(block_cycles)

    def _on_block(self, index, stats) -> None:
        self.blocks.inc()

    # -- batched drains ----------------------------------------------------

    def _drain_retire(self, ring) -> None:
        packed, count = ring.compact()
        self.retired.inc(count)
        self._pending_active.append(packed)

    def _drain_stall(self, ring) -> None:
        packed, count = ring.compact()
        self.stalls.inc(count)
        self._pending_active.append(packed)

    def _drain_ixbar_conflict(self, ring) -> None:
        self.ixbar_conflicts.inc(len(ring.data))
        self._pending_conflicts.append(ring.as_array())

    def _drain_dxbar_conflict(self, ring) -> None:
        self.dxbar_conflicts.inc(len(ring.data))
        self._pending_conflicts.append(ring.as_array())

    def _drain_im_broadcast(self, ring) -> None:
        self.im_broadcasts.inc(len(ring.data))
        self._tally(ring.data, self.im_bc_width)

    def _drain_dm_broadcast(self, ring) -> None:
        self.dm_broadcasts.inc(len(ring.data))
        self._tally(ring.data, self.dm_bc_width)

    @staticmethod
    def _tally(widths, histogram) -> None:
        import numpy as np

        for width, count in enumerate(
                np.bincount(np.asarray(widths, dtype=np.int64)).tolist()):
            if count:
                histogram.observe(width, count)

    def _drain_translate(self, ring) -> None:
        private = sum(ring.data)
        self.mmu_private.inc(private)
        self.mmu_shared.inc(len(ring.data) - private)

    def _consolidate(self) -> None:
        """Post-flush reduction of the staged retire/stall/conflict batches.

        Cycle numbers are non-decreasing across a run (the platform's
        emission order), so every cycle except the latest one staged is
        complete and can be folded into the histograms; the latest cycle
        (and the trailing conflict run) stays open as carry state, which
        :meth:`finish` closes — exactly the roll-over the per-event
        handlers perform one occurrence at a time.
        """
        import numpy as np

        # np.unique is avoided throughout: its quicksort degrades badly
        # on the nearly-sorted arrays the rings produce (measured 25x
        # slower than a radix sort here); a stable sort + boolean-mask
        # dedup computes the same thing.
        def sorted_unique(arrays):
            merged = arrays[0] if len(arrays) == 1 \
                else np.concatenate(arrays)
            merged = np.sort(merged, kind="stable")
            if merged.size:
                merged = merged[
                    np.concatenate(([True], merged[1:] != merged[:-1]))]
            return merged

        if self._pending_active:
            arrays = self._pending_active
            self._pending_active = []
            if self._cycle is not None:
                # Re-stage the open sync group so it merges uniformly.
                arrays.append(np.asarray(
                    [pack_cycle_pc(self._cycle, pc)
                     for pc in self._cycle_pcs], dtype=np.int64))
            packed = sorted_unique(arrays)
            cycles = packed >> PC_BITS
            starts = np.concatenate(
                ([0], np.flatnonzero(cycles[1:] != cycles[:-1]) + 1))
            group_sizes = np.diff(np.concatenate((starts, [cycles.size])))
            self._cycle = int(cycles[-1])
            tail = int(group_sizes[-1])
            self._cycle_pcs = set(
                (packed[-tail:] & PC_MASK).tolist())
            if group_sizes.size > 1:
                for size, count in enumerate(
                        np.bincount(group_sizes[:-1]).tolist()):
                    if count:
                        self.sync_groups.observe(size, count)

        if self._pending_conflicts:
            arrays = self._pending_conflicts
            self._pending_conflicts = []
            cycles = sorted_unique(arrays)
            if self._burst_last is not None \
                    and cycles.size and int(cycles[0]) == self._burst_last:
                cycles = cycles[1:]  # same cycle, other crossbar: one burst
            if cycles.size:
                # Split the sorted conflict cycles into runs of
                # consecutive integers; all but the trailing run are
                # complete bursts.
                bounds = np.concatenate(
                    ([0], np.flatnonzero(np.diff(cycles) != 1) + 1,
                     [cycles.size]))
                lengths = np.diff(bounds)
                extends = self._burst_last is not None \
                    and int(cycles[0]) == self._burst_last + 1
                if self._burst_len and not extends:
                    self.conflict_bursts.observe(self._burst_len)
                    self._burst_len = 0
                for index, length in enumerate(lengths):
                    length = int(length)
                    if index == 0 and extends:
                        length += self._burst_len
                    if index == len(lengths) - 1:
                        self._burst_len = length
                    else:
                        self.conflict_bursts.observe(length)
                self._burst_last = int(cycles[-1])

    # -- reconciliation ----------------------------------------------------

    def verify_against(self, stats) -> list[tuple[str, int, int]]:
        """Cross-check probe counters against ``SimulationStats``.

        Returns the list of ``(name, probe_value, stats_value)``
        mismatches — empty when the probe stream and the simulator's own
        accounting agree (the differential suite asserts this in both
        execution modes).
        """
        self.finish()
        checks = [
            ("retired", self.retired.value, stats.total_retired),
            ("stall_cycles", self.stalls.value, stats.total_stall_cycles),
            ("ixbar_conflicts", self.ixbar_conflicts.value,
             stats.im_conflict_events),
            ("dxbar_conflicts", self.dxbar_conflicts.value,
             stats.dm_conflict_events),
            ("im_broadcasts", self.im_broadcasts.value, stats.im_broadcasts),
            ("dm_broadcasts", self.dm_broadcasts.value, stats.dm_broadcasts),
            ("im_broadcast_savings", self.im_bc_width.total
             - self.im_bc_width.count, stats.im_broadcast_savings),
            ("dm_broadcast_savings", self.dm_bc_width.total
             - self.dm_bc_width.count, stats.dm_broadcast_savings),
            ("mmu_private", self.mmu_private.value,
             stats.dm_private_accesses),
            ("mmu_shared", self.mmu_shared.value, stats.dm_shared_accesses),
        ]
        return [(name, probe, reference) for name, probe, reference in checks
                if probe != reference]
