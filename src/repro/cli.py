"""Command-line driver: ``repro-experiment <id ...|all> [--csv]``.

Prints the reproduced table/figure data and the paper-vs-measured
comparisons for each requested experiment.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.experiments import EXPERIMENTS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Reproduce tables/figures of Dogan et al., DATE 2012.")
    parser.add_argument(
        "experiments", nargs="+",
        help=f"experiment ids ({', '.join(EXPERIMENTS)}) or 'all'")
    parser.add_argument("--csv", action="store_true",
                        help="emit raw CSV instead of formatted text")
    parser.add_argument("--output", metavar="DIR", default=None,
                        help="also write one CSV per experiment into DIR")
    parser.add_argument(
        "--fast-forward", action="store_true",
        help="batch-commit provably conflict-free simulator cycles "
             "(bit-identical results, several times faster)")
    args = parser.parse_args(argv)

    if args.fast_forward:
        from repro.platform import set_default_fast_forward
        set_default_fast_forward(True)

    requested = list(EXPERIMENTS) if "all" in args.experiments \
        else args.experiments
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    output_dir = None
    if args.output is not None:
        output_dir = pathlib.Path(args.output)
        output_dir.mkdir(parents=True, exist_ok=True)

    for name in requested:
        result = EXPERIMENTS[name].run()
        print(result.to_csv() if args.csv else result.to_text())
        print()
        if output_dir is not None:
            path = output_dir / f"{name}.csv"
            path.write_text(result.to_csv() + "\n", encoding="utf-8")
    return 0


if __name__ == "__main__":
    sys.exit(main())
