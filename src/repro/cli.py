"""Command-line driver.

Four subcommands, all but the last writing run-manifest provenance to
``runs/``:

* ``repro experiment <id ...|all> [--csv]`` — reproduce the paper's
  tables/figures (the historical ``repro-experiment`` interface; the
  subcommand word is optional, so ``repro-experiment table1`` still
  works).
* ``repro trace`` — run the ECG benchmark with the Perfetto trace
  recorder attached and write a Chrome-trace JSON per architecture
  (open it in https://ui.perfetto.dev).
* ``repro profile`` — run with the metrics collector attached, print
  the registry (sync-group-size and conflict-burst histograms included)
  and cross-check the probe counters against ``SimulationStats``.
* ``repro regress`` — scan the run manifests for cross-revision digest
  drift (or same-revision nondeterminism) and exit non-zero on any
  finding; the CI regression gate.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.experiments import EXPERIMENTS

_ARCH_CHOICES = ("mc-ref", "ulpmc-int", "ulpmc-bank", "all")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--arch", choices=_ARCH_CHOICES, default="all",
                        help="platform to run (default: all three)")
    parser.add_argument("--samples", type=int, default=512,
                        help="ECG block length (paper geometry: 512)")
    parser.add_argument("--measurements", type=int, default=256,
                        help="compressed measurements per block")
    parser.add_argument(
        "--fast-forward", action="store_true",
        help="batch-commit provably conflict-free simulator cycles "
             "(bit-identical results, several times faster)")
    parser.add_argument(
        "--no-blocks", action="store_true",
        help="disable the basic-block translation cache inside the "
             "fast-forward engine (escape hatch; per-instruction "
             "dispatch is slower but bit-identical)")
    parser.add_argument("--runs-dir", metavar="DIR", default="runs",
                        help="run-manifest directory (default: runs/)")
    parser.add_argument("--no-manifest", action="store_true",
                        help="skip writing the run manifest")


def _add_sampling(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sample", metavar="EVENT=N", action="append", default=[],
        help="deliver only every N-th occurrence of EVENT (repeatable; "
             "exact occurrence counters are kept, but derived metrics "
             "become approximate, so the probe/stats cross-check is "
             "skipped)")


def _apply_sampling(bus, parser, pairs) -> bool:
    """Install ``EVENT=N`` policies; True if any event is decimated."""
    sampled = False
    for pair in pairs:
        event, _, every = pair.partition("=")
        try:
            rate = int(every)
        except ValueError:
            rate = 0
        if not event or rate < 1:
            parser.error(f"--sample expects EVENT=N with N >= 1, "
                         f"got {pair!r}")
        from repro.obs import ConfigurationError
        try:
            bus.set_sampling(event, rate)
        except ConfigurationError as exc:
            parser.error(str(exc))
        sampled = sampled or rate > 1
    return sampled


def _arches(name: str) -> list[str]:
    from repro.platform import ARCH_NAMES
    return list(ARCH_NAMES) if name == "all" else [name]


def _block_summary(system):
    """Translation-block statistics of a finished run (None if the
    fast-forward engine never attached)."""
    engine = getattr(system, "_ff_engine", None)
    return engine.block_summary() if engine is not None else None


def _built_benchmark(args):
    from repro.kernels import BenchmarkSpec, build_benchmark
    spec = BenchmarkSpec(n_samples=args.samples,
                         n_measurements=args.measurements,
                         huffman_private=True)
    return build_benchmark(spec)


def cmd_experiment(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Reproduce tables/figures of Dogan et al., DATE 2012.")
    parser.add_argument(
        "experiments", nargs="+",
        help=f"experiment ids ({', '.join(EXPERIMENTS)}) or 'all'")
    parser.add_argument("--csv", action="store_true",
                        help="emit raw CSV instead of formatted text")
    parser.add_argument("--output", metavar="DIR", default=None,
                        help="also write one CSV per experiment into DIR")
    parser.add_argument(
        "--fast-forward", action="store_true",
        help="batch-commit provably conflict-free simulator cycles "
             "(bit-identical results, several times faster)")
    parser.add_argument(
        "--no-blocks", action="store_true",
        help="disable the basic-block translation cache inside the "
             "fast-forward engine (escape hatch; per-instruction "
             "dispatch is slower but bit-identical)")
    parser.add_argument("--runs-dir", metavar="DIR", default="runs",
                        help="run-manifest directory (default: runs/)")
    parser.add_argument("--no-manifest", action="store_true",
                        help="skip writing the run manifest")
    args = parser.parse_args(argv)

    if args.fast_forward:
        from repro.platform import set_default_fast_forward
        set_default_fast_forward(True)
    if args.no_blocks:
        from repro.platform import set_default_translation_blocks
        set_default_translation_blocks(False)

    requested = list(EXPERIMENTS) if "all" in args.experiments \
        else args.experiments
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    output_dir = None
    if args.output is not None:
        output_dir = pathlib.Path(args.output)
        output_dir.mkdir(parents=True, exist_ok=True)

    for name in requested:
        started = time.perf_counter()
        result = EXPERIMENTS[name].run()
        wall = time.perf_counter() - started
        print(result.to_csv() if args.csv else result.to_text())
        print()
        if output_dir is not None:
            path = output_dir / f"{name}.csv"
            path.write_text(result.to_csv() + "\n", encoding="utf-8")
        if not args.no_manifest:
            from repro.obs import manifest_record, write_manifest
            write_manifest(manifest_record(
                "experiment", name, payload=result.to_csv(),
                wall_time_s=wall,
                extra={"fast_forward": args.fast_forward,
                       "translation_blocks": not args.no_blocks,
                       "max_relative_error": result.max_relative_error()},
            ), directory=args.runs_dir)
    return 0


def cmd_trace(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Run the ECG benchmark with the Perfetto trace "
                    "recorder attached; the JSON opens in ui.perfetto.dev.")
    _add_common(parser)
    _add_sampling(parser)
    parser.add_argument("--out-dir", metavar="DIR", default="runs",
                        help="directory for trace-<arch>.json "
                             "(default: runs/)")
    args = parser.parse_args(argv)

    from repro.kernels import verify_result
    from repro.obs import (ProbeMetrics, TraceRecorder, manifest_record,
                           write_manifest)
    from repro.platform import build_platform

    built = _built_benchmark(args)
    for arch in _arches(args.arch):
        started = time.perf_counter()
        system = build_platform(arch, fast_forward=args.fast_forward,
                                translation_blocks=not args.no_blocks)
        bus = system.probe_bus()
        sampled = _apply_sampling(bus, parser, args.sample)
        recorder = TraceRecorder.attach(system)
        metrics = ProbeMetrics.attach(bus)
        result = system.run(built.benchmark)
        verify_result(built, result)
        wall = time.perf_counter() - started
        if sampled:
            metrics.finish()  # decimated metrics can't reconcile exactly
        else:
            mismatches = metrics.verify_against(result.stats)
            if mismatches:
                print(f"{arch}: probe/stats mismatch: {mismatches}",
                      file=sys.stderr)
                return 1
        path = recorder.save(
            pathlib.Path(args.out_dir) / f"trace-{arch}.json")
        print(f"{arch}: {result.stats.total_cycles} cycles, "
              f"{len(recorder.slices)} slices, "
              f"{len(recorder.ff_spans)} fast-forward spans -> {path}")
        if not args.no_manifest:
            write_manifest(manifest_record(
                "trace", built.benchmark.name, arch=arch,
                config=system.config, stats=result.stats,
                event_summary=metrics.registry.snapshot(),
                wall_time_s=wall,
                extra={"trace_file": str(path),
                       "fast_forward": args.fast_forward,
                       "translation_blocks": not args.no_blocks,
                       "blocks": _block_summary(system),
                       "sampling": dict(
                           pair.partition("=")[::2]
                           for pair in args.sample) or None},
            ), directory=args.runs_dir)
    return 0


def cmd_profile(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="Run the ECG benchmark with the metrics registry "
                    "attached and print counters and histograms.")
    _add_common(parser)
    _add_sampling(parser)
    parser.add_argument(
        "--unbatched", action="store_true",
        help="deliver every probe event through its own callback "
             "instead of the batched ring-buffer path (slower; useful "
             "for cross-checking the two delivery modes)")
    args = parser.parse_args(argv)

    from repro.kernels import verify_result
    from repro.obs import ProbeMetrics, manifest_record, write_manifest
    from repro.platform import build_platform

    built = _built_benchmark(args)
    for arch in _arches(args.arch):
        started = time.perf_counter()
        system = build_platform(arch, fast_forward=args.fast_forward,
                                translation_blocks=not args.no_blocks)
        bus = system.probe_bus()
        sampled = _apply_sampling(bus, parser, args.sample)
        metrics = ProbeMetrics.attach(bus, batched=not args.unbatched)
        result = system.run(built.benchmark)
        verify_result(built, result)
        wall = time.perf_counter() - started
        registry = metrics.finish()
        registry.update_from_stats(result.stats)
        print(f"== {arch} ({'fast-forward' if args.fast_forward else 'exact'}"
              f", {wall:.2f} s) ==")
        print(registry.render())
        if sampled:
            print("probe/stats reconciliation skipped (sampling active)")
        else:
            mismatches = metrics.verify_against(result.stats)
            if mismatches:
                print(f"probe/stats RECONCILIATION FAILED: {mismatches}",
                      file=sys.stderr)
                return 1
            print("probe/stats reconciliation ok")
        print()
        if not args.no_manifest:
            write_manifest(manifest_record(
                "profile", built.benchmark.name, arch=arch,
                config=system.config, stats=result.stats,
                event_summary=registry.snapshot(), wall_time_s=wall,
                extra={"fast_forward": args.fast_forward,
                       "translation_blocks": not args.no_blocks,
                       "blocks": _block_summary(system),
                       "batched": not args.unbatched},
            ), directory=args.runs_dir)
    return 0


def cmd_regress(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro regress",
        description="Detect cross-revision drift (or same-revision "
                    "nondeterminism) in the run manifests; exits "
                    "non-zero on any finding.")
    parser.add_argument("--runs-dir", metavar="DIR", default="runs",
                        help="run-manifest directory (default: runs/)")
    parser.add_argument("--baseline", metavar="DIR", default=None,
                        help="compare the newest record per run identity "
                             "against this manifest directory instead of "
                             "scanning one directory's history")
    parser.add_argument("--format", choices=("text", "json", "markdown"),
                        default="text", help="report format")
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="also write the report to FILE")
    parser.add_argument("--kinds", default=",".join(
                            sorted(("experiment", "trace", "profile"))),
                        help="comma-separated record kinds to compare "
                             "(default: experiment,profile,trace; "
                             "benchmark timings are never reproducible)")
    parser.add_argument("--min-groups", type=int, default=0,
                        help="fail unless at least this many run "
                             "identities had something to compare "
                             "(guards CI against scanning an empty "
                             "manifest and passing vacuously)")
    args = parser.parse_args(argv)

    from repro.obs import run_regression
    kinds = tuple(kind.strip() for kind in args.kinds.split(",")
                  if kind.strip())
    report = run_regression(args.runs_dir, baseline_dir=args.baseline,
                            kinds=kinds, min_groups=args.min_groups)
    rendered = report.render(args.format)
    print(rendered)
    if args.output is not None:
        pathlib.Path(args.output).write_text(rendered + "\n",
                                             encoding="utf-8")
    return 0 if report.ok else 1


_SUBCOMMANDS = {
    "experiment": cmd_experiment,
    "trace": cmd_trace,
    "profile": cmd_profile,
    "regress": cmd_regress,
}


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in _SUBCOMMANDS:
        return _SUBCOMMANDS[argv[0]](argv[1:])
    # Historical interface: bare experiment ids (repro-experiment table1).
    return cmd_experiment(argv)


if __name__ == "__main__":
    sys.exit(main())
